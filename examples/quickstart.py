#!/usr/bin/env python3
"""Quickstart: estimate the DRAM EDP of one CNN layer under DRMap.

Run with::

    python examples/quickstart.py

Covers the three core objects in under a minute:

1. the Fig.-1 characterization (per-condition DRAM costs),
2. a mapping policy (DRMap vs. the worst Table-I policy),
3. the analytical EDP model on an AlexNet layer.
"""

from repro import quick_layer_edp
from repro.cnn import alexnet
from repro.core.report import format_table, improvement_percent
from repro.dram import DRAMArchitecture, characterize_cached
from repro.mapping import DRMAP, MAPPING_2


def main() -> None:
    # 1. What does a DRAM access cost?  (paper Fig. 1, on the default
    # device — the paper's ddr3-1600-2gb-x8 profile)
    ddr3 = characterize_cached(DRAMArchitecture.DDR3)
    print(format_table(
        ["condition", "cycles", "read energy [nJ]"],
        [[name, f"{cycles:.1f}", f"{read_nj:.2f}"]
         for name, cycles, read_nj, _write in ddr3.rows()],
        title="DDR3-1600 2Gb x8 per-access costs"))
    print()

    # 2+3. EDP of AlexNet CONV1 under DRMap vs the subarray-first
    # Mapping-2, with the best buffer-admissible tiling each.
    conv1 = alexnet()[0]
    drmap = quick_layer_edp(conv1, DRMAP, DRAMArchitecture.DDR3)
    worst = quick_layer_edp(conv1, MAPPING_2, DRAMArchitecture.DDR3)

    print(format_table(
        ["mapping", "energy [mJ]", "latency [ms]", "EDP [J*s]"],
        [
            [DRMAP.name, f"{drmap.energy_nj * 1e-6:.3f}",
             f"{drmap.latency_ns * 1e-6:.3f}", f"{drmap.edp_js:.3e}"],
            [MAPPING_2.name, f"{worst.energy_nj * 1e-6:.3f}",
             f"{worst.latency_ns * 1e-6:.3f}", f"{worst.edp_js:.3e}"],
        ],
        title=f"AlexNet {conv1.name}: {conv1.describe()}"))
    print()
    gain = improvement_percent(worst.edp_js, drmap.edp_js)
    print(f"DRMap improves the EDP by {gain:.1f}% over {MAPPING_2.name} "
          f"on {conv1.name} (scheme: {drmap.resolved_scheme}).")


if __name__ == "__main__":
    main()
