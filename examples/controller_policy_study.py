#!/usr/bin/env python3
"""Does the best mapping survive memory-controller variation?

Run with::

    python examples/controller_policy_study.py [--model alexnet]
        [--arch DDR3] [--device ddr3-1600-2gb-x8]

The paper's headline claim — the DRAM mapping policy dominates EDP —
is evaluated under exactly one controller: FCFS scheduling with an
open-row policy (Table II).  This example reruns the per-layer
Algorithm-1 exploration under every scheduler x row-policy
combination and prints, per layer, which Table-I mapping wins under
each controller.  Rows where the winner changes mark the boundary of
the paper's controller assumption: closed-row management erases the
row locality DRMap monetizes, so the optimum can flip.
"""

import argparse

from repro.core.dse import explore_layer
from repro.core.report import format_table
from repro.dram.architecture import DRAMArchitecture
from repro.dram.device import device_names, get_device
from repro.dram.policies import all_controller_configs
from repro.workloads import get_workload, workload_names


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model", default="alexnet", choices=workload_names())
    parser.add_argument(
        "--arch", default="DDR3",
        choices=[a.value for a in DRAMArchitecture])
    parser.add_argument(
        "--device", default="ddr3-1600-2gb-x8",
        help=f"registered device profile "
             f"(choices: {', '.join(device_names())})")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    device = get_device(args.device)
    architecture = DRAMArchitecture(args.arch)
    device.require_architecture(architecture)
    configs = all_controller_configs()
    layers = get_workload(args.model).lower()

    rows = []
    for layer in layers:
        winners = []
        for config in configs:
            result = explore_layer(
                layer, architectures=(architecture,), device=device,
                controller=config)
            winners.append(result.best().policy.name)
        stable = "yes" if len(set(winners)) == 1 else "NO"
        rows.append([layer.name] + winners + [stable])

    print(format_table(
        ["layer"] + [c.label for c in configs] + ["stable?"],
        rows,
        title=f"Best Table-I mapping per controller config "
              f"({args.model} on {architecture.value}, {device.name})"))


if __name__ == "__main__":
    main()
