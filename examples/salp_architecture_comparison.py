#!/usr/bin/env python3
"""Compare DRAM architectures: DDR3 vs SALP-1 vs SALP-2 vs SALP-MASA.

Run with::

    python examples/salp_architecture_comparison.py

Reproduces the paper's Section V-B analysis: how much EDP does each
SALP level recover for each mapping policy on AlexNet (adaptive-reuse
scheduling)?  Subarray-friendly mappings barely benefit (DRMap already
avoids subarray conflicts); subarray-*hostile* mappings gain
dramatically under MASA.
"""

from repro.cnn import ReuseScheme, alexnet
from repro.core import explore_layer
from repro.core.report import format_table, improvement_percent
from repro.dram import ALL_ARCHITECTURES, DRAMArchitecture
from repro.mapping import TABLE1_MAPPINGS

#: A representative subset of layers keeps this example fast (~30 s).
LAYERS = (0, 1, 5)


def main() -> None:
    layers = [alexnet()[i] for i in LAYERS]
    results = {
        layer.name: explore_layer(
            layer, schemes=(ReuseScheme.ADAPTIVE_REUSE,))
        for layer in layers
    }

    def total(architecture, policy):
        return sum(
            results[layer.name].best(
                architecture=architecture, policy=policy).edp_js
            for layer in layers)

    rows = []
    for policy in TABLE1_MAPPINGS:
        ddr3 = total(DRAMArchitecture.DDR3, policy)
        row = [policy.name, f"{ddr3:.3e}"]
        for architecture in ALL_ARCHITECTURES[1:]:
            salp = total(architecture, policy)
            row.append(f"{improvement_percent(ddr3, salp):+.2f}%")
        rows.append(row)

    print(format_table(
        ["mapping", "DDR3 EDP [J*s]", "SALP-1 gain", "SALP-2 gain",
         "SALP-MASA gain"],
        rows,
        title="SALP vs DDR3 EDP improvement "
              f"(AlexNet layers {', '.join(l.name for l in layers)}, "
              "adaptive-reuse)"))
    print()
    print("Employing SALP is beneficial as long as an effective mapping "
          "like DRMap is used -- and it rescues poor mappings (2, 5) "
          "from their subarray conflicts (Key Observation 4).")


if __name__ == "__main__":
    main()
