#!/usr/bin/env python3
"""Search-strategy shoot-out: points evaluated vs EDP gap, per device.

Run with::

    python examples/strategy_study.py [--model alexnet]
                                      [--devices ddr3-1600-2gb-x8 ddr4-2400 hbm2]
                                      [--seed 0] [--funnel-topk 5]

For each device the full Algorithm-1 design space is explored with
every registered search strategy, and the table reports how many
design points each strategy evaluated with exact (cycle-accurate)
characterization, how many it scored with the closed-form analytical
model, its wall-clock time, and the EDP gap of the optimum it found
against the exhaustive ground truth.

The shape to look for: ``funnel`` matches the exhaustive optimum
(0.00% gap) at a small fraction of the exact evaluations, ``random``
at the same budget leaves a gap, and ``greedy-refine`` sits in
between — cheap, usually optimal, but unguarded against local minima.
"""

import argparse
import time

from repro.core.dse import explore_network
from repro.core.engine import ExplorationEngine
from repro.core.report import format_table
from repro.core.strategies import strategy_names
from repro.dram.characterize import characterize_device
from repro.dram.device import device_names, get_device
from repro.workloads import get_workload, workload_names


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--model", default="alexnet", choices=workload_names(),
        help="workload graph to explore (default: alexnet)")
    parser.add_argument(
        "--devices", nargs="+",
        default=["ddr3-1600-2gb-x8", "ddr4-2400", "hbm2"],
        help="registered device profiles to study "
             f"(choices: {', '.join(device_names())})")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for the randomized strategies (default: 0)")
    parser.add_argument(
        "--funnel-topk", type=float, default=5.0,
        help="funnel: percent of each slice re-evaluated exactly")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    network = get_workload(args.model)
    for device_name in args.devices:
        device = get_device(device_name)
        # Warm the characterization cache so every strategy measures
        # pure search, as in a multi-scenario sweep.
        characterize_device(device)

        results = {}
        timings = {}
        for name in strategy_names():
            options = {}
            if name == "funnel":
                options["top_fraction"] = args.funnel_topk / 100.0
            engine = ExplorationEngine(
                strategy=name, seed=args.seed,
                strategy_options=options)
            start = time.perf_counter()
            results[name] = explore_network(
                network, engine=engine, device=device)
            timings[name] = time.perf_counter() - start

        truth = results["exhaustive"].best().edp_js
        rows = []
        for name, result in results.items():
            gap = result.best().edp_js / truth - 1.0
            rows.append([
                name,
                str(result.evaluated_points),
                str(result.scored_points) if result.scored_points
                else "-",
                f"{timings[name]:.3f}",
                f"{gap * 100.0:+.2f}%",
            ])
        print(format_table(
            ["strategy", "exact points", "analytical scores",
             "time [s]", "EDP gap vs exhaustive"],
            rows,
            title=f"{args.model} DSE on {device.name} "
                  f"({results['exhaustive'].total_points} grid points, "
                  f"seed {args.seed})"))
        print()


if __name__ == "__main__":
    main()
