#!/usr/bin/env python3
"""Apply the DSE to a custom network and accelerator configuration.

Run with::

    python examples/custom_network_mapping.py

Shows the full public API surface a downstream user touches when
bringing their own workload:

* define layers with :class:`repro.ConvLayer` (convs and FCs),
* size the on-chip buffers with :class:`repro.cnn.BufferConfig`,
* run Algorithm 1 and inspect the winning design points,
* extract the energy/latency pareto front of the design space.
"""

from repro import ConvLayer
from repro.cnn import BufferConfig
from repro.core import explore_layer, pareto_front, points_from_dse
from repro.core.report import format_table
from repro.dram import DRAMArchitecture


def build_custom_network():
    """A small edge-vision backbone (not from the paper)."""
    conv = ConvLayer.conv
    return [
        conv("STEM", (3, 64, 64), 16, kernel=3, stride=2, padding=1),
        conv("BLOCK1", (16, 32, 32), 32, kernel=3, padding=1),
        conv("BLOCK2", (32, 16, 16), 64, kernel=3, padding=1),
        conv("BLOCK3", (64, 8, 8), 128, kernel=3, padding=1),
        ConvLayer.fully_connected("HEAD", 128 * 8 * 8, 10),
    ]


def main() -> None:
    # A smaller accelerator than Table II: 32 KB per buffer.
    buffers = BufferConfig(
        ifms_bytes=32 * 1024,
        wghs_bytes=32 * 1024,
        ofms_bytes=32 * 1024,
    )

    rows = []
    all_points = []
    for layer in build_custom_network():
        result = explore_layer(
            layer,
            architectures=(DRAMArchitecture.SALP_MASA,),
            buffers=buffers,
        )
        all_points.extend(result.points)
        best = result.best()
        rows.append([
            layer.name, layer.describe().split(": ", 1)[1],
            best.policy.name, best.result.resolved_scheme.value,
            f"{best.edp_js:.3e}",
        ])
    print(format_table(
        ["layer", "shape", "best mapping", "schedule", "min EDP [J*s]"],
        rows,
        title="Custom network on SALP-MASA with 32 KB buffers"))

    front = pareto_front(points_from_dse(all_points))
    print()
    print(f"Design space: {len(all_points)} points, "
          f"{len(front)} on the energy/latency pareto front.")
    knee = min(front,
               key=lambda p: p.energy_nj * p.latency_ns)
    print(f"Knee point: {knee.payload.layer_name} / "
          f"{knee.payload.policy.name} / "
          f"{knee.payload.scheme.value} "
          f"(E={knee.energy_nj:.3e} nJ, T={knee.latency_ns:.3e} ns)")


if __name__ == "__main__":
    main()
