#!/usr/bin/env python3
"""Full Algorithm-1 design space exploration on AlexNet.

Run with::

    python examples/alexnet_dse.py [--arch DDR3|SALP-1|SALP-2|SALP-MASA]

For every AlexNet layer, sweeps all buffer-admissible tilings, the four
scheduling schemes and the six Table-I mappings, and reports the
minimum-EDP design point per layer -- the output the paper's DSE
produces (map, minEDP).
"""

import argparse

from repro.cnn import alexnet
from repro.core import explore_layer
from repro.core.report import format_table
from repro.dram import DRAMArchitecture


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--arch", default="DDR3",
        choices=[a.value for a in DRAMArchitecture],
        help="DRAM architecture to explore (default: DDR3)")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    architecture = DRAMArchitecture(args.arch)

    rows = []
    total_edp = 0.0
    for layer in alexnet():
        result = explore_layer(layer, architectures=(architecture,))
        best = result.best()
        total_edp += best.edp_js
        tiling = best.tiling
        rows.append([
            layer.name,
            best.policy.name,
            best.result.resolved_scheme.value,
            f"Th={tiling.th} Tw={tiling.tw} Tj={tiling.tj} Ti={tiling.ti}",
            f"{best.edp_js:.3e}",
        ])
    rows.append(["TOTAL", "", "", "", f"{total_edp:.3e}"])

    print(format_table(
        ["layer", "best mapping", "best schedule", "best tiling",
         "min EDP [J*s]"],
        rows,
        title=f"Algorithm 1 output on {architecture.value} "
              "(Table-II accelerator)"))
    print()
    print("Every layer selects Mapping-3 -- the DSE corroborates that "
          "DRMap is the generic minimum-EDP mapping (Key Observation 1).")


if __name__ == "__main__":
    main()
