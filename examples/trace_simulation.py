#!/usr/bin/env python3
"""Cycle-level trace simulation vs the analytical EDP model.

Run with::

    python examples/trace_simulation.py

Builds the actual burst-level DRAM request stream of a small conv layer
(the loop nest of the paper's Fig. 3), replays it on the cycle-level
controller of every DRAM architecture, and compares against the Eq. 2/3
analytical estimate -- the validation loop behind the paper's tool flow
(Fig. 8: Ramulator + VAMPIRE feeding the in-house DSE).
"""

from repro import ConvLayer
from repro.cnn import ReuseScheme, TilingConfig, generate_layer_trace
from repro.core import layer_edp
from repro.core.report import format_table
from repro.dram import (
    ALL_ARCHITECTURES,
    DRAMSimulator,
    DDR3_1600_2GB_X8,
    characterize,
)
from repro.mapping import DRMAP, MAPPING_2


def main() -> None:
    layer = ConvLayer.conv("DEMO", (16, 12, 12), 16, kernel=3, padding=1)
    tiling = TilingConfig(th=6, tw=6, tj=8, ti=8)
    scheme = ReuseScheme.OFMS_REUSE

    rows = []
    for policy in (DRMAP, MAPPING_2):
        trace = generate_layer_trace(
            layer, tiling, scheme, policy, DDR3_1600_2GB_X8)
        for architecture in ALL_ARCHITECTURES:
            simulator = DRAMSimulator.from_preset(architecture)
            simulated = simulator.run(trace)
            modelled = layer_edp(
                layer, tiling, scheme, policy, architecture,
                characterization=characterize(architecture))
            rows.append([
                policy.name, architecture.value,
                len(trace),
                f"{simulated.total_cycles}",
                f"{modelled.cycles:.0f}",
                f"{simulated.total_energy_nj:.0f}",
                f"{modelled.energy_nj:.0f}",
                f"{simulated.trace.row_hits / len(trace):.2f}",
            ])

    print(format_table(
        ["mapping", "arch", "bursts", "sim cycles", "model cycles",
         "sim nJ", "model nJ", "sim hit rate"],
        rows,
        title=f"{layer.describe()} -- cycle simulation vs Eq. 2/3"))
    print()
    print("The analytical model tracks the simulator within tens of "
          "percent and preserves the mapping ranking -- DRMap's trace "
          "row-hit rate explains its advantage directly.")


if __name__ == "__main__":
    main()
