#!/usr/bin/env python3
"""Algorithm-1 DSE on two DRAM devices, side by side.

Run with::

    python examples/cross_device_dse.py [--devices ddr3-1600-2gb-x8 ddr4-2400]
                                        [--arch DDR3] [--jobs 1]

The paper's claim is that DRMap is *generic*: the same mapping policy
should minimize EDP on every DRAM generation, even though timings, IDD
currents and geometry all shift.  This example runs the full AlexNet
design space exploration on two registered device profiles and prints
the best mapping policy (and its minimum EDP) per layer for each — if
the policy column agrees on both devices, the generality claim holds
on that pair.
"""

import argparse

from repro.cnn.models import alexnet
from repro.core.dse import explore_layer
from repro.core.report import format_table
from repro.dram.architecture import DRAMArchitecture
from repro.dram.device import device_names, get_device


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--devices", nargs=2, default=["ddr3-1600-2gb-x8", "ddr4-2400"],
        metavar=("DEVICE_A", "DEVICE_B"),
        help="two registered device profiles to compare "
             f"(choices: {', '.join(device_names())})")
    parser.add_argument(
        "--arch", default="DDR3",
        choices=[a.value for a in DRAMArchitecture],
        help="DRAM architecture behaviour; must be in both devices' "
             "capability sets (default: DDR3 = commodity)")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the exploration grid")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    architecture = DRAMArchitecture(args.arch)
    devices = [get_device(name) for name in args.devices]
    for device in devices:
        device.require_architecture(architecture)

    best = {device.name: {} for device in devices}
    for device in devices:
        for layer in alexnet():
            result = explore_layer(
                layer, architectures=(architecture,), jobs=args.jobs,
                device=device)
            best[device.name][layer.name] = result.best()

    rows = []
    totals = {device.name: 0.0 for device in devices}
    agreements = 0
    for layer in alexnet():
        points = [best[device.name][layer.name] for device in devices]
        agree = points[0].policy == points[1].policy
        agreements += agree
        for device, point in zip(devices, points):
            totals[device.name] += point.edp_js
        rows.append([
            layer.name,
            points[0].policy.name, f"{points[0].edp_js:.3e}",
            points[1].policy.name, f"{points[1].edp_js:.3e}",
            "yes" if agree else "NO",
        ])
    rows.append([
        "TOTAL", "", f"{totals[devices[0].name]:.3e}",
        "", f"{totals[devices[1].name]:.3e}", "",
    ])

    name_a, name_b = (device.name for device in devices)
    print(format_table(
        ["layer",
         f"{name_a} best mapping", f"{name_a} min EDP [J*s]",
         f"{name_b} best mapping", f"{name_b} min EDP [J*s]",
         "same policy"],
        rows,
        title=f"Algorithm 1 per layer on {name_a} vs {name_b} "
              f"({architecture.value})"))
    print()
    layer_count = len(alexnet())
    print(f"Best mapping policy agrees on {agreements}/{layer_count} "
          f"layers across {name_a} and {name_b}.")


if __name__ == "__main__":
    main()
