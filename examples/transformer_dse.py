#!/usr/bin/env python3
"""Algorithm-1 DSE on a transformer encoder block, via the graph IR.

Run with::

    python examples/transformer_dse.py [--seq-len 128] [--batch 1]
                                       [--arch DDR3] [--jobs 1]

The paper's DSE consumes a flat list of conv layers, which cannot
express a transformer.  The workload IR lowers every BERT-style matmul
— Q/K/V projections, the activation-activation attention products, and
the feed-forward pair — to the same 7-dim (B, H, W, J, I, P, Q) loop
nest, so Algorithm 1 runs unchanged.  This example explores one
encoder block, prints the per-op minimum-EDP mapping in topological
order, the network EDP, and the feature-map hand-off residency
analysis (which tensors could stay on chip between ops).
"""

import argparse

from repro.core.dse import explore_workload
from repro.core.figures import network_edp_chart
from repro.core.report import handoff_table, network_edp_table
from repro.cnn.scheduling import ReuseScheme
from repro.dram.architecture import DRAMArchitecture
from repro.workloads import zoo


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seq-len", type=int, default=128,
                        help="sequence length (default: 128)")
    parser.add_argument("--batch", type=int, default=1,
                        help="batch size (default: 1)")
    parser.add_argument(
        "--arch", default="DDR3",
        choices=[a.value for a in DRAMArchitecture],
        help="DRAM architecture behaviour (default: DDR3)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the exploration grid")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    network = zoo.bert_encoder(batch=args.batch, seq_len=args.seq_len)
    _, _, summary = explore_workload(
        network,
        jobs=args.jobs,
        architecture=DRAMArchitecture(args.arch),
        scheme=ReuseScheme.ADAPTIVE_REUSE,
    )
    print(network_edp_table(summary))
    print()
    print(network_edp_chart(summary))
    print()
    print(handoff_table(summary.handoffs))


if __name__ == "__main__":
    main()
