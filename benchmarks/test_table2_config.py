"""Table II — configuration of the CNN accelerator.

Prints the Table-II configuration from the live objects and times the
buffer-constrained tiling enumeration (Algorithm 1 step 1a).
"""

from repro.accelerator.config import TABLE2_ACCELERATOR
from repro.cnn.models import alexnet
from repro.cnn.tiling import TABLE2_BUFFERS, enumerate_tilings
from repro.core.report import format_table
from repro.units import format_bytes


def test_table2(benchmark):
    config = TABLE2_ACCELERATOR
    org = config.dram_organization
    rows = [
        ["CNN Processing Array",
         f"{config.mac_rows} x {config.mac_cols} MACs"],
        ["On-chip Buffers",
         f"iB: {format_bytes(TABLE2_BUFFERS.ifms_bytes)}, "
         f"wB: {format_bytes(TABLE2_BUFFERS.wghs_bytes)}, "
         f"oB: {format_bytes(TABLE2_BUFFERS.ofms_bytes)}"],
        ["Memory Controller", "policy = open row, scheduler = FCFS"],
        ["DRAM", org.describe()],
    ]
    print()
    print(format_table(["Module", "Description"], rows,
                       title="Table II -- CNN accelerator configuration"))

    assert config.num_macs == 64
    assert org.banks_per_chip == 8
    assert org.subarrays_per_bank == 8

    conv2 = alexnet()[1]
    tilings = benchmark(enumerate_tilings, conv2, TABLE2_BUFFERS)
    assert all(t.fits(conv2, TABLE2_BUFFERS) for t in tilings)
