"""Fig. 9(b) — AlexNet EDP per layer, wghs-reuse scheduling."""

from repro.cnn.models import alexnet
from repro.cnn.scheduling import ReuseScheme
from repro.cnn.tiling import enumerate_tilings
from repro.core.edp import layer_edp
from repro.dram.architecture import DRAMArchitecture
from repro.mapping.catalog import DRMAP

from ._fig9 import assert_fig9_shape, fig9_series, print_fig9

SCHEME = ReuseScheme.WGHS_REUSE


def test_fig9b(alexnet_dse, benchmark):
    series = fig9_series(alexnet_dse, SCHEME)
    print_fig9(series, SCHEME, "b")
    assert_fig9_shape(series)

    fc6 = alexnet()[5]
    tiling = enumerate_tilings(fc6)[0]
    benchmark(layer_edp, fc6, tiling, SCHEME, DRMAP,
              DRAMArchitecture.SALP_1)
