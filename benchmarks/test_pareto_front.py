"""Pareto-optimal design choices (paper abstract / Section I-B).

Projects the CONV2 design space onto the (energy, latency) plane and
extracts the pareto front; DRMap design points must populate it.
"""

from repro.core.pareto import pareto_front, points_from_dse
from repro.core.report import format_table
from repro.dram.architecture import DRAMArchitecture
from repro.mapping.catalog import DRMAP


def test_pareto_front(alexnet_dse, benchmark):
    points = alexnet_dse["CONV2"].filtered(
        architecture=DRAMArchitecture.SALP_MASA)
    objective_points = points_from_dse(points)
    front = benchmark(pareto_front, objective_points)

    rows = []
    for objective in front[:12]:
        point = objective.payload
        rows.append([
            point.policy.name, point.scheme.value,
            f"th{point.tiling.th}/tw{point.tiling.tw}"
            f"/tj{point.tiling.tj}/ti{point.tiling.ti}",
            f"{objective.energy_nj:.3e}",
            f"{objective.latency_ns:.3e}",
        ])
    print()
    print(format_table(
        ["mapping", "schedule", "tiling", "energy nJ", "latency ns"],
        rows,
        title="Pareto front of the CONV2 design space (SALP-MASA)"))

    assert front, "the front must not be empty"
    # Every front member must be non-dominated.
    for a in front:
        assert not any(b.dominates(a) for b in objective_points)
    # DRMap points appear on the front (it minimizes both objectives).
    front_policies = {objective.payload.policy.name
                      for objective in front}
    assert DRMAP.name in front_policies
