"""Ablation — EDP sensitivity to on-chip buffer capacity.

DESIGN.md design-choice check: the Table-II buffers are 64 KB each;
this sweep shows how the minimum EDP of AlexNet CONV2 scales as the
buffers shrink or grow (bigger tiles -> fewer refetches and longer
row-hit runs).
"""

from repro.cnn.models import alexnet
from repro.cnn.scheduling import ReuseScheme
from repro.cnn.tiling import BufferConfig
from repro.core.dse import explore_layer
from repro.core.report import format_table
from repro.dram.architecture import DRAMArchitecture
from repro.mapping.catalog import DRMAP
from repro.units import format_bytes

SIZES_KB = (16, 32, 64, 128, 256)


def min_edp_for_buffers(layer, size_kb):
    buffers = BufferConfig(
        ifms_bytes=size_kb * 1024,
        wghs_bytes=size_kb * 1024,
        ofms_bytes=size_kb * 1024,
    )
    result = explore_layer(
        layer,
        architectures=(DRAMArchitecture.DDR3,),
        schemes=(ReuseScheme.ADAPTIVE_REUSE,),
        policies=(DRMAP,),
        buffers=buffers,
    )
    return result.best().edp_js


def test_buffer_sweep(benchmark):
    conv2 = alexnet()[1]
    edps = {size: min_edp_for_buffers(conv2, size) for size in SIZES_KB}
    rows = [[format_bytes(size * 1024), f"{edps[size]:.3e}"]
            for size in SIZES_KB]
    print()
    print(format_table(
        ["buffer size (each)", "min EDP [J*s] (DRMap, adaptive, DDR3)"],
        rows, title="Ablation -- buffer capacity sweep on CONV2"))

    # Larger buffers never hurt: min EDP is non-increasing in capacity.
    values = [edps[size] for size in SIZES_KB]
    assert all(a >= b * 0.999 for a, b in zip(values, values[1:]))
    # Quadrupling the Table-II buffers gives a real improvement.
    assert edps[256] < edps[64]

    benchmark(min_edp_for_buffers, conv2, 64)
