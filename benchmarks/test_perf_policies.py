"""Policy-indirection overhead gate: pluggability must be (almost) free.

The controller-policy refactor routes every request through a
scheduler object and a row-buffer policy object instead of hard-coded
FCFS/open-row behaviour.  Two gates hold that indirection under 5%:

* at the controller level, ``run()`` under the default config against
  the pre-refactor service loop (calling ``_service`` per request
  directly — exactly what the old ``run()`` body did), at identical
  command traces;
* at the pipeline level, the AlexNet DDR3 characterize+DSE path with
  the controller config threaded explicitly end to end against the
  default-argument path, at identical exploration records.

Run via ``make bench-policies``.
"""

from __future__ import annotations

import gc
import time

from repro.core.engine import ExplorationEngine
from repro.core.report import format_table
from repro.dram.architecture import DRAMArchitecture
from repro.dram.characterize import CharacterizationCache
from repro.dram.controller import MemoryController
from repro.dram.device import get_device
from repro.dram.policies import (
    DEFAULT_CONTROLLER_CONFIG,
    controller_config,
)
from repro.dram.simulator import DRAMSimulator


def _interleaved_best_of(runs: int, func_a, func_b):
    """Best-of timings with A/B runs interleaved.

    Alternating the contenders decorrelates the comparison from slow
    machine-load drift (e.g. a parallel test process spinning up
    mid-measurement), which a sequential best-of cannot.
    """
    best_a = best_b = float("inf")
    # A full-suite run leaves a large live heap behind, and a gen-2
    # collection landing inside a measured region skews a sub-second
    # A/B comparison; pause the collector for the stopwatch only.
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(runs):
            start = time.perf_counter()
            func_a()
            best_a = min(best_a, time.perf_counter() - start)
            start = time.perf_counter()
            func_b()
            best_b = min(best_b, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best_a, best_b


def test_controller_dispatch_within_5_percent():
    """Default-config run() vs the raw pre-refactor service loop."""
    device = get_device("ddr3-1600-2gb-x8")
    simulator = DRAMSimulator.from_profile(device)
    stream = (simulator.round_robin_subarray_reads(bank=0, count=4000)
              + simulator.sequential_reads(0, 0, 0, count=4000))

    def policy_path():
        controller = MemoryController(
            device.organization, device.timings)
        return controller.run(stream)

    def raw_path():
        controller = MemoryController(
            device.organization, device.timings)
        for request in stream:  # the pre-refactor run() body
            controller._service(request)
        return controller

    # Identical schedules first, then the stopwatch.
    assert list(policy_path().commands) == raw_path()._commands

    raw_seconds, policy_seconds = _interleaved_best_of(
        5, raw_path, policy_path)

    print()
    print(format_table(
        ["path", "best of 5 [s]"],
        [["raw service loop", f"{raw_seconds:.4f}"],
         ["policy dispatch", f"{policy_seconds:.4f}"]],
        title="Controller dispatch overhead (8000-request stream)"))
    overhead = policy_seconds / raw_seconds - 1.0
    print(f"policy-dispatch overhead: {overhead * 100:+.2f}%")
    assert policy_seconds < raw_seconds * 1.05, (
        f"policy dispatch {policy_seconds:.4f}s exceeds 105% of the "
        f"raw loop {raw_seconds:.4f}s")


def test_characterize_dse_path_within_5_percent(alexnet_layers):
    """AlexNet DDR3 characterize+DSE: explicit config vs defaults."""
    device = get_device("ddr3-1600-2gb-x8")

    def pipeline(controller):
        # A private cache per run so each contender pays the full
        # characterize cost, exactly like a cold process would.  The
        # scalar evaluation backend keeps the denominator large enough
        # that this 5% bound measures config threading, not timer
        # noise (the vector kernel is gated in test_perf_eval.py).
        cache = CharacterizationCache()
        engine = ExplorationEngine(characterization_cache=cache,
                                   eval_model="scalar")
        return engine.explore_network(
            alexnet_layers,
            architectures=(DRAMArchitecture.DDR3,),
            device=device,
            controller=controller)

    default_result = pipeline(None)
    explicit_result = pipeline(DEFAULT_CONTROLLER_CONFIG)
    assert explicit_result.points == default_result.points

    default_seconds, explicit_seconds = _interleaved_best_of(
        4, lambda: pipeline(None),
        lambda: pipeline(DEFAULT_CONTROLLER_CONFIG))

    print()
    print(format_table(
        ["path", "best of 4 [s]", "points"],
        [["default arguments", f"{default_seconds:.3f}",
          str(len(default_result.points))],
         ["explicit ControllerConfig", f"{explicit_seconds:.3f}",
          str(len(explicit_result.points))]],
        title="AlexNet DDR3 characterize+DSE: config threading"))
    overhead = explicit_seconds / default_seconds - 1.0
    print(f"config-threading overhead: {overhead * 100:+.2f}%")
    assert explicit_seconds < default_seconds * 1.05, (
        f"explicit-config path {explicit_seconds:.3f}s exceeds 105% "
        f"of the default path {default_seconds:.3f}s")


def test_fr_fcfs_characterization_cost_bounded(benchmark):
    """A non-default policy must characterize in the same ballpark:
    the window bookkeeping may not blow up the micro-experiments."""
    from repro.dram.characterize import characterize

    config = controller_config("fr-fcfs", "closed")
    result = benchmark(
        characterize, DRAMArchitecture.DDR3, controller=config)
    assert result.controller == config
