"""Generalization — DRMap on VGG-16 (beyond the paper's AlexNet).

The paper calls DRMap *generic*; this bench checks the claim holds on
a different workload: VGG-16's conv and FC layers (a representative
subset keeps the runtime reasonable), adaptive-reuse scheduling,
all four architectures.
"""

from repro.cnn.models import vgg16
from repro.cnn.scheduling import ReuseScheme
from repro.core.dse import explore_layer
from repro.core.report import format_table, improvement_percent
from repro.dram.architecture import ALL_ARCHITECTURES, DRAMArchitecture
from repro.mapping.catalog import DRMAP, TABLE1_MAPPINGS

#: An early conv, a mid conv, a late conv, and the big FC.
LAYER_INDICES = (0, 6, 12, 13)


def test_vgg16(benchmark):
    layers = [vgg16()[i] for i in LAYER_INDICES]
    results = {
        layer.name: explore_layer(
            layer, schemes=(ReuseScheme.ADAPTIVE_REUSE,))
        for layer in layers
    }

    rows = []
    for layer in layers:
        result = results[layer.name]
        for architecture in ALL_ARCHITECTURES:
            best = result.best(architecture=architecture)
            worst = max(
                result.best(architecture=architecture,
                            policy=policy).edp_js
                for policy in TABLE1_MAPPINGS)
            rows.append([
                layer.name, architecture.value, best.policy.name,
                f"{best.edp_js:.3e}",
                f"{improvement_percent(worst, best.edp_js):.1f}%",
            ])
    print()
    print(format_table(
        ["layer", "architecture", "best mapping", "min EDP [J*s]",
         "gain vs worst"],
        rows, title="Generalization -- VGG-16 (adaptive-reuse)"))

    # DRMap wins on every VGG-16 layer and architecture too.
    for layer in layers:
        for architecture in ALL_ARCHITECTURES:
            best = results[layer.name].best(architecture=architecture)
            assert best.policy == DRMAP, (layer.name, architecture)

    benchmark(
        explore_layer, layers[0],
        architectures=(DRAMArchitecture.DDR3,),
        schemes=(ReuseScheme.ADAPTIVE_REUSE,),
        policies=(DRMAP,),
    )
