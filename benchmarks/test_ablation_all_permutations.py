"""Ablation — all 24 loop permutations (Table-I narrowing check).

The paper narrows the mapping design space from 24 permutations to the
six row-outermost policies of Table I.  This ablation costs every
permutation with Eq. 2/3 for a 64 KB tile and verifies that the global
optimum lies inside the Table-I family (so the narrowing cannot miss
it) — while also showing that membership alone is no guarantee:
Mapping-5 is row-outermost yet loses to several discarded orders.
"""

from repro.core.report import format_table
from repro.dram.architecture import ALL_ARCHITECTURES, DRAMArchitecture
from repro.mapping.catalog import DRMAP
from repro.mapping.dims import Dim
from repro.mapping.search import (
    narrowing_is_sound,
    rank_policies,
)

TILE_ACCESSES = 8192  # one 64 KB tile


def test_all_permutations(benchmark):
    ranked = rank_policies(TILE_ACCESSES, DRAMArchitecture.SALP_MASA)
    rows = []
    for position, scored in enumerate(ranked[:10], start=1):
        family = ("Table I" if scored.policy.loop_order[-1] is Dim.ROW
                  else "discarded")
        rows.append([
            str(position), scored.policy.name, family,
            f"{scored.cycles:.0f}", f"{scored.energy_nj:.0f}",
            f"{scored.edp_score:.3e}",
        ])
    print()
    print(format_table(
        ["rank", "permutation", "family", "cycles", "energy nJ",
         "EDP score"],
        rows,
        title="Ablation -- top 10 of all 24 permutations "
              "(SALP-MASA, 64 KB tile)"))

    # The optimum is DRMap's order, on every architecture.
    for architecture in ALL_ARCHITECTURES:
        best = rank_policies(TILE_ACCESSES, architecture)[0]
        assert best.policy.loop_order == DRMAP.loop_order \
            or best.edp_score >= rank_policies(
                TILE_ACCESSES, architecture)[0].edp_score
        assert narrowing_is_sound(TILE_ACCESSES, architecture)

    benchmark(rank_policies, TILE_ACCESSES, DRAMArchitecture.DDR3)
