"""Ablation — batch size and data precision sensitivity.

Two knobs the paper fixes (batch 1, int8) but a deployment would turn:

* **Batch size** scales activation traffic linearly while weights
  amortize per image under weight-stationary schedules, so EDP grows
  roughly quadratically and DRMap's advantage is batch-invariant.
* **Precision** (int8 / fp16 / fp32) scales every data volume, moving
  layers deeper into memory-bound territory.
"""

from repro.cnn.models import alexnet
from repro.core.report import format_table
from repro.core.sweep import (
    sweep_batch,
    sweep_precision,
    sweep_table,
)


def conv2_factory_batch(batch):
    return alexnet(batch=batch)[1]


def conv2_factory_precision(bytes_per_element):
    return alexnet(bytes_per_element=bytes_per_element)[1]


def test_batch_sweep(benchmark):
    points = sweep_batch(conv2_factory_batch, batches=(1, 2, 4, 8))
    print()
    print(format_table(
        ["batch", "DRMap EDP [J*s]", "Mapping-2 EDP [J*s]",
         "DRMap advantage"],
        sweep_table(points),
        title="Ablation -- batch-size sweep (CONV2, DDR3, adaptive)"))

    # EDP grows superlinearly with batch (energy x latency).
    edps = [p.drmap_edp_js for p in points]
    assert edps[1] > 3.0 * edps[0]
    assert edps[3] > 3.0 * edps[2]
    # DRMap's relative advantage is batch-invariant (within 20%).
    advantages = [p.drmap_advantage for p in points]
    assert max(advantages) <= min(advantages) * 1.2

    benchmark(sweep_batch, conv2_factory_batch, (1, 2))


def test_precision_sweep(benchmark):
    points = sweep_precision(
        conv2_factory_precision, bytes_per_element=(1, 2, 4))
    print()
    print(format_table(
        ["bytes/element", "DRMap EDP [J*s]", "Mapping-2 EDP [J*s]",
         "DRMap advantage"],
        sweep_table(points),
        title="Ablation -- precision sweep (CONV2, DDR3, adaptive)"))

    # Wider data always costs more EDP.
    edps = [p.drmap_edp_js for p in points]
    assert edps[0] < edps[1] < edps[2]
    # DRMap never loses at any precision.
    assert all(p.drmap_advantage >= 1.0 for p in points)

    benchmark(sweep_precision, conv2_factory_precision, (1,))
