"""Ablation — EDP vs subarrays-per-bank (SALP-MASA).

The Table-II configuration fixes 8 subarrays per bank.  This sweep
varies the count and shows (a) DRMap is insensitive to it (its data
rarely crosses subarrays), and (b) subarray-hostile mappings degrade
as subarray boundaries multiply — until MASA's parallelism absorbs
the cost.
"""

from repro.cnn.models import alexnet
from repro.core.figures import bar_chart
from repro.core.report import format_table
from repro.core.sweep import sweep_subarrays, sweep_table

COUNTS = (1, 2, 4, 8, 16)


def test_subarray_sweep(benchmark):
    conv3 = alexnet()[2]
    points = sweep_subarrays(conv3, subarray_counts=COUNTS)

    print()
    print(format_table(
        ["subarrays/bank", "DRMap EDP [J*s]", "Mapping-2 EDP [J*s]",
         "DRMap advantage"],
        sweep_table(points),
        title="Ablation -- subarrays-per-bank sweep "
              "(CONV3, SALP-MASA, adaptive-reuse)"))
    print()
    print(bar_chart(
        {f"SA={p.value}": p.drmap_advantage for p in points},
        unit="x", title="DRMap advantage over Mapping-2"))

    # DRMap's own EDP barely moves with the subarray count.
    drmap_values = [p.drmap_edp_js for p in points]
    assert max(drmap_values) <= min(drmap_values) * 1.25
    # With a single subarray the two mappings coincide.
    assert points[0].drmap_advantage < 1.05
    # With 8 subarrays Mapping-2 pays a real penalty even under MASA.
    by_count = {p.value: p for p in points}
    assert by_count[8].drmap_advantage > points[0].drmap_advantage

    benchmark(sweep_subarrays, conv3, (1, 8))
