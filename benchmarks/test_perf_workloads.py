"""Graph-lowering overhead gate: the IR must be (almost) free.

The workload IR routes every DSE through ``Network.lower()`` instead
of a hand-built ``List[ConvLayer]``.  Lowering is a few hundred
dataclass constructions — microseconds against the seconds the
Algorithm-1 grid costs — so the graph path must stay within 5% of the
direct layer-list path on the full AlexNet network DSE, at identical
output.  Run via ``make bench-workloads``.
"""

from __future__ import annotations

import gc
import time

from repro.core.engine import ExplorationEngine
from repro.core.report import format_table
from repro.dram.architecture import ALL_ARCHITECTURES
from repro.dram.characterize import characterize_preset
from repro.workloads import zoo


def _interleaved_best_of(runs: int, func_a, func_b):
    """Best-of timings with A/B runs interleaved.

    Alternating the contenders decorrelates the comparison from slow
    machine-load drift, which a sequential best-of cannot; the
    collector is paused so a gen-2 pass over a full-suite heap cannot
    land inside a measured region.
    """
    best_a = best_b = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(runs):
            start = time.perf_counter()
            func_a()
            best_a = min(best_a, time.perf_counter() - start)
            start = time.perf_counter()
            func_b()
            best_b = min(best_b, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best_a, best_b


def test_lowering_is_microseconds(benchmark):
    network = zoo.alexnet()
    layers = benchmark(network.lower)
    assert len(layers) == 8


def test_graph_path_within_5_percent_of_layer_list(alexnet_layers):
    # Warm the characterization cache so both contenders measure pure
    # exploration.
    for architecture in ALL_ARCHITECTURES:
        characterize_preset(architecture)
    network = zoo.alexnet()

    # Pinned to the scalar evaluation backend: the gate bounds the
    # *lowering* overhead as a fraction of the sweep, and the vector
    # kernel (gated in test_perf_eval.py) shrinks the denominator ~8x
    # — a microsecond-level fixed cost would then flake a 5% bound.
    list_engine = ExplorationEngine(jobs=1, eval_model="scalar")
    graph_engine = ExplorationEngine(jobs=1, eval_model="scalar")
    # One warm-up pass each fills the evaluation memos, mirroring how
    # the engines run in steady state; identical output is asserted on
    # the warm-up results.
    direct_result = list_engine.explore_network(alexnet_layers)
    graph_result = graph_engine.explore_network(network)
    assert graph_result.points == direct_result.points

    direct_seconds, graph_seconds = _interleaved_best_of(
        7, lambda: list_engine.explore_network(alexnet_layers),
        lambda: graph_engine.explore_network(network))

    print()
    print(format_table(
        ["path", "best of 7 [s]", "points"],
        [
            ["direct layer list", f"{direct_seconds:.3f}",
             str(len(direct_result.points))],
            ["graph lowering", f"{graph_seconds:.3f}",
             str(len(graph_result.points))],
        ],
        title="AlexNet full-network DSE: layer list vs graph IR"))
    overhead = graph_seconds / direct_seconds - 1.0
    print(f"graph-lowering overhead: {overhead * 100:+.2f}%")

    assert graph_seconds < direct_seconds * 1.05, (
        f"graph path {graph_seconds:.3f}s exceeds 105% of the direct "
        f"path {direct_seconds:.3f}s")


def test_network_analysis_is_cheap(benchmark):
    """Hand-off residency analysis must not add measurable cost."""
    from repro.workloads import handoff_summary

    network = zoo.resnet18()
    summary = benchmark(handoff_summary, network)
    assert len(summary.skip_edges) == 8
