"""Ablation — DRAM traffic per scheduling scheme (adaptive-reuse gain).

Regenerates the SmartShuttle-style motivation behind the paper's
adaptive-reuse scheme: no single reuse priority wins every AlexNet
layer, and switching per layer minimizes total DRAM traffic.
"""

from repro.cnn.models import alexnet
from repro.cnn.scheduling import CONCRETE_SCHEMES
from repro.cnn.tiling import enumerate_tilings
from repro.cnn.traffic import best_concrete_scheme, layer_traffic
from repro.core.report import format_table
from repro.units import format_bytes


def traffic_table(layers):
    rows = []
    totals = {scheme: 0 for scheme in CONCRETE_SCHEMES}
    adaptive_total = 0
    choices = {}
    for layer in layers:
        tiling = enumerate_tilings(layer)[0]
        per_scheme = {
            scheme: layer_traffic(layer, tiling, scheme).total_bytes
            for scheme in CONCRETE_SCHEMES
        }
        best, best_traffic = best_concrete_scheme(layer, tiling)
        choices[layer.name] = best
        for scheme, volume in per_scheme.items():
            totals[scheme] += volume
        adaptive_total += best_traffic.total_bytes
        rows.append(
            [layer.name]
            + [format_bytes(per_scheme[s]) for s in CONCRETE_SCHEMES]
            + [best.value])
    return rows, totals, adaptive_total, choices


def test_schedule_traffic(benchmark):
    layers = alexnet()
    rows, totals, adaptive_total, choices = traffic_table(layers)
    rows.append(
        ["TOTAL"]
        + [format_bytes(totals[s]) for s in CONCRETE_SCHEMES]
        + [format_bytes(adaptive_total)])
    print()
    print(format_table(
        ["layer"] + [s.value for s in CONCRETE_SCHEMES] + ["adaptive"],
        rows, title="Ablation -- DRAM traffic per scheduling scheme"))

    # Adaptive matches the best concrete scheme per layer, so its total
    # is at most the best single-scheme total.
    assert adaptive_total <= min(totals.values())
    # The adaptive choice is not constant across AlexNet (the paper's
    # reason for considering it at all).
    assert len(set(choices.values())) >= 2

    benchmark(traffic_table, layers)
