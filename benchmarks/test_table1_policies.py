"""Table I — the six DRAM mapping policies of the DSE.

Prints the table and times the per-tile transition-count computation
(the inner kernel of the analytical EDP model).
"""

from repro.core.report import format_table
from repro.dram.presets import DDR3_1600_2GB_X8 as ORG
from repro.mapping.catalog import DRMAP, TABLE1_MAPPINGS
from repro.mapping.counts import count_transitions
from repro.mapping.dims import Dim


def test_table1(benchmark):
    rows = []
    for index, policy in enumerate(TABLE1_MAPPINGS, start=1):
        order = ", ".join(dim.value for dim in policy.loop_order)
        marker = "  <- DRMap" if policy is DRMAP else ""
        rows.append([str(index), order + marker])
    print()
    print(format_table(
        ["Mapping", "Inner-most- to outer-most-loops"], rows,
        title="Table I -- DRAM mapping policies for the DSE"))

    # Structural claims of the paper's step-2 narrowing.
    for policy in TABLE1_MAPPINGS:
        assert policy.loop_order[-1] is Dim.ROW

    benchmark(count_transitions, DRMAP, ORG, 8192)


def test_table1_transition_profiles():
    """Print each policy's Eq.-2 transition profile for a 64 KB tile."""
    rows = []
    for index, policy in enumerate(TABLE1_MAPPINGS, start=1):
        counts = count_transitions(policy, ORG, 8192)
        rows.append([
            f"Mapping-{index}",
            counts.dif_columns, counts.dif_banks,
            counts.dif_subarrays, counts.dif_rows, counts.initial,
        ])
    print()
    print(format_table(
        ["policy", "dif_column", "dif_banks", "dif_subarrays",
         "dif_rows", "initial"],
        rows, title="Eq. 2/3 access counts per 64 KB tile"))
    drmap_counts = count_transitions(DRMAP, ORG, 8192)
    assert drmap_counts.dif_columns == max(
        count_transitions(p, ORG, 8192).dif_columns
        for p in TABLE1_MAPPINGS)
