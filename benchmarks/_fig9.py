"""Shared machinery for the four Fig.-9 benchmarks.

Fig. 9 plots, for one scheduling scheme, the per-layer EDP of AlexNet
under each of the six Table-I mappings on each of the four DRAM
architectures (log scale), plus a 'Total' group.  Each benchmark file
regenerates one subfigure (a: ifms-reuse, b: wghs-reuse, c: ofms-reuse,
d: adaptive-reuse).
"""

from __future__ import annotations

from typing import Dict, List

from repro.cnn.scheduling import ReuseScheme
from repro.core.dse import min_edp_series
from repro.core.report import format_table
from repro.dram.architecture import ALL_ARCHITECTURES
from repro.mapping.catalog import DRMAP, TABLE1_MAPPINGS

from .conftest import ALEXNET_LAYER_NAMES


def fig9_series(alexnet_dse, scheme: ReuseScheme
                ) -> Dict[tuple, List[float]]:
    """(architecture, policy) -> per-layer EDP series plus total."""
    series = {}
    for architecture in ALL_ARCHITECTURES:
        for policy in TABLE1_MAPPINGS:
            values = []
            for layer_name in ALEXNET_LAYER_NAMES:
                point = alexnet_dse[layer_name].best(
                    architecture=architecture, scheme=scheme,
                    policy=policy)
                values.append(point.edp_js)
            values.append(sum(values))
            series[(architecture, policy)] = values
    return series


def print_fig9(series, scheme: ReuseScheme, subfigure: str) -> None:
    """Print one Fig.-9 subfigure as a table (layers + Total columns)."""
    rows = []
    for (architecture, policy), values in sorted(
            series.items(),
            key=lambda item: (item[0][1].name, item[0][0].value)):
        rows.append(
            [policy.name, architecture.value]
            + [f"{v:.3e}" for v in values])
    print()
    print(format_table(
        ["mapping", "architecture"] + ALEXNET_LAYER_NAMES + ["Total"],
        rows,
        title=f"Fig. 9({subfigure}) -- EDP [J*s], {scheme.value} "
              "scheduling"))


def assert_fig9_shape(series) -> None:
    """The subfigure's qualitative claims (Key Observations 1-3)."""
    from repro.dram.architecture import DRAMArchitecture

    for architecture in ALL_ARCHITECTURES:
        totals = {policy: series[(architecture, policy)][-1]
                  for policy in TABLE1_MAPPINGS}
        # Key Observation 1: DRMap (Mapping-3) has the lowest total EDP.
        assert totals[DRMAP] == min(totals.values()), architecture
        ranked = sorted(totals, key=totals.get)
        if architecture is not DRAMArchitecture.SALP_MASA:
            # Key Observation 2: Mappings 2 and 5 are the two worst.
            assert {p.name for p in ranked[-2:]} \
                == {"Mapping-2", "Mapping-5"}, architecture
        else:
            # On MASA subarray switches cost about as much as bank
            # switches, so the four non-column-inner mappings collapse
            # into one cluster; Mappings 2 and 5 sit in that worst
            # cluster but their exact rank within it is below model
            # resolution (documented deviation, see EXPERIMENTS.md).
            worst_cluster = {p.name for p in ranked[-4:]}
            assert {"Mapping-2", "Mapping-5"} <= worst_cluster
            worst = totals[ranked[-1]]
            for name in ("Mapping-2", "Mapping-5"):
                policy = next(p for p in TABLE1_MAPPINGS
                              if p.name == name)
                assert totals[policy] >= worst * 0.75
        # Key Observation 3: Mapping-1 is comparable to DRMap.
        mapping1 = next(p for p in TABLE1_MAPPINGS
                        if p.name == "Mapping-1")
        assert totals[mapping1] <= totals[DRMAP] * 1.5, architecture
