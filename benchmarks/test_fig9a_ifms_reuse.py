"""Fig. 9(a) — AlexNet EDP per layer, ifms-reuse scheduling.

Six mappings x four DRAM architectures, per layer and total, with the
best buffer-admissible tiling per point (Algorithm 1).
"""

from repro.cnn.models import alexnet
from repro.cnn.scheduling import ReuseScheme
from repro.cnn.tiling import enumerate_tilings
from repro.core.edp import layer_edp
from repro.dram.architecture import DRAMArchitecture
from repro.mapping.catalog import DRMAP

from ._fig9 import assert_fig9_shape, fig9_series, print_fig9

SCHEME = ReuseScheme.IFMS_REUSE


def test_fig9a(alexnet_dse, benchmark):
    series = fig9_series(alexnet_dse, SCHEME)
    print_fig9(series, SCHEME, "a")
    assert_fig9_shape(series)

    # Time the kernel: one analytical layer-EDP evaluation.
    conv2 = alexnet()[1]
    tiling = enumerate_tilings(conv2)[0]
    benchmark(layer_edp, conv2, tiling, SCHEME, DRMAP,
              DRAMArchitecture.DDR3)
