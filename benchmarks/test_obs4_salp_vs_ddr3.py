"""Key Observation 4 — EDP improvement of SALP over DDR3 per mapping.

Paper Section V-B (adaptive-reuse scheduling, whole network): SALP
gains are small for the hit-friendly mappings (1, 3, 4: ~0.5-4%) and
dramatic for the subarray-heavy mappings (2, 5: up to ~81% on MASA).
"""

from repro.cnn.scheduling import ReuseScheme
from repro.core.report import format_table, improvement_percent
from repro.dram.architecture import (
    DRAMArchitecture,
    SALP_ARCHITECTURES,
)
from repro.mapping.catalog import DRMAP, TABLE1_MAPPINGS

from .conftest import ALEXNET_LAYER_NAMES

#: The paper's published improvements (%), per mapping and SALP level.
PAPER_OBS4 = {
    "Mapping-1": (0.59, 3.89, 1.05),
    "Mapping-2": (29.18, 19.91, 81.04),
    "Mapping-3 (DRMap)": (0.60, 3.87, 1.01),
    "Mapping-4": (0.71, 0.54, 1.41),
    "Mapping-5": (29.67, 19.79, 81.76),
    "Mapping-6": (3.15, 3.39, 7.62),
}


def network_total(alexnet_dse, architecture, policy):
    return sum(
        alexnet_dse[name].best(
            architecture=architecture,
            scheme=ReuseScheme.ADAPTIVE_REUSE,
            policy=policy).edp_js
        for name in ALEXNET_LAYER_NAMES)


def test_obs4(alexnet_dse, benchmark):
    rows = []
    measured = {}
    for policy in TABLE1_MAPPINGS:
        ddr3 = network_total(alexnet_dse, DRAMArchitecture.DDR3, policy)
        gains = []
        for salp in SALP_ARCHITECTURES:
            total = network_total(alexnet_dse, salp, policy)
            gains.append(improvement_percent(ddr3, total))
        measured[policy.name] = gains
        paper = PAPER_OBS4[policy.name]
        rows.append([
            policy.name,
            f"{gains[0]:.2f}% (paper {paper[0]}%)",
            f"{gains[1]:.2f}% (paper {paper[1]}%)",
            f"{gains[2]:.2f}% (paper {paper[2]}%)",
        ])
    print()
    print(format_table(
        ["mapping", "SALP-1 vs DDR3", "SALP-2 vs DDR3",
         "SALP-MASA vs DDR3"],
        rows,
        title="Key Observation 4 -- SALP EDP improvement "
              "(adaptive-reuse, whole AlexNet)"))

    # Shape assertions: SALP never hurts; subarray-heavy mappings gain
    # by far the most from MASA; DRMap's gains stay small.
    for policy_name, gains in measured.items():
        assert all(g >= -0.5 for g in gains), policy_name
    assert measured["Mapping-2"][2] > 50.0
    assert measured["Mapping-5"][2] > 50.0
    assert measured["Mapping-3 (DRMap)"][2] < 15.0
    assert measured["Mapping-1"][2] < 15.0
    # Mapping-2/5 gain much more from MASA than from SALP-1/2.
    assert measured["Mapping-2"][2] > measured["Mapping-2"][0]

    benchmark(network_total, alexnet_dse, DRAMArchitecture.SALP_MASA,
              DRMAP)
