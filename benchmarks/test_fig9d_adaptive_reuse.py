"""Fig. 9(d) — AlexNet EDP per layer, adaptive-reuse scheduling.

Adaptive-reuse picks, per layer, whichever concrete scheme moves the
fewest DRAM bytes (the SmartShuttle idea the paper adopts).
"""

from repro.cnn.models import alexnet
from repro.cnn.scheduling import ReuseScheme
from repro.cnn.tiling import enumerate_tilings
from repro.core.adaptive import resolve_adaptive
from repro.core.edp import layer_edp
from repro.dram.architecture import DRAMArchitecture
from repro.mapping.catalog import DRMAP

from ._fig9 import assert_fig9_shape, fig9_series, print_fig9

SCHEME = ReuseScheme.ADAPTIVE_REUSE


def test_fig9d(alexnet_dse, benchmark):
    series = fig9_series(alexnet_dse, SCHEME)
    print_fig9(series, SCHEME, "d")
    assert_fig9_shape(series)

    # Adaptive-reuse must never lose to the concrete schemes it picks
    # from, for the DRMap policy on any architecture.
    for architecture in (DRAMArchitecture.DDR3,
                         DRAMArchitecture.SALP_MASA):
        adaptive_total = series[(architecture, DRMAP)][-1]
        for concrete in (ReuseScheme.IFMS_REUSE, ReuseScheme.WGHS_REUSE,
                         ReuseScheme.OFMS_REUSE):
            concrete_total = fig9_series(
                alexnet_dse, concrete)[(architecture, DRMAP)][-1]
            assert adaptive_total <= concrete_total * 1.001

    conv1 = alexnet()[0]
    tiling = enumerate_tilings(conv1)[0]
    benchmark(resolve_adaptive, conv1, tiling, SCHEME)
