"""Speed gates for the vectorized batch characterization kernel.

Two gates, both measured after asserting exact result equality (a fast
path that returns different numbers is a bug, not a speedup):

* a full default-device characterization (all four architectures) on
  the kernel must be at least **10x** faster than the object
  simulator;
* one :func:`repro.dram.kernel.characterize_batch` pass over the whole
  device registry must be at least **2x** faster than the equivalent
  per-triple ``characterize(model="kernel")`` calls — the batch shares
  stream synthesis, classification and the architecture-invariant
  micro-experiment walks across the grid slice.

Run via ``make bench-kernel``.
"""

from __future__ import annotations

import gc
import time

from repro.core.report import format_table
from repro.dram.characterize import characterize
from repro.dram.device import DEVICE_REGISTRY, get_device
from repro.dram.kernel import characterize_batch


def _interleaved_best_of(runs: int, func_a, func_b):
    """Best-of timings with A/B runs interleaved.

    Alternating the contenders decorrelates the comparison from slow
    machine-load drift; the collector is paused so a gen-2 collection
    landing inside a measured region cannot skew the ratio.
    """
    best_a = best_b = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(runs):
            start = time.perf_counter()
            func_a()
            best_a = min(best_a, time.perf_counter() - start)
            start = time.perf_counter()
            func_b()
            best_b = min(best_b, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best_a, best_b


def test_kernel_at_least_10x_faster_than_simulator():
    """Full DDR3 device characterization, every architecture."""
    device = get_device("ddr3-1600-2gb-x8")
    architectures = device.supported_architectures

    def simulator_path():
        return [
            characterize(a, device=device, model="simulator")
            for a in architectures
        ]

    def kernel_path():
        return [
            characterize(a, device=device, model="kernel")
            for a in architectures
        ]

    # Identical numbers first, then the stopwatch.
    for fast, slow in zip(kernel_path(), simulator_path()):
        assert fast == slow

    simulator_seconds, kernel_seconds = _interleaved_best_of(
        3, simulator_path, kernel_path)

    speedup = simulator_seconds / kernel_seconds
    print()
    print(format_table(
        ["backend", "best of 3 [s]"],
        [["object simulator", f"{simulator_seconds:.4f}"],
         ["batch kernel", f"{kernel_seconds:.4f}"]],
        title="Full ddr3-1600-2gb-x8 characterization "
              "(4 architectures)"))
    print(f"kernel speedup: {speedup:.1f}x")
    assert kernel_seconds * 10 < simulator_seconds, (
        f"kernel {kernel_seconds:.4f}s is only "
        f"{speedup:.1f}x faster than the simulator "
        f"{simulator_seconds:.4f}s (gate: 10x)")


def test_batch_at_least_2x_faster_than_per_triple_kernel():
    """Whole-registry batch vs one kernel call per (device, arch)."""
    items = [
        (device, architecture)
        for device in DEVICE_REGISTRY
        for architecture in device.supported_architectures
    ]

    def batch_path():
        return characterize_batch(items)

    def per_triple_path():
        return [
            characterize(architecture, device=device, model="kernel")
            for device, architecture in items
        ]

    # Identical numbers first, then the stopwatch.
    batch = batch_path()
    for result, expected in zip(batch.values(), per_triple_path()):
        assert result == expected

    per_triple_seconds, batch_seconds = _interleaved_best_of(
        5, per_triple_path, batch_path)

    speedup = per_triple_seconds / batch_seconds
    print()
    print(format_table(
        ["path", "best of 5 [s]", "triples"],
        [["per-triple kernel calls", f"{per_triple_seconds:.4f}",
          str(len(items))],
         ["one characterize_batch", f"{batch_seconds:.4f}",
          str(len(items))]],
        title="Device-registry characterization "
              "(every device x architecture)"))
    print(f"batch speedup: {speedup:.2f}x")
    assert batch_seconds * 2 < per_triple_seconds, (
        f"batch {batch_seconds:.4f}s is only {speedup:.2f}x faster "
        f"than per-triple kernel calls {per_triple_seconds:.4f}s "
        f"(gate: 2x)")
