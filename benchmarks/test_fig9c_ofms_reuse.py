"""Fig. 9(c) — AlexNet EDP per layer, ofms-reuse scheduling."""

from repro.cnn.models import alexnet
from repro.cnn.scheduling import ReuseScheme
from repro.cnn.tiling import enumerate_tilings
from repro.core.edp import layer_edp
from repro.dram.architecture import DRAMArchitecture
from repro.mapping.catalog import DRMAP

from ._fig9 import assert_fig9_shape, fig9_series, print_fig9

SCHEME = ReuseScheme.OFMS_REUSE


def test_fig9c(alexnet_dse, benchmark):
    series = fig9_series(alexnet_dse, SCHEME)
    print_fig9(series, SCHEME, "c")
    assert_fig9_shape(series)

    conv5 = alexnet()[4]
    tiling = enumerate_tilings(conv5)[0]
    benchmark(layer_edp, conv5, tiling, SCHEME, DRMAP,
              DRAMArchitecture.SALP_2)
