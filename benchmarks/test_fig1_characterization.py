"""Fig. 1 — DRAM latency- and energy-per-access per condition.

Regenerates the paper's motivational figure: cycles and energy for a
row-buffer hit / miss / conflict, subarray-level parallelism and
bank-level parallelism on DDR3, SALP-1, SALP-2 and SALP-MASA
(DDR3-1600 2 Gb x8, 8 subarrays per bank).
"""

from repro.core.report import format_table
from repro.dram.architecture import ALL_ARCHITECTURES, DRAMArchitecture
from repro.dram.characterize import (
    ALL_CONDITIONS,
    AccessCondition,
    characterize,
)


def test_fig1_table(characterizations, benchmark):
    """Print the Fig.-1 data and time one full characterization run."""
    rows = []
    for condition in ALL_CONDITIONS:
        for arch in ALL_ARCHITECTURES:
            cost = characterizations[arch].cost(condition)
            rows.append([
                condition.value, arch.value,
                f"{cost.cycles:.1f}",
                f"{cost.read_energy_nj:.2f}",
                f"{cost.write_energy_nj:.2f}",
            ])
    print()
    print(format_table(
        ["condition", "architecture", "cycles", "read nJ", "write nJ"],
        rows, title="Fig. 1 -- per-access latency and energy"))

    benchmark(characterize, DRAMArchitecture.DDR3)


def test_fig1_shape_assertions(characterizations):
    """The figure's qualitative content (paper Section I-B)."""
    ddr3 = characterizations[DRAMArchitecture.DDR3]
    masa = characterizations[DRAMArchitecture.SALP_MASA]
    # Hit < miss < conflict on every architecture.
    for arch in ALL_ARCHITECTURES:
        costs = characterizations[arch]
        assert costs.cost(AccessCondition.ROW_HIT).cycles \
            < costs.cost(AccessCondition.ROW_MISS).cycles \
            < costs.cost(AccessCondition.ROW_CONFLICT).cycles
    # SALP reduces the subarray-parallelism cost; MASA the most.
    sa = [characterizations[a].cost(
        AccessCondition.SUBARRAY_PARALLEL).cycles
        for a in ALL_ARCHITECTURES]
    assert sa[0] > sa[1] >= sa[2] > sa[3]
    # DDR3 treats subarray switches as plain conflicts.
    assert ddr3.cost(AccessCondition.SUBARRAY_PARALLEL).cycles \
        == ddr3.cost(AccessCondition.ROW_CONFLICT).cycles
    # Under MASA a subarray switch costs about as little as a bank
    # switch.
    assert masa.cost(AccessCondition.SUBARRAY_PARALLEL).cycles \
        <= masa.cost(AccessCondition.BANK_PARALLEL).cycles * 1.5
