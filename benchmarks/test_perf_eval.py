"""Speed gates for the vectorized DSE point-evaluation kernel.

Two gates, both measured after asserting exact result equality (a fast
path that returns different bits is a bug, not a speedup):

* evaluating the **full AlexNet/DDR3 exhaustive grid** (every layer,
  all four architectures, schemes, Table-I mappings and admissible
  tilings) through :class:`repro.core.eval_kernel.ChunkEvaluator` must
  be at least **5x** faster than the scalar per-point chunk loop it
  replaces;
* the **funnel strategy end to end** (batched analytical pruning +
  exact re-evaluation of the survivors) must not regress: the vector
  backend's wall clock stays within 10% of the scalar backend's, and
  both produce identical points.

Run via ``make bench-eval``.
"""

from __future__ import annotations

import gc
import time
from functools import partial

from repro.core.engine import (
    EvaluationCache,
    ExplorationEngine,
    _build_context,
    _evaluate_range,
)
from repro.core.eval_kernel import ChunkEvaluator
from repro.core.report import format_table
from repro.cnn.scheduling import ALL_SCHEMES
from repro.cnn.tiling import TABLE2_BUFFERS
from repro.dram.characterize import DEFAULT_CHARACTERIZATION_CACHE
from repro.mapping.catalog import TABLE1_MAPPINGS


def _interleaved_best_of(runs: int, func_a, func_b):
    """Best-of timings with A/B runs interleaved.

    Alternating the contenders decorrelates the comparison from slow
    machine-load drift; the collector is paused so a gen-2 collection
    landing inside a measured region cannot skew the ratio.
    """
    best_a = best_b = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(runs):
            start = time.perf_counter()
            func_a()
            best_a = min(best_a, time.perf_counter() - start)
            start = time.perf_counter()
            func_b()
            best_b = min(best_b, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best_a, best_b


def test_vector_kernel_at_least_5x_faster_than_scalar_loop(
        alexnet_layers):
    """Full AlexNet/DDR3 exhaustive grid, chunked as the engine does."""
    context = _build_context(
        alexnet_layers, None, ALL_SCHEMES, TABLE1_MAPPINGS,
        TABLE2_BUFFERS, None, None, DEFAULT_CHARACTERIZATION_CACHE)
    cache = EvaluationCache()
    scalar_chunk = partial(_evaluate_range, context, cache)
    vector_chunk = ChunkEvaluator(context, cache, scalar_chunk)
    total = context.total_points
    chunk_size = 256

    def sweep(chunk_fn):
        points = []
        for start in range(0, total, chunk_size):
            points.extend(chunk_fn(start, min(start + chunk_size, total)))
        return points

    # Identical bits first, then the stopwatch.
    scalar_points = sweep(scalar_chunk)
    vector_points = sweep(vector_chunk)
    assert vector_points == scalar_points
    assert [p.edp_js.hex() for p in vector_points] \
        == [p.edp_js.hex() for p in scalar_points]

    scalar_seconds, vector_seconds = _interleaved_best_of(
        5, lambda: sweep(scalar_chunk), lambda: sweep(vector_chunk))

    speedup = scalar_seconds / vector_seconds
    print()
    print(format_table(
        ["backend", "best of 5 [s]", "us/point"],
        [["scalar per-point loop", f"{scalar_seconds:.4f}",
          f"{scalar_seconds / total * 1e6:.1f}"],
         ["vector chunk kernel", f"{vector_seconds:.4f}",
          f"{vector_seconds / total * 1e6:.1f}"]],
        title=f"Full AlexNet/DDR3 exhaustive DSE "
              f"({total} grid points, chunk={chunk_size})"))
    print(f"vector speedup: {speedup:.1f}x")
    assert vector_seconds * 5 < scalar_seconds, (
        f"vector kernel {vector_seconds:.4f}s is only "
        f"{speedup:.1f}x faster than the scalar loop "
        f"{scalar_seconds:.4f}s (gate: 5x)")


def test_funnel_wall_clock_does_not_regress(alexnet_layers):
    """Funnel end to end: vector backend within 10% of scalar."""
    scalar_engine = ExplorationEngine(jobs=1, strategy="funnel",
                                      eval_model="scalar")
    vector_engine = ExplorationEngine(jobs=1, strategy="funnel",
                                      eval_model="vector")

    def scalar_path():
        return scalar_engine.explore_network(alexnet_layers)

    def vector_path():
        return vector_engine.explore_network(alexnet_layers)

    # Identical survivors first, then the stopwatch.
    scalar_result = scalar_path()
    vector_result = vector_path()
    assert vector_result.points == scalar_result.points
    assert vector_result.best() == scalar_result.best()

    scalar_seconds, vector_seconds = _interleaved_best_of(
        5, scalar_path, vector_path)

    ratio = vector_seconds / scalar_seconds
    print()
    print(format_table(
        ["backend", "best of 5 [s]"],
        [["funnel, scalar backend", f"{scalar_seconds:.4f}"],
         ["funnel, vector backend", f"{vector_seconds:.4f}"]],
        title="Funnel strategy end to end (full AlexNet)"))
    print(f"vector/scalar wall-clock ratio: {ratio:.2f}")
    assert vector_seconds <= scalar_seconds * 1.1, (
        f"funnel with the vector backend took {vector_seconds:.4f}s, "
        f"a {ratio:.2f}x regression over scalar "
        f"{scalar_seconds:.4f}s (gate: 1.1x)")
