"""Throughput benchmarks of the cycle-level DRAM simulator itself.

Not a paper artifact: these benches track the performance of the
reproduction's substrate (requests/second through the controller and
trace-generation speed), so regressions in the simulator show up in CI.
"""

from repro.cnn.layer import ConvLayer
from repro.cnn.scheduling import ReuseScheme
from repro.cnn.tiling import TilingConfig
from repro.cnn.trace import generate_layer_trace
from repro.dram.architecture import DRAMArchitecture
from repro.dram.presets import DDR3_1600_2GB_X8 as ORG
from repro.dram.simulator import DRAMSimulator
from repro.mapping.catalog import DRMAP


def test_controller_throughput_hits(benchmark):
    simulator = DRAMSimulator.from_preset(DRAMArchitecture.DDR3)
    stream = simulator.sequential_reads(0, 0, 0, count=2000)
    result = benchmark(simulator.run, stream)
    assert result.trace.row_hits == 1999


def test_controller_throughput_conflicts(benchmark):
    simulator = DRAMSimulator.from_preset(DRAMArchitecture.SALP_MASA)
    stream = simulator.round_robin_subarray_reads(bank=0, count=2000)
    result = benchmark(simulator.run, stream)
    assert result.total_cycles > 0


def test_trace_generation_throughput(benchmark):
    layer = ConvLayer.conv("B", (16, 16, 16), 16, kernel=3, padding=1)
    tiling = TilingConfig(th=8, tw=8, tj=8, ti=8)
    trace = benchmark(
        generate_layer_trace, layer, tiling, ReuseScheme.OFMS_REUSE,
        DRMAP, ORG)
    assert trace
