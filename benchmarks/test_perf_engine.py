"""Engine vs seed-style serial DSE on the full AlexNet network.

The seed implementation walked the Algorithm-1 grid with a bare nested
loop, recomputing the DRAM traffic, the adaptive-scheme resolution and
the closed-form transition counts for every one of the ~5000 design
points.  The exploration engine memoizes those policy-independent
intermediates (each traffic entry is reused 24x: 6 policies x 4
architectures) and serves characterizations from an LRU cache, which
must make the full-network DSE measurably faster at identical output.
"""

from __future__ import annotations

import time

from repro.core.dse import DsePoint, DseResult
from repro.core.edp import layer_edp
from repro.core.engine import ExplorationEngine
from repro.core.report import format_table, improvement_percent
from repro.cnn.scheduling import ALL_SCHEMES
from repro.cnn.tiling import TABLE2_BUFFERS, enumerate_tilings
from repro.dram.architecture import ALL_ARCHITECTURES
from repro.dram.characterize import characterize_preset
from repro.mapping.catalog import TABLE1_MAPPINGS


def _seed_explore_network(layers) -> DseResult:
    """The seed's serial Algorithm-1 loop, without evaluation caching."""
    result = DseResult()
    for layer in layers:
        tilings = enumerate_tilings(layer, TABLE2_BUFFERS)
        for architecture in ALL_ARCHITECTURES:
            characterization = characterize_preset(architecture)
            for scheme in ALL_SCHEMES:
                for policy in TABLE1_MAPPINGS:
                    for tiling in tilings:
                        if not tiling.fits(layer, TABLE2_BUFFERS):
                            continue
                        result.points.append(DsePoint(
                            layer_name=layer.name,
                            architecture=architecture,
                            scheme=scheme,
                            policy=policy,
                            tiling=tiling,
                            result=layer_edp(
                                layer, tiling, scheme, policy,
                                architecture,
                                characterization=characterization),
                        ))
    return result


def test_engine_beats_seed_serial_dse(alexnet_layers, benchmark):
    # Warm the characterization cache so both contenders measure pure
    # exploration, not the one-off Fig.-1 micro-experiments.
    for architecture in ALL_ARCHITECTURES:
        characterize_preset(architecture)

    start = time.perf_counter()
    seed_result = _seed_explore_network(alexnet_layers)
    seed_seconds = time.perf_counter() - start

    engine = ExplorationEngine(jobs=1)
    start = time.perf_counter()
    engine_result = engine.explore_network(alexnet_layers)
    engine_seconds = time.perf_counter() - start

    # Identical output...
    assert engine_result.points == seed_result.points
    # ...measurably faster.  The cached path is ~3x faster here; the
    # loose bound keeps the assertion robust on noisy CI machines.
    assert engine_seconds < seed_seconds * 0.8, (
        f"engine {engine_seconds:.3f}s not faster than "
        f"seed {seed_seconds:.3f}s")

    print()
    print(format_table(
        ["path", "seconds", "points"],
        [
            ["seed serial loop", f"{seed_seconds:.3f}",
             str(len(seed_result.points))],
            ["engine jobs=1 (cached)", f"{engine_seconds:.3f}",
             str(len(engine_result.points))],
        ],
        title="AlexNet full-network DSE wall clock"))
    gain = improvement_percent(seed_seconds, engine_seconds)
    print(f"engine is {gain:.1f}% faster "
          f"({seed_seconds / engine_seconds:.2f}x)")

    # Time the kernel: a warm-cache full-network exploration.
    benchmark.pedantic(
        engine.explore_network, args=(alexnet_layers,),
        rounds=3, iterations=1, warmup_rounds=1)
