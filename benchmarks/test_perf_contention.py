"""Crossbar front-end overhead gate: N=1 dispatch must be (almost) free.

The multi-requestor front end routes every uncontended run through
``Crossbar.run_merged`` — stream splitting, arbiter selection, grant
logging — before the request reaches the controller.  Two gates hold
that plumbing under 5% at N=1 and keep contended runs in the same
ballpark:

* the default-contention crossbar against the bare controller on the
  same 8000-request stream, at identical command traces;
* a contended N=4 round-robin run against the bare controller, bounded
  at 3x — arbitration is per-request bookkeeping, not per-cycle
  simulation, so fan-out may not change the complexity class.

Run via ``make bench-contention``.
"""

from __future__ import annotations

import gc
import time

from repro.core.report import format_table
from repro.dram.contention import contention_config
from repro.dram.controller import MemoryController
from repro.dram.crossbar import Crossbar
from repro.dram.device import get_device
from repro.dram.simulator import DRAMSimulator


def _interleaved_best_of(runs: int, func_a, func_b):
    """Best-of timings with A/B runs interleaved.

    Alternating the contenders decorrelates the comparison from slow
    machine-load drift (e.g. a parallel test process spinning up
    mid-measurement), which a sequential best-of cannot.
    """
    best_a = best_b = float("inf")
    # A full-suite run leaves a large live heap behind, and a gen-2
    # collection landing inside a measured region skews a sub-second
    # A/B comparison; pause the collector for the stopwatch only.
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(runs):
            start = time.perf_counter()
            func_a()
            best_a = min(best_a, time.perf_counter() - start)
            start = time.perf_counter()
            func_b()
            best_b = min(best_b, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best_a, best_b


def _stream():
    device = get_device("ddr3-1600-2gb-x8")
    simulator = DRAMSimulator.from_profile(device)
    return device, (
        simulator.round_robin_subarray_reads(bank=0, count=4000)
        + simulator.sequential_reads(0, 0, 0, count=4000))


def test_n1_crossbar_dispatch_within_5_percent():
    """Default-contention run_merged() vs the bare controller run()."""
    device, stream = _stream()

    def bare_path():
        controller = MemoryController(
            device.organization, device.timings)
        return controller.run(stream)

    def crossbar_path():
        crossbar = Crossbar(MemoryController(
            device.organization, device.timings))
        return crossbar.run_merged(stream)

    # Identical schedules first, then the stopwatch.
    assert crossbar_path().commands == bare_path().commands

    bare_seconds, crossbar_seconds = _interleaved_best_of(
        5, bare_path, crossbar_path)

    print()
    print(format_table(
        ["path", "best of 5 [s]"],
        [["bare controller", f"{bare_seconds:.4f}"],
         ["N=1 crossbar", f"{crossbar_seconds:.4f}"]],
        title="Crossbar front-end overhead (8000-request stream)"))
    overhead = crossbar_seconds / bare_seconds - 1.0
    print(f"N=1 crossbar overhead: {overhead * 100:+.2f}%")
    assert crossbar_seconds < bare_seconds * 1.05, (
        f"N=1 crossbar {crossbar_seconds:.4f}s exceeds 105% of the "
        f"bare controller {bare_seconds:.4f}s")


def test_contended_arbitration_stays_per_request():
    """N=4 round-robin on the same stream: the arbiter adds constant
    work per grant, so the contended run must stay within 3x of the
    bare controller (not within 4x — fan-out is bookkeeping, not
    extra simulation)."""
    device, stream = _stream()
    channel = contention_config(requestors=4)

    def bare_path():
        return MemoryController(
            device.organization, device.timings).run(stream)

    def contended_path():
        return Crossbar(
            MemoryController(device.organization, device.timings),
            channel).run_merged(stream)

    assert len(contended_path().serviced) == len(stream)

    bare_seconds, contended_seconds = _interleaved_best_of(
        5, bare_path, contended_path)

    print()
    print(format_table(
        ["path", "best of 5 [s]"],
        [["bare controller", f"{bare_seconds:.4f}"],
         ["N=4 round-robin", f"{contended_seconds:.4f}"]],
        title="Contended arbitration cost (8000-request stream)"))
    assert contended_seconds < bare_seconds * 3.0, (
        f"N=4 arbitration {contended_seconds:.4f}s exceeds 3x the "
        f"bare controller {bare_seconds:.4f}s")
