"""Ablation — DRMap vs the commodity default mapping.

Section II-B argues the default data mapping (columns, then banks,
subarray-oblivious) is suboptimal because it never exploits
subarray-level parallelism.  This bench quantifies the gap on SALP
hardware and shows the two coincide on commodity DDR3.
"""

from repro.cnn.models import alexnet
from repro.cnn.scheduling import ReuseScheme
from repro.core.dse import explore_layer
from repro.core.report import format_table, improvement_percent
from repro.dram.architecture import ALL_ARCHITECTURES, DRAMArchitecture
from repro.mapping.catalog import DEFAULT_MAPPING, DRMAP


def test_default_vs_drmap(benchmark):
    conv2 = alexnet()[1]
    result = explore_layer(
        conv2,
        schemes=(ReuseScheme.ADAPTIVE_REUSE,),
        policies=(DRMAP, DEFAULT_MAPPING),
    )

    rows = []
    gains = {}
    for architecture in ALL_ARCHITECTURES:
        drmap = result.best(architecture=architecture,
                            policy=DRMAP).edp_js
        default = result.best(architecture=architecture,
                              policy=DEFAULT_MAPPING).edp_js
        gains[architecture] = improvement_percent(default, drmap)
        rows.append([architecture.value, f"{default:.3e}",
                     f"{drmap:.3e}", f"{gains[architecture]:.2f}%"])
    print()
    print(format_table(
        ["architecture", "default EDP", "DRMap EDP", "DRMap gain"],
        rows, title="Ablation -- commodity default mapping vs DRMap "
                    "(CONV2, adaptive-reuse)"))

    # DRMap never loses to the default mapping.
    for architecture, gain in gains.items():
        assert gain >= -0.01, architecture
    # On commodity DDR3 the default's subarray-obliviousness is nearly
    # free (subarray switches are conflicts anyway, and a 64 KB tile
    # fits inside one row x bank sweep).
    assert abs(gains[DRAMArchitecture.DDR3]) < 5.0

    benchmark(
        explore_layer, conv2,
        architectures=(DRAMArchitecture.DDR3,),
        schemes=(ReuseScheme.ADAPTIVE_REUSE,),
        policies=(DRMAP,),
    )
