"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it
computes the artifact once (cached at session scope where expensive),
prints the same rows/series the paper reports, and times a
representative kernel of the computation with pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.cnn.models import alexnet
from repro.core.dse import explore_layer
from repro.dram.architecture import ALL_ARCHITECTURES
from repro.dram.characterize import characterize_preset

#: Fig.-9 x-axis labels.
ALEXNET_LAYER_NAMES = [
    "CONV1", "CONV2", "CONV3", "CONV4", "CONV5", "FC6", "FC7", "FC8",
]


@pytest.fixture(scope="session")
def alexnet_layers():
    """The paper's AlexNet workload."""
    return alexnet()


@pytest.fixture(scope="session")
def characterizations():
    """Fig.-1 characterization of all four architectures."""
    return {arch: characterize_preset(arch) for arch in ALL_ARCHITECTURES}


@pytest.fixture(scope="session")
def alexnet_dse(alexnet_layers, characterizations):
    """Full Algorithm-1 exploration of every AlexNet layer.

    This is the paper's complete experiment: all four architectures,
    all four scheduling schemes, all six Table-I mappings, and every
    buffer-admissible power-of-two tiling.  Computed once per session.
    """
    del characterizations  # ensure Fig.-1 costs are cached first
    from repro.core.engine import ExplorationEngine

    engine = ExplorationEngine(jobs=1)
    return {layer.name: explore_layer(layer, engine=engine)
            for layer in alexnet_layers}
