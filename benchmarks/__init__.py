"""Benchmark harness package.

Making ``benchmarks/`` a package lets its modules use relative imports
(``from ._fig9 import ...``) under pytest's default importmode, which
resolves them as ``benchmarks.test_*`` relative to the repository
root.  Run the suite with::

    PYTHONPATH=src python -m pytest benchmarks/ -q
"""
