"""Key results — DRMap's EDP improvement over other mapping policies.

The paper's abstract/Section V-A: 'DRMap improves the EDP up to 96% in
DDR3, 94% in SALP-1, 91% in SALP-2, and 80% in SALP-MASA, as compared
to other mapping policies' (AlexNet, max over layers, mappings and
scheduling schemes).
"""

from repro.cnn.scheduling import ALL_SCHEMES
from repro.core.report import format_table, improvement_percent
from repro.dram.architecture import ALL_ARCHITECTURES
from repro.mapping.catalog import DRMAP, TABLE1_MAPPINGS

from .conftest import ALEXNET_LAYER_NAMES

#: The paper's published 'up to' improvements per architecture.
PAPER_IMPROVEMENTS = {
    "DDR3": 96.0,
    "SALP-1": 94.0,
    "SALP-2": 91.0,
    "SALP-MASA": 80.0,
}


def max_improvement(alexnet_dse, architecture):
    """Max over layers, schemes and rival mappings of DRMap's gain."""
    best = 0.0
    where = None
    for layer_name in ALEXNET_LAYER_NAMES:
        result = alexnet_dse[layer_name]
        for scheme in ALL_SCHEMES:
            drmap = result.best(architecture=architecture,
                                scheme=scheme, policy=DRMAP).edp_js
            for policy in TABLE1_MAPPINGS:
                if policy is DRMAP:
                    continue
                other = result.best(architecture=architecture,
                                    scheme=scheme, policy=policy).edp_js
                gain = improvement_percent(other, drmap)
                if gain > best:
                    best = gain
                    where = (layer_name, scheme.value, policy.name)
    return best, where


def test_keyresults(alexnet_dse, benchmark):
    rows = []
    measured = {}
    for architecture in ALL_ARCHITECTURES:
        gain, where = max_improvement(alexnet_dse, architecture)
        measured[architecture.value] = gain
        rows.append([
            architecture.value,
            f"{PAPER_IMPROVEMENTS[architecture.value]:.0f}%",
            f"{gain:.1f}%",
            f"{where[0]}/{where[1]}/vs {where[2]}",
        ])
    print()
    print(format_table(
        ["architecture", "paper (up to)", "measured (up to)",
         "measured at"],
        rows, title="Key results -- DRMap EDP improvement"))

    # Shape: large on DDR3, decreasing along the SALP ladder, smallest
    # (but still substantial) on MASA.
    values = [measured[a.value] for a in ALL_ARCHITECTURES]
    assert values[0] > 85.0
    assert values[0] >= values[1] >= values[2] >= values[3]
    assert values[3] > 30.0

    benchmark(max_improvement, alexnet_dse, ALL_ARCHITECTURES[0])
