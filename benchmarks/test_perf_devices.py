"""Cross-device characterization performance benchmark.

Not a paper artifact: tracks the cost of the new headline scenario —
``repro characterize --device all`` — so characterizing every
registered device profile stays cheap.  The shared LRU cache must make
repeat sweeps free: after the warm-up sweep, a full pass over every
device must add zero misses (pytest-benchmark reports its latency).
"""

from repro.dram.architecture import DRAMArchitecture
from repro.dram.characterize import (
    CharacterizationCache,
    DEFAULT_CHARACTERIZATION_CACHE,
    characterize_device,
)
from repro.dram.device import DEVICE_REGISTRY


def _characterize_everything():
    return {
        profile.name: characterize_device(profile)
        for profile in DEVICE_REGISTRY
    }


def test_all_devices_characterize(benchmark):
    """Warm the shared cache, then time the cached full sweep."""
    first = _characterize_everything()
    assert len(first) >= 4
    for name, results in first.items():
        assert results  # every device yields at least the commodity arch

    misses_before = DEFAULT_CHARACTERIZATION_CACHE.stats.misses
    result = benchmark(_characterize_everything)
    assert result.keys() == first.keys()
    assert DEFAULT_CHARACTERIZATION_CACHE.stats.misses == misses_before, (
        "cached cross-device sweep recharacterized a device; the "
        "shared cache should serve every (profile, architecture) pair")


def test_cache_isolates_devices(benchmark):
    """One miss per (device, architecture); everything else hits."""
    def sweep_twice():
        cache = CharacterizationCache()
        for profile in DEVICE_REGISTRY:
            for architecture in profile.supported_architectures:
                cache.get(architecture, device=profile)
        for profile in DEVICE_REGISTRY:
            for architecture in profile.supported_architectures:
                cache.get(architecture, device=profile)
        return cache

    cache = benchmark(sweep_twice)
    expected_configs = sum(
        len(profile.supported_architectures)
        for profile in DEVICE_REGISTRY)
    assert cache.stats.misses == expected_configs
    assert cache.stats.hits == expected_configs
    for profile in DEVICE_REGISTRY:
        stats = cache.device_stats(profile.name)
        assert stats.misses == len(profile.supported_architectures)
        assert stats.hits == stats.misses


def test_commodity_characterization_latency(benchmark):
    """Time one uncached commodity characterization of the widest
    device (HBM2's 8-channel geometry is the heaviest stream set)."""
    from repro.dram.characterize import characterize
    from repro.dram.device import HBM2_DEVICE

    result = benchmark(
        characterize, DRAMArchitecture.DDR3, device=HBM2_DEVICE)
    assert result.device_name == "hbm2"
