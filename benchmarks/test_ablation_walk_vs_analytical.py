"""Ablation — analytical loop-wrap model vs state-aware walk.

The paper's Eq. 2/3 classify accesses by which mapping loop wrapped.
A state-aware walk that tracks actual row-buffer contents shows where
that approximation is optimistic: under Mapping-2 on DDR3, re-entering
a swept subarray is a conflict, not a hit.  This ablation quantifies
the per-policy hit-rate gap (and shows it never changes the ranking).
"""

from repro.core.conditions import condition_counts
from repro.dram.architecture import DRAMArchitecture
from repro.dram.characterize import AccessCondition
from repro.dram.presets import TINY_ORGANIZATION as ORG
from repro.core.report import format_table
from repro.mapping.catalog import DRMAP, TABLE1_MAPPINGS
from repro.mapping.counts import count_transitions
from repro.mapping.walk import classify_walk

RUN = 512


def analytic_hit_rate(policy):
    counts = count_transitions(policy, ORG, RUN)
    by_condition = condition_counts(counts)
    return by_condition.get(AccessCondition.ROW_HIT, 0) / RUN


def walk_hit_rate(policy, architecture):
    return classify_walk(policy, ORG, architecture, RUN).hit_rate


def test_walk_vs_analytical(benchmark):
    rows = []
    gaps = {}
    for policy in TABLE1_MAPPINGS:
        analytic = analytic_hit_rate(policy)
        ddr3 = walk_hit_rate(policy, DRAMArchitecture.DDR3)
        masa = walk_hit_rate(policy, DRAMArchitecture.SALP_MASA)
        gaps[policy.name] = analytic - ddr3
        rows.append([
            policy.name, f"{analytic:.3f}", f"{ddr3:.3f}",
            f"{masa:.3f}",
        ])
    print()
    print(format_table(
        ["mapping", "hit rate (Eq. 2/3)", "hit rate (walk, DDR3)",
         "hit rate (walk, MASA)"],
        rows,
        title="Ablation -- analytical vs state-aware hit rates "
              f"({RUN}-access run)"))

    # The analytical model is optimistic for the subarray-inner
    # mappings on DDR3 and close elsewhere.
    assert gaps["Mapping-2"] > 0.05
    assert abs(gaps["Mapping-3 (DRMap)"]) < 0.02
    # MASA recovers the analytical hit rate for Mapping-2 (local row
    # buffers survive the sweep).
    assert walk_hit_rate(MAPPING_2 := TABLE1_MAPPINGS[1],
                         DRAMArchitecture.SALP_MASA) \
        >= analytic_hit_rate(MAPPING_2) - 0.02
    # DRMap's hit rate is the highest under the state-aware walk too,
    # so the approximation never flips the paper's ranking.
    drmap_rate = walk_hit_rate(DRMAP, DRAMArchitecture.DDR3)
    for policy in TABLE1_MAPPINGS:
        assert walk_hit_rate(policy, DRAMArchitecture.DDR3) \
            <= drmap_rate + 1e-9

    benchmark(classify_walk, DRMAP, ORG, DRAMArchitecture.DDR3, RUN)
