"""Funnel-strategy speedup gate: prune→verify must pay for itself.

The funnel scores the whole design space with the closed-form
analytical model and re-evaluates only the top slice exactly, so on a
VGG-class DSE it must deliver

* the **same optimum** as the exhaustive Algorithm-1 sweep, and
* at least a **5x wall-clock speedup** (it measures ~10-12x here:
  ~20x fewer exact evaluations, minus the analytical scoring pass),

plus a >=10x reduction in exact (cycle-accurate-characterized)
evaluations.  Run via ``make bench-strategies``.
"""

from __future__ import annotations

import gc
import time

from repro.core.engine import ExplorationEngine
from repro.core.report import format_table
from repro.dram.architecture import ALL_ARCHITECTURES
from repro.dram.characterize import characterize_preset
from repro.workloads import zoo


def _interleaved_best_of(runs: int, func_a, func_b):
    """Best-of timings with A/B runs interleaved (load-drift proof)."""
    best_a = best_b = float("inf")
    # A full-suite run leaves a large live heap behind, and a gen-2
    # collection landing inside a measured region skews a sub-second
    # A/B comparison; pause the collector for the stopwatch only.
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(runs):
            start = time.perf_counter()
            func_a()
            best_a = min(best_a, time.perf_counter() - start)
            start = time.perf_counter()
            func_b()
            best_b = min(best_b, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best_a, best_b


def test_funnel_5x_faster_than_exhaustive_at_matched_optimum():
    # Warm the characterization cache: both contenders measure pure
    # exploration, exactly as in a multi-scenario sweep.
    for architecture in ALL_ARCHITECTURES:
        characterize_preset(architecture)
    network = zoo.vgg16()

    # Pinned to the scalar evaluation backend: this gate measures the
    # *strategy's* search-space reduction, and the vector kernel
    # (gated separately in test_perf_eval.py) compresses the exact
    # per-point cost the funnel saves — auto would conflate the two.
    exhaustive_engine = ExplorationEngine(jobs=1, eval_model="scalar")
    funnel_engine = ExplorationEngine(jobs=1, strategy="funnel",
                                      eval_model="scalar")
    # Warm-up pass each (fills the evaluation memos, as in steady
    # state); matched optimum is asserted on the warm-up results.
    exhaustive = exhaustive_engine.explore_network(network)
    funnel = funnel_engine.explore_network(network)

    assert funnel.best() == exhaustive.best(), \
        "funnel must recover the exhaustive optimum"
    assert funnel.evaluated_points * 10 <= exhaustive.evaluated_points, \
        "funnel must evaluate >=10x fewer points exactly"

    exhaustive_seconds, funnel_seconds = _interleaved_best_of(
        3,
        lambda: exhaustive_engine.explore_network(network),
        lambda: funnel_engine.explore_network(network))
    speedup = exhaustive_seconds / funnel_seconds

    print()
    print(format_table(
        ["strategy", "best of 3 [s]", "exact points", "scored"],
        [
            ["exhaustive", f"{exhaustive_seconds:.3f}",
             str(exhaustive.evaluated_points), "-"],
            ["funnel", f"{funnel_seconds:.3f}",
             str(funnel.evaluated_points),
             str(funnel.scored_points)],
        ],
        title="VGG-16 full-network DSE: exhaustive vs funnel"))
    print(f"funnel speedup: {speedup:.2f}x")

    assert speedup >= 5.0, (
        f"funnel {funnel_seconds:.3f}s is only {speedup:.2f}x faster "
        f"than exhaustive {exhaustive_seconds:.3f}s (gate: >=5x)")


def test_analytical_scoring_is_a_fraction_of_exact_evaluation():
    """Scoring the full space must cost well under evaluating it."""
    from repro.core.engine import EvaluationCache, _build_context
    from repro.core.strategies import analytical_scores
    from repro.cnn.scheduling import ALL_SCHEMES
    from repro.cnn.tiling import TABLE2_BUFFERS
    from repro.dram.characterize import DEFAULT_CHARACTERIZATION_CACHE
    from repro.mapping.catalog import TABLE1_MAPPINGS

    network = zoo.alexnet()
    context = _build_context(
        network, None, ALL_SCHEMES, TABLE1_MAPPINGS, TABLE2_BUFFERS,
        None, None, DEFAULT_CHARACTERIZATION_CACHE)
    engine = ExplorationEngine(jobs=1)
    engine.explore_network(network)  # warm evaluation memos

    def score():
        return analytical_scores(context, engine.evaluation_cache)

    def evaluate():
        return engine.explore_network(network)

    score()  # warm the analytical memo
    scoring_seconds, exact_seconds = _interleaved_best_of(
        3, score, evaluate)
    ratio = exact_seconds / scoring_seconds
    print(f"\nanalytical scoring {scoring_seconds * 1e3:.1f} ms vs "
          f"exact evaluation {exact_seconds * 1e3:.1f} ms "
          f"({ratio:.1f}x cheaper per full grid)")
    assert scoring_seconds * 3 < exact_seconds, (
        "analytical scoring must be at least 3x cheaper than exact "
        "evaluation of the same grid")
