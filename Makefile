PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-devices bench-workloads bench-policies \
	bench-strategies bench-contention bench-kernel bench-eval \
	cov cov-core lint

## tier-1 verification: the full unit/property/integration/benchmark suite
test:
	$(PYTHON) -m pytest -x -q

## paper-artifact benchmarks only, with pytest-benchmark timings
## exported to a perf-trajectory file (override the name with
## BENCH_JSON=..., e.g. the CI baseline BENCH_8.json)
BENCH_JSON ?= BENCH_$(shell date -u +%Y%m%dT%H%M%SZ).json
bench:
	$(PYTHON) -m pytest benchmarks/ -q \
		--benchmark-json=$(BENCH_JSON)

## cross-device characterization micro-benchmark (device registry)
bench-devices:
	$(PYTHON) -m pytest benchmarks/test_perf_devices.py -q

## graph-IR lowering overhead gate (<5% vs the direct layer-list DSE)
bench-workloads:
	$(PYTHON) -m pytest benchmarks/test_perf_workloads.py -q

## controller-policy indirection overhead gate (<5% on the AlexNet
## DDR3 characterize+DSE path and the raw controller loop)
bench-policies:
	$(PYTHON) -m pytest benchmarks/test_perf_policies.py -q

## funnel-strategy speedup gate (>=5x wall clock vs exhaustive on the
## VGG-16 DSE at matched optimum, >=10x fewer exact evaluations)
bench-strategies:
	$(PYTHON) -m pytest benchmarks/test_perf_strategies.py -q

## crossbar front-end overhead gate (<5% at N=1 vs the bare
## controller, contended arbitration within 3x)
bench-contention:
	$(PYTHON) -m pytest benchmarks/test_perf_contention.py -q

## vectorized-kernel speed gates (>=10x vs the object simulator on a
## full ddr3-1600-2gb-x8 characterize, batch >=2x vs per-triple kernel
## calls over the whole device registry), at exact result equality
bench-kernel:
	$(PYTHON) -m pytest benchmarks/test_perf_kernel.py -q

## vectorized DSE point-evaluation gates (>=5x vs the scalar per-point
## loop on the full AlexNet/DDR3 exhaustive grid, funnel end-to-end
## wall clock within 10% of scalar), at bit-exact result equality
bench-eval:
	$(PYTHON) -m pytest benchmarks/test_perf_eval.py -q

## line-coverage floor for the cycle-level DRAM model (requires
## pytest-cov; CI installs it)
cov:
	$(PYTHON) -m pytest tests/dram -q --cov=repro.dram \
		--cov-report=term-missing --cov-fail-under=85

## line-coverage floor for the exploration stack (engine, strategies,
## sweeps, reporting; requires pytest-cov; CI installs it)
cov-core:
	$(PYTHON) -m pytest tests/core tests/integration -q \
		--cov=repro.core --cov-report=term-missing \
		--cov-fail-under=80

## byte-compile everything and make sure the test suite collects cleanly
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -m pytest --collect-only -q > /dev/null
	@echo "lint OK"
