PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-devices bench-workloads lint

## tier-1 verification: the full unit/property/integration/benchmark suite
test:
	$(PYTHON) -m pytest -x -q

## paper-artifact benchmarks only, with pytest-benchmark timings
bench:
	$(PYTHON) -m pytest benchmarks/ -q

## cross-device characterization micro-benchmark (device registry)
bench-devices:
	$(PYTHON) -m pytest benchmarks/test_perf_devices.py -q

## graph-IR lowering overhead gate (<5% vs the direct layer-list DSE)
bench-workloads:
	$(PYTHON) -m pytest benchmarks/test_perf_workloads.py -q

## byte-compile everything and make sure the test suite collects cleanly
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -m pytest --collect-only -q > /dev/null
	@echo "lint OK"
