"""DRAM mapping policies as nested-loop orders (paper Fig. 6, Table I).

A :class:`MappingPolicy` is an ordering of the DRAM hierarchy
dimensions from the *innermost* loop outward.  Mapping the ``i``-th
element of a data tile is a mixed-radix decomposition of ``i`` along
that order: the innermost dimension varies fastest.

Example
-------
>>> from repro.dram.presets import TINY_ORGANIZATION as ORG
>>> from repro.mapping import DRMAP
>>> DRMAP.coordinate_of(0, ORG).column
0
>>> DRMAP.coordinate_of(1, ORG).column   # innermost loop: column
1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..dram.address import Coordinate
from ..dram.spec import DRAMOrganization
from ..errors import CapacityError, MappingError
from .dims import Dim, INTRA_CHIP_DIMS, OUTER_DIMS, dim_size


@dataclass(frozen=True)
class MappingPolicy:
    """A DRAM data mapping policy.

    Parameters
    ----------
    name:
        Display name, e.g. ``"Mapping-3 (DRMap)"``.
    loop_order:
        Intra-chip dimensions from innermost to outermost.  Must be a
        permutation of ``(COLUMN, BANK, SUBARRAY, ROW)``.  ``RANK`` and
        ``CHANNEL`` loops are implicitly appended outermost (paper
        Fig. 6 pseudo-code: ``for ch { for ra { ... } }``).
    """

    name: str
    loop_order: Tuple[Dim, ...]

    def __post_init__(self) -> None:
        if sorted(self.loop_order, key=lambda d: d.value) \
                != sorted(INTRA_CHIP_DIMS, key=lambda d: d.value):
            raise MappingError(
                f"loop_order must be a permutation of "
                f"{[d.value for d in INTRA_CHIP_DIMS]}, got "
                f"{[d.value for d in self.loop_order]}")

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    @property
    def full_order(self) -> Tuple[Dim, ...]:
        """Loop order including the implicit rank/channel outer loops."""
        return self.loop_order + OUTER_DIMS

    def sizes(self, organization: DRAMOrganization) -> List[int]:
        """Extent of each loop, innermost first."""
        return [dim_size(dim, organization) for dim in self.full_order]

    def strides(self, organization: DRAMOrganization) -> List[int]:
        """Number of accesses consumed before loop ``i`` increments.

        ``strides[i]`` is the product of all extents inner to loop
        ``i``; ``strides[0]`` is 1.
        """
        strides = [1]
        for size in self.sizes(organization)[:-1]:
            strides.append(strides[-1] * size)
        return strides

    def capacity(self, organization: DRAMOrganization) -> int:
        """Total accesses addressable before the mapping overflows."""
        total = 1
        for size in self.sizes(organization):
            total *= size
        return total

    # ------------------------------------------------------------------
    # Address generation
    # ------------------------------------------------------------------

    def digits_of(self, index: int, organization: DRAMOrganization
                  ) -> List[int]:
        """Mixed-radix digits of access ``index``, innermost first."""
        if index < 0:
            raise MappingError(f"index must be non-negative, got {index}")
        if index >= self.capacity(organization):
            raise CapacityError(
                f"access index {index} exceeds the DRAM capacity of "
                f"{self.capacity(organization)} bursts")
        digits = []
        remaining = index
        for size in self.sizes(organization):
            digits.append(remaining % size)
            remaining //= size
        return digits

    def coordinate_of(self, index: int, organization: DRAMOrganization
                      ) -> Coordinate:
        """DRAM coordinate of the ``index``-th element of a region."""
        digits = self.digits_of(index, organization)
        by_dim = dict(zip(self.full_order, digits))
        return Coordinate(
            channel=by_dim[Dim.CHANNEL],
            rank=by_dim[Dim.RANK],
            bank=by_dim[Dim.BANK],
            subarray=by_dim[Dim.SUBARRAY],
            row=by_dim[Dim.ROW],
            column=by_dim[Dim.COLUMN],
        )

    def iter_coordinates(
        self,
        count: int,
        organization: DRAMOrganization,
        start: int = 0,
    ) -> Iterator[Coordinate]:
        """Yield coordinates for accesses ``start .. start+count-1``."""
        for index in range(start, start + count):
            yield self.coordinate_of(index, organization)

    def describe(self) -> str:
        """Human-readable loop order, innermost to outermost."""
        order = ", ".join(dim.value for dim in self.loop_order)
        return f"{self.name}: [{order}] (inner -> outer)"
