"""Mapping-loop dimensions.

A DRAM mapping policy is an ordering of nested loops over the DRAM
hierarchy dimensions (paper Fig. 6).  ``Dim`` names those dimensions;
:func:`dim_size` returns each dimension's extent for a given
organization.
"""

from __future__ import annotations

import enum

from ..dram.spec import DRAMOrganization


class Dim(enum.Enum):
    """A DRAM hierarchy dimension addressable by a mapping loop."""

    COLUMN = "column"
    BANK = "bank"
    SUBARRAY = "subarray"
    ROW = "row"
    RANK = "rank"
    CHANNEL = "channel"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Dimensions every intra-chip mapping policy must order (Table I).
INTRA_CHIP_DIMS = (Dim.COLUMN, Dim.BANK, Dim.SUBARRAY, Dim.ROW)

#: Dimensions appended outermost when data spills past one rank.
OUTER_DIMS = (Dim.RANK, Dim.CHANNEL)


def dim_size(dim: Dim, organization: DRAMOrganization) -> int:
    """Extent of ``dim`` in ``organization``.

    ``COLUMN`` counts burst slots (the granularity of one access), not
    raw column addresses.
    """
    sizes = {
        Dim.COLUMN: organization.bursts_per_row,
        Dim.BANK: organization.banks_per_chip,
        Dim.SUBARRAY: organization.subarrays_per_bank,
        Dim.ROW: organization.rows_per_subarray,
        Dim.RANK: organization.ranks_per_channel,
        Dim.CHANNEL: organization.channels,
    }
    return sizes[dim]
