"""The mapping policies explored by the paper's DSE (Table I).

Table I lists six policies, each a permutation of (column, subarray,
bank, row) loops with the *row* loop outermost -- the paper narrows the
design space to policies with the least frequent row switches, since a
row switch is the most expensive access.  Mapping-3 is DRMap: columns
innermost (row-buffer hits), then banks (bank-level parallelism), then
subarrays (subarray-level parallelism), rows last.

The commodity *default* mapping (Section II-B "DRAM Data Mapping") is
also provided as a baseline: consecutive data fill the columns of a
row, then the banks, then rows -- it never spreads data across
subarrays deliberately (equivalent to Mapping-3 with the subarray loop
folded into the row loop; we model it as column, bank, row, subarray,
i.e. subarray-oblivious).
"""

from __future__ import annotations

from typing import Dict, Tuple

from .dims import Dim
from .policy import MappingPolicy

#: Table I, Mapping 1: column, subarray, bank, row (inner -> outer).
MAPPING_1 = MappingPolicy(
    name="Mapping-1",
    loop_order=(Dim.COLUMN, Dim.SUBARRAY, Dim.BANK, Dim.ROW),
)

#: Table I, Mapping 2: subarray, column, bank, row.
MAPPING_2 = MappingPolicy(
    name="Mapping-2",
    loop_order=(Dim.SUBARRAY, Dim.COLUMN, Dim.BANK, Dim.ROW),
)

#: Table I, Mapping 3: column, bank, subarray, row.  This is DRMap.
MAPPING_3 = MappingPolicy(
    name="Mapping-3 (DRMap)",
    loop_order=(Dim.COLUMN, Dim.BANK, Dim.SUBARRAY, Dim.ROW),
)

#: Table I, Mapping 4: bank, column, subarray, row.
MAPPING_4 = MappingPolicy(
    name="Mapping-4",
    loop_order=(Dim.BANK, Dim.COLUMN, Dim.SUBARRAY, Dim.ROW),
)

#: Table I, Mapping 5: subarray, bank, column, row.
MAPPING_5 = MappingPolicy(
    name="Mapping-5",
    loop_order=(Dim.SUBARRAY, Dim.BANK, Dim.COLUMN, Dim.ROW),
)

#: Table I, Mapping 6: bank, subarray, column, row.
MAPPING_6 = MappingPolicy(
    name="Mapping-6",
    loop_order=(Dim.BANK, Dim.SUBARRAY, Dim.COLUMN, Dim.ROW),
)

#: DRMap is Table I's Mapping-3 (paper Key Observation 1).
DRMAP = MAPPING_3

#: Commodity default mapping: rows filled column-first across banks,
#: subarray placement left to the row address (subarray-oblivious).
DEFAULT_MAPPING = MappingPolicy(
    name="Default (commodity)",
    loop_order=(Dim.COLUMN, Dim.BANK, Dim.ROW, Dim.SUBARRAY),
)

#: The six DSE policies in Table-I order.
TABLE1_MAPPINGS: Tuple[MappingPolicy, ...] = (
    MAPPING_1, MAPPING_2, MAPPING_3, MAPPING_4, MAPPING_5, MAPPING_6,
)

#: Table-I policies by their paper index.
MAPPINGS_BY_INDEX: Dict[int, MappingPolicy] = {
    i + 1: policy for i, policy in enumerate(TABLE1_MAPPINGS)
}


def mapping_by_index(index: int) -> MappingPolicy:
    """Return Table-I mapping ``index`` (1-based, as in the paper)."""
    if index not in MAPPINGS_BY_INDEX:
        raise KeyError(
            f"Table I defines mappings 1..6, got {index}")
    return MAPPINGS_BY_INDEX[index]
