"""Reference traversal of a mapping policy.

Two purposes:

1. :func:`count_transitions_by_walk` re-derives the Eq. 2/3 counts by
   literally walking the coordinates and finding the outermost changed
   loop per access -- the ground truth for
   :func:`repro.mapping.counts.count_transitions`.
2. :func:`classify_walk` performs a *state-aware* classification: it
   tracks the open row of every bank (or every subarray under MASA)
   and labels each access with the Fig.-1 condition the memory
   controller would actually see.  This exposes where the paper's
   analytical model is optimistic: e.g. under Mapping-2 on DDR3, the
   access after a full subarray sweep returns to a subarray whose row
   was closed in the meantime -- the loop-wrap model calls it a column
   hit, the hardware sees a conflict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..dram.architecture import DRAMArchitecture, behavior_of
from ..dram.characterize import AccessCondition
from ..dram.spec import DRAMOrganization
from .dims import Dim
from .counts import TransitionCounts
from .policy import MappingPolicy


def count_transitions_by_walk(
    policy: MappingPolicy,
    organization: DRAMOrganization,
    n_accesses: int,
    start: int = 0,
) -> TransitionCounts:
    """Loop-wrap transition counts derived by exhaustive traversal.

    Semantically identical to
    :func:`repro.mapping.counts.count_transitions`, in O(n) time; used
    to validate the closed form.
    """
    if n_accesses == 0:
        return TransitionCounts(by_dim={}, initial=0, total=0)
    order = policy.full_order
    by_dim: Dict[Dim, int] = {}
    previous = policy.digits_of(start, organization)
    for index in range(start + 1, start + n_accesses):
        digits = policy.digits_of(index, organization)
        outermost: Optional[Dim] = None
        for position, dim in enumerate(order):
            if digits[position] != previous[position]:
                outermost = dim
        if outermost is None:
            raise AssertionError("consecutive indices must differ")
        by_dim[outermost] = by_dim.get(outermost, 0) + 1
        previous = digits
    counts = TransitionCounts(
        by_dim=by_dim, initial=1, total=n_accesses)
    counts.check_conservation()
    return counts


@dataclass
class WalkClassification:
    """State-aware per-condition counts for a walked access run."""

    by_condition: Dict[AccessCondition, int] = field(default_factory=dict)
    total: int = 0

    def count(self, condition: AccessCondition) -> int:
        """Accesses classified as ``condition``."""
        return self.by_condition.get(condition, 0)

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that were row-buffer hits."""
        if self.total == 0:
            return 0.0
        return self.count(AccessCondition.ROW_HIT) / self.total


def classify_walk(
    policy: MappingPolicy,
    organization: DRAMOrganization,
    architecture: DRAMArchitecture,
    n_accesses: int,
    start: int = 0,
) -> WalkClassification:
    """Classify each access with the condition the controller sees.

    The classification mirrors the row-buffer rules of
    :class:`repro.dram.controller.MemoryController`, with the Fig.-1
    parallelism conditions layered on top:

    * an access needing an activation in a *different bank* than the
      previous access overlaps with it -> ``BANK_PARALLEL``;
    * an activation in the same bank but a different subarray than the
      bank's current subarray -> ``SUBARRAY_PARALLEL``;
    * an activation displacing a row in the same subarray ->
      ``ROW_CONFLICT``; with nothing to displace -> ``ROW_MISS``;
    * no activation needed -> ``ROW_HIT``.
    """
    behavior = behavior_of(architecture)
    masa = behavior.multiple_activated_subarrays
    # Bank state: non-MASA keeps one (subarray, row); MASA keeps a row
    # per subarray.
    open_rows: Dict[Tuple, Dict[int, int]] = {}
    bank_open: Dict[Tuple, Tuple[int, int]] = {}
    previous_bank: Optional[Tuple] = None
    result = WalkClassification(total=n_accesses)

    for coord in policy.iter_coordinates(n_accesses, organization, start):
        bank_key = coord.bank_key
        if masa:
            bank_state = open_rows.setdefault(bank_key, {})
            open_row = bank_state.get(coord.subarray)
            hit = open_row == coord.row
            needs_displacement = open_row is not None and not hit
            same_subarray_victim = needs_displacement
        else:
            open_entry = bank_open.get(bank_key)
            hit = open_entry == (coord.subarray, coord.row)
            needs_displacement = open_entry is not None and not hit
            same_subarray_victim = (
                needs_displacement and open_entry[0] == coord.subarray)

        if hit:
            condition = AccessCondition.ROW_HIT
        elif previous_bank is not None and bank_key != previous_bank:
            condition = AccessCondition.BANK_PARALLEL
        elif not needs_displacement:
            condition = AccessCondition.ROW_MISS
        elif same_subarray_victim:
            condition = AccessCondition.ROW_CONFLICT
        else:
            condition = AccessCondition.SUBARRAY_PARALLEL

        result.by_condition[condition] = \
            result.by_condition.get(condition, 0) + 1

        if masa:
            open_rows[bank_key][coord.subarray] = coord.row
            budget = min(behavior.max_activated_subarrays,
                         organization.subarrays_per_bank)
            if len(open_rows[bank_key]) > budget:
                # Evict an arbitrary non-target subarray (LRU detail is
                # irrelevant for counting).
                for subarray in list(open_rows[bank_key]):
                    if subarray != coord.subarray:
                        del open_rows[bank_key][subarray]
                        break
        else:
            bank_open[bank_key] = (coord.subarray, coord.row)
        previous_bank = bank_key

    return result
