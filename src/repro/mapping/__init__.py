"""DRAM data mapping policies (the paper's primary contribution).

Exports the Table-I policy catalog (``MAPPING_1`` .. ``MAPPING_6``,
``DRMAP``), the loop-order policy machinery, the closed-form Eq. 2/3
transition counts, and the state-aware reference walk.
"""

from .catalog import (
    DEFAULT_MAPPING,
    DRMAP,
    MAPPING_1,
    MAPPING_2,
    MAPPING_3,
    MAPPING_4,
    MAPPING_5,
    MAPPING_6,
    MAPPINGS_BY_INDEX,
    TABLE1_MAPPINGS,
    mapping_by_index,
)
from .dims import Dim, INTRA_CHIP_DIMS, OUTER_DIMS, dim_size
from .counts import TransitionCounts, count_transitions
from .policy import MappingPolicy
from .search import (
    COST_MODELS,
    POLICY_FAMILIES,
    ScoredPolicy,
    all_permutation_policies,
    best_policy_for,
    candidate_policies,
    narrowing_is_sound,
    rank_policies,
    row_outermost_policies,
    score_policy,
)
from .walk import (
    WalkClassification,
    classify_walk,
    count_transitions_by_walk,
)

__all__ = [
    "COST_MODELS",
    "DEFAULT_MAPPING",
    "DRMAP",
    "Dim",
    "INTRA_CHIP_DIMS",
    "POLICY_FAMILIES",
    "MAPPING_1",
    "MAPPING_2",
    "MAPPING_3",
    "MAPPING_4",
    "MAPPING_5",
    "MAPPING_6",
    "MAPPINGS_BY_INDEX",
    "MappingPolicy",
    "OUTER_DIMS",
    "ScoredPolicy",
    "TABLE1_MAPPINGS",
    "TransitionCounts",
    "WalkClassification",
    "all_permutation_policies",
    "best_policy_for",
    "candidate_policies",
    "classify_walk",
    "count_transitions",
    "count_transitions_by_walk",
    "dim_size",
    "mapping_by_index",
    "narrowing_is_sound",
    "rank_policies",
    "row_outermost_policies",
    "score_policy",
]
