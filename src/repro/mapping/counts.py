"""Closed-form access-transition counts (inputs of Eq. 2 and Eq. 3).

The paper's analytical model multiplies, per data tile, the number of
accesses landing on a different column / row / subarray / bank by the
per-condition cycle and energy costs.  For a nested-loop mapping the
counts have a closed form:

Let the loops (innermost first) have extents ``n_0 .. n_m`` and strides
``S_i = n_0 * ... * n_{i-1}`` (``S_0 = 1``).  Walking accesses
``k-1 -> k`` changes exactly the loops ``0..j`` where ``j`` is the
largest index with ``S_j | k``; the *outermost changed loop* determines
the access condition (e.g. when the subarray loop wraps into a new
subarray, the first access there pays the subarray-switch cost, and
the inner bank/column wraps it carries are the *next* accesses'
business).

The number of accesses in ``[start+1, start+n-1]`` whose outermost
changed loop is ``i`` is ``f(S_i) - f(S_{i+1})`` with
``f(S) = floor(last/S) - floor(start/S)`` and ``last = start+n-1``.

The first access of a tile is reported separately
(:attr:`TransitionCounts.initial`): tiles of different data types
interleave in the outer processing loops, so each tile opens with a
fresh activation regardless of the mapping.

:mod:`repro.mapping.walk` provides the exhaustive reference these
formulas are validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..dram.spec import DRAMOrganization
from ..errors import CapacityError
from .dims import Dim
from .policy import MappingPolicy


@dataclass(frozen=True)
class TransitionCounts:
    """Eq. 2/3 access counts for one contiguous run of accesses.

    Attributes
    ----------
    by_dim:
        For each mapping dimension, the number of accesses whose
        outermost changed loop is that dimension.  ``COLUMN`` accesses
        are the row-buffer hits; ``ROW`` accesses are row conflicts.
    initial:
        1 for a non-empty run (the tile-opening access, charged as a
        row activation by the EDP model), else 0.
    total:
        Total accesses in the run.
    """

    by_dim: Dict[Dim, int] = field(default_factory=dict)
    initial: int = 0
    total: int = 0

    @property
    def dif_columns(self) -> int:
        """Accesses to a different column of the same row (hits)."""
        return self.by_dim.get(Dim.COLUMN, 0)

    @property
    def dif_banks(self) -> int:
        """Accesses where the bank loop wrapped (bank parallelism)."""
        return self.by_dim.get(Dim.BANK, 0)

    @property
    def dif_subarrays(self) -> int:
        """Accesses where the subarray loop wrapped."""
        return self.by_dim.get(Dim.SUBARRAY, 0)

    @property
    def dif_rows(self) -> int:
        """Accesses where the row loop wrapped (row conflicts)."""
        return self.by_dim.get(Dim.ROW, 0)

    @property
    def dif_ranks(self) -> int:
        """Accesses where the rank loop wrapped."""
        return self.by_dim.get(Dim.RANK, 0)

    @property
    def dif_channels(self) -> int:
        """Accesses where the channel loop wrapped."""
        return self.by_dim.get(Dim.CHANNEL, 0)

    def check_conservation(self) -> None:
        """Every access must be classified exactly once."""
        classified = sum(self.by_dim.values()) + self.initial
        if classified != self.total:
            raise AssertionError(
                f"classified {classified} accesses out of {self.total}")

    def combined(self, other: "TransitionCounts") -> "TransitionCounts":
        """Sum of two counts (e.g. accumulating tiles of a layer)."""
        merged = dict(self.by_dim)
        for dim, value in other.by_dim.items():
            merged[dim] = merged.get(dim, 0) + value
        return TransitionCounts(
            by_dim=merged,
            initial=self.initial + other.initial,
            total=self.total + other.total,
        )

    def scaled(self, factor: int) -> "TransitionCounts":
        """Counts for ``factor`` identical runs back to back."""
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return TransitionCounts(
            by_dim={dim: value * factor for dim, value in self.by_dim.items()},
            initial=self.initial * factor,
            total=self.total * factor,
        )


def count_transitions(
    policy: MappingPolicy,
    organization: DRAMOrganization,
    n_accesses: int,
    start: int = 0,
) -> TransitionCounts:
    """Closed-form transition counts for a contiguous access run.

    Parameters
    ----------
    policy:
        The mapping policy (defines the loop order).
    organization:
        DRAM geometry (defines the loop extents).
    n_accesses:
        Length of the run.
    start:
        Index of the first access within the mapped region.  A tile
        placed after other data starts at a non-zero offset, which
        shifts where the loop wraps fall.
    """
    if n_accesses < 0:
        raise ValueError(
            f"n_accesses must be non-negative, got {n_accesses}")
    if n_accesses == 0:
        return TransitionCounts(by_dim={}, initial=0, total=0)
    if start < 0:
        raise ValueError(f"start must be non-negative, got {start}")
    capacity = policy.capacity(organization)
    if start + n_accesses > capacity:
        raise CapacityError(
            f"run [{start}, {start + n_accesses}) exceeds DRAM capacity "
            f"of {capacity} accesses")

    last = start + n_accesses - 1
    strides = policy.strides(organization)
    sizes = policy.sizes(organization)
    order = policy.full_order

    def multiples_in_range(stride: int) -> int:
        # Count k in [start+1, last] with stride | k.
        return last // stride - start // stride

    by_dim: Dict[Dim, int] = {}
    for position, dim in enumerate(order):
        outer_stride = strides[position] * sizes[position]
        count = multiples_in_range(strides[position]) \
            - multiples_in_range(outer_stride)
        if count:
            by_dim[dim] = by_dim.get(dim, 0) + count
    counts = TransitionCounts(by_dim=by_dim, initial=1, total=n_accesses)
    counts.check_conservation()
    return counts


def count_transitions_batch(
    policy: MappingPolicy,
    organization: DRAMOrganization,
    lengths,
):
    """Vectorized :func:`count_transitions` for many ``start=0`` runs.

    ``lengths`` is a sequence (or 1-D integer array) of positive run
    lengths.  Returns an ``int64`` matrix of shape
    ``(len(policy.full_order), len(lengths))``: row ``i`` holds, for
    every run length, the number of accesses whose outermost changed
    loop is ``policy.full_order[i]`` — the same per-dimension counts
    the scalar path stores in :attr:`TransitionCounts.by_dim`
    (``initial`` is always 1 and ``total`` the length itself).

    The whole batch is pure broadcast integer arithmetic
    (``last // S_i - last // (S_i * size_i)`` per dimension), and the
    conservation invariant — every access classified exactly once —
    is checked across the batch before returning.  Requires numpy.
    """
    import numpy as np

    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.ndim != 1:
        raise ValueError(
            f"lengths must be one-dimensional, got shape {lengths.shape}")
    if lengths.size and int(lengths.min()) <= 0:
        raise ValueError("all run lengths must be positive")
    capacity = policy.capacity(organization)
    if lengths.size and int(lengths.max()) > capacity:
        raise CapacityError(
            f"run of {int(lengths.max())} accesses exceeds DRAM "
            f"capacity of {capacity} accesses")

    strides = policy.strides(organization)
    sizes = policy.sizes(organization)
    last = lengths - 1
    counts = np.empty((len(policy.full_order), lengths.size),
                      dtype=np.int64)
    for position in range(len(policy.full_order)):
        stride = strides[position]
        outer_stride = stride * sizes[position]
        counts[position] = last // stride - last // outer_stride
    # Conservation (vectorized): per-dimension counts plus the initial
    # access must classify every access of every run exactly once.
    if lengths.size:
        classified = counts.sum(axis=0) + 1
        if not np.array_equal(classified, lengths):
            bad = int(np.argmax(classified != lengths))
            raise AssertionError(
                f"classified {int(classified[bad])} accesses out of "
                f"{int(lengths[bad])}")
    return counts
