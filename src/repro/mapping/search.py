"""Exhaustive mapping-policy search over all loop permutations.

The paper narrows its DSE from the 24 permutations of (column, bank,
subarray, row) to the six Table-I policies by arguing that the row
loop must be outermost (row switches are the most expensive access).
This module makes that narrowing *checkable*: enumerate every
permutation, cost each one with the Eq. 2/3 model, and compare the
row-outermost family against the rest.

It also provides :func:`best_policy_for`, a small optimizer that
returns the minimum-EDP-cost permutation for a given run length and
architecture — a building block for studying non-Table-II geometries
where DRMap's ordering might not be optimal.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..dram.architecture import DRAMArchitecture
from ..dram.characterize import (
    CharacterizationResult,
    characterize_cached,
)
from ..dram.commands import RequestKind
from ..dram.device import DeviceProfile, resolve_device
from ..dram.spec import DRAMOrganization
from .counts import count_transitions
from .dims import Dim, INTRA_CHIP_DIMS
from .policy import MappingPolicy


def all_permutation_policies() -> List[MappingPolicy]:
    """All 24 intra-chip loop orders, named ``perm-<order>``."""
    policies = []
    for order in itertools.permutations(INTRA_CHIP_DIMS):
        name = "perm-" + "/".join(dim.value for dim in order)
        policies.append(MappingPolicy(name=name, loop_order=tuple(order)))
    return policies


def row_outermost_policies() -> List[MappingPolicy]:
    """The six permutations with the row loop outermost (Table I)."""
    return [policy for policy in all_permutation_policies()
            if policy.loop_order[-1] is Dim.ROW]


@dataclass(frozen=True)
class ScoredPolicy:
    """A policy with its Eq. 2/3 cost for a given run."""

    policy: MappingPolicy
    cycles: float
    energy_nj: float

    @property
    def edp_score(self) -> float:
        """Relative EDP score (cycles x energy; units cancel in
        comparisons)."""
        return self.cycles * self.energy_nj


def score_policy(
    policy: MappingPolicy,
    n_accesses: int,
    architecture: DRAMArchitecture,
    organization: Optional[DRAMOrganization] = None,
    characterization: Optional[CharacterizationResult] = None,
    kind: RequestKind = RequestKind.READ,
    device: Optional[DeviceProfile] = None,
) -> ScoredPolicy:
    """Cost one policy for a contiguous run of ``n_accesses``."""
    from ..core.conditions import run_cost

    profile = resolve_device(device, organization)
    organization = profile.organization
    if characterization is None:
        characterization = characterize_cached(
            architecture, device=profile)
    counts = count_transitions(policy, organization, n_accesses)
    cost = run_cost(counts, characterization, kind)
    return ScoredPolicy(
        policy=policy, cycles=cost.cycles, energy_nj=cost.energy_nj)


def rank_policies(
    n_accesses: int,
    architecture: DRAMArchitecture,
    policies: Optional[Sequence[MappingPolicy]] = None,
    organization: Optional[DRAMOrganization] = None,
    device: Optional[DeviceProfile] = None,
) -> List[ScoredPolicy]:
    """All policies sorted by ascending EDP score."""
    if policies is None:
        policies = all_permutation_policies()
    profile = resolve_device(device, organization)
    characterization = characterize_cached(architecture, device=profile)
    scored = [
        score_policy(policy, n_accesses, architecture,
                     characterization=characterization,
                     device=profile)
        for policy in policies
    ]
    return sorted(scored, key=lambda s: s.edp_score)


def best_policy_for(
    n_accesses: int,
    architecture: DRAMArchitecture,
    organization: Optional[DRAMOrganization] = None,
    device: Optional[DeviceProfile] = None,
) -> ScoredPolicy:
    """The minimum-EDP-cost permutation for a run of ``n_accesses``."""
    return rank_policies(
        n_accesses, architecture, organization=organization,
        device=device)[0]


def narrowing_is_sound(
    n_accesses: int,
    architecture: DRAMArchitecture,
    organization: Optional[DRAMOrganization] = None,
    device: Optional[DeviceProfile] = None,
) -> bool:
    """Check the paper's Table-I narrowing for one configuration.

    True when the global optimum over all 24 permutations is matched by
    some row-outermost policy -- i.e. restricting the DSE to Table I
    cannot miss the optimum.  (Individual row-outermost policies can
    still be terrible: Mapping-5 loses to several discarded
    permutations; the narrowing only protects the *minimum*.)
    """
    ranked = rank_policies(
        n_accesses, architecture, organization=organization,
        device=device)
    best_overall = ranked[0].edp_score
    best_row_outer = min(
        s.edp_score for s in ranked
        if s.policy.loop_order[-1] is Dim.ROW)
    return best_row_outer <= best_overall * (1.0 + 1e-9)
