"""Unit helpers used across the library.

The DRAM models mix four kinds of quantities:

* time in **nanoseconds** (``float``),
* time in **memory-clock cycles** (``int`` for schedules, ``float`` for
  averages),
* energy in **nanojoules** (``float``),
* energy-delay product in **joule-seconds** (``float``).

Keeping conversions in one place avoids the classic off-by-1e9 bugs and
gives the reports a consistent human-readable formatting.
"""

from __future__ import annotations

import math

NS_PER_S = 1e9
NJ_PER_J = 1e9


def ns_to_s(nanoseconds: float) -> float:
    """Convert nanoseconds to seconds."""
    return nanoseconds / NS_PER_S


def s_to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds * NS_PER_S


def nj_to_j(nanojoules: float) -> float:
    """Convert nanojoules to joules."""
    return nanojoules / NJ_PER_J


def j_to_nj(joules: float) -> float:
    """Convert joules to nanojoules."""
    return joules * NJ_PER_J


def cycles_to_ns(cycles: float, tck_ns: float) -> float:
    """Convert a cycle count to nanoseconds for a clock period ``tck_ns``."""
    return cycles * tck_ns


def ns_to_cycles(nanoseconds: float, tck_ns: float) -> int:
    """Convert nanoseconds to a whole number of cycles, rounding up.

    JEDEC timing parameters given in nanoseconds always round *up* to
    the next clock edge when expressed in cycles.
    """
    return int(math.ceil(nanoseconds / tck_ns - 1e-12))


def edp_joule_seconds(energy_nj: float, latency_ns: float) -> float:
    """Energy-delay product in J*s from energy in nJ and latency in ns."""
    return nj_to_j(energy_nj) * ns_to_s(latency_ns)


def format_si(value: float, unit: str, precision: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(2.5e-3, 'J')``.

    Parameters
    ----------
    value:
        The quantity in base units.
    unit:
        Unit suffix, appended after the SI prefix.
    precision:
        Significant digits to keep.
    """
    if value == 0:
        return f"0 {unit}"
    prefixes = [
        (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"),
        (1.0, ""), (1e-3, "m"), (1e-6, "u"), (1e-9, "n"),
        (1e-12, "p"), (1e-15, "f"),
    ]
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.{precision}g} {prefix}{unit}"
    scale, prefix = prefixes[-1]
    return f"{value / scale:.{precision}g} {prefix}{unit}"


def format_bytes(num_bytes: int) -> str:
    """Format a byte count with binary prefixes (KiB reported as KB)."""
    if num_bytes < 1024:
        return f"{num_bytes} B"
    for scale, prefix in ((1024 ** 3, "GB"), (1024 ** 2, "MB"), (1024, "KB")):
        if num_bytes >= scale:
            quotient = num_bytes / scale
            if quotient == int(quotient):
                return f"{int(quotient)} {prefix}"
            return f"{quotient:.2f} {prefix}"
    raise AssertionError("unreachable")


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for non-negative operands."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)
