"""Pluggable search strategies over the Algorithm-1 design space.

The exploration engine (:mod:`repro.core.engine`) historically
hard-coded one search algorithm: exhaustively evaluate every point of
the ``layer x architecture x scheme x policy x tiling`` grid.  This
module turns the *search algorithm* into a first-class, registered
component, independent of the parallel execution machinery:

* ``exhaustive`` — the default; evaluates every grid point through
  the engine's sharded path and is byte-identical to the pre-strategy
  engine for every ``jobs`` / ``chunk_size``.
* ``random`` — seeded uniform sampling of a fraction of the grid;
  the cheap baseline every smarter strategy must beat.
* ``greedy-refine`` — multi-restart coordinate-descent hill climbing:
  from seeded random starting points, repeatedly re-optimize one grid
  dimension (tiling, mapping policy, scheme, architecture) at a time
  until no single move improves the EDP.
* ``funnel`` — a two-phase prune→verify search: score **every** grid
  point with the closed-form analytical cost model
  (:mod:`repro.dram.analytical` — no cycle simulation), keep the
  top-scoring fraction per layer, and re-evaluate only those
  candidates with exact characterization.  On the paper's AlexNet/DDR3
  DSE it recovers the same EDP-optimal mapping while cycle-accurately
  evaluating >=10x fewer points.

Strategies yield ``(start_index, points)`` shards exactly like the
engine's internal sharding, so streaming consumers
(:class:`~repro.core.engine.ReducedExploration`, progress callbacks)
work with every strategy unchanged.  All strategies are deterministic:
randomized ones derive their choices from the run's ``seed`` (default
0), which is recorded — together with the strategy name and the
evaluation counts — in the returned
:class:`~repro.core.dse.DseResult` and the pickled
:class:`~repro.core.engine.ExplorationContext`.

Example
-------
>>> from repro.cnn.models import tiny_test_network
>>> from repro.core.dse import explore_layer
>>> layer = tiny_test_network()[0]
>>> full = explore_layer(layer)
>>> funnel = explore_layer(layer, strategy="funnel")
>>> funnel.best().edp_js == full.best().edp_js
True
>>> funnel.evaluated_points < full.evaluated_points
True
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Type

from ..errors import ConfigurationError
from .conditions import condition_counts
from .dse import DsePoint

#: Default sampled fraction of the ``random`` strategy.
DEFAULT_RANDOM_FRACTION = 0.05

#: Default restarts of the ``greedy-refine`` strategy.
DEFAULT_GREEDY_RESTARTS = 4

#: Default exactly-re-evaluated fraction of the ``funnel`` strategy.
DEFAULT_FUNNEL_TOP_FRACTION = 0.05

#: Floor on the ``random`` strategy's sample size, so small grids are
#: still meaningfully covered.
MIN_SAMPLE_POINTS = 32

#: Funnel floor of exact evaluations per (layer, architecture) slice.
#: Keeping a few candidates in *every* slice guarantees the funnel
#: answers per-architecture queries (e.g. "the DDR3 optimum of FC7")
#: even when a whole architecture scores badly, at negligible extra
#: cost.
MIN_EXACT_PER_SLICE = 8


@dataclass
class StrategyRun:
    """Mutable per-run record a strategy reports its work into.

    The engine creates one per exploration, counts every yielded shard
    point as an exact (cycle-accurate-characterized) evaluation, and
    copies the totals onto the returned
    :class:`~repro.core.dse.DseResult`.
    """

    strategy: str
    seed: Optional[int]
    total_points: int
    #: Exact evaluations (filled by the engine from the shards).
    exact_points: int = 0
    #: Analytical-model scorings (filled by the funnel strategy).
    scored_points: int = 0
    #: Evaluation-cache hits/misses this run caused (serial-path delta
    #: plus per-chunk worker deltas; copied onto
    #: :attr:`~repro.core.dse.DseResult.eval_cache_stats`).
    cache_hits: int = 0
    cache_misses: int = 0


class SearchStrategy:
    """Base class: a search algorithm over one exploration grid."""

    #: Registry key; subclasses must override.
    name: str = ""
    #: One-line purpose, for ``repro strategies``.
    summary: str = ""

    def shards(
        self,
        engine,
        context,
        run: StrategyRun,
    ) -> Iterator[Tuple[int, List[DsePoint]]]:
        """Yield ``(start_index, points)`` shards of evaluated points.

        ``points`` are contiguous in flattened grid order starting at
        ``start_index``; shards may arrive in any order.  Every
        yielded point must be an exact evaluation.
        """
        raise NotImplementedError

    def _rng(self, run: StrategyRun) -> random.Random:
        """Deterministic per-run generator (seed defaults to 0)."""
        return random.Random(0 if run.seed is None else run.seed)


class ExhaustiveStrategy(SearchStrategy):
    """Evaluate every grid point (the paper's Algorithm 1)."""

    name = "exhaustive"
    summary = ("every grid point, exactly; byte-identical to the "
               "pre-strategy engine (the default)")

    def shards(self, engine, context, run):
        return engine._shard_results(context, run)


class RandomStrategy(SearchStrategy):
    """Seeded uniform sample of the grid.

    Parameters
    ----------
    fraction:
        Sampled fraction of the grid in ``(0, 1]``; at least
        :data:`MIN_SAMPLE_POINTS` points are drawn (grid permitting).
    """

    name = "random"
    summary = "seeded uniform sample of the grid (cheap baseline)"

    def __init__(self, fraction: float = DEFAULT_RANDOM_FRACTION) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"random fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def shards(self, engine, context, run):
        total = context.total_points
        count = max(math.ceil(total * self.fraction),
                    min(MIN_SAMPLE_POINTS, total))
        indices = sorted(self._rng(run).sample(range(total), count))
        return engine._evaluate_selected(context, indices, run)


class GreedyRefineStrategy(SearchStrategy):
    """Multi-restart coordinate-descent hill climbing.

    From each seeded random starting point of each layer's sub-grid,
    repeatedly sweep one dimension at a time — tiling, mapping policy,
    scheme, architecture — moving to the best value found, until a
    full sweep improves nothing.  Every probed point is an exact
    evaluation; points are probed at most once per run.

    Parameters
    ----------
    restarts:
        Independent starting points per layer.
    """

    name = "greedy-refine"
    summary = ("multi-restart coordinate-descent over mapping / "
               "tiling / scheme / architecture")

    def __init__(self, restarts: int = DEFAULT_GREEDY_RESTARTS) -> None:
        if restarts < 1:
            raise ConfigurationError(
                f"greedy restarts must be >= 1, got {restarts}")
        self.restarts = restarts

    def shards(self, engine, context, run):
        rng = self._rng(run)
        evaluate = engine.point_evaluator(context)
        seen: Dict[int, DsePoint] = evaluate.cache

        def probe(index: int) -> float:
            return evaluate(index).edp_js

        for layer_pos in range(len(context.layers)):
            dims = (
                len(context.architectures),
                len(context.schemes),
                len(context.policies),
                len(context.layers[layer_pos].tilings),
            )
            for _ in range(self.restarts):
                coords = [rng.randrange(extent) for extent in dims]
                best = probe(context.encode(layer_pos, *coords))
                improved = True
                while improved:
                    improved = False
                    for axis, extent in enumerate(dims):
                        for value in range(extent):
                            if value == coords[axis]:
                                continue
                            candidate = list(coords)
                            candidate[axis] = value
                            edp = probe(
                                context.encode(layer_pos, *candidate))
                            if edp < best:
                                best = edp
                                coords = candidate
                                improved = True
        for index in sorted(seen):
            yield index, [seen[index]]


class FunnelStrategy(SearchStrategy):
    """Two-phase prune→verify: analytical scoring, then exact top-k.

    Phase 1 scores **every** grid point with the closed-form
    analytical model of :mod:`repro.dram.analytical` — pure
    arithmetic on the device's JEDEC timing / IDD parameters, no
    cycle-level simulation.  Phase 2 re-evaluates only the
    best-scoring ``top_fraction`` of each (layer, architecture)
    slice (floored at :data:`MIN_EXACT_PER_SLICE` points per slice,
    so every slice stays queryable) with exact characterization,
    through the engine's sharded parallel path.

    Parameters
    ----------
    top_fraction:
        Fraction of each (layer, architecture) slice re-evaluated
        exactly.
    """

    name = "funnel"
    summary = ("prune with the closed-form analytical model, verify "
               "the top fraction with exact characterization")

    def __init__(
        self,
        top_fraction: float = DEFAULT_FUNNEL_TOP_FRACTION,
    ) -> None:
        if not 0.0 < top_fraction <= 1.0:
            raise ConfigurationError(
                f"funnel top_fraction must be in (0, 1], got "
                f"{top_fraction}")
        self.top_fraction = top_fraction

    def shards(self, engine, context, run):
        scores = analytical_scores(
            context, engine.evaluation_cache,
            eval_model=getattr(engine, "eval_model", "auto"))
        run.scored_points = len(scores)
        indices: List[int] = []
        for position, grid in enumerate(context.layers):
            layer_points = context.points_in_layer(position)
            # Architecture is the outermost per-layer loop, so each
            # (layer, architecture) slice is one contiguous block.
            block = layer_points // len(context.architectures)
            keep = max(math.ceil(block * self.top_fraction),
                       min(MIN_EXACT_PER_SLICE, block))
            for arch_idx in range(len(context.architectures)):
                start = grid.offset + arch_idx * block
                block_range = range(start, start + block)
                ranked = sorted(block_range,
                                key=lambda i: (scores[i], i))
                indices.extend(ranked[:keep])
        return engine._evaluate_selected(context, sorted(indices), run)


# ----------------------------------------------------------------------
# Analytical scoring of a whole context
# ----------------------------------------------------------------------

def analytical_scores(context, cache,
                      eval_model: str = "auto") -> List[float]:
    """Closed-form EDP score of every grid point, in grid order.

    Scores share the exact evaluation's structure — per-data-type
    Eq. 2/3 run costs scaled by fetch counts — but read their
    per-condition costs from :mod:`repro.dram.analytical` instead of
    the cycle simulator, and collapse each point to one float with no
    intermediate objects, so scoring the full space costs a small
    fraction of evaluating it.

    ``cache`` is an :class:`repro.core.engine.EvaluationCache`; the
    traffic / adaptive-scheme / transition-count memos it fills here
    are the same ones the exact phase reuses afterwards.

    ``eval_model`` mirrors the engine knob: unless ``"scalar"``, the
    whole pass runs through the batched kernel
    (:func:`repro.core.eval_kernel.batch_scores`) — so the funnel's
    prune and verify phases both go wide — with the scalar loop below
    as the bit-identical fallback.
    """
    if eval_model != "scalar":
        from .eval_kernel import batch_scores

        batched = batch_scores(context, cache)
        if batched is not None:
            return batched
    from ..dram.analytical import analytical_characterization

    characterizations = {
        architecture: analytical_characterization(
            architecture, device=context.device,
            controller=context.controller)
        for architecture in context.architectures
    }
    organization = context.organization
    tck_ns = context.device.timings.tck_ns
    scores: List[float] = []
    for grid in context.layers:
        # Per (tiling, scheme): the data-type runs (accesses per tile
        # fetch, read fetches, write fetches).
        runs_by_scheme: List[List[Tuple[Tuple[int, int, int], ...]]] = []
        lengths = set()
        for scheme in context.schemes:
            per_tiling = []
            for tiling in grid.tilings:
                resolved = cache.resolve_scheme(grid.layer, tiling, scheme)
                traffic = cache.traffic(grid.layer, tiling, resolved)
                entry = []
                for type_traffic in traffic.by_type().values():
                    n_accesses = organization.accesses_for_bytes(
                        type_traffic.tile_bytes)
                    if n_accesses == 0:
                        continue
                    entry.append((n_accesses, type_traffic.read_tiles,
                                  type_traffic.write_tiles))
                    lengths.add(n_accesses)
                per_tiling.append(tuple(entry))
            runs_by_scheme.append(per_tiling)
        # Per-condition access counts are architecture-independent:
        # collapse them once per (policy, run length) ...
        collapsed: List[Dict[int, Tuple[Tuple, ...]]] = []
        for policy in context.policies:
            per_length: Dict[int, Tuple[Tuple, ...]] = {}
            for n_accesses in lengths:
                counts = cache.transition_counts(
                    policy, organization, n_accesses)
                per_length[n_accesses] = tuple(
                    condition_counts(counts).items())
            collapsed.append(per_length)
        # ... then turn them into flat per-(architecture, policy, run
        # length) cost triples.
        for architecture in context.architectures:
            costs = characterizations[architecture].costs
            flat = {
                condition: (cost.cycles, cost.read_energy_nj,
                            cost.write_energy_nj)
                for condition, cost in costs.items()
            }
            tables: List[Dict[int, Tuple[float, float, float]]] = []
            for per_length in collapsed:
                table: Dict[int, Tuple[float, float, float]] = {}
                for n_accesses, by_condition in per_length.items():
                    cycles = read_nj = write_nj = 0.0
                    for condition, count in by_condition:
                        c, r, w = flat[condition]
                        cycles += count * c
                        read_nj += count * r
                        write_nj += count * w
                    table[n_accesses] = (cycles, read_nj, write_nj)
                tables.append(table)
            for per_tiling in runs_by_scheme:
                for table in tables:
                    for entry in per_tiling:
                        cycles = 0.0
                        energy = 0.0
                        for n_accesses, read_tiles, write_tiles in entry:
                            c, read_nj, write_nj = table[n_accesses]
                            cycles += (read_tiles + write_tiles) * c
                            energy += (read_tiles * read_nj
                                       + write_tiles * write_nj)
                        scores.append(energy * cycles * tck_ns)
    return scores


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_STRATEGIES: Dict[str, Type[SearchStrategy]] = {}


def register_strategy(cls: Type[SearchStrategy],
                      replace_existing: bool = False
                      ) -> Type[SearchStrategy]:
    """Register a strategy class under its ``name``.

    Usable as a plain call or to install user strategies; registering
    an existing name raises unless ``replace_existing`` is set.
    """
    if not cls.name:
        raise ConfigurationError(
            f"strategy class {cls.__name__} must set a name")
    if cls.name in _STRATEGIES and not replace_existing:
        raise ConfigurationError(
            f"strategy {cls.name!r} is already registered; pass "
            "replace_existing=True to overwrite")
    _STRATEGIES[cls.name] = cls
    return cls


for _cls in (ExhaustiveStrategy, RandomStrategy, GreedyRefineStrategy,
             FunnelStrategy):
    register_strategy(_cls)
del _cls


def strategy_names() -> Tuple[str, ...]:
    """Registered strategy names, ``exhaustive`` first."""
    return tuple(_STRATEGIES)


def strategy_summaries() -> Dict[str, str]:
    """``{name: one-line summary}`` of every registered strategy."""
    return {name: cls.summary for name, cls in _STRATEGIES.items()}


def get_strategy(name, **options) -> SearchStrategy:
    """Instantiate a registered strategy by name.

    ``options`` are forwarded to the strategy constructor (e.g.
    ``top_fraction=`` for ``funnel``, ``fraction=`` for ``random``,
    ``restarts=`` for ``greedy-refine``).  A
    :class:`SearchStrategy` instance passes through unchanged (then
    ``options`` must be empty).
    """
    if isinstance(name, SearchStrategy):
        if options:
            raise ConfigurationError(
                "options cannot be combined with a pre-built strategy "
                "instance")
        return name
    try:
        cls = _STRATEGIES[name]
    except (KeyError, TypeError):
        choices = ", ".join(strategy_names())
        raise ConfigurationError(
            f"unknown search strategy {name!r}; choose from: {choices}"
        ) from None
    try:
        return cls(**options)
    except TypeError as error:
        raise ConfigurationError(
            f"invalid options for strategy {name!r}: {error}") from None
