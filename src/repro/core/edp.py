"""Analytical EDP model — paper Section III-C.

``EDP_layer = energy_per_layer * latency_per_layer`` where both terms
accumulate per-tile access costs (Eq. 2 and Eq. 3): for every tile
fetch, the number of accesses hitting a different column / row /
subarray / bank is multiplied by the per-condition cycle and energy
costs measured on the cycle-level simulator (Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..dram.characterize import (
    CharacterizationResult,
    characterize_cached,
)
from ..dram.architecture import DRAMArchitecture
from ..dram.commands import RequestKind
from ..dram.device import DeviceProfile, resolve_device
from ..dram.policies import ControllerConfig
from ..dram.spec import DRAMOrganization
from ..cnn.layer import ConvLayer
from ..cnn.scheduling import ReuseScheme
from ..cnn.tiling import TilingConfig
from ..cnn.traffic import DataTypeTraffic, LayerTraffic, layer_traffic
from ..mapping.counts import count_transitions
from ..mapping.policy import MappingPolicy
from ..units import edp_joule_seconds
from .adaptive import resolve_adaptive
from .conditions import AccessCost, ZERO_COST, run_cost


@dataclass(frozen=True)
class LayerEDP:
    """EDP result for one layer under one design point.

    Attributes
    ----------
    layer_name:
        Layer label.
    energy_nj:
        DRAM access energy per Eq. 3, accumulated over all tiles.
    cycles:
        DRAM access cycles per Eq. 2, accumulated over all tiles.
    tck_ns:
        Clock period used to convert cycles to time.
    by_type:
        Per-data-type cost breakdown.
    resolved_scheme:
        The concrete scheme used (differs from the requested scheme
        only for adaptive-reuse).
    """

    layer_name: str
    energy_nj: float
    cycles: float
    tck_ns: float
    by_type: Dict[str, AccessCost]
    resolved_scheme: ReuseScheme

    @property
    def latency_ns(self) -> float:
        """DRAM access latency in nanoseconds."""
        return self.cycles * self.tck_ns

    @property
    def edp_js(self) -> float:
        """Energy-delay product in joule-seconds."""
        return edp_joule_seconds(self.energy_nj, self.latency_ns)


@dataclass(frozen=True)
class NetworkEDP:
    """EDP results for a whole network."""

    per_layer: Dict[str, LayerEDP]

    @property
    def total_energy_nj(self) -> float:
        """Sum of layer energies."""
        return sum(r.energy_nj for r in self.per_layer.values())

    @property
    def total_latency_ns(self) -> float:
        """Sum of layer latencies (layers are processed sequentially)."""
        return sum(r.latency_ns for r in self.per_layer.values())

    @property
    def total_edp_js(self) -> float:
        """Network EDP: sum of per-layer EDPs.

        The paper optimizes per-layer EDP and reports a 'Total' bar
        alongside the layers; we follow the per-layer sum.  See also
        :attr:`product_edp_js` for the alternative
        ``total_energy * total_latency`` definition.
        """
        return sum(r.edp_js for r in self.per_layer.values())

    @property
    def product_edp_js(self) -> float:
        """Alternative network EDP: total energy times total latency."""
        return edp_joule_seconds(self.total_energy_nj,
                                 self.total_latency_ns)


def _data_type_cost(
    traffic: DataTypeTraffic,
    policy: MappingPolicy,
    organization: DRAMOrganization,
    characterization: CharacterizationResult,
    cache=None,
) -> AccessCost:
    """Eq. 2/3 cost of all fetches of one data type.

    Every tile fetch is a contiguous run of ``tile_accesses`` bursts;
    runs of the same shape have identical transition counts up to a
    start-offset perturbation that is negligible for row-aligned tiles,
    so one closed-form evaluation is scaled by the fetch count.
    """
    tile_accesses = organization.accesses_for_bytes(traffic.tile_bytes)
    if tile_accesses == 0:
        return ZERO_COST
    if cache is not None:
        counts = cache.transition_counts(policy, organization, tile_accesses)
    else:
        counts = count_transitions(policy, organization, tile_accesses)
    cost = ZERO_COST
    if traffic.read_tiles:
        read_cost = run_cost(counts, characterization, RequestKind.READ)
        cost = cost + read_cost.scaled(traffic.read_tiles)
    if traffic.write_tiles:
        write_cost = run_cost(counts, characterization, RequestKind.WRITE)
        cost = cost + write_cost.scaled(traffic.write_tiles)
    return cost


def layer_edp(
    layer: ConvLayer,
    tiling: TilingConfig,
    scheme: ReuseScheme,
    policy: MappingPolicy,
    architecture: DRAMArchitecture,
    organization: Optional[DRAMOrganization] = None,
    characterization: Optional[CharacterizationResult] = None,
    cache=None,
    device: Optional[DeviceProfile] = None,
    controller: Optional[ControllerConfig] = None,
) -> LayerEDP:
    """EDP of one layer for one (tiling, scheme, mapping, architecture).

    ``ADAPTIVE_REUSE`` resolves to the concrete scheme minimizing the
    layer's DRAM traffic before costing.

    ``device`` selects the DRAM device profile (default: the paper's
    Table-II device); ``organization`` overrides its geometry.  The
    device's capability set must include ``architecture``.
    ``controller`` selects the memory-controller configuration the
    per-condition costs are measured under (default: FCFS/open-row);
    it is ignored when a pre-measured ``characterization`` is given.

    ``cache`` optionally supplies an
    :class:`repro.core.engine.EvaluationCache`; the policy-independent
    intermediates (traffic, adaptive resolution, transition counts) are
    then memoized across calls, which the Algorithm-1 grid reuses
    24-fold per tiling.
    """
    profile = resolve_device(device, organization)
    organization = profile.organization
    if cache is not None:
        resolved = cache.resolve_scheme(layer, tiling, scheme)
    else:
        resolved = resolve_adaptive(layer, tiling, scheme)
    if characterization is None:
        characterization = characterize_cached(
            architecture, device=profile, controller=controller)
    if cache is not None:
        traffic: LayerTraffic = cache.traffic(layer, tiling, resolved)
    else:
        traffic = layer_traffic(layer, tiling, resolved)
    by_type: Dict[str, AccessCost] = {}
    total = ZERO_COST
    for name, type_traffic in traffic.by_type().items():
        cost = _data_type_cost(
            type_traffic, policy, organization, characterization,
            cache=cache)
        by_type[name] = cost
        total = total + cost
    return LayerEDP(
        layer_name=layer.name,
        energy_nj=total.energy_nj,
        cycles=total.cycles,
        tck_ns=characterization.tck_ns,
        by_type=by_type,
        resolved_scheme=resolved,
    )


def network_edp(
    layers,
    tilings: Dict[str, TilingConfig],
    scheme: ReuseScheme,
    policy: MappingPolicy,
    architecture: DRAMArchitecture,
    organization: Optional[DRAMOrganization] = None,
    device: Optional[DeviceProfile] = None,
    controller: Optional[ControllerConfig] = None,
) -> NetworkEDP:
    """EDP of a whole network with per-layer tilings."""
    profile = resolve_device(device, organization)
    characterization = characterize_cached(
        architecture, device=profile, controller=controller)
    per_layer: Dict[str, LayerEDP] = {}
    for layer in layers:
        per_layer[layer.name] = layer_edp(
            layer, tilings[layer.name], scheme, policy, architecture,
            characterization=characterization,
            device=profile,
        )
    return NetworkEDP(per_layer=per_layer)
