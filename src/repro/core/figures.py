"""ASCII rendering of the paper's figures.

The benchmarks print numeric tables; these helpers additionally render
log-scale bar charts in plain text so a terminal user can *see* the
Fig.-1 and Fig.-9 shapes without plotting libraries (none are
available offline).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


def _bar(value: float, lo: float, hi: float, width: int,
         log_scale: bool) -> str:
    if value <= 0:
        return ""
    if log_scale:
        lo_t, hi_t, v_t = math.log10(lo), math.log10(hi), math.log10(value)
    else:
        lo_t, hi_t, v_t = lo, hi, value
    if hi_t <= lo_t:
        return "#" * width
    fraction = (v_t - lo_t) / (hi_t - lo_t)
    fraction = min(1.0, max(0.0, fraction))
    filled = max(1, round(fraction * width))
    return "#" * filled


def bar_chart(
    values: Dict[str, float],
    width: int = 50,
    log_scale: bool = False,
    unit: str = "",
    title: str = "",
) -> str:
    """Render ``label -> value`` as a horizontal bar chart.

    Parameters
    ----------
    values:
        Bars in display order (insertion order of the dict).
    width:
        Maximum bar width in characters.
    log_scale:
        Scale bar lengths by log10 (Fig. 9 spans decades).
    unit:
        Suffix printed after each value.
    title:
        Optional chart title.
    """
    if not values:
        return title
    positives = [v for v in values.values() if v > 0]
    if not positives:
        raise ValueError("bar_chart needs at least one positive value")
    lo, hi = min(positives), max(positives)
    if log_scale:
        # Give the smallest bar a visible baseline one decade below.
        lo = lo / 10.0
    label_width = max(len(label) for label in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in values.items():
        bar = _bar(value, lo, hi, width, log_scale)
        lines.append(
            f"{label.ljust(label_width)} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Dict[str, Dict[str, float]],
    width: int = 40,
    log_scale: bool = True,
    unit: str = "",
    title: str = "",
) -> str:
    """Render grouped bars (one block of bars per group), sharing a
    global scale so groups are visually comparable."""
    all_values = [v for group in groups.values()
                  for v in group.values() if v > 0]
    if not all_values:
        raise ValueError("grouped_bar_chart needs positive values")
    lo, hi = min(all_values), max(all_values)
    if log_scale:
        lo = lo / 10.0
    label_width = max(
        len(label) for group in groups.values() for label in group)
    lines: List[str] = []
    if title:
        lines.append(title)
    for group_name, group in groups.items():
        lines.append(f"[{group_name}]")
        for label, value in group.items():
            bar = _bar(value, lo, hi, width, log_scale)
            lines.append(
                f"  {label.ljust(label_width)} | {bar} "
                f"{value:.3g}{unit}")
    return "\n".join(lines)


def network_edp_chart(summary, width: int = 40) -> str:
    """Log-scale per-op EDP bars for a
    :class:`repro.workloads.NetworkDseSummary` (ops in topological
    order, the network total last)."""
    values = {op_name: point.edp_js
              for op_name, point in summary.per_op}
    values["NETWORK"] = summary.total_edp_js
    return bar_chart(
        values, width=width, log_scale=True, unit=" J*s",
        title=f"min-EDP per op of {summary.network_name}")


def sparkline(values: Sequence[float]) -> str:
    """A one-line trend of ``values`` using block characters."""
    if not values:
        return ""
    blocks = "_.-~*#"
    lo, hi = min(values), max(values)
    if hi == lo:
        return blocks[0] * len(values)
    out = []
    for value in values:
        index = int((value - lo) / (hi - lo) * (len(blocks) - 1))
        out.append(blocks[index])
    return "".join(out)
