"""Core contribution: EDP analytical model, DSE, pareto analysis."""

from .adaptive import resolve_adaptive
from .conditions import (
    AccessCost,
    DIM_TO_CONDITION,
    INITIAL_ACCESS_CONDITION,
    ZERO_COST,
    condition_counts,
    run_cost,
)
from .dse import (
    DsePoint,
    DseResult,
    best_mapping_per_layer,
    explore_layer,
    explore_network,
    min_edp_series,
)
from .edp import LayerEDP, NetworkEDP, layer_edp, network_edp
from .engine import (
    DEFAULT_CHUNK_SIZE,
    EvaluationCache,
    ExplorationEngine,
    ExplorationProgress,
    ReducedExploration,
)
from .pareto import (
    ObjectivePoint,
    ParetoAccumulator,
    hypervolume_2d,
    pareto_front,
    points_from_dse,
    project,
)
from .figures import bar_chart, grouped_bar_chart, sparkline
from .report import (
    format_edp,
    format_series,
    format_table,
    improvement_percent,
    series_table,
)
from .sweep import (
    SweepPoint,
    sweep_batch,
    sweep_buffers,
    sweep_precision,
    sweep_subarrays,
    sweep_table,
)
from .walk_edp import layer_edp_via_walk, walk_cost

__all__ = [
    "AccessCost",
    "DEFAULT_CHUNK_SIZE",
    "DIM_TO_CONDITION",
    "DsePoint",
    "DseResult",
    "EvaluationCache",
    "ExplorationEngine",
    "ExplorationProgress",
    "INITIAL_ACCESS_CONDITION",
    "LayerEDP",
    "NetworkEDP",
    "ObjectivePoint",
    "ParetoAccumulator",
    "ReducedExploration",
    "SweepPoint",
    "ZERO_COST",
    "bar_chart",
    "best_mapping_per_layer",
    "condition_counts",
    "explore_layer",
    "explore_network",
    "format_edp",
    "format_series",
    "format_table",
    "grouped_bar_chart",
    "hypervolume_2d",
    "improvement_percent",
    "layer_edp",
    "layer_edp_via_walk",
    "min_edp_series",
    "network_edp",
    "pareto_front",
    "points_from_dse",
    "project",
    "resolve_adaptive",
    "run_cost",
    "sparkline",
    "sweep_batch",
    "sweep_buffers",
    "sweep_precision",
    "sweep_subarrays",
    "sweep_table",
    "walk_cost",
]
