"""Sensitivity sweeps over model parameters.

The paper fixes one configuration (Table II); these utilities vary one
parameter at a time — subarrays per bank, buffer capacity, batch size,
data precision, DRAM speed grade — and report how the minimum EDP and
DRMap's advantage respond.  :func:`sweep_network_batch` lifts the
batch sweep to whole workload graphs from the
:mod:`repro.workloads` registry.  They power the ablation benchmarks and
give downstream users a one-call sensitivity analysis for their own
design points.

All sweeps accept a ``device`` profile (default: the paper's Table-II
device), route their DRAM characterizations through the process-wide
:data:`repro.dram.characterize.DEFAULT_CHARACTERIZATION_CACHE` (keyed
on ``(profile, architecture)``) and share one
:class:`repro.core.engine.EvaluationCache`, so comparing two policies
at one sweep value characterizes the device once — the seed version
re-ran the simulator micro-experiments for every policy at every
value.  Repeating a sweep is almost free.

Example
-------
>>> from repro.cnn.models import alexnet
>>> points = sweep_subarrays(alexnet()[1], subarray_counts=(1, 8))
>>> [p.value for p in points]
[1, 8]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..cnn.layer import ConvLayer
from ..cnn.scheduling import ReuseScheme
from ..cnn.tiling import BufferConfig, TABLE2_BUFFERS, enumerate_tilings
from ..dram.architecture import DRAMArchitecture
from ..dram.characterize import characterize_cached
from ..dram.contention import ContentionConfig
from ..dram.device import DeviceProfile, resolve_device
from ..dram.policies import ControllerConfig
from ..dram.spec import DRAMOrganization
from ..mapping.catalog import DRMAP, MAPPING_2
from ..mapping.policy import MappingPolicy
from .edp import layer_edp


@dataclass(frozen=True)
class SweepPoint:
    """One point of a one-dimensional sensitivity sweep."""

    parameter: str
    value: object
    drmap_edp_js: float
    worst_edp_js: float

    @property
    def drmap_advantage(self) -> float:
        """EDP ratio of the worst mapping to DRMap (>= 1)."""
        if self.drmap_edp_js <= 0:
            return float("nan")
        return self.worst_edp_js / self.drmap_edp_js


def _evaluation_cache():
    """The sweeps' shared evaluation memo (lazy, import-cycle free)."""
    global _EVALUATION_CACHE
    if _EVALUATION_CACHE is None:
        from .engine import EvaluationCache

        _EVALUATION_CACHE = EvaluationCache()
    return _EVALUATION_CACHE


_EVALUATION_CACHE = None


def _min_edp(
    layer: ConvLayer,
    policy: MappingPolicy,
    architecture: DRAMArchitecture,
    device: DeviceProfile,
    buffers: BufferConfig,
    scheme: ReuseScheme,
    organization: Optional[DRAMOrganization] = None,
    controller: Optional[ControllerConfig] = None,
    contention: Optional[ContentionConfig] = None,
    strategy=None,
    seed: Optional[int] = None,
) -> float:
    profile = resolve_device(device, organization)
    if strategy is not None and strategy != "exhaustive":
        # Non-exhaustive search: route the one-policy slice through
        # the strategy-driven engine (the funnel/random/greedy floors
        # keep even these small grids meaningfully covered).
        from .dse import explore_layer

        result = explore_layer(
            layer, architectures=(architecture,), schemes=(scheme,),
            policies=(policy,), buffers=buffers, device=profile,
            controller=controller, contention=contention,
            strategy=strategy, seed=seed)
        return result.best().edp_js
    characterization = characterize_cached(
        architecture, device=profile, controller=controller,
        contention=contention)
    cache = _evaluation_cache()
    best: Optional[float] = None
    for tiling in enumerate_tilings(layer, buffers):
        result = layer_edp(
            layer, tiling, scheme, policy, architecture,
            characterization=characterization,
            cache=cache,
            device=profile)
        if best is None or result.edp_js < best:
            best = result.edp_js
    if best is None:
        raise AssertionError("enumerate_tilings never returns empty")
    return best


def sweep_subarrays(
    layer: ConvLayer,
    subarray_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    architecture: DRAMArchitecture = DRAMArchitecture.SALP_MASA,
    scheme: ReuseScheme = ReuseScheme.ADAPTIVE_REUSE,
    device: Optional[DeviceProfile] = None,
    controller: Optional[ControllerConfig] = None,
    contention: Optional[ContentionConfig] = None,
    strategy=None,
    seed: Optional[int] = None,
) -> List[SweepPoint]:
    """EDP vs subarrays-per-bank.

    More subarrays give SALP more parallelism to exploit -- and give
    bad mappings more subarray boundaries to trip over.
    """
    profile = resolve_device(device)
    points = []
    for count in subarray_counts:
        organization = profile.organization.with_subarrays(count)
        points.append(SweepPoint(
            parameter="subarrays_per_bank",
            value=count,
            drmap_edp_js=_min_edp(
                layer, DRMAP, architecture, profile,
                TABLE2_BUFFERS, scheme, organization=organization,
                controller=controller, contention=contention,
                strategy=strategy, seed=seed),
            worst_edp_js=_min_edp(
                layer, MAPPING_2, architecture, profile,
                TABLE2_BUFFERS, scheme, organization=organization,
                controller=controller, contention=contention,
                strategy=strategy, seed=seed),
        ))
    return points


def sweep_buffers(
    layer: ConvLayer,
    sizes_kb: Sequence[int] = (16, 32, 64, 128, 256),
    architecture: DRAMArchitecture = DRAMArchitecture.DDR3,
    scheme: ReuseScheme = ReuseScheme.ADAPTIVE_REUSE,
    device: Optional[DeviceProfile] = None,
    controller: Optional[ControllerConfig] = None,
    contention: Optional[ContentionConfig] = None,
    strategy=None,
    seed: Optional[int] = None,
) -> List[SweepPoint]:
    """EDP vs on-chip buffer capacity (all three buffers together)."""
    profile = resolve_device(device)
    points = []
    for size_kb in sizes_kb:
        buffers = BufferConfig(
            ifms_bytes=size_kb * 1024,
            wghs_bytes=size_kb * 1024,
            ofms_bytes=size_kb * 1024,
        )
        points.append(SweepPoint(
            parameter="buffer_kb",
            value=size_kb,
            drmap_edp_js=_min_edp(
                layer, DRMAP, architecture, profile, buffers, scheme,
                controller=controller, contention=contention,
                strategy=strategy, seed=seed),
            worst_edp_js=_min_edp(
                layer, MAPPING_2, architecture, profile, buffers,
                scheme, controller=controller,
                contention=contention, strategy=strategy, seed=seed),
        ))
    return points


def sweep_precision(
    layer_factory: Callable[[int], ConvLayer],
    bytes_per_element: Sequence[int] = (1, 2, 4),
    architecture: DRAMArchitecture = DRAMArchitecture.DDR3,
    scheme: ReuseScheme = ReuseScheme.ADAPTIVE_REUSE,
    device: Optional[DeviceProfile] = None,
    controller: Optional[ControllerConfig] = None,
    contention: Optional[ContentionConfig] = None,
    strategy=None,
    seed: Optional[int] = None,
) -> List[SweepPoint]:
    """EDP vs data precision (int8 / fp16 / fp32 footprints).

    ``layer_factory(bpe)`` must build the layer at the given precision.
    """
    profile = resolve_device(device)
    points = []
    for bpe in bytes_per_element:
        layer = layer_factory(bpe)
        points.append(SweepPoint(
            parameter="bytes_per_element",
            value=bpe,
            drmap_edp_js=_min_edp(
                layer, DRMAP, architecture, profile,
                TABLE2_BUFFERS, scheme, controller=controller,
                strategy=strategy, seed=seed),
            worst_edp_js=_min_edp(
                layer, MAPPING_2, architecture, profile,
                TABLE2_BUFFERS, scheme, controller=controller,
                strategy=strategy, seed=seed),
        ))
    return points


def sweep_batch(
    layer_factory: Callable[[int], ConvLayer],
    batches: Sequence[int] = (1, 2, 4, 8),
    architecture: DRAMArchitecture = DRAMArchitecture.DDR3,
    scheme: ReuseScheme = ReuseScheme.ADAPTIVE_REUSE,
    device: Optional[DeviceProfile] = None,
    controller: Optional[ControllerConfig] = None,
    contention: Optional[ContentionConfig] = None,
    strategy=None,
    seed: Optional[int] = None,
) -> List[SweepPoint]:
    """EDP vs batch size (activations scale, weights amortize)."""
    profile = resolve_device(device)
    points = []
    for batch in batches:
        layer = layer_factory(batch)
        points.append(SweepPoint(
            parameter="batch",
            value=batch,
            drmap_edp_js=_min_edp(
                layer, DRMAP, architecture, profile,
                TABLE2_BUFFERS, scheme, controller=controller,
                strategy=strategy, seed=seed),
            worst_edp_js=_min_edp(
                layer, MAPPING_2, architecture, profile,
                TABLE2_BUFFERS, scheme, controller=controller,
                strategy=strategy, seed=seed),
        ))
    return points


def sweep_network_batch(
    workload,
    batches: Sequence[int] = (1, 2, 4, 8),
    architecture: DRAMArchitecture = DRAMArchitecture.DDR3,
    scheme: ReuseScheme = ReuseScheme.ADAPTIVE_REUSE,
    device: Optional[DeviceProfile] = None,
    buffers: BufferConfig = TABLE2_BUFFERS,
    controller: Optional[ControllerConfig] = None,
    contention: Optional[ContentionConfig] = None,
    strategy=None,
    seed: Optional[int] = None,
) -> List[SweepPoint]:
    """Network EDP vs batch size over a whole workload graph.

    ``workload`` is a registered workload name (see
    :func:`repro.workloads.workload_names`) or a builder callable
    accepting ``batch=``; each sweep value rebuilds the graph at that
    batch, lowers it, and sums the per-layer minimum EDPs — the
    network-level counterpart of :func:`sweep_batch`.
    """
    from ..workloads.registry import get_workload

    profile = resolve_device(device)
    points = []
    for batch in batches:
        if callable(workload):
            network = workload(batch=batch)
        else:
            network = get_workload(workload, batch=batch)
        drmap_total = 0.0
        worst_total = 0.0
        for layer in network.lower():
            drmap_total += _min_edp(
                layer, DRMAP, architecture, profile, buffers, scheme,
                controller=controller, contention=contention,
                strategy=strategy, seed=seed)
            worst_total += _min_edp(
                layer, MAPPING_2, architecture, profile, buffers,
                scheme, controller=controller,
                contention=contention, strategy=strategy, seed=seed)
        points.append(SweepPoint(
            parameter=f"{network.name}:batch",
            value=batch,
            drmap_edp_js=drmap_total,
            worst_edp_js=worst_total,
        ))
    return points


def sweep_table(points: List[SweepPoint]) -> List[List[str]]:
    """Rows for :func:`repro.core.report.format_table`."""
    return [
        [str(p.value), f"{p.drmap_edp_js:.3e}", f"{p.worst_edp_js:.3e}",
         f"{p.drmap_advantage:.1f}x"]
        for p in points
    ]
