"""Pareto-front utilities over (energy, latency) design points.

The paper's abstract promises identification of "the pareto-optimal
design choices"; these helpers extract the energy/latency front from a
DSE record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class ObjectivePoint:
    """A design point projected onto the (energy, latency) plane."""

    energy_nj: float
    latency_ns: float
    payload: object = None

    def dominates(self, other: "ObjectivePoint") -> bool:
        """True when this point is no worse in both objectives and
        strictly better in at least one."""
        no_worse = (self.energy_nj <= other.energy_nj
                    and self.latency_ns <= other.latency_ns)
        strictly_better = (self.energy_nj < other.energy_nj
                           or self.latency_ns < other.latency_ns)
        return no_worse and strictly_better


class ParetoAccumulator:
    """Incrementally maintained non-dominated set.

    The batch :func:`pareto_front` needs every point in memory; this
    accumulator supports the streaming reduction of
    :class:`repro.core.engine.ExplorationEngine` by folding points in
    one at a time, in any arrival order, while holding only the current
    front.

    Points with identical objective vectors are collapsed to a single
    entry; the optional ``order`` argument of :meth:`add` makes the
    survivor deterministic under out-of-order arrival (the lowest
    ``order`` wins, e.g. the flattened grid index of a sharded DSE).

    Example
    -------
    >>> acc = ParetoAccumulator()
    >>> acc.add(ObjectivePoint(2.0, 1.0))
    True
    >>> acc.add(ObjectivePoint(1.0, 2.0))
    True
    >>> acc.add(ObjectivePoint(3.0, 3.0))  # dominated
    False
    >>> [(p.energy_nj, p.latency_ns) for p in acc.front()]
    [(1.0, 2.0), (2.0, 1.0)]
    """

    def __init__(self) -> None:
        self._kept: List[Tuple[Optional[int], ObjectivePoint]] = []

    def __len__(self) -> int:
        return len(self._kept)

    def add(self, point: ObjectivePoint,
            order: Optional[int] = None) -> bool:
        """Fold one point in; True when it joins the front."""
        for position, (kept_order, kept) in enumerate(self._kept):
            if (kept.energy_nj == point.energy_nj
                    and kept.latency_ns == point.latency_ns):
                # Identical vector: the earlier arrival survives.
                if (order is not None and kept_order is not None
                        and order < kept_order):
                    self._kept[position] = (order, point)
                    return True
                return False
            if kept.dominates(point):
                return False
        self._kept = [
            (kept_order, kept) for kept_order, kept in self._kept
            if not point.dominates(kept)
        ]
        self._kept.append((order, point))
        return True

    def front(self) -> List[ObjectivePoint]:
        """The current front, sorted by increasing energy."""
        return [point for _order, point in sorted(
            self._kept,
            key=lambda entry: (entry[1].energy_nj, entry[1].latency_ns))]


def pareto_front(points: Sequence[ObjectivePoint]) -> List[ObjectivePoint]:
    """Non-dominated subset, sorted by increasing energy.

    Duplicate objective vectors are collapsed to a single entry.
    """
    if not points:
        return []
    ordered = sorted(points,
                     key=lambda p: (p.energy_nj, p.latency_ns))
    front: List[ObjectivePoint] = []
    best_latency = float("inf")
    last_energy = None
    for point in ordered:
        if point.latency_ns < best_latency:
            if front and point.energy_nj == last_energy:
                # Same energy with better latency: replace.
                front.pop()
            front.append(point)
            best_latency = point.latency_ns
            last_energy = point.energy_nj
    return front


def project(
    items: Sequence[T],
    energy_of: Callable[[T], float],
    latency_of: Callable[[T], float],
) -> List[ObjectivePoint]:
    """Project arbitrary items onto the objective plane."""
    return [
        ObjectivePoint(
            energy_nj=energy_of(item),
            latency_ns=latency_of(item),
            payload=item,
        )
        for item in items
    ]


def points_from_dse(dse_points) -> List[ObjectivePoint]:
    """Objective points from :class:`repro.core.dse.DsePoint` records."""
    return project(
        dse_points,
        energy_of=lambda p: p.result.energy_nj,
        latency_of=lambda p: p.result.latency_ns,
    )


def hypervolume_2d(
    front: Sequence[ObjectivePoint],
    reference: Tuple[float, float],
) -> float:
    """Dominated hypervolume against ``reference = (energy, latency)``.

    A scalar quality measure for comparing fronts (larger is better).
    """
    ordered = sorted(front, key=lambda p: p.energy_nj)
    ref_energy, ref_latency = reference
    volume = 0.0
    previous_latency = ref_latency
    for point in ordered:
        if point.energy_nj > ref_energy or point.latency_ns > ref_latency:
            continue
        width = ref_energy - point.energy_nj
        height = previous_latency - point.latency_ns
        if height > 0:
            volume += width * height
            previous_latency = point.latency_ns
    return volume
