"""Design space exploration — paper Algorithm 1 and Fig. 7.

For each layer of a network the DSE sweeps

1. the candidate tile sizes (step 1a; every combination whose three
   tiles fit the on-chip buffers),
2. the scheduling schemes (step 1b),
3. the DRAM mapping policies of Table I (step 2),

estimates the EDP of every admissible combination with the analytical
model (step 3), and returns both the full exploration record and the
minimum-EDP choice.

Execution is delegated to :mod:`repro.core.engine`: pass ``jobs`` /
``chunk_size`` (or a pre-built :class:`~repro.core.engine.ExplorationEngine`)
to shard the grid across worker processes.  Results are identical for
every ``jobs`` value — points come back in the serial nested-loop
order.

Workloads can be given as flat layer lists (the paper's shape) or as
:class:`repro.workloads.Network` graphs; graphs lower to the same
7-dim loop nests, and :func:`explore_workload` additionally folds the
record back onto the DAG (network EDP + hand-off analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..caching import CacheStats
from ..cnn.layer import ConvLayer
from ..cnn.scheduling import ALL_SCHEMES, ReuseScheme
from ..cnn.tiling import BufferConfig, TABLE2_BUFFERS, TilingConfig
from ..dram.architecture import DRAMArchitecture
from ..dram.contention import ContentionConfig
from ..dram.device import DeviceProfile
from ..dram.policies import ControllerConfig
from ..dram.spec import DRAMOrganization
from ..errors import DseError
from ..mapping.catalog import TABLE1_MAPPINGS
from ..mapping.policy import MappingPolicy
from .edp import LayerEDP


@dataclass(frozen=True)
class DsePoint:
    """One evaluated design point."""

    layer_name: str
    architecture: DRAMArchitecture
    scheme: ReuseScheme
    policy: MappingPolicy
    tiling: TilingConfig
    result: LayerEDP

    @property
    def edp_js(self) -> float:
        """EDP of the point in joule-seconds."""
        return self.result.edp_js


@dataclass
class DseResult:
    """Full exploration record for one layer (or one network layer set).

    Besides the evaluated ``points``, the record carries the search
    provenance: which strategy produced it, under which seed, how
    large the full grid was (``total_points``), how many points were
    evaluated with exact characterization (``evaluated_points``) and
    how many were scored by the closed-form analytical model
    (``scored_points``; the funnel's phase 1).  Under the default
    exhaustive strategy ``evaluated_points == total_points`` and
    ``scored_points == 0``.  Records built by pre-strategy callers
    (``DseResult()``) default to exhaustive with zero counts.

    ``eval_cache_stats`` reports the
    :class:`~repro.core.engine.EvaluationCache` hit/miss counters the
    exploration caused — the engine's serial-path delta plus every
    worker's per-chunk deltas — so cache effectiveness is visible per
    run, not just process-wide (``None`` for records built outside
    the engine).
    """

    points: List[DsePoint] = field(default_factory=list)
    strategy: str = "exhaustive"
    seed: Optional[int] = None
    total_points: int = 0
    evaluated_points: int = 0
    scored_points: int = 0
    eval_cache_stats: Optional[CacheStats] = None

    @property
    def exact_evaluation_fraction(self) -> float:
        """Fraction of the grid evaluated exactly (1.0 if unknown)."""
        if not self.total_points:
            return 1.0
        return self.evaluated_points / self.total_points

    def best(
        self,
        architecture: Optional[DRAMArchitecture] = None,
        scheme: Optional[ReuseScheme] = None,
        policy: Optional[MappingPolicy] = None,
        layer_name: Optional[str] = None,
    ) -> DsePoint:
        """Minimum-EDP point among those matching the given filters."""
        candidates = self.filtered(
            architecture=architecture, scheme=scheme, policy=policy,
            layer_name=layer_name)
        if not candidates:
            raise DseError("no DSE point matches the given filters")
        return min(candidates, key=lambda point: point.edp_js)

    def filtered(
        self,
        architecture: Optional[DRAMArchitecture] = None,
        scheme: Optional[ReuseScheme] = None,
        policy: Optional[MappingPolicy] = None,
        layer_name: Optional[str] = None,
    ) -> List[DsePoint]:
        """Points matching all provided filters."""
        def keep(point: DsePoint) -> bool:
            if architecture is not None \
                    and point.architecture is not architecture:
                return False
            if scheme is not None and point.scheme is not scheme:
                return False
            if policy is not None and point.policy != policy:
                return False
            if layer_name is not None and point.layer_name != layer_name:
                return False
            return True

        return [point for point in self.points if keep(point)]

    def extend(self, other: "DseResult") -> None:
        """Merge another exploration record into this one.

        Evaluation counts accumulate; the strategy label is kept when
        both records agree and becomes ``"mixed"`` otherwise.
        """
        self.points.extend(other.points)
        self.total_points += other.total_points
        self.evaluated_points += other.evaluated_points
        self.scored_points += other.scored_points
        if other.eval_cache_stats is not None:
            mine = self.eval_cache_stats or CacheStats(hits=0, misses=0)
            self.eval_cache_stats = CacheStats(
                hits=mine.hits + other.eval_cache_stats.hits,
                misses=mine.misses + other.eval_cache_stats.misses)
        if self.strategy != other.strategy:
            self.strategy = "mixed"


def _engine_for(jobs, chunk_size, engine, eval_model="auto"):
    """Resolve the execution engine for the explore_* entry points.

    ``eval_model`` configures the constructed engine's chunk
    evaluation backend; a pre-built ``engine`` keeps its own setting.
    """
    from .engine import DEFAULT_CHUNK_SIZE, ExplorationEngine

    if engine is not None:
        return engine
    return ExplorationEngine(
        jobs=jobs,
        chunk_size=(chunk_size if chunk_size is not None
                    else DEFAULT_CHUNK_SIZE),
        eval_model=eval_model)


def explore_layer(
    layer: ConvLayer,
    architectures: Optional[Sequence[DRAMArchitecture]] = None,
    schemes: Sequence[ReuseScheme] = ALL_SCHEMES,
    policies: Sequence[MappingPolicy] = TABLE1_MAPPINGS,
    buffers: BufferConfig = TABLE2_BUFFERS,
    organization: Optional[DRAMOrganization] = None,
    tilings: Optional[Iterable[TilingConfig]] = None,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    engine=None,
    eval_model: str = "auto",
    device: Optional[DeviceProfile] = None,
    controller: Optional[ControllerConfig] = None,
    contention: Optional[ContentionConfig] = None,
    strategy=None,
    seed: Optional[int] = None,
    strategy_options: Optional[dict] = None,
) -> DseResult:
    """Algorithm 1 for one layer: evaluate every admissible combination.

    Parameters
    ----------
    tilings:
        Candidate tilings; by default the buffer-maximal power-of-two
        grid of :func:`repro.cnn.tiling.enumerate_tilings`.
    jobs / chunk_size:
        Sharding knobs, forwarded to
        :class:`repro.core.engine.ExplorationEngine`; ``jobs=1``
        evaluates in-process, ``jobs=0`` uses every CPU.
    engine:
        Pre-built engine to run on (overrides ``jobs``/``chunk_size``);
        reusing one engine across calls shares its evaluation caches.
    eval_model:
        Chunk-evaluation backend (``"auto"`` / ``"scalar"`` /
        ``"vector"``, see
        :class:`repro.core.engine.ExplorationEngine`); ignored when a
        pre-built ``engine`` is passed.  Results are bit-for-bit
        identical across backends.
    device:
        DRAM device profile to explore on (default: the paper's
        Table-II device); every requested architecture must be in its
        capability set.
    controller:
        Memory-controller configuration (scheduler + row policy) the
        characterizations are measured under (default: the paper's
        FCFS/open-row Table-II controller).
    contention:
        Channel-contention configuration (requestor count + arbiter)
        the characterizations are measured under (default: the single
        uncontended requestor).
    strategy / seed / strategy_options:
        Search strategy (a registered name — ``exhaustive``,
        ``random``, ``greedy-refine``, ``funnel`` — or a
        :class:`repro.core.strategies.SearchStrategy` instance), the
        seed of its randomized choices, and its constructor options.
        ``None`` uses the engine's default (exhaustive).
    """
    eng = _engine_for(jobs, chunk_size, engine, eval_model)
    tilings_seq = None if tilings is None else list(tilings)
    return eng.explore_layer(
        layer, architectures=architectures, schemes=schemes,
        policies=policies, buffers=buffers, organization=organization,
        tilings=tilings_seq, device=device, controller=controller,
        contention=contention, strategy=strategy, seed=seed,
        strategy_options=strategy_options)


def explore_network(
    layers,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    engine=None,
    eval_model: str = "auto",
    **kwargs,
) -> DseResult:
    """Algorithm 1 over all layers of a network.

    ``layers`` is either the historical ``Sequence[ConvLayer]`` or a
    :class:`repro.workloads.Network`, which is lowered to its 7-dim
    loop nests first (traffic-only graph ops contribute no design
    points).  The whole ``layer x architecture x scheme x policy x
    tiling`` grid is sharded as one unit, so with ``jobs > 1`` small
    layers do not serialize behind large ones.  ``strategy`` /
    ``seed`` / ``strategy_options`` select the search strategy as in
    :func:`explore_layer`.
    """
    eng = _engine_for(jobs, chunk_size, engine, eval_model)
    return eng.explore_network(layers, **kwargs)


def explore_workload(
    workload,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    engine=None,
    eval_model: str = "auto",
    architecture: Optional[DRAMArchitecture] = None,
    scheme: Optional[ReuseScheme] = None,
    **kwargs,
):
    """Graph-aware Algorithm 1: explore a workload, aggregate on the DAG.

    ``workload`` is a :class:`repro.workloads.Network` or a registered
    workload name (see :func:`repro.workloads.workload_names`).
    Returns ``(network, result, summary)`` where ``summary`` is the
    topological :class:`repro.workloads.NetworkDseSummary` — per-op
    minimum-EDP points, the network EDP, and the feature-map hand-off
    residency analysis.

    ``architecture`` / ``scheme`` restrict both the explored grid and
    the aggregation (pass them instead of ``architectures=`` /
    ``schemes=`` when you want a single slice end to end).
    """
    from ..workloads import Network, get_workload, network_dse_summary

    if not isinstance(workload, Network):
        workload = get_workload(workload)
    if architecture is not None:
        if "architectures" in kwargs:
            raise DseError(
                "pass either architecture= or architectures=, not both")
        kwargs["architectures"] = (architecture,)
    if scheme is not None:
        if "schemes" in kwargs:
            raise DseError(
                "pass either scheme= or schemes=, not both")
        kwargs["schemes"] = (scheme,)
    eng = _engine_for(jobs, chunk_size, engine, eval_model)
    result = eng.explore_network(workload, **kwargs)
    summary = network_dse_summary(
        workload, result, architecture=architecture, scheme=scheme,
        buffers=kwargs.get("buffers", TABLE2_BUFFERS))
    return workload, result, summary


def best_mapping_per_layer(
    result: DseResult,
    architecture: DRAMArchitecture,
    scheme: ReuseScheme,
) -> Dict[str, DsePoint]:
    """Algorithm 1 output: min-EDP mapping (and tiling) per layer."""
    by_layer: Dict[str, DsePoint] = {}
    for point in result.filtered(architecture=architecture, scheme=scheme):
        incumbent = by_layer.get(point.layer_name)
        if incumbent is None or point.edp_js < incumbent.edp_js:
            by_layer[point.layer_name] = point
    return by_layer


def min_edp_series(
    result: DseResult,
    architecture: DRAMArchitecture,
    scheme: ReuseScheme,
    policy: MappingPolicy,
    layer_names: Sequence[str],
) -> Tuple[List[float], float]:
    """Per-layer min-EDP (over tilings) for one mapping, plus the total.

    This is one bar group of Fig. 9: the EDP each mapping policy
    achieves per layer with its best admissible tiling.
    """
    series = []
    for name in layer_names:
        best = result.best(
            architecture=architecture, scheme=scheme, policy=policy,
            layer_name=name)
        series.append(best.edp_js)
    return series, sum(series)
