"""Vectorized chunk evaluation of the Algorithm-1 grid.

The engine's scalar path evaluates one flattened grid index at a time:
decode the index, look up traffic, compute the Eq. 2/3 transition
counts, multiply by the Fig.-1 per-condition costs, wrap a
:class:`~repro.core.edp.LayerEDP`.  This module evaluates a whole
contiguous index range as numpy batches instead:

1. **Decode as array arithmetic** — the ``tiling x policy x scheme x
   architecture`` divmod chain of
   :meth:`~repro.core.engine.ExplorationContext.decode` runs once over
   the whole chunk (``%`` / ``//`` on index vectors).
2. **Eq. 2/3 as broadcast integer arithmetic** — transition counts for
   every distinct run length come from
   :func:`repro.mapping.counts.count_transitions_batch` (one
   ``last // stride`` broadcast per mapping dimension, conservation
   checked across the batch).
3. **EDP via per-(architecture, condition) cost tables** — the
   per-condition ``(cycles, read nJ, write nJ)`` triples are pulled
   once per architecture from the characterizations the context
   fetched through ``CharacterizationCache.get_many``
   (:meth:`~repro.dram.characterize.CharacterizationResult.cost_vectors`)
   and folded with the counts into dense ``[arch, policy, length]``
   cost tables; per-point work is then pure gather + multiply-add.

Bit-for-bit identity with the scalar path
-----------------------------------------
The kernel is *not* allowed to be "numerically close": every
``DsePoint`` float must equal the scalar path's bit for bit, so
argmins, reduced merges and Pareto fronts are literally the same
objects.  Three facts make that achievable:

* numpy float64 elementwise ops are the same IEEE-754 double ops
  CPython performs, and every integer involved is far below 2**53, so
  int -> float conversions are exact;
* the scalar accumulations (:func:`repro.core.conditions.run_cost`,
  ``_data_type_cost``, ``layer_edp``) are left-associated sums whose
  term *order* the kernel replicates exactly;
* terms the scalar path skips (zero counts, zero tile fetches,
  zero-length runs) always contribute exactly ``+0.0`` here, and
  ``x + 0.0`` is a bitwise no-op for the non-negative finite values
  this model produces — so unconditional batch adds cannot perturb
  the result.

The one ordering subtlety is the tile-opening access: the scalar model
merges it into the row-conflict slot *in place* when the row loop
wrapped (``(dif_rows + 1) * cost``) but appends it as the *last* term
when it did not.  The kernel reproduces both orderings with a mask
over the batch.

Eligibility and fallback
------------------------
``eval_model="auto"`` vectorizes every chunk the closed-form Eq. 2/3
model backs — which today is every chunk the engine produces (the
walk-based and cycle-replay backends of :mod:`repro.core.walk_edp` are
higher-fidelity *validation* paths, not engine backends; adaptive
reuse is resolved per ``(layer, tiling, scheme)`` at table-build time
through the same memo the scalar path uses).  A segment falls back to
the scalar loop only when it contains a *poisoned* point: a run
longer than the DRAM capacity (the scalar path raises
:class:`~repro.errors.CapacityError` there, and the fallback raises
it identically) or a run long enough to wrap the rank/channel loops
(where merge order becomes data-dependent; never the case for
tile-sized runs).  ``eval_model="scalar"`` forces the reference loop;
``"vector"`` requires numpy and vectorizes with the same per-segment
poison fallback.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    np = None

from ..dram.architecture import DRAMArchitecture
from ..errors import DseError
from ..mapping.counts import count_transitions_batch
from ..mapping.dims import Dim
from .conditions import (
    AccessCost,
    DIM_TO_CONDITION,
    INITIAL_ACCESS_CONDITION,
)
from .dse import DsePoint
from .edp import LayerEDP

#: Recognized ``eval_model`` values.
EVAL_MODELS = ("auto", "scalar", "vector")

#: ``Callable[[start, stop], List[DsePoint]]`` — what the engine's
#: shard executors call per chunk.
ChunkFn = Callable[[int, int], List[DsePoint]]


def have_numpy() -> bool:
    """Whether the vector kernel's numpy dependency is importable."""
    return np is not None


def validate_eval_model(eval_model: str) -> str:
    """Validate an ``eval_model`` knob value, returning it unchanged.

    ``"vector"`` additionally requires numpy (``"auto"`` silently
    degrades to the scalar path without it).
    """
    if eval_model not in EVAL_MODELS:
        choices = ", ".join(EVAL_MODELS)
        raise DseError(
            f"unknown eval_model {eval_model!r}; choose from: {choices}")
    if eval_model == "vector" and not have_numpy():
        raise DseError(
            "eval_model='vector' requires numpy; install it or use "
            "'auto' (which falls back to the scalar path)")
    return eval_model


# ----------------------------------------------------------------------
# Per-layer tables
# ----------------------------------------------------------------------

class _LayerTables:
    """Dense per-layer lookup tables the chunk kernel gathers from.

    Built once per (evaluator, layer) through the *same*
    :class:`~repro.core.engine.EvaluationCache` memos the scalar path
    uses, so adaptive resolution and traffic are shared — and every
    float in the tables is produced by the exact accumulation-order
    replica of :func:`~repro.core.conditions.run_cost` described in
    the module docstring.
    """

    __slots__ = (
        "resolved", "length_id", "read_tiles", "write_tiles",
        "cap_poison", "wrap_poison", "any_poison",
        "cycles", "read_nj", "write_nj", "tck_ns",
    )

    def __init__(self, context, cache, grid,
                 cost_vectors: Dict[DRAMArchitecture, Dict]) -> None:
        organization = context.organization
        schemes = context.schemes
        tilings = grid.tilings
        n_schemes, n_tilings = len(schemes), len(tilings)
        n_types = 3  # ifms / wghs / ofms, in by_type() order

        #: resolved[scheme_idx][tiling_idx] — the concrete scheme.
        self.resolved = [[None] * n_tilings for _ in range(n_schemes)]
        raw_lengths = np.zeros((n_schemes, n_tilings, n_types),
                               dtype=np.int64)
        self.read_tiles = np.zeros((n_schemes, n_tilings, n_types))
        self.write_tiles = np.zeros((n_schemes, n_tilings, n_types))
        lengths_seen = set()
        for s, scheme in enumerate(schemes):
            for t, tiling in enumerate(tilings):
                resolved = cache.resolve_scheme(grid.layer, tiling, scheme)
                traffic = cache.traffic(grid.layer, tiling, resolved)
                self.resolved[s][t] = resolved
                for y, type_traffic in enumerate(
                        traffic.by_type().values()):
                    n_accesses = organization.accesses_for_bytes(
                        type_traffic.tile_bytes)
                    raw_lengths[s, t, y] = n_accesses
                    self.read_tiles[s, t, y] = type_traffic.read_tiles
                    self.write_tiles[s, t, y] = type_traffic.write_tiles
                    if n_accesses:
                        lengths_seen.add(n_accesses)

        # Length-id 0 is the reserved zero-length run (zero cost);
        # over-capacity lengths poison their (scheme, tiling) cells —
        # the scalar fallback raises CapacityError exactly where the
        # reference loop would.
        capacity = min(
            policy.capacity(organization) for policy in context.policies)
        ok_lengths = sorted(n for n in lengths_seen if n <= capacity)
        over = {n for n in lengths_seen if n > capacity}
        id_of = {n: i + 1 for i, n in enumerate(ok_lengths)}
        n_lengths = len(ok_lengths) + 1
        self.length_id = np.zeros((n_schemes, n_tilings, n_types),
                                  dtype=np.int64)
        self.cap_poison = np.zeros((n_schemes, n_tilings), dtype=bool)
        for s in range(n_schemes):
            for t in range(n_tilings):
                for y in range(n_types):
                    n_accesses = int(raw_lengths[s, t, y])
                    if n_accesses in over:
                        self.cap_poison[s, t] = True
                    elif n_accesses:
                        self.length_id[s, t, y] = id_of[n_accesses]

        # Cost tables [arch, policy, length_id]; column 0 stays 0.0.
        policies = context.policies
        architectures = context.architectures
        n_policies, n_archs = len(policies), len(architectures)
        self.cycles = np.zeros((n_archs, n_policies, n_lengths))
        self.read_nj = np.zeros((n_archs, n_policies, n_lengths))
        self.write_nj = np.zeros((n_archs, n_policies, n_lengths))
        #: wrap_poison[policy_idx, length_id] — rank/channel loops
        #: wrapped, so condition-merge order is data-dependent.
        self.wrap_poison = np.zeros((n_policies, n_lengths), dtype=bool)
        length_array = np.asarray(ok_lengths, dtype=np.int64)
        for p, policy in enumerate(policies):
            counts = count_transitions_batch(
                policy, organization, length_array)
            n_intra = len(policy.loop_order)
            if counts[n_intra:].any():
                self.wrap_poison[p, 1:] = counts[n_intra:].any(axis=0)
            row_position = policy.loop_order.index(Dim.ROW)
            row_zero = counts[row_position] == 0
            for a, architecture in enumerate(architectures):
                vectors = cost_vectors[architecture]
                acc_c = np.zeros(len(ok_lengths))
                acc_r = np.zeros(len(ok_lengths))
                acc_w = np.zeros(len(ok_lengths))
                for position, dim in enumerate(policy.loop_order):
                    count = counts[position].astype(np.float64)
                    if dim is Dim.ROW:
                        # Initial access merged into the row-conflict
                        # slot wherever the row loop wrapped.
                        count = count + np.where(row_zero, 0.0, 1.0)
                    c, r, w = vectors[DIM_TO_CONDITION[dim]]
                    acc_c = acc_c + count * c
                    acc_r = acc_r + count * r
                    acc_w = acc_w + count * w
                # ... and appended as the last term where it did not.
                c, r, w = vectors[INITIAL_ACCESS_CONDITION]
                acc_c = np.where(row_zero, acc_c + 1 * c, acc_c)
                acc_r = np.where(row_zero, acc_r + 1 * r, acc_r)
                acc_w = np.where(row_zero, acc_w + 1 * w, acc_w)
                self.cycles[a, p, 1:] = acc_c
                self.read_nj[a, p, 1:] = acc_r
                self.write_nj[a, p, 1:] = acc_w

        self.any_poison = bool(
            self.cap_poison.any() or self.wrap_poison.any())
        self.tck_ns = [
            context.characterizations[architecture].tck_ns
            for architecture in architectures
        ]

    def poison_mask(self, s_idx, t_idx, p_idx):
        """Per-point mask of cells needing the scalar fallback."""
        mask = self.cap_poison[s_idx, t_idx]
        for y in range(3):
            mask = mask | self.wrap_poison[
                p_idx, self.length_id[s_idx, t_idx, y]]
        return mask


def _cost_fingerprint(context, cost_vectors) -> tuple:
    """Hashable identity of a per-architecture cost-vector set.

    The clock periods ride along because the tables carry them (they
    come from the context's characterizations, not ``cost_vectors``).
    """
    return tuple(
        (architecture, context.characterizations[architecture].tck_ns,
         tuple(cost_vectors[architecture].items()))
        for architecture in context.architectures)


def _layer_tables_memoized(context, cache, grid, cost_vectors,
                           fingerprint) -> _LayerTables:
    """Fetch (or build) one layer's table set through the cache.

    Table construction is the vector paths' only per-run fixed cost;
    memoizing it on the :class:`~repro.core.engine.EvaluationCache`
    makes repeated explorations (and the funnel's score-then-reevaluate
    double pass) pay it once.  The key pins everything the tables are a
    pure function of — layer, tilings, grid axes, geometry and the
    cost vectors themselves.
    """
    key = (grid.layer, grid.tilings, context.schemes, context.policies,
           context.organization, fingerprint)
    return cache.tables_memo.get_or_compute(
        key, lambda: _LayerTables(context, cache, grid, cost_vectors))


# ----------------------------------------------------------------------
# The chunk evaluator
# ----------------------------------------------------------------------

def iter_layer_segments(context, start: int, stop: int):
    """Split ``[start, stop)`` at the context's layer boundaries."""
    position = bisect.bisect_right(context.offsets, start) - 1
    total = context.total_points
    while start < stop:
        if position + 1 < len(context.offsets):
            layer_end = context.offsets[position + 1]
        else:
            layer_end = total
        segment_stop = min(stop, layer_end)
        yield position, start, segment_stop
        start = segment_stop
        position += 1


class ChunkEvaluator:
    """Vectorized ``(start, stop) -> List[DsePoint]`` chunk evaluator.

    One instance lives per engine (serial path) or per worker process
    (parallel path); per-layer tables are built lazily on the first
    chunk touching the layer and reused for the rest of the run.
    ``scalar_fallback`` is the reference per-point loop, used for
    poisoned segments (see the module docstring).
    """

    def __init__(self, context, cache,
                 scalar_fallback: ChunkFn) -> None:
        self.context = context
        self.cache = cache
        self.scalar_fallback = scalar_fallback
        self._tables: Dict[int, _LayerTables] = {}
        self._cost_vectors = {
            architecture: characterization.cost_vectors()
            for architecture, characterization
            in context.characterizations.items()
        }
        self._fingerprint = _cost_fingerprint(context, self._cost_vectors)

    def _layer_tables(self, layer_pos: int) -> _LayerTables:
        tables = self._tables.get(layer_pos)
        if tables is None:
            tables = _layer_tables_memoized(
                self.context, self.cache,
                self.context.layers[layer_pos], self._cost_vectors,
                self._fingerprint)
            self._tables[layer_pos] = tables
        return tables

    def __call__(self, start: int, stop: int) -> List[DsePoint]:
        points: List[DsePoint] = []
        for layer_pos, seg_start, seg_stop in iter_layer_segments(
                self.context, start, stop):
            segment = self._segment(layer_pos, seg_start, seg_stop)
            if segment is None:
                segment = self.scalar_fallback(seg_start, seg_stop)
            points.extend(segment)
        return points

    def _segment(self, layer_pos: int, start: int,
                 stop: int) -> Optional[List[DsePoint]]:
        """Vector-evaluate one within-layer segment (None: fall back)."""
        context = self.context
        tables = self._layer_tables(layer_pos)
        grid = context.layers[layer_pos]
        n_tilings = len(grid.tilings)
        n_policies = len(context.policies)
        n_schemes = len(context.schemes)

        # Grid decode as array arithmetic (tiling innermost,
        # architecture outermost — ExplorationContext.decode).
        local = np.arange(start - grid.offset, stop - grid.offset,
                          dtype=np.int64)
        rest, t_idx = np.divmod(local, n_tilings)
        rest, p_idx = np.divmod(rest, n_policies)
        a_idx, s_idx = np.divmod(rest, n_schemes)

        if tables.any_poison \
                and bool(tables.poison_mask(s_idx, t_idx, p_idx).any()):
            return None

        # Per-type gather + multiply-add, replicating _data_type_cost:
        # cycles = (CYC * read_tiles) + (CYC * write_tiles) and
        # energy = (RNJ * read_tiles) + (WNJ * write_tiles), with the
        # layer total left-associated over ifms, wghs, ofms.
        type_cycles = []
        type_energy = []
        for y in range(3):
            length = tables.length_id[s_idx, t_idx, y]
            reads = tables.read_tiles[s_idx, t_idx, y]
            writes = tables.write_tiles[s_idx, t_idx, y]
            cyc = tables.cycles[a_idx, p_idx, length]
            type_cycles.append(cyc * reads + cyc * writes)
            type_energy.append(
                tables.read_nj[a_idx, p_idx, length] * reads
                + tables.write_nj[a_idx, p_idx, length] * writes)
        cycles = (type_cycles[0] + type_cycles[1]) + type_cycles[2]
        energy = (type_energy[0] + type_energy[1]) + type_energy[2]

        # Materialize Python floats once (bitwise-identical doubles),
        # then build the same frozen dataclasses the scalar path does.
        layer_name = grid.layer.name
        architectures = context.architectures
        schemes = context.schemes
        policies = context.policies
        tilings = grid.tilings
        resolved = tables.resolved
        tck_ns = tables.tck_ns
        layer_edp, dse_point, access_cost = LayerEDP, DsePoint, AccessCost
        points: List[DsePoint] = []
        append = points.append
        for s, t, p, a, cyc, en, c0, e0, c1, e1, c2, e2 in zip(
                s_idx.tolist(), t_idx.tolist(),
                p_idx.tolist(), a_idx.tolist(),
                cycles.tolist(), energy.tolist(),
                type_cycles[0].tolist(), type_energy[0].tolist(),
                type_cycles[1].tolist(), type_energy[1].tolist(),
                type_cycles[2].tolist(), type_energy[2].tolist()):
            append(dse_point(
                layer_name=layer_name,
                architecture=architectures[a],
                scheme=schemes[s],
                policy=policies[p],
                tiling=tilings[t],
                result=layer_edp(
                    layer_name=layer_name,
                    energy_nj=en,
                    cycles=cyc,
                    tck_ns=tck_ns[a],
                    by_type={
                        "ifms": access_cost(c0, e0),
                        "wghs": access_cost(c1, e1),
                        "ofms": access_cost(c2, e2),
                    },
                    resolved_scheme=resolved[s][t],
                ),
            ))
        return points


def make_chunk_evaluator(context, cache, eval_model: str,
                         scalar_fallback: ChunkFn) -> ChunkFn:
    """Resolve the ``eval_model`` knob into a chunk-evaluation callable.

    ``"scalar"`` returns ``scalar_fallback`` unchanged; ``"vector"``
    and ``"auto"`` return a :class:`ChunkEvaluator` (with ``"auto"``
    degrading to the scalar path when numpy is unavailable).
    """
    validate_eval_model(eval_model)
    if eval_model == "scalar" or not have_numpy():
        return scalar_fallback
    return ChunkEvaluator(context, cache, scalar_fallback)


# ----------------------------------------------------------------------
# Batched analytical scoring (the funnel's prune phase)
# ----------------------------------------------------------------------

def batch_scores(context, cache) -> Optional[List[float]]:
    """Vectorized :func:`repro.core.strategies.analytical_scores`.

    Same per-layer tables as the exact kernel, but folded with the
    closed-form analytical characterization instead of the simulator's
    — and collapsed straight to the funnel's scalar score
    ``(energy * cycles) * tck_ns`` per point, replicating the scalar
    scoring loop's accumulation order term for term.  Returns ``None``
    when the batch path cannot run (numpy missing, or a poisoned
    length in the grid) so the caller can use the scalar loop.
    """
    if not have_numpy():
        return None
    from ..dram.analytical import analytical_characterization

    cost_vectors = {
        architecture: analytical_characterization(
            architecture, device=context.device,
            controller=context.controller).cost_vectors()
        for architecture in context.architectures
    }
    tck_ns = context.device.timings.tck_ns
    fingerprint = _cost_fingerprint(context, cost_vectors)
    scores: List[float] = []
    for grid in context.layers:
        tables = _layer_tables_memoized(
            context, cache, grid, cost_vectors, fingerprint)
        if tables.any_poison:
            return None
        # score[arch, scheme, policy, tiling], flattened in grid order.
        cycle_terms = []
        energy_terms = []
        for y in range(3):
            length = tables.length_id[:, :, y]  # [S, T]
            reads = tables.read_tiles[:, :, y]
            writes = tables.write_tiles[:, :, y]
            # Gather [A, P, S, T] -> [A, S, P, T] so axes match the
            # serial loop nest (arch, scheme, policy, tiling).
            cyc = np.transpose(
                tables.cycles[:, :, length], (0, 2, 1, 3))
            rnj = np.transpose(
                tables.read_nj[:, :, length], (0, 2, 1, 3))
            wnj = np.transpose(
                tables.write_nj[:, :, length], (0, 2, 1, 3))
            read_write = (reads + writes)[None, :, None, :]
            cycle_terms.append(read_write * cyc)
            energy_terms.append(
                reads[None, :, None, :] * rnj
                + writes[None, :, None, :] * wnj)
        cycles = (cycle_terms[0] + cycle_terms[1]) + cycle_terms[2]
        energy = (energy_terms[0] + energy_terms[1]) + energy_terms[2]
        scores.extend(((energy * cycles) * tck_ns).reshape(-1).tolist())
    return scores
