"""Parallel, sharded design-space exploration engine.

The paper's Algorithm 1 walks an embarrassingly parallel grid —
``layer x architecture x scheme x policy x tiling`` — and evaluates
every admissible point with the analytical Eq. 2/3 model.  The seed
reproduction did this strictly serially and recomputed every
intermediate per point.  This module is the scalable replacement:

1. **Sharding** — the flattened grid is cut into contiguous chunks of
   ``chunk_size`` points.  With ``jobs > 1`` the chunks are evaluated
   on a :class:`concurrent.futures.ProcessPoolExecutor`; each worker
   receives the full exploration context (layers, admissible tilings,
   pre-computed characterizations) once via the pool initializer, so
   per-chunk messages are just ``(start, stop)`` index ranges.
2. **Characterization caching** — the Fig.-1 per-condition costs are
   fetched through the process-wide LRU
   :class:`repro.dram.characterize.CharacterizationCache`, keyed on
   ``(profile, architecture)``, so ``characterize`` runs once per
   device configuration instead of once per design point.
3. **Evaluation memoization** — an :class:`EvaluationCache` memoizes
   the policy-independent intermediates of the EDP model: DRAM traffic
   per ``(layer, tiling, scheme)``, adaptive-scheme resolution, and the
   closed-form transition counts per ``(policy, organization, run
   length)``.  On the Table-II grid each traffic entry is reused 24x
   (6 policies x 4 architectures) and the transition counts collapse to
   a few hundred distinct keys.
4. **Streaming** — an :class:`ExplorationProgress` callback fires after
   every completed chunk, and :meth:`ExplorationEngine.explore_reduced`
   folds chunks into per-key minimum-EDP records plus an incremental
   Pareto front as they arrive, so arbitrarily large sweeps run in
   memory bounded by the front and the reduction keys, not the point
   count.
5. **Vectorized chunk evaluation** — ``eval_model="auto"`` (default)
   evaluates eligible chunks as numpy batches through
   :mod:`repro.core.eval_kernel` (grid decode, Eq. 2/3 counts and the
   EDP fold all run as array programs), bit-for-bit identical to the
   scalar reference loop, which ``eval_model="scalar"`` forces.
6. **Pluggable search** — the engine drives a registered
   :class:`repro.core.strategies.SearchStrategy` (``strategy=`` /
   ``seed=``) instead of hard-coding the grid walk.  The default
   ``exhaustive`` strategy reproduces the full sweep byte-identically;
   ``random`` / ``greedy-refine`` / ``funnel`` trade exact coverage
   for speed, re-using the same sharded executors, and every
   :class:`~repro.core.dse.DseResult` records its search provenance.

Determinism guarantees
----------------------
For any ``jobs`` and ``chunk_size``:

* :meth:`ExplorationEngine.explore_layer` /
  :meth:`~ExplorationEngine.explore_network` return the points in
  exactly the serial nested-loop order (architecture outermost, tiling
  innermost), so the records are byte-identical to a ``jobs=1`` run.
* minimum-EDP selections break ties by the *lowest flattened grid
  index*, matching what serial ``min()`` returns, independent of chunk
  completion order.

The CLI exposes the knobs as ``repro dse --jobs N --chunk-size M``
(``--jobs 0`` means one worker per CPU).

Example
-------
>>> from repro.cnn.models import alexnet
>>> from repro.core.engine import ExplorationEngine
>>> engine = ExplorationEngine(jobs=1)
>>> result = engine.explore_layer(alexnet()[0])
>>> result.best().edp_js > 0
True
"""

from __future__ import annotations

import bisect
import itertools
import os
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from functools import partial
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..caching import CacheStats
from ..cnn.layer import ConvLayer
from ..cnn.scheduling import ALL_SCHEMES, ReuseScheme
from ..cnn.tiling import (
    BufferConfig,
    TABLE2_BUFFERS,
    TilingConfig,
    enumerate_tilings,
)
from ..caching import LRUMemo
from ..cnn.traffic import LayerTraffic, layer_traffic
from ..dram.architecture import DRAMArchitecture
from ..dram.characterize import (
    CharacterizationCache,
    CharacterizationResult,
    DEFAULT_CHARACTERIZATION_CACHE,
)
from ..dram.contention import (
    DEFAULT_CONTENTION_CONFIG,
    ContentionConfig,
    resolve_contention,
)
from ..dram.device import DeviceProfile, resolve_device
from ..dram.policies import (
    DEFAULT_CONTROLLER_CONFIG,
    ControllerConfig,
    resolve_controller,
)
from ..dram.spec import DRAMOrganization
from ..errors import DseError
from ..mapping.catalog import TABLE1_MAPPINGS
from ..mapping.counts import TransitionCounts, count_transitions
from ..mapping.policy import MappingPolicy
from ..workloads.network import Network, as_layers
from .adaptive import resolve_adaptive
from .dse import DsePoint, DseResult
from .edp import layer_edp
from .eval_kernel import (
    iter_layer_segments,
    make_chunk_evaluator,
    validate_eval_model,
)
from .pareto import ObjectivePoint, ParetoAccumulator
from .strategies import StrategyRun, get_strategy

#: Default points per shard.  Large enough that inter-process message
#: overhead is negligible, small enough that progress ticks regularly
#: and merge buffers stay shallow.
DEFAULT_CHUNK_SIZE = 256

#: Process-wide memo of admissible tilings per (layer, buffers): the
#: buffer-maximal enumeration is pure and dominates context builds on
#: big networks.
_ADMISSIBLE_TILINGS_MEMO = LRUMemo(4096)


# ----------------------------------------------------------------------
# Evaluation memoization
# ----------------------------------------------------------------------

#: Every live :class:`EvaluationCache` of this process, weakly
#: referenced — ``repro cache stats`` aggregates their counters
#: through :func:`evaluation_cache_stats`.
_LIVE_EVALUATION_CACHES: "weakref.WeakSet" = weakref.WeakSet()


class EvaluationCache:
    """Memo for the policy-independent intermediates of the EDP model.

    One instance lives in each engine (serial path) and one in each
    worker process (parallel path).  Pass it to
    :func:`repro.core.edp.layer_edp` via its ``cache`` parameter.

    Attributes
    ----------
    traffic_memo / counts_memo / adaptive_memo:
        The underlying bounded memos; their ``hits`` / ``misses``
        counters are exposed for tests and tuning.
    """

    def __init__(self, maxsize: int = 65536) -> None:
        self.traffic_memo = LRUMemo(maxsize)
        self.counts_memo = LRUMemo(maxsize)
        self.adaptive_memo = LRUMemo(maxsize)
        #: Dense per-layer table sets of the vector kernel
        #: (:mod:`repro.core.eval_kernel`); few but large entries.
        self.tables_memo = LRUMemo(128)
        _LIVE_EVALUATION_CACHES.add(self)

    @property
    def stats(self) -> CacheStats:
        """Aggregate hit/miss counters across the memos."""
        return CacheStats(
            hits=(self.traffic_memo.hits + self.counts_memo.hits
                  + self.adaptive_memo.hits + self.tables_memo.hits),
            misses=(self.traffic_memo.misses + self.counts_memo.misses
                    + self.adaptive_memo.misses
                    + self.tables_memo.misses),
        )

    def resolve_scheme(
        self,
        layer: ConvLayer,
        tiling: TilingConfig,
        scheme: ReuseScheme,
    ) -> ReuseScheme:
        """Memoized adaptive-scheme resolution."""
        return self.adaptive_memo.get_or_compute(
            (layer, tiling, scheme),
            lambda: resolve_adaptive(layer, tiling, scheme))

    def traffic(
        self,
        layer: ConvLayer,
        tiling: TilingConfig,
        scheme: ReuseScheme,
    ) -> LayerTraffic:
        """Memoized DRAM traffic (reused across policies and
        architectures)."""
        return self.traffic_memo.get_or_compute(
            (layer, tiling, scheme),
            lambda: layer_traffic(layer, tiling, scheme))

    def transition_counts(
        self,
        policy: MappingPolicy,
        organization: DRAMOrganization,
        n_accesses: int,
    ) -> TransitionCounts:
        """Memoized closed-form Eq. 2/3 transition counts."""
        return self.counts_memo.get_or_compute(
            (policy, organization, n_accesses),
            lambda: count_transitions(policy, organization, n_accesses))

    def clear(self) -> None:
        """Drop all memo entries."""
        self.traffic_memo.clear()
        self.counts_memo.clear()
        self.adaptive_memo.clear()
        self.tables_memo.clear()


def evaluation_cache_stats() -> CacheStats:
    """Aggregate counters of every live in-process evaluation cache.

    Worker-process caches are not visible here (their per-chunk deltas
    are folded into :attr:`repro.core.dse.DseResult.eval_cache_stats`
    instead); this reports the serial-path memos ``repro cache stats``
    surfaces.
    """
    hits = misses = 0
    for cache in list(_LIVE_EVALUATION_CACHES):
        stats = cache.stats
        hits += stats.hits
        misses += stats.misses
    return CacheStats(hits=hits, misses=misses)


# ----------------------------------------------------------------------
# Grid context
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _LayerGrid:
    """One layer's slice of the flattened exploration grid."""

    layer: ConvLayer
    tilings: Tuple[TilingConfig, ...]
    offset: int  # flattened index of this layer's first point


@dataclass(frozen=True)
class ExplorationContext:
    """Everything a shard needs to evaluate any grid index.

    Shipped once per worker process through the pool initializer;
    chunks are then addressed as plain ``(start, stop)`` ranges over
    the flattened grid, with the tiling loop innermost and the
    architecture loop outermost — the exact order of the serial
    Algorithm-1 implementation.
    """

    layers: Tuple[_LayerGrid, ...]
    architectures: Tuple[DRAMArchitecture, ...]
    schemes: Tuple[ReuseScheme, ...]
    policies: Tuple[MappingPolicy, ...]
    device: DeviceProfile
    characterizations: Dict[DRAMArchitecture, CharacterizationResult]
    offsets: Tuple[int, ...]  # layers[i].offset, precomputed for decode
    #: Workload graph the layers were lowered from, when the caller
    #: passed a :class:`repro.workloads.Network`; shipped to workers
    #: with the rest of the context so provenance survives pickling.
    workload: Optional[Network] = None
    #: Memory-controller configuration the characterizations were
    #: measured under; pickled with the context so worker processes
    #: share the exact controller provenance.
    controller: ControllerConfig = DEFAULT_CONTROLLER_CONFIG
    #: Channel-contention configuration the characterizations were
    #: measured under (requestor count + arbiter); pickled with the
    #: context for the same provenance reason.
    contention: ContentionConfig = DEFAULT_CONTENTION_CONFIG
    #: Search strategy driving the exploration (provenance: shipped to
    #: workers and recorded on the result).
    strategy: str = "exhaustive"
    #: Seed of the strategy's randomized choices (``None``: the
    #: strategy default).
    seed: Optional[int] = None

    @property
    def organization(self) -> DRAMOrganization:
        """Geometry the grid is evaluated on (the device's)."""
        return self.device.organization

    @property
    def total_points(self) -> int:
        """Number of points in the flattened grid."""
        if not self.layers:
            return 0
        last = self.layers[-1]
        return last.offset + self._points_per_layer(last)

    def _points_per_layer(self, grid: _LayerGrid) -> int:
        return (len(self.architectures) * len(self.schemes)
                * len(self.policies) * len(grid.tilings))

    def points_in_layer(self, layer_pos: int) -> int:
        """Number of grid points of the ``layer_pos``-th layer."""
        return self._points_per_layer(self.layers[layer_pos])

    def decode(self, index: int) -> Tuple[
            ConvLayer, DRAMArchitecture, ReuseScheme, MappingPolicy,
            TilingConfig]:
        """Map a flattened grid index back to its design point."""
        layer_pos = bisect.bisect_right(self.offsets, index) - 1
        grid = self.layers[layer_pos]
        local = index - grid.offset
        local, tiling_idx = divmod(local, len(grid.tilings))
        local, policy_idx = divmod(local, len(self.policies))
        arch_idx, scheme_idx = divmod(local, len(self.schemes))
        return (grid.layer, self.architectures[arch_idx],
                self.schemes[scheme_idx], self.policies[policy_idx],
                grid.tilings[tiling_idx])

    def encode(
        self,
        layer_pos: int,
        arch_idx: int,
        scheme_idx: int,
        policy_idx: int,
        tiling_idx: int,
    ) -> int:
        """Flattened grid index of a design point (:meth:`decode` inverse)."""
        grid = self.layers[layer_pos]
        local = arch_idx
        local = local * len(self.schemes) + scheme_idx
        local = local * len(self.policies) + policy_idx
        local = local * len(grid.tilings) + tiling_idx
        return grid.offset + local


def _build_context(
    layers,  # Sequence[ConvLayer] or Network
    architectures: Optional[Sequence[DRAMArchitecture]],
    schemes: Sequence[ReuseScheme],
    policies: Sequence[MappingPolicy],
    buffers: BufferConfig,
    organization: Optional[DRAMOrganization],
    tilings: Optional[Sequence[TilingConfig]],
    characterization_cache: CharacterizationCache,
    device: Optional[DeviceProfile] = None,
    controller: Optional[ControllerConfig] = None,
    contention: Optional[ContentionConfig] = None,
    strategy: str = "exhaustive",
    seed: Optional[int] = None,
) -> ExplorationContext:
    """Validate the grid and pre-compute everything shards share.

    The resolved :class:`DeviceProfile` (with ``organization`` folded
    in), :class:`ControllerConfig` and :class:`ContentionConfig` are
    embedded in the context, so worker processes reconstruct the exact
    device, controller and channel deterministically from the pickled
    context alone.  ``architectures=None`` selects the device's
    capability set; an explicit sequence must be within it.

    ``layers`` may be a :class:`repro.workloads.Network`; it is
    lowered to the 7-dim loop nests here and kept on the context.
    """
    workload = layers if isinstance(layers, Network) else None
    layers = as_layers(layers)
    profile = resolve_device(device, organization)
    config = resolve_controller(controller)
    channel = resolve_contention(contention)
    if architectures is None:
        architectures = profile.supported_architectures
    for architecture in architectures:
        profile.require_architecture(architecture)
    grids: List[_LayerGrid] = []
    offset = 0
    per_point = len(architectures) * len(schemes) * len(policies)
    for layer in layers:
        if tilings is None:
            # Candidate enumeration is pure in (layer, buffers) and by
            # far the most expensive part of context construction on
            # big networks; memoize it so repeated explorations (and
            # the funnel's two phases) enumerate once.
            admissible: Tuple[TilingConfig, ...] = \
                _ADMISSIBLE_TILINGS_MEMO.get_or_compute(
                    (layer, buffers),
                    lambda: tuple(enumerate_tilings(layer, buffers)))
        else:
            candidates = list(tilings)
            if not candidates:
                raise DseError(
                    f"no candidate tilings provided for {layer.name}")
            admissible = tuple(
                tiling for tiling in candidates
                if tiling.fits(layer, buffers))
        if not admissible or per_point == 0:
            raise DseError(
                f"no tiling of {layer.name} satisfies the buffer constraint")
        grids.append(_LayerGrid(
            layer=layer, tilings=admissible, offset=offset))
        offset += per_point * len(admissible)
    # One batched lookup: cold architectures of a kernel-eligible grid
    # are characterized in a single amortized kernel pass instead of
    # one simulator walk each (semantics identical to per-arch get).
    characterizations = characterization_cache.get_many(
        architectures, device=profile, controller=config,
        contention=channel)
    return ExplorationContext(
        layers=tuple(grids),
        architectures=tuple(architectures),
        schemes=tuple(schemes),
        policies=tuple(policies),
        device=profile,
        characterizations=characterizations,
        offsets=tuple(grid.offset for grid in grids),
        workload=workload,
        controller=config,
        contention=channel,
        strategy=strategy,
        seed=seed,
    )


# ----------------------------------------------------------------------
# Shard evaluation (runs inside workers and on the serial path)
# ----------------------------------------------------------------------

#: Per-process worker state: (context, evaluation cache, chunk
#: evaluator resolved from the engine's ``eval_model``).
_WORKER_STATE: Optional[Tuple[ExplorationContext, EvaluationCache,
                              Callable]] = None


def _init_worker(context: ExplorationContext,
                 eval_model: str = "scalar") -> None:
    """Pool initializer: install the shared context in this process."""
    global _WORKER_STATE
    cache = EvaluationCache()
    evaluator = make_chunk_evaluator(
        context, cache, eval_model,
        partial(_evaluate_range, context, cache))
    _WORKER_STATE = (context, cache, evaluator)


def _evaluate_range(
    context: ExplorationContext,
    cache: EvaluationCache,
    start: int,
    stop: int,
) -> List[DsePoint]:
    """Evaluate the flattened grid indices ``[start, stop)`` in order."""
    points: List[DsePoint] = []
    for index in range(start, stop):
        layer, architecture, scheme, policy, tiling = context.decode(index)
        result = layer_edp(
            layer, tiling, scheme, policy, architecture,
            characterization=context.characterizations[architecture],
            cache=cache,
            device=context.device,
        )
        points.append(DsePoint(
            layer_name=layer.name,
            architecture=architecture,
            scheme=scheme,
            policy=policy,
            tiling=tiling,
            result=result,
        ))
    return points


def _run_chunk(
    chunk: Tuple[int, int],
) -> Tuple[int, List[DsePoint], Tuple[int, int]]:
    """Worker entry point: evaluate one ``(start, stop)`` shard.

    Returns ``(start, points, (hit_delta, miss_delta))`` — the
    evaluation-cache counter deltas this chunk caused, so the parent
    process can aggregate worker cache activity without sharing
    memory.
    """
    assert _WORKER_STATE is not None, "worker initializer did not run"
    _context, cache, evaluator = _WORKER_STATE
    start, stop = chunk
    before = cache.stats
    points = evaluator(start, stop)
    after = cache.stats
    return start, points, (after.hits - before.hits,
                           after.misses - before.misses)


# ----------------------------------------------------------------------
# Progress streaming
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ExplorationProgress:
    """Snapshot delivered to the progress callback after each chunk."""

    completed_points: int
    total_points: int
    completed_chunks: int
    total_chunks: int
    best_edp_js: Optional[float]

    @property
    def fraction(self) -> float:
        """Completed fraction in ``[0, 1]``."""
        if not self.total_points:
            return 1.0
        return self.completed_points / self.total_points


ProgressCallback = Callable[[ExplorationProgress], None]


# ----------------------------------------------------------------------
# Reduced (bounded-memory) results
# ----------------------------------------------------------------------

@dataclass
class ReducedExploration:
    """Streaming reduction of an exploration: minima + Pareto front.

    Holds one record per ``(layer, architecture, scheme, policy)``
    instead of one per point, so memory is bounded by the grid's
    *categorical* dimensions regardless of how many tilings are swept.
    """

    total_points: int = 0
    best_by_key: Dict[Tuple[str, DRAMArchitecture, ReuseScheme,
                            MappingPolicy], DsePoint] = \
        field(default_factory=dict)
    _best_index: Dict[Tuple[str, DRAMArchitecture, ReuseScheme,
                            MappingPolicy], int] = field(default_factory=dict)
    pareto: ParetoAccumulator = field(default_factory=ParetoAccumulator)

    def absorb(self, start: int, points: Sequence[DsePoint]) -> None:
        """Fold one shard's points into the reduction.

        Ties on EDP keep the lowest flattened grid index, so the result
        is independent of shard arrival order.
        """
        self.total_points += len(points)
        for position, point in enumerate(points):
            index = start + position
            key = (point.layer_name, point.architecture, point.scheme,
                   point.policy)
            incumbent = self.best_by_key.get(key)
            if incumbent is None or (point.edp_js, index) < (
                    incumbent.edp_js, self._best_index[key]):
                self.best_by_key[key] = point
                self._best_index[key] = index
            self.pareto.add(ObjectivePoint(
                energy_nj=point.result.energy_nj,
                latency_ns=point.result.latency_ns,
                payload=point,
            ), order=index)

    def best(
        self,
        layer_name: Optional[str] = None,
        architecture: Optional[DRAMArchitecture] = None,
        scheme: Optional[ReuseScheme] = None,
        policy: Optional[MappingPolicy] = None,
    ) -> DsePoint:
        """Minimum-EDP record among those matching the filters."""
        candidates = [
            (point.edp_js, self._best_index[key], point)
            for key, point in self.best_by_key.items()
            if (layer_name is None or key[0] == layer_name)
            and (architecture is None or key[1] is architecture)
            and (scheme is None or key[2] is scheme)
            and (policy is None or key[3] == policy)
        ]
        if not candidates:
            raise DseError("no reduced record matches the given filters")
        return min(candidates)[2]

    def best_per_layer(
        self,
        architecture: DRAMArchitecture,
        scheme: ReuseScheme,
    ) -> Dict[str, DsePoint]:
        """Algorithm-1 output: min-EDP point per layer."""
        by_layer: Dict[str, Tuple[float, int, DsePoint]] = {}
        for key, point in self.best_by_key.items():
            name, arch, sch, _policy = key
            if arch is not architecture or sch is not scheme:
                continue
            candidate = (point.edp_js, self._best_index[key], point)
            incumbent = by_layer.get(name)
            if incumbent is None or candidate[:2] < incumbent[:2]:
                by_layer[name] = candidate
        return {name: entry[2] for name, entry in by_layer.items()}


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

class ExplorationEngine:
    """Sharded, cached executor for the Algorithm-1 design space.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) evaluates in-process;
        ``0`` or ``None`` means one worker per CPU.  Results are
        identical for every value — see the module docstring's
        determinism guarantees.
    chunk_size:
        Grid points per shard.
    characterization_cache:
        LRU cache for Fig.-1 characterizations; defaults to the
        process-wide shared cache.
    progress:
        Optional :data:`ProgressCallback` invoked after every chunk.
    strategy:
        Default search strategy for this engine's explorations: a
        registered name (see
        :func:`repro.core.strategies.strategy_names`) or a pre-built
        :class:`~repro.core.strategies.SearchStrategy`.  The default
        ``"exhaustive"`` evaluates the full grid, byte-identical to
        the pre-strategy engine.
    seed:
        Default seed for randomized strategies (``None``: the
        strategy's deterministic default, 0).
    strategy_options:
        Keyword options for the default strategy (e.g.
        ``{"top_fraction": 0.02}`` for ``funnel``); must be omitted
        when ``strategy`` is a pre-built instance (configure the
        instance directly instead).
    eval_model:
        Chunk-evaluation backend: ``"auto"`` (default) evaluates
        eligible chunks with the vectorized kernel of
        :mod:`repro.core.eval_kernel` and falls back to the scalar
        loop otherwise, ``"scalar"`` forces the reference per-point
        loop, ``"vector"`` requires the kernel (numpy).  Results are
        bit-for-bit identical across all three.

    Example
    -------
    >>> from repro.cnn.models import alexnet
    >>> engine = ExplorationEngine(jobs=2, chunk_size=128)
    >>> reduced = engine.explore_reduced(alexnet()[:1])
    >>> reduced.total_points > 0
    True
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        characterization_cache: Optional[CharacterizationCache] = None,
        progress: Optional[ProgressCallback] = None,
        strategy="exhaustive",
        seed: Optional[int] = None,
        strategy_options: Optional[Dict] = None,
        eval_model: str = "auto",
    ) -> None:
        if jobs is None or jobs == 0:
            jobs = os.cpu_count() or 1
        if jobs < 0:
            raise ValueError(f"jobs must be non-negative, got {jobs}")
        if chunk_size <= 0:
            raise ValueError(
                f"chunk_size must be positive, got {chunk_size}")
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.eval_model = validate_eval_model(eval_model)
        self.characterization_cache = (
            characterization_cache
            if characterization_cache is not None
            else DEFAULT_CHARACTERIZATION_CACHE)
        self.progress = progress
        self.strategy = strategy
        self.seed = seed
        self.strategy_options = dict(strategy_options or {})
        # Fail fast on unknown names / bad options.
        get_strategy(self.strategy, **self.strategy_options)
        #: Serial-path evaluation memo; persists across explore calls
        #: so network-level sweeps reuse layer-level intermediates.
        self.evaluation_cache = EvaluationCache()

    def _resolve_strategy(
        self,
        strategy,
        seed: Optional[int],
        strategy_options: Optional[Dict],
    ):
        """Per-call strategy resolution (``None`` = engine default)."""
        if strategy is None:
            strategy = self.strategy
            if strategy_options is None:
                strategy_options = self.strategy_options
        resolved = get_strategy(strategy, **(strategy_options or {}))
        return resolved, (self.seed if seed is None else seed)

    # -- public API ----------------------------------------------------

    def explore_layer(
        self,
        layer: ConvLayer,
        architectures: Optional[Sequence[DRAMArchitecture]] = None,
        schemes: Sequence[ReuseScheme] = ALL_SCHEMES,
        policies: Sequence[MappingPolicy] = TABLE1_MAPPINGS,
        buffers: BufferConfig = TABLE2_BUFFERS,
        organization: Optional[DRAMOrganization] = None,
        tilings: Optional[Sequence[TilingConfig]] = None,
        device: Optional[DeviceProfile] = None,
        controller: Optional[ControllerConfig] = None,
        contention: Optional[ContentionConfig] = None,
        strategy=None,
        seed: Optional[int] = None,
        strategy_options: Optional[Dict] = None,
    ) -> DseResult:
        """Algorithm 1 for one layer; full exploration record."""
        return self.explore_network(
            [layer], architectures=architectures, schemes=schemes,
            policies=policies, buffers=buffers, organization=organization,
            tilings=tilings, device=device, controller=controller,
            contention=contention, strategy=strategy, seed=seed,
            strategy_options=strategy_options)

    def explore_network(
        self,
        layers,
        architectures: Optional[Sequence[DRAMArchitecture]] = None,
        schemes: Sequence[ReuseScheme] = ALL_SCHEMES,
        policies: Sequence[MappingPolicy] = TABLE1_MAPPINGS,
        buffers: BufferConfig = TABLE2_BUFFERS,
        organization: Optional[DRAMOrganization] = None,
        tilings: Optional[Sequence[TilingConfig]] = None,
        device: Optional[DeviceProfile] = None,
        controller: Optional[ControllerConfig] = None,
        contention: Optional[ContentionConfig] = None,
        strategy=None,
        seed: Optional[int] = None,
        strategy_options: Optional[Dict] = None,
    ) -> DseResult:
        """Algorithm 1 over all layers; full exploration record.

        ``layers`` is a ``Sequence[ConvLayer]`` or a
        :class:`repro.workloads.Network` — a network lowers to its
        7-dim loop nests (traffic-only ops contribute no grid points)
        and rides along in the pickled context.  ``device`` selects
        the DRAM device profile (default: the paper's Table-II
        device); every architecture in ``architectures`` must be in
        its capability set.  ``controller`` selects the
        memory-controller configuration the characterizations are
        measured under (default: the paper's FCFS/open-row) and
        ``contention`` the channel contention (default: one
        uncontended requestor).
        ``strategy`` / ``seed`` / ``strategy_options`` override the
        engine's search strategy for this call; under the default
        exhaustive strategy the returned points are in the serial
        nested-loop order regardless of ``jobs``, and subset
        strategies return their evaluated points in the same order.
        The result records the strategy, seed and evaluation counts.
        """
        search, run, shard_iter = self._start(
            layers, architectures, schemes, policies, buffers,
            organization, tilings, device, controller, contention,
            strategy, seed, strategy_options)
        shards: Dict[int, List[DsePoint]] = {}
        serial_before = self.evaluation_cache.stats
        for start, points in shard_iter:
            run.exact_points += len(points)
            shards[start] = points
        self._account_serial_cache(run, serial_before)
        result = DseResult(
            strategy=run.strategy,
            seed=run.seed,
            total_points=run.total_points,
            evaluated_points=run.exact_points,
            scored_points=run.scored_points,
            eval_cache_stats=CacheStats(
                hits=run.cache_hits, misses=run.cache_misses),
        )
        for start in sorted(shards):
            result.points.extend(shards[start])
        return result

    def explore_reduced(
        self,
        layers,
        architectures: Optional[Sequence[DRAMArchitecture]] = None,
        schemes: Sequence[ReuseScheme] = ALL_SCHEMES,
        policies: Sequence[MappingPolicy] = TABLE1_MAPPINGS,
        buffers: BufferConfig = TABLE2_BUFFERS,
        organization: Optional[DRAMOrganization] = None,
        tilings: Optional[Sequence[TilingConfig]] = None,
        device: Optional[DeviceProfile] = None,
        controller: Optional[ControllerConfig] = None,
        contention: Optional[ContentionConfig] = None,
        strategy=None,
        seed: Optional[int] = None,
        strategy_options: Optional[Dict] = None,
    ) -> ReducedExploration:
        """Bounded-memory exploration: stream shards into minima.

        Use this instead of :meth:`explore_network` when the grid is
        too large to keep every :class:`DsePoint`; only the per-key
        minima and the Pareto front are retained.  Works with every
        search strategy (shards stream into the reduction as they
        arrive).
        """
        _search, run, shard_iter = self._start(
            layers, architectures, schemes, policies, buffers,
            organization, tilings, device, controller, contention,
            strategy, seed, strategy_options)
        reduced = ReducedExploration()
        serial_before = self.evaluation_cache.stats
        for start, points in shard_iter:
            run.exact_points += len(points)
            reduced.absorb(start, points)
        self._account_serial_cache(run, serial_before)
        return reduced

    def _account_serial_cache(
        self,
        run: StrategyRun,
        before: CacheStats,
    ) -> None:
        """Fold this engine cache's delta since ``before`` into ``run``.

        Covers every in-process consumer of ``evaluation_cache`` —
        the serial chunk path, vector-kernel table builds, the
        funnel's scoring pass and greedy-refine probes; worker deltas
        arrive separately through :func:`_run_chunk` results.
        """
        after = self.evaluation_cache.stats
        run.cache_hits += after.hits - before.hits
        run.cache_misses += after.misses - before.misses

    def _start(
        self,
        layers,
        architectures,
        schemes,
        policies,
        buffers,
        organization,
        tilings,
        device,
        controller,
        contention,
        strategy,
        seed,
        strategy_options,
    ):
        """Common front half of the explore methods.

        Resolves the strategy, builds the context (with strategy
        provenance embedded) and returns ``(strategy, run,
        shard_iterator)``.
        """
        search, run_seed = self._resolve_strategy(
            strategy, seed, strategy_options)
        context = _build_context(
            layers, architectures, schemes, policies, buffers,
            organization, tilings, self.characterization_cache,
            device=device, controller=controller, contention=contention,
            strategy=search.name, seed=run_seed)
        run = StrategyRun(
            strategy=search.name,
            seed=run_seed,
            total_points=context.total_points,
        )
        return search, run, search.shards(self, context, run)

    # -- scheduling ----------------------------------------------------

    def _chunks(
        self,
        context: ExplorationContext,
    ) -> Iterator[Tuple[int, int]]:
        """Layer-aligned chunking of the full grid.

        Chunk boundaries snap to the ``points_in_layer`` slices: a
        chunk never straddles two layers, so the vector kernel
        evaluates every chunk as one batch instead of splitting it
        (and re-gathering tables) at each straddle.  Points and their
        order are unchanged — only the grouping differs.
        """
        for _position, seg_start, seg_stop in iter_layer_segments(
                context, 0, context.total_points):
            for start in range(seg_start, seg_stop, self.chunk_size):
                yield start, min(start + self.chunk_size, seg_stop)

    def _shard_results(
        self,
        context: ExplorationContext,
        run: Optional[StrategyRun] = None,
    ) -> Iterator[Tuple[int, List[DsePoint]]]:
        """Yield ``(start, points)`` for the full grid, ticking progress.

        The exhaustive strategy's executor — byte-identical shard
        order and contents to the pre-strategy engine.
        """
        total = context.total_points
        total_chunks = sum(
            -(-context.points_in_layer(position) // self.chunk_size)
            for position in range(len(context.layers)))
        return self._execute_shards(
            context, self._chunks(context), total, total_chunks, run)

    def _evaluate_selected(
        self,
        context: ExplorationContext,
        indices: Sequence[int],
        run: Optional[StrategyRun] = None,
    ) -> Iterator[Tuple[int, List[DsePoint]]]:
        """Yield shards covering exactly ``indices`` (sorted, unique).

        Consecutive indices coalesce into contiguous ``(start, stop)``
        ranges, split at layer boundaries (so the vector kernel gets
        single-layer batches) and at ``chunk_size``, and run through
        the same serial / process-pool machinery as the full grid —
        so subset strategies inherit ``jobs`` parallelism and progress
        streaming (progress totals count the selection, not the
        grid).
        """
        shards: List[Tuple[int, int]] = []
        position = 0
        while position < len(indices):
            stop = position + 1
            while stop < len(indices) \
                    and indices[stop] == indices[stop - 1] + 1:
                stop += 1
            start_index = indices[position]
            stop_index = indices[stop - 1] + 1
            for _pos, seg_start, seg_stop in iter_layer_segments(
                    context, start_index, stop_index):
                for piece in range(seg_start, seg_stop, self.chunk_size):
                    shards.append(
                        (piece, min(piece + self.chunk_size, seg_stop)))
            position = stop
        return self._execute_shards(
            context, iter(shards), len(indices), len(shards), run)

    def _execute_shards(
        self,
        context: ExplorationContext,
        shards: Iterator[Tuple[int, int]],
        total_points: int,
        total_chunks: int,
        run: Optional[StrategyRun] = None,
    ) -> Iterator[Tuple[int, List[DsePoint]]]:
        """Evaluate ``(start, stop)`` shards, ticking progress.

        Worker evaluation-cache deltas are folded into ``run`` (the
        serial path's cache activity is accounted once per exploration
        by the explore methods instead).
        """
        completed_points = 0
        completed_chunks = 0
        best_edp: Optional[float] = None

        def tick(points: List[DsePoint]) -> None:
            nonlocal completed_points, completed_chunks, best_edp
            completed_points += len(points)
            completed_chunks += 1
            for point in points:
                if best_edp is None or point.edp_js < best_edp:
                    best_edp = point.edp_js
            if self.progress is not None:
                self.progress(ExplorationProgress(
                    completed_points=completed_points,
                    total_points=total_points,
                    completed_chunks=completed_chunks,
                    total_chunks=total_chunks,
                    best_edp_js=best_edp,
                ))

        if self.jobs == 1:
            evaluator = make_chunk_evaluator(
                context, self.evaluation_cache, self.eval_model,
                partial(_evaluate_range, context, self.evaluation_cache))
            for start, stop in shards:
                points = evaluator(start, stop)
                tick(points)
                yield start, points
            return

        # Bounded in-flight window: at most jobs * 4 chunks are queued
        # at once, so million-point grids never materialize all chunk
        # futures (or their results) simultaneously.
        with ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(context, self.eval_model)) as pool:
            pending = set()
            window = self.jobs * 4
            for chunk in itertools.islice(shards, window):
                pending.add(pool.submit(_run_chunk, chunk))
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    start, points, cache_delta = future.result()
                    if run is not None:
                        run.cache_hits += cache_delta[0]
                        run.cache_misses += cache_delta[1]
                    tick(points)
                    yield start, points
                for chunk in itertools.islice(shards, len(done)):
                    pending.add(pool.submit(_run_chunk, chunk))

    def point_evaluator(self, context: ExplorationContext):
        """In-process, memoized single-point evaluator.

        Returns ``evaluate(index) -> DsePoint`` with an ``evaluate.cache``
        dict of every point evaluated so far — the probe primitive of
        adaptive strategies (``greedy-refine``), which evaluate points
        one at a time as the search unfolds.  Single-point probes stay
        on the scalar path regardless of ``eval_model`` (a one-point
        batch would pay the kernel's table gather for nothing).
        """
        cache: Dict[int, DsePoint] = {}

        def evaluate(index: int) -> DsePoint:
            point = cache.get(index)
            if point is None:
                point = _evaluate_range(
                    context, self.evaluation_cache, index, index + 1)[0]
                cache[index] = point
            return point

        evaluate.cache = cache
        return evaluate
