"""Bridge between mapping-loop transitions and Fig.-1 access conditions.

Eq. 2/3 multiply per-dimension access counts by per-condition costs.
The dimension -> condition correspondence (paper Section III-C):

* ``dif_column``    -> row-buffer **hit** (same open row),
* ``dif_banks``     -> **bank-level parallelism**,
* ``dif_subarrays`` -> **subarray-level parallelism** (whose cost is
  architecture-dependent: a conflict on DDR3, overlapped on SALP),
* ``dif_rows``      -> row-buffer **conflict**,
* rank / channel wraps -> charged as bank-level parallelism (an access
  to another rank or channel overlaps at least as well as one to
  another bank; the Table-II configuration has a single rank, so these
  never fire in the paper's experiments),
* the tile-opening access -> row-buffer **conflict** (the target bank
  almost always holds a row opened by an earlier tile).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..dram.characterize import (
    AccessCondition,
    CharacterizationResult,
    ConditionCost,
)
from ..dram.commands import RequestKind
from ..mapping.counts import TransitionCounts
from ..mapping.dims import Dim

#: Mapping-loop dimension -> Fig.-1 access condition.
DIM_TO_CONDITION: Dict[Dim, AccessCondition] = {
    Dim.COLUMN: AccessCondition.ROW_HIT,
    Dim.BANK: AccessCondition.BANK_PARALLEL,
    Dim.SUBARRAY: AccessCondition.SUBARRAY_PARALLEL,
    Dim.ROW: AccessCondition.ROW_CONFLICT,
    Dim.RANK: AccessCondition.BANK_PARALLEL,
    Dim.CHANNEL: AccessCondition.BANK_PARALLEL,
}

#: Condition charged to the first access of each tile.
INITIAL_ACCESS_CONDITION = AccessCondition.ROW_CONFLICT


@dataclass(frozen=True)
class AccessCost:
    """Cycles and energy of one run of accesses (Eq. 2 and Eq. 3)."""

    cycles: float
    energy_nj: float

    def __add__(self, other: "AccessCost") -> "AccessCost":
        return AccessCost(
            cycles=self.cycles + other.cycles,
            energy_nj=self.energy_nj + other.energy_nj,
        )

    def scaled(self, factor: float) -> "AccessCost":
        """Cost of ``factor`` identical runs."""
        return AccessCost(
            cycles=self.cycles * factor,
            energy_nj=self.energy_nj * factor,
        )


ZERO_COST = AccessCost(cycles=0.0, energy_nj=0.0)


def condition_counts(counts: TransitionCounts
                     ) -> Dict[AccessCondition, int]:
    """Collapse per-dimension counts into per-condition counts."""
    by_condition: Dict[AccessCondition, int] = {}
    for dim, count in counts.by_dim.items():
        condition = DIM_TO_CONDITION[dim]
        by_condition[condition] = by_condition.get(condition, 0) + count
    if counts.initial:
        by_condition[INITIAL_ACCESS_CONDITION] = \
            by_condition.get(INITIAL_ACCESS_CONDITION, 0) + counts.initial
    return by_condition


def run_cost(
    counts: TransitionCounts,
    characterization: CharacterizationResult,
    kind: RequestKind,
) -> AccessCost:
    """Eq. 2 (cycles) and Eq. 3 (energy) for one run of accesses.

    Parameters
    ----------
    counts:
        Transition counts of the run (one tile fetch, or a whole layer
        accumulated).
    characterization:
        Fig.-1 per-condition costs of the target DRAM architecture.
    kind:
        Whether the run reads or writes (write bursts cost different
        energy).
    """
    cycles = 0.0
    energy = 0.0
    for condition, count in condition_counts(counts).items():
        cost: ConditionCost = characterization.cost(condition)
        cycles += count * cost.cycles
        energy += count * cost.energy_nj(kind)
    return AccessCost(cycles=cycles, energy_nj=energy)
