"""Adaptive-reuse scheduling (paper Section III-B, step 1b).

The adaptive-reuse scheme switches the reuse priority per layer,
picking whichever of ifms-/wghs-/ofms-reuse moves the fewest DRAM
bytes for that layer (the SmartShuttle [14] insight the paper builds
on).
"""

from __future__ import annotations

from ..cnn.layer import ConvLayer
from ..cnn.scheduling import ReuseScheme
from ..cnn.tiling import TilingConfig
from ..cnn.traffic import best_concrete_scheme


def resolve_adaptive(
    layer: ConvLayer,
    tiling: TilingConfig,
    scheme: ReuseScheme,
) -> ReuseScheme:
    """Resolve ``scheme`` to a concrete scheme for ``layer``.

    Concrete schemes pass through unchanged; ``ADAPTIVE_REUSE`` picks
    the minimum-traffic concrete scheme for this layer and tiling.
    """
    if scheme is not ReuseScheme.ADAPTIVE_REUSE:
        return scheme
    best, _traffic = best_concrete_scheme(layer, tiling)
    return best
