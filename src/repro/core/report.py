"""Plain-text report formatting for experiment outputs.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..units import format_si


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width text table."""
    columns = [list(map(str, column))
               for column in zip(*([headers] + [list(r) for r in rows]))]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(
            str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_edp(value_js: float) -> str:
    """EDP with SI prefix (J*s)."""
    return format_si(value_js, "J*s")


def improvement_percent(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline``, percent.

    ``improvement_percent(10, 1) == 90.0``.
    """
    if baseline <= 0:
        raise ValueError(
            f"baseline must be positive, got {baseline}")
    return (1.0 - improved / baseline) * 100.0


def format_series(
    label: str,
    values: Sequence[float],
    names: Sequence[str],
) -> str:
    """One figure series as ``label: name=value ...``."""
    parts = [f"{name}={format_edp(value)}"
             for name, value in zip(names, values)]
    return f"{label}: " + "  ".join(parts)


def handoff_table(summary, title: str = "") -> str:
    """Tabulate a :class:`repro.workloads.HandoffSummary`.

    One row per producer -> consumer(s) feature-map edge, flagging
    skip (multi-consumer) edges and whether the tensor fits on chip.
    """
    from ..units import format_bytes

    rows = []
    for handoff in summary.handoffs:
        rows.append([
            handoff.tensor.name,
            handoff.tensor.shape,
            handoff.producer,
            " + ".join(handoff.consumers),
            format_bytes(handoff.tensor_bytes),
            "on-chip" if handoff.on_chip_resident else "DRAM",
            "skip" if handoff.is_skip_edge else "",
        ])
    table = format_table(
        ["tensor", "shape", "producer", "consumers", "bytes",
         "residency", "edge"],
        rows,
        title=title or (f"Feature-map hand-offs of "
                        f"{summary.network_name}"))
    saved = format_bytes(summary.saved_bytes)
    total = format_bytes(summary.total_handoff_bytes)
    return (f"{table}\n"
            f"hand-off DRAM traffic {total}; on-chip-resident scenario "
            f"elides {saved} "
            f"({len(summary.on_chip_eligible)}/{len(summary.handoffs)} "
            f"edges fit)")


def network_edp_table(summary, title: str = "") -> str:
    """Tabulate a :class:`repro.workloads.NetworkDseSummary`.

    Per-op minimum-EDP rows in topological order plus the aggregated
    network totals.
    """
    rows = []
    for op_name, point in summary.per_op:
        tiling = point.tiling
        rows.append([
            op_name,
            point.policy.name,
            point.result.resolved_scheme.value,
            f"{tiling.th}/{tiling.tw}/{tiling.tj}/{tiling.ti}",
            f"{point.edp_js:.3e}",
        ])
    rows.append(["NETWORK", "", "", "", f"{summary.total_edp_js:.3e}"])
    return format_table(
        ["op", "mapping", "schedule", "tiling Th/Tw/Tj/Ti",
         "min EDP [J*s]"],
        rows,
        title=title or (f"Network EDP of {summary.network_name} "
                        f"(topological aggregation)"))


def series_table(
    series: Dict[str, List[float]],
    column_names: Sequence[str],
    title: str = "",
    formatter=format_edp,
) -> str:
    """Tabulate multiple named series sharing column labels."""
    rows = [
        [label] + [formatter(value) for value in values]
        for label, values in series.items()
    ]
    return format_table(
        headers=["series"] + list(column_names), rows=rows, title=title)


def policies_table() -> str:
    """Tabulate the registered memory-controller policies.

    One row per scheduler and per row-buffer policy, with the default
    (Table-II) configuration flagged — the ``repro policies`` listing.
    """
    from ..dram.policies import (
        DEFAULT_CONTROLLER_CONFIG,
        ROW_POLICY_SUMMARIES,
        SCHEDULER_SUMMARIES,
        RowPolicyKind,
        SchedulerKind,
    )

    default = DEFAULT_CONTROLLER_CONFIG
    rows = []
    for kind in SchedulerKind:
        rows.append([
            "scheduler", kind.value,
            "yes" if kind is default.scheduler else "",
            SCHEDULER_SUMMARIES[kind],
        ])
    for kind in RowPolicyKind:
        rows.append([
            "row-policy", kind.value,
            "yes" if kind is default.row_policy else "",
            ROW_POLICY_SUMMARIES[kind],
        ])
    return format_table(
        ["axis", "name", "default", "description"],
        rows, title="Registered memory-controller policies")


def arbiters_table() -> str:
    """Tabulate the registered channel arbiters.

    One row per arbitration policy and per stream-assignment scheme,
    with the single-requestor default flagged — the ``repro arbiters``
    listing.
    """
    from ..dram.contention import (
        ARBITER_SUMMARIES,
        ASSIGNMENT_SUMMARIES,
        DEFAULT_CONTENTION_CONFIG,
        ArbiterKind,
        AssignmentKind,
    )

    default = DEFAULT_CONTENTION_CONFIG
    rows = []
    for kind in ArbiterKind:
        rows.append([
            "arbiter", kind.value,
            "yes" if kind is default.arbiter else "",
            ARBITER_SUMMARIES[kind],
        ])
    for kind in AssignmentKind:
        rows.append([
            "assignment", kind.value,
            "yes" if kind is default.assignment else "",
            ASSIGNMENT_SUMMARIES[kind],
        ])
    return format_table(
        ["axis", "name", "default", "description"],
        rows, title="Registered channel arbiters")


def requestor_stats_table(stats, title: str = "") -> str:
    """Tabulate per-requestor contention accounting.

    One row per requestor of a contended run — serviced count, row
    locality split, mean service latency and share of the data bus —
    from :func:`repro.dram.contention.per_requestor_stats` or a
    contended :class:`~repro.dram.characterize.CharacterizationResult`.
    """
    rows = [
        [
            entry.requestor,
            entry.serviced,
            entry.row_hits,
            entry.row_misses,
            entry.row_conflicts,
            f"{entry.mean_service_cycles:.1f}",
            f"{entry.bus_share * 100.0:.1f}%",
        ]
        for entry in stats
    ]
    return format_table(
        ["requestor", "serviced", "hits", "misses", "conflicts",
         "mean cycles", "bus share"],
        rows, title=title or "Per-requestor channel accounting")
