"""Alternative EDP estimator driven by the state-aware walk.

The paper's Eq. 2/3 classify accesses by loop-wrap; this estimator
classifies them by walking the actual row-buffer state per architecture
(:func:`repro.mapping.walk.classify_walk`) and then applies the same
Fig.-1 per-condition costs.  It removes the loop-wrap approximation
(which is optimistic for Mappings 2/5/6 on DDR3) while staying far
cheaper than full cycle simulation — a middle rung on the fidelity
ladder:

    Eq. 2/3 (closed form)  <  walk-based  <  cycle-level replay
"""

from __future__ import annotations

from typing import Optional

from ..cnn.layer import ConvLayer
from ..cnn.scheduling import ReuseScheme
from ..cnn.tiling import TilingConfig
from ..cnn.traffic import layer_traffic
from ..dram.architecture import DRAMArchitecture
from ..dram.characterize import (
    CharacterizationResult,
    characterize_preset,
)
from ..dram.commands import RequestKind
from ..dram.presets import DDR3_1600_2GB_X8
from ..dram.spec import DRAMOrganization
from ..mapping.policy import MappingPolicy
from ..mapping.walk import WalkClassification, classify_walk
from .adaptive import resolve_adaptive
from .conditions import AccessCost, ZERO_COST
from .edp import LayerEDP


def walk_cost(
    classification: WalkClassification,
    characterization: CharacterizationResult,
    kind: RequestKind,
) -> AccessCost:
    """Cycles and energy of a walked run under Fig.-1 costs."""
    cycles = 0.0
    energy = 0.0
    for condition, count in classification.by_condition.items():
        cost = characterization.cost(condition)
        cycles += count * cost.cycles
        energy += count * cost.energy_nj(kind)
    return AccessCost(cycles=cycles, energy_nj=energy)


def layer_edp_via_walk(
    layer: ConvLayer,
    tiling: TilingConfig,
    scheme: ReuseScheme,
    policy: MappingPolicy,
    architecture: DRAMArchitecture,
    organization: DRAMOrganization = DDR3_1600_2GB_X8,
    characterization: Optional[CharacterizationResult] = None,
) -> LayerEDP:
    """Layer EDP with state-aware per-tile access classification.

    Mirrors :func:`repro.core.edp.layer_edp` exactly, substituting the
    walk classification for the closed-form loop-wrap counts.
    """
    resolved = resolve_adaptive(layer, tiling, scheme)
    if characterization is None:
        characterization = characterize_preset(architecture)
    traffic = layer_traffic(layer, tiling, resolved)
    by_type = {}
    total = ZERO_COST
    for name, type_traffic in traffic.by_type().items():
        tile_accesses = organization.accesses_for_bytes(
            type_traffic.tile_bytes)
        if tile_accesses == 0:
            by_type[name] = ZERO_COST
            continue
        classification = classify_walk(
            policy, organization, architecture, tile_accesses)
        cost = ZERO_COST
        if type_traffic.read_tiles:
            read = walk_cost(classification, characterization,
                             RequestKind.READ)
            cost = cost + read.scaled(type_traffic.read_tiles)
        if type_traffic.write_tiles:
            write = walk_cost(classification, characterization,
                              RequestKind.WRITE)
            cost = cost + write.scaled(type_traffic.write_tiles)
        by_type[name] = cost
        total = total + cost
    return LayerEDP(
        layer_name=layer.name,
        energy_nj=total.energy_nj,
        cycles=total.cycles,
        tck_ns=characterization.tck_ns,
        by_type=by_type,
        resolved_scheme=resolved,
    )
