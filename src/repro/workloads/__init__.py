"""Graph-based workload IR.

Networks are DAGs of operators connected by named feature-map tensors;
every compute operator lowers to the paper's 7-dim (B, H, W, J, I, P,
Q) loop nest, so the tiling / traffic / EDP / DSE machinery runs
unchanged underneath while the graph keeps the structure — skip
edges, pooling, producer -> consumer hand-offs — that a flat
``List[ConvLayer]`` drops.

Quickstart
----------
>>> from repro.workloads import get_workload
>>> net = get_workload("resnet18")
>>> len(net.lower())           # the 7-dim loop nests (convs + FC)
18
>>> from repro.workloads import handoff_summary
>>> len(handoff_summary(net).skip_edges)   # real residual edges
8
"""

from .analysis import (
    FeatureMapHandoff,
    HandoffSummary,
    NetworkDseSummary,
    feature_map_handoffs,
    handoff_summary,
    network_dse_summary,
)
from .network import Network, as_layers, chain
from .ops import (
    ConvOp,
    DepthwiseConvOp,
    EltwiseOp,
    MatmulOp,
    Operator,
    PoolOp,
    TensorSpec,
)
from .registry import (
    WORKLOAD_REGISTRY,
    get_workload,
    register_model,
    register_workload,
    unregister_workload,
    workload_names,
)
from . import zoo

__all__ = [
    "ConvOp",
    "DepthwiseConvOp",
    "EltwiseOp",
    "FeatureMapHandoff",
    "HandoffSummary",
    "MatmulOp",
    "Network",
    "NetworkDseSummary",
    "Operator",
    "PoolOp",
    "TensorSpec",
    "WORKLOAD_REGISTRY",
    "as_layers",
    "chain",
    "feature_map_handoffs",
    "get_workload",
    "handoff_summary",
    "network_dse_summary",
    "register_model",
    "register_workload",
    "unregister_workload",
    "workload_names",
    "zoo",
]
