"""Operator IR: graph nodes that lower to the paper's loop nest.

A workload graph (:class:`repro.workloads.network.Network`) is built
from *operators* connected by named feature-map tensors.  Every
compute operator **lowers to the paper's 7-dim (B, H, W, J, I, P, Q)
loop nest** — a :class:`repro.cnn.layer.ConvLayer` — so the existing
tiling / traffic / EDP / characterization machinery runs unchanged
underneath:

===================  ==================================================
Operator             Lowering rule
===================  ==================================================
:class:`ConvOp`      direct: (B, H, W, J, I, P, Q) with optional
                     grouping, stride and padding.
:class:`DepthwiseConvOp`
                     grouped conv with ``groups == in_channels`` and
                     ``J == I`` (the MobileNet depthwise stage).
:class:`MatmulOp`    ``Y[T, N] = X[T, M] @ W[M, N]`` becomes a 1x1
                     convolution on a 1x1 feature map with
                     ``B = batch * T`` — exactly the existing
                     fully-connected path (``T = 1`` reproduces
                     :meth:`repro.cnn.layer.ConvLayer.fully_connected`
                     byte for byte).  ``groups = heads`` models
                     multi-head attention as a grouped matmul.
:class:`PoolOp`      traffic-only: moves no weights and performs no
                     MACs; it reshapes the feature map between
                     producers and consumers (the paper folds pooling
                     into the inter-layer shapes the same way).
:class:`EltwiseOp`   traffic-only: residual adds and other
                     element-wise merges; it is what a flat
                     ``List[ConvLayer]`` cannot express.
===================  ==================================================

Traffic-only operators return ``None`` from :meth:`Operator.lower` and
are skipped by the DSE grid; their DRAM cost surfaces through the
network-level hand-off analysis
(:mod:`repro.workloads.analysis`) instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..cnn.layer import ConvLayer
from ..errors import WorkloadError


@dataclass(frozen=True)
class TensorSpec:
    """A named feature-map tensor: one edge of the workload graph.

    Spatial feature maps use ``channels x height x width``; token
    activations (transformers) use ``channels = features``,
    ``height = 1`` and ``width = tokens``, so the volume is the same
    ``features x tokens`` matrix either way.
    """

    name: str
    channels: int
    height: int
    width: int
    bytes_per_element: int = 1

    def __post_init__(self) -> None:
        for field_name in ("channels", "height", "width",
                           "bytes_per_element"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value <= 0:
                raise WorkloadError(
                    f"tensor {self.name!r}: {field_name} must be a "
                    f"positive integer, got {value!r}")

    @property
    def elements(self) -> int:
        """Elements per batch item."""
        return self.channels * self.height * self.width

    def bytes(self, batch: int = 1) -> int:
        """DRAM-resident size for ``batch`` items."""
        return batch * self.elements * self.bytes_per_element

    @property
    def shape(self) -> str:
        """``CxHxW`` label for reports."""
        return f"{self.channels}x{self.height}x{self.width}"


class Operator:
    """Base class for graph nodes.

    Subclasses are frozen dataclasses; the base class only fixes the
    protocol every node answers:

    ``inputs`` / ``output``
        Names of the consumed / produced tensors.
    ``output_spec(input_specs)``
        Shape inference: the produced :class:`TensorSpec`.
    ``lower(input_specs, batch)``
        The 7-dim loop nest as a :class:`ConvLayer`, or ``None`` for
        traffic-only operators.
    """

    name: str

    @property
    def inputs(self) -> Tuple[str, ...]:
        raise NotImplementedError

    @property
    def output(self) -> str:
        raise NotImplementedError

    @property
    def kind(self) -> str:
        """Short label for reports (``conv``, ``matmul``, ...)."""
        return type(self).__name__.replace("Op", "").lower()

    @property
    def is_traffic_only(self) -> bool:
        """True when the op never lowers to a loop nest."""
        return False

    def output_spec(self, input_specs: Tuple[TensorSpec, ...]
                    ) -> TensorSpec:
        raise NotImplementedError

    def lower(self, input_specs: Tuple[TensorSpec, ...],
              batch: int = 1) -> Optional[ConvLayer]:
        raise NotImplementedError

    def _sole_input(self, input_specs: Tuple[TensorSpec, ...]
                    ) -> TensorSpec:
        if len(input_specs) != 1:
            raise WorkloadError(
                f"{self.name}: expected exactly one input tensor, "
                f"got {len(input_specs)}")
        return input_specs[0]


def _positive(op_name: str, **fields: int) -> None:
    for field_name, value in fields.items():
        if not isinstance(value, int) or value <= 0:
            raise WorkloadError(
                f"{op_name}: {field_name} must be a positive integer, "
                f"got {value!r}")


@dataclass(frozen=True)
class ConvOp(Operator):
    """2-D convolution (optionally grouped / strided / padded)."""

    name: str
    input: str
    out: str
    out_channels: int
    kernel: int
    stride: int = 1
    padding: int = 0
    groups: int = 1

    def __post_init__(self) -> None:
        _positive(self.name, out_channels=self.out_channels,
                  kernel=self.kernel, stride=self.stride,
                  groups=self.groups)
        if not isinstance(self.padding, int) or self.padding < 0:
            raise WorkloadError(
                f"{self.name}: padding must be a non-negative integer, "
                f"got {self.padding!r}")

    @property
    def inputs(self) -> Tuple[str, ...]:
        return (self.input,)

    @property
    def output(self) -> str:
        return self.out

    def _out_spatial(self, size: int) -> int:
        out = (size + 2 * self.padding - self.kernel) // self.stride + 1
        if out <= 0:
            raise WorkloadError(
                f"{self.name}: kernel {self.kernel} does not fit the "
                f"{size}-wide input (padding {self.padding})")
        return out

    def output_spec(self, input_specs: Tuple[TensorSpec, ...]
                    ) -> TensorSpec:
        ifm = self._sole_input(input_specs)
        if ifm.channels % self.groups:
            raise WorkloadError(
                f"{self.name}: input channels ({ifm.channels}) must "
                f"divide into groups ({self.groups})")
        return TensorSpec(
            name=self.out,
            channels=self.out_channels,
            height=self._out_spatial(ifm.height),
            width=self._out_spatial(ifm.width),
            bytes_per_element=ifm.bytes_per_element,
        )

    def lower(self, input_specs: Tuple[TensorSpec, ...],
              batch: int = 1) -> ConvLayer:
        ifm = self._sole_input(input_specs)
        return ConvLayer.conv(
            self.name,
            (ifm.channels, ifm.height, ifm.width),
            self.out_channels,
            kernel=self.kernel,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
            batch=batch,
            bytes_per_element=ifm.bytes_per_element,
        )


@dataclass(frozen=True)
class DepthwiseConvOp(Operator):
    """Depthwise convolution: one kernel per channel.

    Lowers to a grouped conv with ``groups == in_channels`` —
    the extreme grouped-conv case the traffic model already scales
    correctly (groups run back to back).
    """

    name: str
    input: str
    out: str
    kernel: int
    stride: int = 1
    padding: int = 0
    depth_multiplier: int = 1

    def __post_init__(self) -> None:
        _positive(self.name, kernel=self.kernel, stride=self.stride,
                  depth_multiplier=self.depth_multiplier)
        if not isinstance(self.padding, int) or self.padding < 0:
            raise WorkloadError(
                f"{self.name}: padding must be a non-negative integer, "
                f"got {self.padding!r}")

    @property
    def inputs(self) -> Tuple[str, ...]:
        return (self.input,)

    @property
    def output(self) -> str:
        return self.out

    @property
    def kind(self) -> str:
        return "dwconv"

    def _conv(self, ifm: TensorSpec) -> ConvOp:
        return ConvOp(
            name=self.name,
            input=self.input,
            out=self.out,
            out_channels=ifm.channels * self.depth_multiplier,
            kernel=self.kernel,
            stride=self.stride,
            padding=self.padding,
            groups=ifm.channels,
        )

    def output_spec(self, input_specs: Tuple[TensorSpec, ...]
                    ) -> TensorSpec:
        ifm = self._sole_input(input_specs)
        return self._conv(ifm).output_spec(input_specs)

    def lower(self, input_specs: Tuple[TensorSpec, ...],
              batch: int = 1) -> ConvLayer:
        ifm = self._sole_input(input_specs)
        return self._conv(ifm).lower(input_specs, batch)


@dataclass(frozen=True)
class MatmulOp(Operator):
    """Token-wise matmul ``Y[T, N] = X[T, M] @ W[M, N]``.

    Lowers to the existing fully-connected path: a 1x1 convolution on
    a 1x1 feature map whose batch is ``network batch x tokens``.  With
    ``tokens == 1`` and ``groups == 1`` the lowered layer is field-for-
    field identical to :meth:`repro.cnn.layer.ConvLayer.fully_connected`.

    ``groups`` models multi-head attention: ``Q @ K^T`` over ``h``
    heads is a grouped matmul with ``groups = h``, ``M = h x d_head``
    and ``N = h x tokens`` — the weight operand is the K (or V)
    activation matrix, whose volume the grouped-conv weight accounting
    reproduces exactly.  Pass that activation tensor as
    ``weight_input`` to keep the edge in the graph (static-parameter
    matmuls leave it ``None``; parameters are op attributes, not
    edges).
    """

    name: str
    input: str
    out: str
    in_features: int
    out_features: int
    tokens: int = 1
    groups: int = 1
    weight_input: Optional[str] = None

    def __post_init__(self) -> None:
        _positive(self.name, in_features=self.in_features,
                  out_features=self.out_features, tokens=self.tokens,
                  groups=self.groups)
        if self.in_features % self.groups or \
                self.out_features % self.groups:
            raise WorkloadError(
                f"{self.name}: in/out features "
                f"({self.in_features}/{self.out_features}) must divide "
                f"into groups ({self.groups})")
        if self.weight_input == self.input:
            raise WorkloadError(
                f"{self.name}: weight_input must differ from input")

    @property
    def inputs(self) -> Tuple[str, ...]:
        if self.weight_input is None:
            return (self.input,)
        return (self.input, self.weight_input)

    @property
    def output(self) -> str:
        return self.out

    def _activation_input(self, input_specs: Tuple[TensorSpec, ...]
                          ) -> TensorSpec:
        expected = 1 if self.weight_input is None else 2
        if len(input_specs) != expected:
            raise WorkloadError(
                f"{self.name}: expected {expected} input tensor(s), "
                f"got {len(input_specs)}")
        return input_specs[0]

    def output_spec(self, input_specs: Tuple[TensorSpec, ...]
                    ) -> TensorSpec:
        ifm = self._activation_input(input_specs)
        if ifm.elements != self.in_features * self.tokens:
            raise WorkloadError(
                f"{self.name}: input tensor {ifm.name!r} has "
                f"{ifm.elements} elements; expected in_features x "
                f"tokens = {self.in_features} x {self.tokens} = "
                f"{self.in_features * self.tokens}")
        if self.weight_input is not None:
            wgh = input_specs[1]
            expected = (self.out_features
                        * (self.in_features // self.groups))
            if wgh.elements != expected:
                raise WorkloadError(
                    f"{self.name}: weight tensor {wgh.name!r} has "
                    f"{wgh.elements} elements; expected out_features x "
                    f"in_features/groups = {expected}")
        return TensorSpec(
            name=self.out,
            channels=self.out_features,
            height=1,
            width=self.tokens,
            bytes_per_element=ifm.bytes_per_element,
        )

    def lower(self, input_specs: Tuple[TensorSpec, ...],
              batch: int = 1) -> ConvLayer:
        ifm = self._activation_input(input_specs)
        self.output_spec(input_specs)  # validate the volume factoring
        return ConvLayer(
            name=self.name,
            out_height=1,
            out_width=1,
            out_channels=self.out_features,
            in_channels=self.in_features,
            kernel_height=1,
            kernel_width=1,
            stride=1,
            in_height=1,
            in_width=1,
            groups=self.groups,
            batch=batch * self.tokens,
            bytes_per_element=ifm.bytes_per_element,
        )


@dataclass(frozen=True)
class PoolOp(Operator):
    """Pooling (max/avg): traffic-only feature-map reshaping.

    Moves no weights and performs no MACs; the paper's DRAM study
    folds pooling into the inter-layer feature-map shapes, and the
    graph IR makes that folding explicit.
    """

    name: str
    input: str
    out: str
    kernel: int
    stride: Optional[int] = None
    padding: int = 0
    mode: str = "max"

    def __post_init__(self) -> None:
        _positive(self.name, kernel=self.kernel)
        if self.stride is not None:
            _positive(self.name, stride=self.stride)
        if not isinstance(self.padding, int) or self.padding < 0:
            raise WorkloadError(
                f"{self.name}: padding must be a non-negative integer, "
                f"got {self.padding!r}")
        if self.mode not in ("max", "avg"):
            raise WorkloadError(
                f"{self.name}: mode must be 'max' or 'avg', "
                f"got {self.mode!r}")

    @property
    def inputs(self) -> Tuple[str, ...]:
        return (self.input,)

    @property
    def output(self) -> str:
        return self.out

    @property
    def is_traffic_only(self) -> bool:
        return True

    @property
    def _step(self) -> int:
        return self.kernel if self.stride is None else self.stride

    def output_spec(self, input_specs: Tuple[TensorSpec, ...]
                    ) -> TensorSpec:
        ifm = self._sole_input(input_specs)
        out_h = (ifm.height + 2 * self.padding - self.kernel) \
            // self._step + 1
        out_w = (ifm.width + 2 * self.padding - self.kernel) \
            // self._step + 1
        if out_h <= 0 or out_w <= 0:
            raise WorkloadError(
                f"{self.name}: {self.kernel}x{self.kernel} window does "
                f"not fit the {ifm.shape} input")
        return TensorSpec(
            name=self.out,
            channels=ifm.channels,
            height=out_h,
            width=out_w,
            bytes_per_element=ifm.bytes_per_element,
        )

    def lower(self, input_specs: Tuple[TensorSpec, ...],
              batch: int = 1) -> None:
        return None


@dataclass(frozen=True)
class EltwiseOp(Operator):
    """Element-wise merge (residual add, mul, ...): traffic-only.

    This is the node a flat ``List[ConvLayer]`` cannot express: it has
    *two* producers, so the skip edge of a residual network survives in
    the graph and the hand-off analysis sees both arms.
    """

    name: str
    lhs: str
    rhs: str
    out: str
    mode: str = "add"

    def __post_init__(self) -> None:
        if self.mode not in ("add", "mul"):
            raise WorkloadError(
                f"{self.name}: mode must be 'add' or 'mul', "
                f"got {self.mode!r}")
        if self.lhs == self.rhs:
            raise WorkloadError(
                f"{self.name}: lhs and rhs must be distinct tensors")

    @property
    def inputs(self) -> Tuple[str, ...]:
        return (self.lhs, self.rhs)

    @property
    def output(self) -> str:
        return self.out

    @property
    def is_traffic_only(self) -> bool:
        return True

    def output_spec(self, input_specs: Tuple[TensorSpec, ...]
                    ) -> TensorSpec:
        if len(input_specs) != 2:
            raise WorkloadError(
                f"{self.name}: expected two input tensors, "
                f"got {len(input_specs)}")
        lhs, rhs = input_specs
        if (lhs.channels, lhs.height, lhs.width) \
                != (rhs.channels, rhs.height, rhs.width):
            raise WorkloadError(
                f"{self.name}: shape mismatch {lhs.name}={lhs.shape} "
                f"vs {rhs.name}={rhs.shape}")
        if lhs.bytes_per_element != rhs.bytes_per_element:
            raise WorkloadError(
                f"{self.name}: bytes_per_element mismatch "
                f"({lhs.bytes_per_element} vs {rhs.bytes_per_element})")
        return TensorSpec(
            name=self.out,
            channels=lhs.channels,
            height=lhs.height,
            width=lhs.width,
            bytes_per_element=lhs.bytes_per_element,
        )

    def lower(self, input_specs: Tuple[TensorSpec, ...],
              batch: int = 1) -> None:
        return None
