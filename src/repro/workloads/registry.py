"""Public workload registry.

Workloads register as *builders* — callables ``(batch=1,
bytes_per_element=1, **kwargs) -> Network`` — under a unique name.
Everything downstream derives from this one table: the ``repro
models`` listing, the CLI ``--model`` choices, the compatibility
``repro.cnn.models.MODEL_REGISTRY`` view, and any test or example
that wants a throw-away workload without editing library code:

>>> from repro.workloads import Network, register_workload
>>> from repro.workloads.ops import ConvOp
>>> def my_net(batch=1, bytes_per_element=1):
...     net = Network("my-net", batch=batch)
...     _ = net.add_input("x", 4, 8, 8, bytes_per_element)
...     _ = net.add(ConvOp("C", "x", "y", 8, kernel=3))
...     return net
>>> register_workload("my-net", my_net)
>>> get_workload("my-net").ops[0].name
'C'
>>> unregister_workload("my-net")
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import WorkloadError
from .network import Network
from . import zoo

WorkloadBuilder = Callable[..., Network]

#: Name -> builder.  Mutate only through :func:`register_workload` /
#: :func:`unregister_workload`.
WORKLOAD_REGISTRY: Dict[str, WorkloadBuilder] = {}


def register_workload(
    name: str,
    builder: WorkloadBuilder,
    replace: bool = False,
) -> None:
    """Register a workload builder under ``name``.

    Parameters
    ----------
    name:
        Registry key (also the CLI ``--model`` value).
    builder:
        Callable accepting at least ``batch`` and ``bytes_per_element``
        keyword arguments and returning a :class:`Network`.
    replace:
        Allow overwriting an existing registration (default: a
        duplicate name raises :class:`repro.errors.WorkloadError`).
    """
    if not name or not isinstance(name, str):
        raise WorkloadError(
            f"workload name must be a non-empty string, got {name!r}")
    if not callable(builder):
        raise WorkloadError(
            f"workload builder for {name!r} must be callable, "
            f"got {builder!r}")
    if name in WORKLOAD_REGISTRY and not replace:
        raise WorkloadError(
            f"workload {name!r} is already registered; pass "
            f"replace=True to overwrite")
    WORKLOAD_REGISTRY[name] = builder


#: Alias matching the historical model-zoo vocabulary.
register_model = register_workload


def unregister_workload(name: str) -> None:
    """Remove a registration (tests and downstream plug-ins)."""
    if name not in WORKLOAD_REGISTRY:
        raise WorkloadError(f"workload {name!r} is not registered")
    del WORKLOAD_REGISTRY[name]


def workload_names() -> List[str]:
    """Registered names, sorted."""
    return sorted(WORKLOAD_REGISTRY)


def get_workload(name: str, **kwargs) -> Network:
    """Instantiate a registered workload graph by name."""
    try:
        builder = WORKLOAD_REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: "
            f"{workload_names()}") from None
    return builder(**kwargs)


# The built-in zoo.  ``tiny`` predates the batch parameter; its
# builder accepts one uniformly like every other registrant.
for _name, _builder in (
    ("alexnet", zoo.alexnet),
    ("vgg16", zoo.vgg16),
    ("lenet5", zoo.lenet5),
    ("resnet18", zoo.resnet18),
    ("mobilenetv1", zoo.mobilenet_v1),
    ("mobilenetv2", zoo.mobilenet_v2),
    ("bert-encoder", zoo.bert_encoder),
    ("tiny", zoo.tiny),
):
    register_workload(_name, _builder)
del _name, _builder
