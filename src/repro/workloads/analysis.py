"""Network-level analysis the flat layer list cannot express.

Two questions only the graph can answer:

1. **Feature-map hand-off residency** — for every producer -> consumer
   edge: does the tensor fit the on-chip buffers, so the hand-off
   could stay on chip (eliding one DRAM write + one read per
   consumer), or is it DRAM-resident?  This is the inter-layer
   extension of the paper's per-layer SmartShuttle-style reuse
   analysis.
2. **Topological network-EDP aggregation** — fold a DSE record over
   the lowered layers back onto the graph, walking the ops in
   topological order and summing per-op minima into the network EDP
   (the paper's 'Total' bar, now defined on the DAG instead of a
   list).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cnn.scheduling import ReuseScheme
from ..cnn.tiling import BufferConfig, TABLE2_BUFFERS
from ..dram.architecture import DRAMArchitecture
from ..errors import WorkloadError
from ..mapping.policy import MappingPolicy
from .network import Network
from .ops import TensorSpec


@dataclass(frozen=True)
class FeatureMapHandoff:
    """One producer -> consumer(s) feature-map edge.

    Attributes
    ----------
    tensor:
        The handed-off feature map.
    producer:
        Name of the producing op (``None`` for graph inputs).
    consumers:
        Names of the consuming ops (two or more on residual edges).
    tensor_bytes:
        Batch-scaled DRAM footprint of the tensor.
    on_chip_resident:
        True when the tensor fits both the producer's ofms buffer and
        the consumer's ifms buffer, so the hand-off could bypass DRAM.
    """

    tensor: TensorSpec
    producer: Optional[str]
    consumers: Tuple[str, ...]
    tensor_bytes: int
    on_chip_resident: bool

    @property
    def dram_round_trip_bytes(self) -> int:
        """DRAM bytes of the hand-off in the DRAM-resident scenario:
        one write by the producer plus one read per consumer."""
        return self.tensor_bytes * (1 + len(self.consumers))

    @property
    def saved_bytes(self) -> int:
        """DRAM bytes elided in the on-chip-resident scenario."""
        return self.dram_round_trip_bytes if self.on_chip_resident else 0

    @property
    def is_skip_edge(self) -> bool:
        """True when the tensor fans out to multiple consumers."""
        return len(self.consumers) > 1


def feature_map_handoffs(
    network: Network,
    buffers: BufferConfig = TABLE2_BUFFERS,
) -> List[FeatureMapHandoff]:
    """Every produced-and-consumed feature-map edge of the network.

    Graph inputs and unconsumed outputs are excluded (they must cross
    DRAM regardless); weight tensors never appear (weights are op
    attributes, not edges).
    """
    handoffs: List[FeatureMapHandoff] = []
    limit = min(buffers.ofms_bytes, buffers.ifms_bytes)
    for spec in network.tensors:
        producer = network.producer_of(spec.name)
        consumers = network.consumers_of(spec.name)
        if producer is None or not consumers:
            continue
        tensor_bytes = spec.bytes(network.batch)
        handoffs.append(FeatureMapHandoff(
            tensor=spec,
            producer=producer,
            consumers=consumers,
            tensor_bytes=tensor_bytes,
            on_chip_resident=tensor_bytes <= limit,
        ))
    return handoffs


@dataclass(frozen=True)
class HandoffSummary:
    """Aggregate inter-layer reuse picture of one network."""

    network_name: str
    handoffs: Tuple[FeatureMapHandoff, ...]

    @property
    def total_handoff_bytes(self) -> int:
        """DRAM bytes all hand-offs move in the DRAM-resident
        scenario."""
        return sum(h.dram_round_trip_bytes for h in self.handoffs)

    @property
    def on_chip_eligible(self) -> Tuple[FeatureMapHandoff, ...]:
        """Hand-offs that fit on chip."""
        return tuple(h for h in self.handoffs if h.on_chip_resident)

    @property
    def saved_bytes(self) -> int:
        """DRAM bytes the on-chip-resident scenario elides."""
        return sum(h.saved_bytes for h in self.handoffs)

    @property
    def skip_edges(self) -> Tuple[FeatureMapHandoff, ...]:
        """Multi-consumer (residual) edges."""
        return tuple(h for h in self.handoffs if h.is_skip_edge)


def handoff_summary(
    network: Network,
    buffers: BufferConfig = TABLE2_BUFFERS,
) -> HandoffSummary:
    """Residency analysis of every hand-off in one call."""
    return HandoffSummary(
        network_name=network.name,
        handoffs=tuple(feature_map_handoffs(network, buffers)),
    )


@dataclass(frozen=True)
class NetworkDseSummary:
    """Topological aggregation of a DSE record onto the graph.

    ``per_op`` holds the minimum-EDP design point of every compute op
    in topological order; the totals are the network-level Algorithm-1
    outputs.
    """

    network_name: str
    per_op: Tuple[Tuple[str, object], ...]  # (op name, DsePoint)
    handoffs: HandoffSummary

    @property
    def total_edp_js(self) -> float:
        """Network EDP: sum of per-op minimum EDPs (the paper's
        'Total')."""
        return sum(point.edp_js for _, point in self.per_op)

    @property
    def total_energy_nj(self) -> float:
        """Sum of per-op best-point energies."""
        return sum(point.result.energy_nj for _, point in self.per_op)

    @property
    def total_latency_ns(self) -> float:
        """Sum of per-op best-point latencies (ops run sequentially)."""
        return sum(point.result.latency_ns for _, point in self.per_op)

    def best_points(self) -> Dict[str, object]:
        """Per-op best design points as a dict."""
        return dict(self.per_op)


def network_dse_summary(
    network: Network,
    result,
    architecture: Optional[DRAMArchitecture] = None,
    scheme: Optional[ReuseScheme] = None,
    policy: Optional[MappingPolicy] = None,
    buffers: BufferConfig = TABLE2_BUFFERS,
) -> NetworkDseSummary:
    """Fold a :class:`repro.core.dse.DseResult` back onto the graph.

    Walks the compute ops in topological order, selects each op's
    minimum-EDP point (optionally restricted by architecture / scheme /
    policy), and pairs the totals with the hand-off residency analysis.

    Raises
    ------
    repro.errors.WorkloadError
        If the record lacks points for some compute op (e.g. the DSE
        ran on a different workload).
    """
    per_op: List[Tuple[str, object]] = []
    for op in network.topological_order():
        if op.is_traffic_only:
            continue
        matching = result.filtered(
            architecture=architecture, scheme=scheme, policy=policy,
            layer_name=op.name)
        if not matching:
            raise WorkloadError(
                f"DSE record has no points for op {op.name!r} of "
                f"network {network.name!r}")
        per_op.append(
            (op.name, min(matching, key=lambda point: point.edp_js)))
    return NetworkDseSummary(
        network_name=network.name,
        per_op=tuple(per_op),
        handoffs=handoff_summary(network, buffers),
    )
