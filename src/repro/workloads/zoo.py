"""Graph model zoo: the paper's workloads plus non-CNN newcomers.

Every builder returns a :class:`repro.workloads.network.Network` whose
:meth:`~repro.workloads.network.Network.lower` output is **byte
identical** to the historical ``List[ConvLayer]`` constructors in
:mod:`repro.cnn.models` (the chain models) — pooling becomes explicit
:class:`~repro.workloads.ops.PoolOp` nodes instead of silent shape
jumps, and residual adds become :class:`~repro.workloads.ops.EltwiseOp`
nodes the flat list had to drop.

New workloads the flat list could not express:

* :func:`mobilenet_v2` — inverted residual bottlenecks
  (expand 1x1 -> depthwise 3x3 -> project 1x1) with skip edges,
* :func:`bert_encoder` — a BERT-style transformer encoder block whose
  matmuls (including the activation-activation attention products)
  lower through :class:`~repro.workloads.ops.MatmulOp`.
"""

from __future__ import annotations

from .network import Network
from .ops import ConvOp, DepthwiseConvOp, EltwiseOp, MatmulOp, PoolOp


def alexnet(batch: int = 1, bytes_per_element: int = 1) -> Network:
    """AlexNet (Krizhevsky et al., NIPS 2012) for 227x227 ImageNet.

    The historical two-GPU geometry: CONV2/4/5 are grouped with
    ``groups=2``.  The 3x3/2 max pools after CONV1, CONV2 and CONV5
    are explicit traffic-only nodes.
    """
    net = Network("alexnet", batch=batch)
    net.add_input("image", 3, 227, 227, bytes_per_element)
    net.add(ConvOp("CONV1", "image", "c1", 96, kernel=11, stride=4))
    net.add(PoolOp("POOL1", "c1", "p1", kernel=3, stride=2))
    net.add(ConvOp("CONV2", "p1", "c2", 256, kernel=5, padding=2,
                   groups=2))
    net.add(PoolOp("POOL2", "c2", "p2", kernel=3, stride=2))
    net.add(ConvOp("CONV3", "p2", "c3", 384, kernel=3, padding=1))
    net.add(ConvOp("CONV4", "c3", "c4", 384, kernel=3, padding=1,
                   groups=2))
    net.add(ConvOp("CONV5", "c4", "c5", 256, kernel=3, padding=1,
                   groups=2))
    net.add(PoolOp("POOL5", "c5", "p5", kernel=3, stride=2))
    net.add(MatmulOp("FC6", "p5", "f6", 256 * 6 * 6, 4096))
    net.add(MatmulOp("FC7", "f6", "f7", 4096, 4096))
    net.add(MatmulOp("FC8", "f7", "logits", 4096, 1000))
    return net


def vgg16(batch: int = 1, bytes_per_element: int = 1) -> Network:
    """VGG-16 (Simonyan & Zisserman) for 224x224 ImageNet."""
    net = Network("vgg16", batch=batch)
    net.add_input("image", 3, 224, 224, bytes_per_element)
    stages = [
        # (stage, out_channels, convs)
        (1, 64, 2), (2, 128, 2), (3, 256, 3), (4, 512, 3), (5, 512, 3),
    ]
    previous = "image"
    for stage, out_channels, convs in stages:
        for index in range(1, convs + 1):
            name = f"CONV{stage}_{index}"
            tensor = f"c{stage}_{index}"
            net.add(ConvOp(name, previous, tensor, out_channels,
                           kernel=3, padding=1))
            previous = tensor
        net.add(PoolOp(f"POOL{stage}", previous, f"p{stage}",
                       kernel=2, stride=2))
        previous = f"p{stage}"
    net.add(MatmulOp("FC6", previous, "f6", 512 * 7 * 7, 4096))
    net.add(MatmulOp("FC7", "f6", "f7", 4096, 4096))
    net.add(MatmulOp("FC8", "f7", "logits", 4096, 1000))
    return net


def lenet5(batch: int = 1, bytes_per_element: int = 1) -> Network:
    """LeNet-5 for 32x32 MNIST-style input (a small smoke workload)."""
    net = Network("lenet5", batch=batch)
    net.add_input("image", 1, 32, 32, bytes_per_element)
    net.add(ConvOp("C1", "image", "c1", 6, kernel=5))
    net.add(PoolOp("S2", "c1", "s2", kernel=2, stride=2, mode="avg"))
    net.add(ConvOp("C3", "s2", "c3", 16, kernel=5))
    net.add(PoolOp("S4", "c3", "s4", kernel=2, stride=2, mode="avg"))
    net.add(ConvOp("C5", "s4", "c5", 120, kernel=5))
    net.add(MatmulOp("F6", "c5", "f6", 120, 84))
    net.add(MatmulOp("OUTPUT", "f6", "logits", 84, 10))
    return net


def resnet18(batch: int = 1, bytes_per_element: int = 1) -> Network:
    """ResNet-18 (224x224) **with real residual edges**.

    Each basic block's skip connection is an :class:`EltwiseOp` whose
    second arm is either the block input (identity shortcut) or the
    1x1 projection (downsampling blocks) — the edges
    ``repro.cnn.models.resnet18_convs`` had to drop.
    """
    net = Network("resnet18", batch=batch)
    net.add_input("image", 3, 224, 224, bytes_per_element)
    net.add(ConvOp("CONV1", "image", "c1", 64, kernel=7, stride=2,
                   padding=3))
    net.add(PoolOp("POOL1", "c1", "p1", kernel=3, stride=2, padding=1))
    stages = [
        # (name, channels, first_stride)
        ("LAYER1", 64, 1),
        ("LAYER2", 128, 2),
        ("LAYER3", 256, 2),
        ("LAYER4", 512, 2),
    ]
    previous = "p1"
    in_channels = 64
    for name, channels, first_stride in stages:
        for block, stride in (("B1", first_stride), ("B2", 1)):
            prefix = f"{name}_{block}"
            net.add(ConvOp(f"{prefix}_CONV1", previous,
                           f"{prefix}_c1", channels, kernel=3,
                           stride=stride, padding=1))
            net.add(ConvOp(f"{prefix}_CONV2", f"{prefix}_c1",
                           f"{prefix}_c2", channels, kernel=3,
                           padding=1))
            if stride != 1 or in_channels != channels:
                net.add(ConvOp(f"{prefix}_PROJ", previous,
                               f"{prefix}_skip", channels, kernel=1,
                               stride=stride))
                skip = f"{prefix}_skip"
            else:
                skip = previous
            net.add(EltwiseOp(f"{prefix}_ADD", f"{prefix}_c2", skip,
                              f"{prefix}_out"))
            previous = f"{prefix}_out"
            in_channels = channels
    net.add(PoolOp("GAP", previous, "pooled", kernel=7, mode="avg"))
    net.add(MatmulOp("FC", "pooled", "logits", 512, 1000))
    return net


def mobilenet_v1(batch: int = 1, bytes_per_element: int = 1) -> Network:
    """MobileNetV1 (224x224, width 1.0): depthwise separable chain."""
    net = Network("mobilenetv1", batch=batch)
    net.add_input("image", 3, 224, 224, bytes_per_element)
    net.add(ConvOp("CONV1", "image", "c1", 32, kernel=3, stride=2,
                   padding=1))
    # (out_channels, stride) per separable block
    blocks = [
        (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
        (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2),
        (1024, 1),
    ]
    previous = "c1"
    for index, (out_channels, stride) in enumerate(blocks, start=1):
        net.add(DepthwiseConvOp(f"DW{index}", previous, f"dw{index}",
                                kernel=3, stride=stride, padding=1))
        net.add(ConvOp(f"PW{index}", f"dw{index}", f"pw{index}",
                       out_channels, kernel=1))
        previous = f"pw{index}"
    net.add(PoolOp("GAP", previous, "pooled", kernel=7, mode="avg"))
    net.add(MatmulOp("FC", "pooled", "logits", 1024, 1000))
    return net


def mobilenet_v2(batch: int = 1, bytes_per_element: int = 1) -> Network:
    """MobileNetV2 (Sandler et al., 224x224, width 1.0).

    Inverted residual bottlenecks: 1x1 expansion, 3x3 depthwise, 1x1
    linear projection, with identity skip edges on the stride-1
    blocks whose input and output widths match.
    """
    net = Network("mobilenetv2", batch=batch)
    net.add_input("image", 3, 224, 224, bytes_per_element)
    net.add(ConvOp("CONV1", "image", "c1", 32, kernel=3, stride=2,
                   padding=1))
    # (expansion t, out_channels c, repeats n, first stride s)
    settings = [
        (1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2),
        (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1),
    ]
    previous = "c1"
    in_channels = 32
    index = 0
    for expansion, out_channels, repeats, first_stride in settings:
        for repeat in range(repeats):
            index += 1
            stride = first_stride if repeat == 0 else 1
            prefix = f"B{index}"
            block_in = previous
            hidden = in_channels * expansion
            if expansion != 1:
                net.add(ConvOp(f"{prefix}_EXPAND", block_in,
                               f"{prefix}_exp", hidden, kernel=1))
                previous = f"{prefix}_exp"
            else:
                previous = block_in
            net.add(DepthwiseConvOp(f"{prefix}_DW", previous,
                                    f"{prefix}_dw", kernel=3,
                                    stride=stride, padding=1))
            net.add(ConvOp(f"{prefix}_PROJECT", f"{prefix}_dw",
                           f"{prefix}_proj", out_channels, kernel=1))
            previous = f"{prefix}_proj"
            if stride == 1 and in_channels == out_channels:
                net.add(EltwiseOp(f"{prefix}_ADD", f"{prefix}_proj",
                                  block_in, f"{prefix}_out"))
                previous = f"{prefix}_out"
            in_channels = out_channels
    net.add(ConvOp("CONV_LAST", previous, "c_last", 1280, kernel=1))
    net.add(PoolOp("GAP", "c_last", "pooled", kernel=7, mode="avg"))
    net.add(MatmulOp("FC", "pooled", "logits", 1280, 1000))
    return net


def bert_encoder(
    batch: int = 1,
    bytes_per_element: int = 1,
    seq_len: int = 128,
    hidden: int = 768,
    heads: int = 12,
    ffn_hidden: int = 3072,
) -> Network:
    """One BERT-style transformer encoder block (BERT-base defaults).

    All eight matmuls lower through :class:`MatmulOp` to the paper's
    loop nest with ``B = batch x seq_len``:

    * Q/K/V projections and the output projection
      (``hidden -> hidden``),
    * the attention score product ``Q @ K^T`` and the context product
      ``scores @ V`` — grouped matmuls with ``groups = heads`` whose
      weight operands are the K / V **activation** tensors (kept as
      graph edges via ``weight_input``),
    * the two feed-forward matmuls (``hidden -> ffn_hidden ->
      hidden``).

    The residual adds around attention and the FFN are traffic-only
    :class:`EltwiseOp` nodes; layer norms and softmax move no weight
    data and are folded away, as the paper does with pooling.
    """
    if hidden % heads:
        raise ValueError(
            f"hidden ({hidden}) must divide into heads ({heads})")
    net = Network("bert-encoder", batch=batch)
    net.add_input("tokens", hidden, 1, seq_len, bytes_per_element)
    kwargs = {"in_features": hidden, "out_features": hidden,
              "tokens": seq_len}
    net.add(MatmulOp("Q_PROJ", "tokens", "q", **kwargs))
    net.add(MatmulOp("K_PROJ", "tokens", "k", **kwargs))
    net.add(MatmulOp("V_PROJ", "tokens", "v", **kwargs))
    net.add(MatmulOp(
        "ATTN_SCORES", "q", "scores",
        in_features=hidden, out_features=heads * seq_len,
        tokens=seq_len, groups=heads, weight_input="k"))
    net.add(MatmulOp(
        "ATTN_CONTEXT", "scores", "context",
        in_features=heads * seq_len, out_features=hidden,
        tokens=seq_len, groups=heads, weight_input="v"))
    net.add(MatmulOp("ATTN_OUT", "context", "attn", **kwargs))
    net.add(EltwiseOp("ATTN_ADD", "attn", "tokens", "attn_res"))
    net.add(MatmulOp("FFN1", "attn_res", "ffn1",
                     in_features=hidden, out_features=ffn_hidden,
                     tokens=seq_len))
    net.add(MatmulOp("FFN2", "ffn1", "ffn2",
                     in_features=ffn_hidden, out_features=hidden,
                     tokens=seq_len))
    net.add(EltwiseOp("FFN_ADD", "ffn2", "attn_res", "encoded"))
    return net


def tiny(batch: int = 1, bytes_per_element: int = 1) -> Network:
    """A two-layer network small enough for trace-level simulation."""
    net = Network("tiny", batch=batch)
    net.add_input("image", 4, 8, 8, bytes_per_element)
    net.add(ConvOp("TINY_CONV", "image", "c1", 8, kernel=3, padding=1))
    net.add(MatmulOp("TINY_FC", "c1", "logits", 8 * 8 * 8, 16))
    return net
