"""The workload graph: operators wired by named feature-map tensors.

A :class:`Network` is a DAG.  Nodes are :class:`repro.workloads.ops`
operators; edges are :class:`~repro.workloads.ops.TensorSpec` feature
maps.  Acyclicity holds *by construction*: an operator may only be
added once every tensor it consumes already exists, so insertion order
is a topological order and :meth:`Network.lower` emits the 7-dim loop
nests in exactly that order.

The graph carries strictly more information than the flat
``List[ConvLayer]`` the paper's Algorithm 1 consumes:

* skip edges survive (a residual add has two producers feeding it),
* pooling is an explicit reshaping node instead of a silent shape
  jump between adjacent list entries,
* every producer -> consumer hand-off is a named tensor whose size the
  reuse analysis (:mod:`repro.workloads.analysis`) can test against
  the on-chip buffers.

Everything the DSE machinery needs still falls out of
:meth:`Network.lower`, which keeps the old pipeline byte-identical.
Networks are plain picklable containers of frozen dataclasses, so the
exploration engine can ship them to worker processes inside its
pickled context.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..cnn.layer import ConvLayer
from ..errors import WorkloadError
from .ops import Operator, TensorSpec


class Network:
    """A named workload DAG with a global batch size.

    Parameters
    ----------
    name:
        Workload label (``"resnet18"``).
    batch:
        Batch size ``B`` threaded into every lowered loop nest.

    Example
    -------
    >>> from repro.workloads.ops import ConvOp
    >>> net = Network("toy")
    >>> _ = net.add_input("image", channels=3, height=8, width=8)
    >>> _ = net.add(ConvOp("CONV1", "image", "fm1", out_channels=4,
    ...                    kernel=3, padding=1))
    >>> [layer.name for layer in net.lower()]
    ['CONV1']
    """

    def __init__(self, name: str, batch: int = 1) -> None:
        if not isinstance(batch, int) or batch <= 0:
            raise WorkloadError(
                f"network {name!r}: batch must be a positive integer, "
                f"got {batch!r}")
        self.name = name
        self._batch = batch
        self._tensors: Dict[str, TensorSpec] = {}
        self._producer: Dict[str, str] = {}  # tensor name -> op name
        self._ops: List[Operator] = []
        self._op_names: Dict[str, Operator] = {}
        self._input_names: List[str] = []
        self._lowered: Optional[List[ConvLayer]] = None

    @property
    def batch(self) -> int:
        """Batch size ``B``.  Read-only: the lowered loop nests are
        memoized, so rebuild the network (zoo builders take
        ``batch=``) instead of mutating it."""
        return self._batch

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_input(
        self,
        name: str,
        channels: int,
        height: int = 1,
        width: int = 1,
        bytes_per_element: int = 1,
    ) -> TensorSpec:
        """Declare a graph input tensor (no producer)."""
        spec = TensorSpec(
            name=name, channels=channels, height=height, width=width,
            bytes_per_element=bytes_per_element)
        self._register_tensor(spec)
        self._input_names.append(name)
        return spec

    def add(self, op: Operator) -> TensorSpec:
        """Append an operator; returns the tensor it produces.

        Every input tensor must already exist (graph inputs or outputs
        of previously added operators) — this is what makes the graph
        acyclic by construction.
        """
        if op.name in self._op_names:
            raise WorkloadError(
                f"network {self.name!r}: duplicate operator name "
                f"{op.name!r}")
        input_specs = tuple(self.tensor(name) for name in op.inputs)
        spec = op.output_spec(input_specs)
        self._register_tensor(spec)
        self._producer[spec.name] = op.name
        self._ops.append(op)
        self._op_names[op.name] = op
        self._lowered = None
        return spec

    def _register_tensor(self, spec: TensorSpec) -> None:
        if spec.name in self._tensors:
            raise WorkloadError(
                f"network {self.name!r}: tensor {spec.name!r} already "
                f"has a producer")
        self._tensors[spec.name] = spec

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------

    @property
    def ops(self) -> Tuple[Operator, ...]:
        """Operators in insertion (= topological) order."""
        return tuple(self._ops)

    @property
    def inputs(self) -> Tuple[TensorSpec, ...]:
        """Declared graph inputs."""
        return tuple(self._tensors[name] for name in self._input_names)

    @property
    def tensors(self) -> Tuple[TensorSpec, ...]:
        """Every tensor (inputs first, then in production order)."""
        return tuple(self._tensors.values())

    def tensor(self, name: str) -> TensorSpec:
        """Look up a tensor by name."""
        try:
            return self._tensors[name]
        except KeyError:
            known = ", ".join(sorted(self._tensors)) or "<none>"
            raise WorkloadError(
                f"network {self.name!r}: unknown tensor {name!r}; "
                f"known tensors: {known}") from None

    def op(self, name: str) -> Operator:
        """Look up an operator by name."""
        try:
            return self._op_names[name]
        except KeyError:
            known = ", ".join(o.name for o in self._ops) or "<none>"
            raise WorkloadError(
                f"network {self.name!r}: unknown operator {name!r}; "
                f"operators: {known}") from None

    def producer_of(self, tensor_name: str) -> Optional[str]:
        """Name of the op producing a tensor (None for graph inputs)."""
        self.tensor(tensor_name)
        return self._producer.get(tensor_name)

    def consumers_of(self, tensor_name: str) -> Tuple[str, ...]:
        """Names of the ops consuming a tensor, in topological order."""
        self.tensor(tensor_name)
        return tuple(op.name for op in self._ops
                     if tensor_name in op.inputs)

    @property
    def output_tensors(self) -> Tuple[TensorSpec, ...]:
        """Tensors no operator consumes (the graph outputs)."""
        consumed = {name for op in self._ops for name in op.inputs}
        return tuple(spec for spec in self._tensors.values()
                     if spec.name not in consumed
                     and spec.name in self._producer)

    def topological_order(self) -> Tuple[Operator, ...]:
        """Kahn's algorithm over the op graph (stable w.r.t. insertion).

        Insertion order already *is* topological — this recomputes it
        from the edges as a structural self-check and for callers that
        mutate ``_ops`` views.
        """
        ready = set(self._input_names)
        order: List[Operator] = []
        remaining = list(self._ops)
        while remaining:
            progressed = False
            still: List[Operator] = []
            for op in remaining:
                if all(name in ready for name in op.inputs):
                    order.append(op)
                    ready.add(op.output)
                    progressed = True
                else:
                    still.append(op)
            remaining = still
            if not progressed:
                stuck = ", ".join(op.name for op in remaining)
                raise WorkloadError(
                    f"network {self.name!r}: cycle or dangling input "
                    f"among operators: {stuck}")
        return tuple(order)

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------

    def input_specs_of(self, op: Operator) -> Tuple[TensorSpec, ...]:
        """The input tensors of one operator."""
        return tuple(self.tensor(name) for name in op.inputs)

    def lower(self) -> List[ConvLayer]:
        """Lower every compute op to the paper's 7-dim loop nest.

        Traffic-only operators (pooling, element-wise merges) are
        skipped — they move no weights and perform no MACs, so they
        contribute no Algorithm-1 design points; their DRAM bytes are
        visible to :mod:`repro.workloads.analysis` instead.

        The lowered layers are memoized (invalidated by :meth:`add`),
        so repeated lowering hands out the *same* frozen
        :class:`ConvLayer` objects — downstream evaluation memos then
        hit on object identity instead of full dataclass comparison.
        """
        if self._lowered is None:
            layers: List[ConvLayer] = []
            for op in self._ops:
                layer = op.lower(self.input_specs_of(op),
                                 batch=self.batch)
                if layer is not None:
                    layers.append(layer)
            self._lowered = layers
        return list(self._lowered)

    def lowered_layer(self, op_name: str) -> ConvLayer:
        """Lower a single compute op by name."""
        op = self.op(op_name)
        layer = op.lower(self.input_specs_of(op), batch=self.batch)
        if layer is None:
            raise WorkloadError(
                f"network {self.name!r}: {op_name!r} is traffic-only "
                f"and has no loop nest")
        return layer

    @property
    def compute_ops(self) -> Tuple[Operator, ...]:
        """Operators that lower to loop nests, in topological order."""
        return tuple(op for op in self._ops if not op.is_traffic_only)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def weight_bytes(self) -> int:
        """Total lowered weight volume."""
        return sum(layer.wghs_bytes for layer in self.lower())

    @property
    def macs(self) -> int:
        """Total lowered multiply-accumulates for one batch."""
        return sum(layer.macs for layer in self.lower())

    def describe_rows(self) -> List[List[str]]:
        """Per-op rows for :func:`repro.core.report.format_table`."""
        rows: List[List[str]] = []
        for op in self._ops:
            out_spec = self.tensor(op.output)
            rows.append([
                op.name,
                op.kind,
                " + ".join(op.inputs),
                f"{op.output} ({out_spec.shape})",
                "-" if op.is_traffic_only else "7-dim nest",
            ])
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Network({self.name!r}, batch={self.batch}, "
                f"ops={len(self._ops)}, tensors={len(self._tensors)})")


def as_layers(workload) -> List[ConvLayer]:
    """Coerce a workload (Network or layer sequence) to a layer list.

    The single compatibility seam the DSE entry points share: a
    :class:`Network` lowers, any other iterable is materialized as-is.
    """
    if isinstance(workload, Network):
        return workload.lower()
    if isinstance(workload, ConvLayer):
        return [workload]
    return list(workload)


def chain(name: str, input_spec: TensorSpec, ops: Iterable[Operator],
          batch: int = 1) -> Network:
    """Build a straight-line network from an op sequence.

    Convenience for the chain-shaped zoo models (AlexNet, VGG, LeNet):
    every op consumes the previous op's output.
    """
    net = Network(name, batch=batch)
    net.add_input(
        input_spec.name, input_spec.channels, input_spec.height,
        input_spec.width, input_spec.bytes_per_element)
    for op in ops:
        net.add(op)
    return net
