"""On-chip buffer occupancy model.

The paper's accelerator (Fig. 2) keeps separate buffers per data type:
iB for ifms, wB for wghs, oB for ofms.  :class:`OnChipBuffer` tracks
occupancy and enforces capacity; :class:`BufferSet` bundles the three.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..cnn.layer import ConvLayer
from ..cnn.tiling import BufferConfig, TilingConfig
from ..errors import CapacityError, ConfigurationError


@dataclass
class OnChipBuffer:
    """One SRAM buffer with capacity accounting."""

    name: str
    capacity_bytes: int
    occupied_bytes: int = 0
    peak_bytes: int = 0
    fills: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"buffer {self.name} capacity must be positive, got "
                f"{self.capacity_bytes}")

    @property
    def free_bytes(self) -> int:
        """Unoccupied capacity."""
        return self.capacity_bytes - self.occupied_bytes

    @property
    def utilization(self) -> float:
        """Peak occupancy as a fraction of capacity."""
        return self.peak_bytes / self.capacity_bytes

    def fill(self, num_bytes: int) -> None:
        """Load ``num_bytes`` (replacing the current contents)."""
        if num_bytes < 0:
            raise ConfigurationError(
                f"cannot fill a negative size ({num_bytes})")
        if num_bytes > self.capacity_bytes:
            raise CapacityError(
                f"tile of {num_bytes} B exceeds buffer {self.name} "
                f"({self.capacity_bytes} B)")
        self.occupied_bytes = num_bytes
        self.peak_bytes = max(self.peak_bytes, num_bytes)
        self.fills += 1

    def drain(self) -> None:
        """Evict the current contents."""
        self.occupied_bytes = 0


@dataclass
class BufferSet:
    """The accelerator's three data-type buffers."""

    ifms: OnChipBuffer
    wghs: OnChipBuffer
    ofms: OnChipBuffer

    @classmethod
    def from_config(cls, config: BufferConfig) -> "BufferSet":
        """Build the buffer set from a :class:`BufferConfig`."""
        return cls(
            ifms=OnChipBuffer("iB", config.ifms_bytes),
            wghs=OnChipBuffer("wB", config.wghs_bytes),
            ofms=OnChipBuffer("oB", config.ofms_bytes),
        )

    def by_type(self) -> Dict[str, OnChipBuffer]:
        """Buffers keyed by data-type name."""
        return {"ifms": self.ifms, "wghs": self.wghs, "ofms": self.ofms}

    def load_tile_set(self, layer: ConvLayer, tiling: TilingConfig) -> None:
        """Load one (ifms, wghs, ofms) tile triple, enforcing capacity."""
        self.ifms.fill(tiling.ifms_tile_bytes(layer))
        self.wghs.fill(tiling.wghs_tile_bytes(layer))
        self.ofms.fill(tiling.ofms_tile_bytes(layer))

    def utilization_report(self) -> Dict[str, float]:
        """Peak utilization per buffer."""
        return {name: buffer.utilization
                for name, buffer in self.by_type().items()}
