"""Accelerator substrate: Table-II configuration, buffers, compute."""

from .buffers import BufferSet, OnChipBuffer
from .compute import ComputeEstimate, compute_cycles, is_memory_bound
from .config import AcceleratorConfig, TABLE2_ACCELERATOR

__all__ = [
    "AcceleratorConfig",
    "BufferSet",
    "ComputeEstimate",
    "OnChipBuffer",
    "TABLE2_ACCELERATOR",
    "compute_cycles",
    "is_memory_bound",
]
