"""MAC-array compute latency model.

The paper's EDP metric covers DRAM accesses only, but judging whether
a layer is memory- or compute-bound needs the compute side too.  The
model is a dense systolic estimate: one MAC per unit per cycle at full
utilization, with array-edge underutilization when the tile does not
fill the 8x8 grid.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cnn.layer import ConvLayer
from ..units import ceil_div
from .config import AcceleratorConfig, TABLE2_ACCELERATOR


@dataclass(frozen=True)
class ComputeEstimate:
    """Compute-side latency estimate for one layer."""

    layer_name: str
    macs: int
    cycles: int
    clock_ghz: float

    @property
    def latency_ns(self) -> float:
        """Compute latency in nanoseconds."""
        return self.cycles / self.clock_ghz

    def utilization(self, array_macs: int) -> float:
        """Achieved fraction of peak throughput for an array of
        ``array_macs`` units."""
        if self.cycles == 0:
            return 0.0
        return self.macs / (self.cycles * array_macs)


def compute_cycles(
    layer: ConvLayer,
    config: AcceleratorConfig = TABLE2_ACCELERATOR,
) -> ComputeEstimate:
    """Cycles for one layer on the MAC array.

    The array maps ``mac_rows`` input channels against ``mac_cols``
    output channels per cycle (TPU-style weight-stationary dataflow);
    spatial positions and kernel taps stream through time.
    """
    rows = config.mac_rows
    cols = config.mac_cols
    channel_steps = (ceil_div(layer.in_channels_per_group, rows)
                     * ceil_div(layer.out_channels_per_group, cols))
    spatial_steps = (layer.out_height * layer.out_width
                     * layer.kernel_height * layer.kernel_width)
    cycles = channel_steps * spatial_steps * layer.groups * layer.batch
    return ComputeEstimate(
        layer_name=layer.name,
        macs=layer.macs,
        cycles=cycles,
        clock_ghz=config.clock_ghz,
    )


def is_memory_bound(
    layer: ConvLayer,
    dram_latency_ns: float,
    config: AcceleratorConfig = TABLE2_ACCELERATOR,
) -> bool:
    """True when DRAM access time exceeds compute time for the layer."""
    estimate = compute_cycles(layer, config)
    return dram_latency_ns > estimate.latency_ns
