"""Accelerator configuration — paper Table II.

A TPU-like CNN accelerator with a reduced MAC array and on-chip
buffers: 8x8 MACs, three 64 KB buffers (iB, wB, oB), an FCFS open-row
memory controller, and a DDR3/SALP 2 Gb x8 DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cnn.tiling import BufferConfig, TABLE2_BUFFERS
from ..dram.architecture import DRAMArchitecture
from ..dram.presets import organization_for
from ..dram.spec import DRAMOrganization
from ..errors import ConfigurationError


@dataclass(frozen=True)
class AcceleratorConfig:
    """Full accelerator configuration (Table II defaults)."""

    mac_rows: int = 8
    mac_cols: int = 8
    buffers: BufferConfig = field(default_factory=lambda: TABLE2_BUFFERS)
    dram_architecture: DRAMArchitecture = DRAMArchitecture.DDR3
    clock_ghz: float = 0.8

    def __post_init__(self) -> None:
        if self.mac_rows <= 0 or self.mac_cols <= 0:
            raise ConfigurationError(
                f"MAC array must be positive, got "
                f"{self.mac_rows}x{self.mac_cols}")
        if self.clock_ghz <= 0:
            raise ConfigurationError(
                f"clock_ghz must be positive, got {self.clock_ghz}")

    @property
    def num_macs(self) -> int:
        """MAC units in the array."""
        return self.mac_rows * self.mac_cols

    @property
    def dram_organization(self) -> DRAMOrganization:
        """DRAM geometry matching the configured architecture."""
        return organization_for(self.dram_architecture)

    @property
    def peak_macs_per_second(self) -> float:
        """Peak throughput in MAC operations per second."""
        return self.num_macs * self.clock_ghz * 1e9


#: The paper's Table-II accelerator.
TABLE2_ACCELERATOR = AcceleratorConfig()
