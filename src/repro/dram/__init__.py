"""DRAM substrate: geometry, timing, energy, cycle-level simulation.

This package plays the role of Ramulator + VAMPIRE in the paper's tool
flow (Fig. 8): a cycle-level command scheduler over JEDEC timing
constraints produces command traces and per-condition service times,
and a current-based energy model integrates those traces.
"""

from .address import Coordinate
from .analytical import (
    AnalyticalModel,
    analytical_characterization,
    compare_to_simulator,
)
from .architecture import (
    ALL_ARCHITECTURES,
    SALP_ARCHITECTURES,
    ArchitectureBehavior,
    DRAMArchitecture,
    behavior_of,
)
from .characterize import (
    ALL_CONDITIONS,
    AccessCondition,
    CacheStats,
    CharacterizationCache,
    CharacterizationResult,
    ConditionCost,
    DEFAULT_CHARACTERIZATION_CACHE,
    characterize,
    characterize_all,
    characterize_analytical,
    characterize_cached,
    characterize_device,
    characterize_preset,
)
from .store import (
    CharacterizationStore,
    StoreStats,
    default_cache_dir,
    spec_hash,
)
from .device import (
    DEFAULT_DEVICE_NAME,
    DEVICE_REGISTRY,
    DeviceProfile,
    DeviceRegistry,
    default_device,
    device_names,
    get_device,
    register_device,
)
from .commands import (
    Command,
    CommandKind,
    CommandTrace,
    Request,
    RequestKind,
    ServicedRequest,
)
from .controller import MemoryController
from .energy import EnergyAccountant, TraceEnergy
from .policies import (
    DEFAULT_CONTROLLER_CONFIG,
    ControllerConfig,
    RowPolicyKind,
    SchedulerKind,
    all_controller_configs,
    controller_config,
    get_row_policy,
    get_scheduler,
    resolve_controller,
    row_policy_names,
    scheduler_names,
)
from .power import CurrentParameters, DDR3_1600_2GB_X8_CURRENTS, EnergyModel
from .presets import (
    DDR3_1600_2GB_X8,
    TINY_ORGANIZATION,
    organization_for,
)
from .simulator import DRAMSimulator, SimulationResult
from .spec import DRAMOrganization
from .timing import DDR3_1066_TIMINGS, DDR3_1600_TIMINGS, TimingParameters
from .trace_io import (
    address_to_request,
    read_command_trace,
    read_request_trace,
    request_to_address,
    write_command_trace,
    write_request_trace,
)

__all__ = [
    "ALL_ARCHITECTURES",
    "ALL_CONDITIONS",
    "AccessCondition",
    "AnalyticalModel",
    "ArchitectureBehavior",
    "CacheStats",
    "CharacterizationCache",
    "CharacterizationResult",
    "CharacterizationStore",
    "Command",
    "CommandKind",
    "CommandTrace",
    "ConditionCost",
    "ControllerConfig",
    "Coordinate",
    "CurrentParameters",
    "DDR3_1066_TIMINGS",
    "DDR3_1600_2GB_X8",
    "DDR3_1600_2GB_X8_CURRENTS",
    "DDR3_1600_TIMINGS",
    "DEFAULT_CHARACTERIZATION_CACHE",
    "DEFAULT_CONTROLLER_CONFIG",
    "DEFAULT_DEVICE_NAME",
    "DEVICE_REGISTRY",
    "DRAMArchitecture",
    "DeviceProfile",
    "DeviceRegistry",
    "DRAMOrganization",
    "DRAMSimulator",
    "EnergyAccountant",
    "EnergyModel",
    "MemoryController",
    "Request",
    "RequestKind",
    "RowPolicyKind",
    "SALP_ARCHITECTURES",
    "SchedulerKind",
    "ServicedRequest",
    "SimulationResult",
    "StoreStats",
    "TINY_ORGANIZATION",
    "TimingParameters",
    "TraceEnergy",
    "address_to_request",
    "all_controller_configs",
    "analytical_characterization",
    "behavior_of",
    "characterize",
    "compare_to_simulator",
    "controller_config",
    "characterize_all",
    "characterize_analytical",
    "characterize_cached",
    "characterize_device",
    "characterize_preset",
    "default_cache_dir",
    "default_device",
    "device_names",
    "spec_hash",
    "get_device",
    "get_row_policy",
    "get_scheduler",
    "organization_for",
    "register_device",
    "read_command_trace",
    "read_request_trace",
    "request_to_address",
    "resolve_controller",
    "row_policy_names",
    "scheduler_names",
    "write_command_trace",
    "write_request_trace",
]
