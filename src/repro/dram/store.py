"""Persistent on-disk store for DRAM characterizations.

Characterizing one ``(device, architecture, controller)`` runs eight
micro-experiment streams plus two isolated requests on the cycle-level
simulator.  The in-process LRU
(:class:`repro.dram.characterize.CharacterizationCache`) already
de-duplicates that inside one process; this module persists the
results across processes, so repeated CLI runs warm-start instead of
re-simulating.

Layout and invalidation
-----------------------
Each entry is one JSON file under the store root (default
``~/.cache/repro``, overridable via the ``REPRO_CACHE_DIR``
environment variable or the CLI's ``--cache-dir``).  The filename is
the SHA-256 **spec hash** of the complete configuration — every field
of the device profile's organization / timings / currents, the
architecture, the controller configuration, the channel-contention
configuration and the store format version.  Any parameter change (a
re-tuned timing, a new geometry, a different row policy, a different
requestor count or arbiter) therefore hashes to a different file:
stale entries are never served, they are simply orphaned (and removed
by ``repro cache clear``).

The store is attached to a
:class:`~repro.dram.characterize.CharacterizationCache` via
``attach_store``; it is consulted only on in-memory misses and written
after fresh simulations.  I/O failures degrade silently to plain
in-memory behaviour — a broken cache directory must never break a
run.  Writes are atomic (``os.replace`` of a temp file), so
concurrent CLI invocations at worst redo a simulation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from .architecture import DRAMArchitecture
from .characterize import (
    AccessCondition,
    CharacterizationResult,
    ConditionCost,
)
from .contention import (
    ContentionConfig,
    RequestorStats,
    resolve_contention,
)
from .device import DeviceProfile
from .policies import ControllerConfig

#: Bump when the serialized payload shape changes; old entries are
#: invalidated by the hash.  Version 2 added the channel-contention
#: configuration to the spec and per-requestor accounting to the
#: payload: every pre-contention entry is orphaned (re-simulated once,
#: then re-persisted under the new hash; ``repro cache clear`` removes
#: the leftovers).
STORE_FORMAT_VERSION = 2

#: Environment variable overriding the default store root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


def _spec_payload(
    profile: DeviceProfile,
    architecture: DRAMArchitecture,
    controller: ControllerConfig,
    contention: Optional[ContentionConfig] = None,
) -> dict:
    """Canonical JSON-able description of one configuration."""
    channel = resolve_contention(contention)
    return {
        "version": STORE_FORMAT_VERSION,
        "device_name": profile.name,
        "organization": dataclasses.asdict(profile.organization),
        "timings": dataclasses.asdict(profile.timings),
        "currents": dataclasses.asdict(profile.currents),
        "architecture": architecture.value,
        "controller": {
            "scheduler": controller.scheduler.value,
            "row_policy": controller.row_policy.value,
            "reorder_window": controller.reorder_window,
            "timeout_cycles": controller.timeout_cycles,
        },
        "contention": {
            "requestors": channel.requestors,
            "arbiter": channel.arbiter.value,
            "assignment": channel.assignment.value,
            "in_flight_limit": channel.in_flight_limit,
            "age_limit": channel.age_limit,
        },
    }


def spec_hash(
    profile: DeviceProfile,
    architecture: DRAMArchitecture,
    controller: ControllerConfig,
    contention: Optional[ContentionConfig] = None,
) -> str:
    """SHA-256 over the canonical spec: the store key."""
    canonical = json.dumps(
        _spec_payload(profile, architecture, controller, contention),
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreStats:
    """Contents and traffic counters of one store."""

    root: str
    entries: int
    total_bytes: int
    hits: int
    misses: int
    writes: int


class CharacterizationStore:
    """On-disk characterization store rooted at one directory.

    Parameters
    ----------
    root:
        Store directory; created lazily on first write.  ``None``
        selects :func:`default_cache_dir`.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    # Load / save
    # ------------------------------------------------------------------

    def load(
        self,
        profile: DeviceProfile,
        architecture: DRAMArchitecture,
        controller: ControllerConfig,
        contention: Optional[ContentionConfig] = None,
    ) -> Optional[CharacterizationResult]:
        """The stored result for this exact spec, or ``None``.

        Unreadable or mismatching entries (hash collisions, hand-edited
        files, format drift) are treated as misses.
        """
        channel = resolve_contention(contention)
        spec = _spec_payload(profile, architecture, controller, channel)
        path = self._path(
            spec_hash(profile, architecture, controller, channel))
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("spec") != spec:
            self.misses += 1
            return None
        try:
            costs = {
                AccessCondition(name): ConditionCost(
                    cycles=float(entry["cycles"]),
                    read_energy_nj=float(entry["read_energy_nj"]),
                    write_energy_nj=float(entry["write_energy_nj"]),
                )
                for name, entry in payload["costs"].items()
            }
            requestor_stats = tuple(
                RequestorStats(
                    requestor=entry["requestor"],
                    serviced=int(entry["serviced"]),
                    row_hits=int(entry["row_hits"]),
                    row_misses=int(entry["row_misses"]),
                    row_conflicts=int(entry["row_conflicts"]),
                    mean_service_cycles=float(
                        entry["mean_service_cycles"]),
                    bus_share=float(entry["bus_share"]),
                )
                for entry in payload.get("requestor_stats", ())
            )
            result = CharacterizationResult(
                architecture=architecture,
                costs=costs,
                tck_ns=float(payload["tck_ns"]),
                device_name=payload["device_name"],
                controller=controller,
                contention=channel,
                requestor_stats=requestor_stats,
            )
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def save(
        self,
        result: CharacterizationResult,
        profile: DeviceProfile,
        architecture: DRAMArchitecture,
        controller: ControllerConfig,
        contention: Optional[ContentionConfig] = None,
    ) -> Optional[Path]:
        """Persist ``result`` atomically; ``None`` if the write failed."""
        channel = resolve_contention(contention)
        spec = _spec_payload(profile, architecture, controller, channel)
        payload = {
            "spec": spec,
            "device_name": result.device_name,
            "tck_ns": result.tck_ns,
            "costs": {
                condition.value: {
                    "cycles": cost.cycles,
                    "read_energy_nj": cost.read_energy_nj,
                    "write_energy_nj": cost.write_energy_nj,
                }
                for condition, cost in result.costs.items()
            },
            "requestor_stats": [
                {
                    "requestor": stats.requestor,
                    "serviced": stats.serviced,
                    "row_hits": stats.row_hits,
                    "row_misses": stats.row_misses,
                    "row_conflicts": stats.row_conflicts,
                    "mean_service_cycles": stats.mean_service_cycles,
                    "bus_share": stats.bus_share,
                }
                for stats in result.requestor_stats
            ],
        }
        path = self._path(
            spec_hash(profile, architecture, controller, channel))
        temp_name = None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(
                dir=str(self.root), suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True, indent=1)
            os.replace(temp_name, path)
        except OSError:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
            return None
        self.writes += 1
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _entry_paths(self):
        try:
            return sorted(self.root.glob("*.json"))
        except OSError:
            return []

    def stats(self) -> StoreStats:
        """Entry count, footprint and traffic counters."""
        entries = 0
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return StoreStats(
            root=str(self.root),
            entries=entries,
            total_bytes=total,
            hits=self.hits,
            misses=self.misses,
            writes=self.writes,
        )

    def clear(self) -> int:
        """Delete every entry (and orphaned temp files); return count."""
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        try:
            for leftover in self.root.glob("*.tmp"):
                leftover.unlink()
        except OSError:
            pass
        return removed
