"""JEDEC timing parameters for the cycle-level DRAM model.

All values are in memory-clock cycles except ``tck_ns``.  The default
set is DDR3-1600K (11-11-11), the speed grade used by the paper's
``DDR3-1600 2Gb x8`` configuration.

Only the constraints that shape the paper's five access conditions are
modelled (activation, precharge, column access, write recovery, bank
group pacing); refresh is supported but disabled by default since the
paper's per-access characterization excludes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class TimingParameters:
    """DRAM timing constraints in clock cycles.

    Attributes
    ----------
    tck_ns:
        Clock period in nanoseconds (DDR3-1600: 1.25 ns).
    tRCD:
        ACT to internal read/write delay.
    tRP:
        PRE to ACT delay (same bank).
    tCL:
        Read column-access strobe latency.
    tCWL:
        Write column-access strobe latency.
    tRAS:
        ACT to PRE minimum (same bank).
    tRC:
        ACT to ACT minimum (same bank) -- must equal ``tRAS + tRP``.
    tWR:
        Write recovery: end of write data to PRE.
    tRTP:
        Read to PRE delay.
    tCCD:
        Column command to column command (burst pacing).
    tRRD:
        ACT to ACT delay across banks of the same rank.
    tFAW:
        Four-activation window per rank.
    tWTR:
        End of write data to read command turnaround.
    tRTW:
        Read to write command turnaround (derived constraint on many
        datasheets; modelled explicitly here).
    tBL:
        Data burst duration on the bus (BL8 on DDR3: 4 cycles).
    tRFC:
        Refresh cycle time.
    tREFI:
        Average refresh interval.
    """

    tck_ns: float = 1.25
    tRCD: int = 11
    tRP: int = 11
    tCL: int = 11
    tCWL: int = 8
    tRAS: int = 28
    tRC: int = 39
    tWR: int = 12
    tRTP: int = 6
    tCCD: int = 4
    tRRD: int = 5
    tFAW: int = 24
    tWTR: int = 6
    tRTW: int = 7
    tBL: int = 4
    tRFC: int = 128
    tREFI: int = 6240

    def __post_init__(self) -> None:
        if self.tck_ns <= 0:
            raise ConfigurationError(
                f"tck_ns must be positive, got {self.tck_ns}")
        cycle_fields = (
            "tRCD", "tRP", "tCL", "tCWL", "tRAS", "tRC", "tWR", "tRTP",
            "tCCD", "tRRD", "tFAW", "tWTR", "tRTW", "tBL", "tRFC", "tREFI",
        )
        for name in cycle_fields:
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigurationError(
                    f"{name} must be a positive integer of cycles, "
                    f"got {value!r}")
        if self.tRC != self.tRAS + self.tRP:
            raise ConfigurationError(
                f"tRC ({self.tRC}) must equal tRAS + tRP "
                f"({self.tRAS} + {self.tRP} = {self.tRAS + self.tRP})")
        if self.tFAW < self.tRRD:
            raise ConfigurationError(
                f"tFAW ({self.tFAW}) must be at least tRRD ({self.tRRD})")
        if self.tCCD < 1:
            raise ConfigurationError("tCCD must be at least 1")

    # ------------------------------------------------------------------
    # Derived service times (closed bank, idle bus)
    # ------------------------------------------------------------------

    @property
    def read_hit_cycles(self) -> int:
        """Isolated read latency with the row already open: CL + burst."""
        return self.tCL + self.tBL

    @property
    def read_miss_cycles(self) -> int:
        """Isolated read latency from a precharged bank: RCD + CL + burst."""
        return self.tRCD + self.read_hit_cycles

    @property
    def read_conflict_cycles(self) -> int:
        """Isolated read latency past a conflicting open row."""
        return self.tRP + self.read_miss_cycles

    @property
    def write_hit_cycles(self) -> int:
        """Isolated write latency with the row already open: CWL + burst."""
        return self.tCWL + self.tBL

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert a cycle count to nanoseconds."""
        return cycles * self.tck_ns

    def ns(self, cycles: float) -> float:
        """Alias of :meth:`cycles_to_ns` for terse call sites."""
        return self.cycles_to_ns(cycles)


#: DDR3-1600K 11-11-11 (the paper's speed grade).
DDR3_1600_TIMINGS = TimingParameters()

#: DDR3-1066 for sensitivity studies (slower clock, tighter cycles).
DDR3_1066_TIMINGS = TimingParameters(
    tck_ns=1.875, tRCD=8, tRP=8, tCL=8, tCWL=6, tRAS=20, tRC=28,
    tWR=8, tRTP=4, tCCD=4, tRRD=4, tFAW=20, tWTR=4, tRTW=6, tBL=4,
    tRFC=86, tREFI=4160,
)
