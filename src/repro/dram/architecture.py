"""DRAM architecture variants: commodity DDR3 and the SALP family.

Paper Section II-C summarizes Kim et al. (ISCA 2012):

* **SALP-1** overlaps the *precharge* of one subarray with the
  *activation* of another subarray of the same bank (re-interpreting
  the tRP constraint to be subarray-local).
* **SALP-2** additionally overlaps the *write-recovery* (tWR) of the
  active subarray with the activation of another subarray.
* **SALP-MASA** activates *multiple subarrays at the same time*: each
  subarray's local row buffer retains its row, so returning to a
  previously-activated subarray is a row-buffer hit.

Each variant is expressed as a set of behaviour flags consumed by the
cycle-level controller; commodity DDR3 has all flags off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DRAMArchitecture(enum.Enum):
    """The four DRAM architectures evaluated in the paper."""

    DDR3 = "DDR3"
    SALP_1 = "SALP-1"
    SALP_2 = "SALP-2"
    SALP_MASA = "SALP-MASA"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ArchitectureBehavior:
    """Timing-interaction flags for one architecture.

    Attributes
    ----------
    overlap_precharge_with_activation:
        SALP-1..MASA: an ACT to subarray B may be issued while subarray
        A of the same bank is still precharging (the tRP wait becomes
        subarray-local).
    overlap_write_recovery:
        SALP-2, MASA: an ACT to subarray B need not wait for subarray
        A's write recovery (tWR) to elapse.
    multiple_activated_subarrays:
        MASA: subarrays keep their local row buffers activated; at most
        ``max_activated_subarrays`` concurrently per bank.
    max_activated_subarrays:
        Concurrent activated-subarray budget per bank under MASA (the
        designated-activation register count).  Ignored otherwise.
    subarray_select_cycles:
        Extra cycles for the subarray-select (designation) step when a
        column command targets a non-most-recently-used activated
        subarray under MASA.  The SALP paper routes a designated-bit
        update through the global row-address latch before the column
        access; two memory-bus cycles cover that round trip and keep
        MASA's subarray switches slightly above plain bank switches,
        matching Fig. 1.
    """

    overlap_precharge_with_activation: bool = False
    overlap_write_recovery: bool = False
    multiple_activated_subarrays: bool = False
    max_activated_subarrays: int = 8
    subarray_select_cycles: int = 2


_BEHAVIORS = {
    DRAMArchitecture.DDR3: ArchitectureBehavior(),
    DRAMArchitecture.SALP_1: ArchitectureBehavior(
        overlap_precharge_with_activation=True,
    ),
    DRAMArchitecture.SALP_2: ArchitectureBehavior(
        overlap_precharge_with_activation=True,
        overlap_write_recovery=True,
    ),
    DRAMArchitecture.SALP_MASA: ArchitectureBehavior(
        overlap_precharge_with_activation=True,
        overlap_write_recovery=True,
        multiple_activated_subarrays=True,
    ),
}


def behavior_of(architecture: DRAMArchitecture) -> ArchitectureBehavior:
    """Return the behaviour flags of ``architecture``."""
    return _BEHAVIORS[architecture]


#: All four architectures in the paper's presentation order.
ALL_ARCHITECTURES = (
    DRAMArchitecture.DDR3,
    DRAMArchitecture.SALP_1,
    DRAMArchitecture.SALP_2,
    DRAMArchitecture.SALP_MASA,
)

#: Architectures with subarray-level parallelism enabled.
SALP_ARCHITECTURES = (
    DRAMArchitecture.SALP_1,
    DRAMArchitecture.SALP_2,
    DRAMArchitecture.SALP_MASA,
)
