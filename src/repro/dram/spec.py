"""DRAM organization geometry.

A commodity DRAM device is organized, top to bottom, as channel, rank,
chip, bank, (subarray,) row, column (paper Section II-B, Fig. 4).  The
:class:`DRAMOrganization` captures this geometry plus the interface
parameters (device width, burst length) needed to translate bytes into
DRAM *accesses*.

An **access** throughout this library means one burst: with a 2 Gb x8
device and BL8, one access moves 8 bytes per chip.  Chips within a rank
operate in lockstep off the same command bus, so a chip is *not* an
independently addressable dimension; ``chips_per_rank`` only scales the
bytes moved per access and the energy per command.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..units import ceil_div


@dataclass(frozen=True)
class DRAMOrganization:
    """Geometry of a DRAM system.

    Parameters
    ----------
    channels:
        Independent channels, each with its own command/data bus.
    ranks_per_channel:
        Ranks sharing a channel bus.
    chips_per_rank:
        Devices operated in lockstep within a rank.
    banks_per_chip:
        Independently schedulable banks per chip.
    subarrays_per_bank:
        Subarrays per bank.  Commodity DDR3 exposes no subarray-level
        parallelism (but the physical subarrays still exist); SALP
        architectures expose 8 per bank in the paper's configuration.
    rows_per_bank:
        Rows per bank (divided evenly among subarrays).
    columns_per_row:
        Column *addresses* per row (each column is ``device_width_bits``
        wide).
    device_width_bits:
        Data-bus width of one chip (x8 -> 8).
    burst_length:
        Beats per burst (DDR3: BL8).
    """

    channels: int = 1
    ranks_per_channel: int = 1
    chips_per_rank: int = 1
    banks_per_chip: int = 8
    subarrays_per_bank: int = 8
    rows_per_bank: int = 32768
    columns_per_row: int = 1024
    device_width_bits: int = 8
    burst_length: int = 8

    def __post_init__(self) -> None:
        positive_fields = (
            "channels", "ranks_per_channel", "chips_per_rank",
            "banks_per_chip", "subarrays_per_bank", "rows_per_bank",
            "columns_per_row", "device_width_bits", "burst_length",
        )
        for name in positive_fields:
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigurationError(
                    f"{name} must be a positive integer, got {value!r}")
        if self.rows_per_bank % self.subarrays_per_bank != 0:
            raise ConfigurationError(
                f"rows_per_bank ({self.rows_per_bank}) must divide evenly "
                f"into subarrays_per_bank ({self.subarrays_per_bank})")
        if self.columns_per_row % self.burst_length != 0:
            raise ConfigurationError(
                f"columns_per_row ({self.columns_per_row}) must be a "
                f"multiple of burst_length ({self.burst_length})")
        if self.device_width_bits % 8 != 0:
            raise ConfigurationError(
                f"device_width_bits must be a multiple of 8, got "
                f"{self.device_width_bits}")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------

    @property
    def rows_per_subarray(self) -> int:
        """Rows held by one subarray."""
        return self.rows_per_bank // self.subarrays_per_bank

    @property
    def bursts_per_row(self) -> int:
        """Burst slots in one row; the 'columns' of the mapping loops."""
        return self.columns_per_row // self.burst_length

    @property
    def bytes_per_burst(self) -> int:
        """Bytes moved per access across the whole rank."""
        return (self.device_width_bits // 8) * self.burst_length \
            * self.chips_per_rank

    @property
    def row_bytes(self) -> int:
        """Bytes held by one row across the rank (the row-buffer size)."""
        return self.bursts_per_row * self.bytes_per_burst

    @property
    def bank_bytes(self) -> int:
        """Bytes per bank across the rank."""
        return self.row_bytes * self.rows_per_bank

    @property
    def subarray_bytes(self) -> int:
        """Bytes per subarray across the rank."""
        return self.row_bytes * self.rows_per_subarray

    @property
    def chip_megabits(self) -> int:
        """Device density in megabits (sanity check against datasheets)."""
        bits = (self.banks_per_chip * self.rows_per_bank
                * self.columns_per_row * self.device_width_bits)
        return bits // (1024 * 1024)

    @property
    def rank_bytes(self) -> int:
        """Bytes per rank."""
        return self.bank_bytes * self.banks_per_chip

    @property
    def total_bytes(self) -> int:
        """Total system capacity in bytes."""
        return self.rank_bytes * self.ranks_per_channel * self.channels

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def accesses_for_bytes(self, num_bytes: int) -> int:
        """Number of bursts needed to move ``num_bytes``."""
        if num_bytes < 0:
            raise ConfigurationError(
                f"num_bytes must be non-negative, got {num_bytes}")
        if num_bytes == 0:
            return 0
        return ceil_div(num_bytes, self.bytes_per_burst)

    def with_subarrays(self, subarrays_per_bank: int) -> "DRAMOrganization":
        """Return a copy with a different subarray count."""
        return replace(self, subarrays_per_bank=subarrays_per_bank)

    def describe(self) -> str:
        """One-line human-readable geometry summary."""
        return (
            f"{self.channels}ch x {self.ranks_per_channel}ra x "
            f"{self.chips_per_rank}chip ({self.chip_megabits} Mb x"
            f"{self.device_width_bits}), {self.banks_per_chip} banks, "
            f"{self.subarrays_per_bank} subarrays/bank, "
            f"{self.rows_per_bank} rows/bank, "
            f"{self.bursts_per_row} bursts/row, "
            f"{self.bytes_per_burst} B/burst"
        )
