"""DRAM coordinates.

A :class:`Coordinate` names one burst-sized slot in the DRAM system by
its position in every level of the hierarchy: channel, rank, bank,
subarray, row, column.  The ``column`` field indexes *burst slots*
within a row (``organization.bursts_per_row`` of them), matching the
granularity at which mapping policies place data.

Chips are not part of the coordinate: all chips of a rank respond to
the same command in lockstep (see :mod:`repro.dram.spec`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .spec import DRAMOrganization


@dataclass(frozen=True, order=True)
class Coordinate:
    """Position of one burst-sized data slot in the DRAM hierarchy."""

    channel: int = 0
    rank: int = 0
    bank: int = 0
    subarray: int = 0
    row: int = 0
    column: int = 0

    def __post_init__(self) -> None:
        for name in ("channel", "rank", "bank", "subarray", "row", "column"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ConfigurationError(
                    f"{name} must be a non-negative integer, got {value!r}")

    def validate(self, organization: DRAMOrganization) -> None:
        """Raise :class:`ConfigurationError` if out of range for ``organization``."""
        bounds = {
            "channel": organization.channels,
            "rank": organization.ranks_per_channel,
            "bank": organization.banks_per_chip,
            "subarray": organization.subarrays_per_bank,
            "row": organization.rows_per_subarray,
            "column": organization.bursts_per_row,
        }
        for name, bound in bounds.items():
            value = getattr(self, name)
            if value >= bound:
                raise ConfigurationError(
                    f"{name}={value} out of range for organization "
                    f"({name} bound {bound})")

    @property
    def bank_key(self) -> tuple:
        """Identity of the bank this coordinate lives in."""
        return (self.channel, self.rank, self.bank)

    @property
    def subarray_key(self) -> tuple:
        """Identity of the subarray this coordinate lives in."""
        return (self.channel, self.rank, self.bank, self.subarray)

    @property
    def bank_row(self) -> tuple:
        """(subarray, row) pair identifying the row within its bank."""
        return (self.subarray, self.row)

    def replace(self, **fields: int) -> "Coordinate":
        """Return a copy with ``fields`` substituted."""
        values = {
            "channel": self.channel, "rank": self.rank, "bank": self.bank,
            "subarray": self.subarray, "row": self.row, "column": self.column,
        }
        values.update(fields)
        return Coordinate(**values)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ch{self.channel}/ra{self.rank}/ba{self.bank}"
                f"/sa{self.subarray}/ro{self.row}/co{self.column}")
