"""Multi-requestor crossbar in front of the memory controller.

The :class:`Crossbar` accepts N tagged request streams, keeps a
per-requestor bank machine (the requestor's own view of which row its
last access left open in each subarray) and a soft in-flight limit,
and forwards one head-of-queue request per grant to the unmodified
:class:`repro.dram.controller.MemoryController` — so refresh
(tREFI/tRFC), row policies, and FR-FCFS scheduling all compose with
contention unchanged.

The merge is a generator: the controller pulls the next request
exactly when its scheduler has room for it, and the crossbar
arbitrates *at that pull* using the completions the controller has
published so far.  With one requestor the merged stream is the input
stream itself, so N=1 is command-for-command identical to running the
bare controller (golden-pinned in ``tests/dram/test_trace_golden.py``).

Arbitration (:mod:`repro.dram.contention`) happens in two steps:

1. Backlogged requestors under their soft in-flight limit form the
   candidate pool; when *every* backlogged requestor is over the
   limit the pool falls back to all of them (the limit throttles, it
   never deadlocks — and under the FCFS controller at most one
   request is outstanding, so the limit is invisible there).
2. The configured arbiter picks one candidate.

Every grant is appended to :attr:`Crossbar.grant_log` with the wait it
ended, so fairness invariants (round-robin starvation-freedom,
age-based bounded wait) are directly observable in tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, Iterable, Iterator, List, Optional

from ..errors import ConfigurationError
from .commands import CommandTrace, Request
from .contention import (
    ContentionConfig,
    RequestorView,
    get_arbiter,
    requestor_tag,
    resolve_contention,
    split_stream,
)
from .controller import MemoryController


class RequestorBankMachine:
    """One requestor's private view of the rows its accesses opened.

    This is deliberately *not* the controller's bank state: a real
    per-requestor bank machine only sees its own stream, so its
    row-hit prediction ignores evictions caused by other requestors
    (and by the closed-row policy).  The age-based arbiter uses it to
    prefer heads with self-locality, exactly like a per-core FR-FCFS
    hint.
    """

    def __init__(self) -> None:
        self._open_rows: Dict[tuple, int] = {}

    def would_hit(self, request: Request) -> bool:
        """True when the request targets the row this requestor last
        opened in its subarray."""
        coordinate = request.coordinate
        return self._open_rows.get(
            coordinate.subarray_key) == coordinate.row

    def observe(self, request: Request) -> None:
        """Record the row the forwarded request leaves open."""
        coordinate = request.coordinate
        self._open_rows[coordinate.subarray_key] = coordinate.row


@dataclass(frozen=True)
class GrantRecord:
    """One arbitration decision: who won, and how long they waited."""

    requestor: int
    waited: int


class _RequestorState:
    """Queue, bank machine, and accounting for one requestor."""

    def __init__(self, index: int, requests: Iterable[Request],
                 depth: int) -> None:
        self.index = index
        self.tag = requestor_tag(index)
        self._iterator: Iterator[Request] = iter(requests)
        self._depth = depth
        self.queue: Deque[Request] = deque()
        self.bank_machine = RequestorBankMachine()
        self.waited = 0
        self.emitted = 0
        self.completed = 0
        self._exhausted = False

    def refill(self) -> None:
        while not self._exhausted and len(self.queue) < self._depth:
            try:
                request = next(self._iterator)
            except StopIteration:
                self._exhausted = True
                break
            if request.tag is None:
                request = replace(request, tag=self.tag)
            self.queue.append(request)

    @property
    def in_flight(self) -> int:
        return self.emitted - self.completed

    def view(self) -> RequestorView:
        return RequestorView(
            index=self.index,
            waited=self.waited,
            would_hit=self.bank_machine.would_hit(self.queue[0]),
            in_flight=self.in_flight,
        )


class Crossbar:
    """N-requestor front end over one :class:`MemoryController`.

    Parameters
    ----------
    controller:
        A *fresh* controller (no prior traffic); the crossbar runs it
        exactly once per :meth:`run`.
    contention:
        Contention configuration; ``None`` selects the uncontended
        single-requestor default.
    """

    def __init__(self, controller: MemoryController,
                 contention: Optional[ContentionConfig] = None) -> None:
        self.controller = controller
        self.config = resolve_contention(contention)
        self._arbiter = get_arbiter(self.config.arbiter)
        self._last_grant = -1
        self._completions_seen = 0
        self._tag_owner: Dict[str, int] = {}
        #: Arbitration decisions in grant order, for fairness analysis.
        self.grant_log: List[GrantRecord] = []

    def run(self, streams) -> CommandTrace:
        """Service one stream per requestor and return the trace.

        ``streams`` must hold exactly ``config.requestors`` iterables.
        Untagged requests are tagged ``r<index>``; pre-tagged requests
        keep their tags (distinct tags per requestor keep the
        per-requestor accounting exact).
        """
        streams = list(streams)
        if len(streams) != self.config.requestors:
            raise ConfigurationError(
                f"expected {self.config.requestors} streams, got "
                f"{len(streams)}")
        if self.config.is_default:
            return self._run_single(streams[0])
        depth = max(1, self.config.in_flight_limit)
        states = [_RequestorState(index, stream, depth)
                  for index, stream in enumerate(streams)]
        return self.controller.run(self._merged(states))

    def run_merged(self, requests: Iterable[Request]) -> CommandTrace:
        """Split one flat stream per the assignment, then :meth:`run`."""
        if self.config.is_default:
            return self.run([requests])
        return self.run(split_stream(requests, self.config))

    def _run_single(self, stream: Iterable[Request]) -> CommandTrace:
        """Uncontended fast path: a lone requestor always wins the
        next grant with zero wait, so the merge is the input stream —
        hand it to the controller untouched (not even a generator
        wrapper; this keeps the N=1 front end within the <5%
        ``bench-contention`` gate) and fill the trivial grant log from
        the completion count afterwards."""
        trace = self.controller.run(stream)
        grant = GrantRecord(requestor=0, waited=0)
        self.grant_log.extend([grant] * len(trace.serviced))
        return trace

    # ------------------------------------------------------------------
    # Merge generator
    # ------------------------------------------------------------------

    def _merged(self, states: List[_RequestorState]
                ) -> Iterator[Request]:
        limit = self.config.in_flight_limit
        while True:
            for state in states:
                state.refill()
            backlogged = [state for state in states if state.queue]
            if not backlogged:
                return
            self._drain_completions(states)
            under = [state for state in backlogged
                     if state.in_flight < limit]
            pool = under or backlogged
            views = [state.view() for state in pool]
            choice = self._arbiter.select(
                views, self._last_grant, self.config)
            winner = states[choice]
            request = winner.queue.popleft()
            winner.bank_machine.observe(request)
            winner.emitted += 1
            if request.tag is not None:
                self._tag_owner.setdefault(request.tag, winner.index)
            self.grant_log.append(GrantRecord(
                requestor=winner.index, waited=winner.waited))
            self._last_grant = winner.index
            for state in backlogged:
                state.waited = 0 if state is winner \
                    else state.waited + 1
            yield request

    def _drain_completions(self, states: List[_RequestorState]
                           ) -> None:
        """Attribute the controller's new completions to requestors."""
        serviced = self.controller.serviced
        while self._completions_seen < len(serviced):
            record = serviced[self._completions_seen]
            owner = self._tag_owner.get(record.request.tag)
            if owner is not None:
                states[owner].completed += 1
            self._completions_seen += 1
