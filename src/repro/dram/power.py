"""Current-based DRAM energy model (VAMPIRE/DRAMPower style).

The paper profiles DRAM energy with VAMPIRE [19], a measurement-based
power model.  VAMPIRE's inputs are a command trace plus device current
parameters; its headline addition over datasheet models is
data-dependent I/O power.  We reproduce that structure:

* per-command energies derived from IDD currents and VDD using the
  standard DRAMPower equations (Chandrasekar et al.), and
* an optional data-dependence hook: read/write burst energy scales
  linearly with the toggle ratio of the transferred data.

Energies are reported in **nanojoules per chip command**, multiplied by
``chips_per_rank`` where a command hits the whole rank.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .spec import DRAMOrganization
from .timing import TimingParameters


@dataclass(frozen=True)
class CurrentParameters:
    """IDD current parameters (mA) and supply voltage (V) for one chip.

    Default values follow a Micron DDR3-1600 2 Gb x8 datasheet
    (MT41J256M8 class), the device the paper configures.

    Attributes
    ----------
    idd0:
        One-bank ACT->PRE cycling current.
    idd2n:
        Precharge standby current.
    idd3n:
        Active standby current.
    idd4r:
        Burst read current.
    idd4w:
        Burst write current.
    idd5b:
        Burst refresh current.
    vdd:
        Core supply voltage.
    """

    idd0: float = 55.0
    idd2n: float = 32.0
    idd3n: float = 38.0
    idd4r: float = 157.0
    idd4w: float = 118.0
    idd5b: float = 155.0
    vdd: float = 1.5

    def __post_init__(self) -> None:
        for name in ("idd0", "idd2n", "idd3n", "idd4r", "idd4w", "idd5b",
                     "vdd"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {value!r}")
        if self.idd3n <= self.idd2n:
            raise ConfigurationError(
                "active standby current idd3n must exceed precharge "
                f"standby idd2n (got {self.idd3n} <= {self.idd2n})")
        if self.idd4r <= self.idd3n or self.idd4w <= self.idd3n:
            raise ConfigurationError(
                "burst currents idd4r/idd4w must exceed active standby")


#: Micron 2 Gb x8 DDR3-1600 currents (datasheet-derived).
DDR3_1600_2GB_X8_CURRENTS = CurrentParameters()


class EnergyModel:
    """Per-command DRAM energy in nanojoules.

    Parameters
    ----------
    organization:
        DRAM geometry; ``chips_per_rank`` scales rank-wide commands.
    timings:
        Timing parameters (command durations enter the energy integral).
    currents:
        IDD/VDD set for the device.
    subarray_activation_overhead:
        Fractional extra activation energy when a SALP design keeps
        multiple local row buffers active (MASA adds driver/isolation
        transistor overhead; SALP reports < 1% area, a few percent
        activation energy).
    toggle_ratio:
        Average fraction of data-bus lines toggling per beat, in
        ``[0, 1]``.  VAMPIRE's data-dependent component; 0.5 matches the
        random-data midpoint and is the default.
    """

    def __init__(
        self,
        organization: DRAMOrganization,
        timings: TimingParameters,
        currents: CurrentParameters = DDR3_1600_2GB_X8_CURRENTS,
        subarray_activation_overhead: float = 0.03,
        toggle_ratio: float = 0.5,
    ) -> None:
        if not 0.0 <= toggle_ratio <= 1.0:
            raise ConfigurationError(
                f"toggle_ratio must be in [0, 1], got {toggle_ratio}")
        if subarray_activation_overhead < 0:
            raise ConfigurationError(
                "subarray_activation_overhead must be non-negative, "
                f"got {subarray_activation_overhead}")
        self.organization = organization
        self.timings = timings
        self.currents = currents
        self.subarray_activation_overhead = subarray_activation_overhead
        self.toggle_ratio = toggle_ratio

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _chip_energy_nj(self, current_ma: float, cycles: float) -> float:
        """Energy of ``current_ma`` flowing for ``cycles`` in one chip."""
        seconds = self.timings.cycles_to_ns(cycles) * 1e-9
        joules = current_ma * 1e-3 * self.currents.vdd * seconds
        return joules * 1e9

    def _rank_energy_nj(self, current_ma: float, cycles: float) -> float:
        return self._chip_energy_nj(current_ma, cycles) \
            * self.organization.chips_per_rank

    # ------------------------------------------------------------------
    # Per-command energies (DRAMPower equations)
    # ------------------------------------------------------------------

    def activation_nj(self, extra_subarrays_active: int = 0) -> float:
        """Energy of one ACT command (row activation).

        The standard decomposition charges the ACT+PRE pair as
        ``(IDD0 - IDD3N) * tRAS + (IDD0 - IDD2N) * tRP`` over tRC and
        splits it between the two commands; we charge the tRAS share to
        ACT and the tRP share to PRE.

        Parameters
        ----------
        extra_subarrays_active:
            Number of *additional* subarrays concurrently activated in
            the same bank (MASA).  Each adds the configured fractional
            overhead to this activation.
        """
        timings = self.timings
        currents = self.currents
        base = self._rank_energy_nj(
            currents.idd0 - currents.idd3n, timings.tRAS)
        overhead = 1.0 + self.subarray_activation_overhead \
            * max(0, extra_subarrays_active)
        return base * overhead

    def precharge_nj(self) -> float:
        """Energy of one PRE command (tRP share of the IDD0 cycle)."""
        timings = self.timings
        currents = self.currents
        return self._rank_energy_nj(
            currents.idd0 - currents.idd2n, timings.tRP)

    def read_burst_nj(self) -> float:
        """Energy of one read burst above active standby."""
        currents = self.currents
        dynamic = self._rank_energy_nj(
            currents.idd4r - currents.idd3n, self.timings.tBL)
        return dynamic * self._data_scale()

    def write_burst_nj(self) -> float:
        """Energy of one write burst above active standby."""
        currents = self.currents
        dynamic = self._rank_energy_nj(
            currents.idd4w - currents.idd3n, self.timings.tBL)
        return dynamic * self._data_scale()

    def _data_scale(self) -> float:
        """VAMPIRE-style data dependence: linear in toggle ratio.

        Calibrated so that toggle 0.5 (random data) is the datasheet
        midpoint (scale 1.0), all-zero data saves 40% of the burst
        dynamic energy and worst-case toggling costs 40% extra.
        """
        return 0.6 + 0.8 * self.toggle_ratio

    def refresh_nj(self) -> float:
        """Energy of one REF command."""
        currents = self.currents
        return self._rank_energy_nj(
            currents.idd5b - currents.idd3n, self.timings.tRFC)

    def background_nj(self, cycles: float, active_fraction: float) -> float:
        """Standby energy over ``cycles``.

        Parameters
        ----------
        cycles:
            Elapsed memory-clock cycles.
        active_fraction:
            Fraction of time at least one row was open (IDD3N applies),
            the rest idles precharged (IDD2N).
        """
        if not 0.0 <= active_fraction <= 1.0:
            raise ConfigurationError(
                f"active_fraction must be in [0, 1], got {active_fraction}")
        currents = self.currents
        active = self._rank_energy_nj(
            currents.idd3n, cycles * active_fraction)
        idle = self._rank_energy_nj(
            currents.idd2n, cycles * (1.0 - active_fraction))
        return active + idle
