"""Bank and subarray state machines for the cycle-level model.

Every bank tracks per-subarray state (open row, activation time, last
column activity, precharge completion).  Commodity DDR3 and SALP-1/2
allow at most one *activated* subarray per bank; SALP-MASA allows
several, bounded by the designated-activation budget.

Times are absolute memory-clock cycles.  ``NEVER`` is a large negative
sentinel meaning "has not happened".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SchedulingError
from .timing import TimingParameters

#: Sentinel for "event never happened" (far in the past).
NEVER = -(10 ** 9)


@dataclass
class SubarrayState:
    """Dynamic state of one subarray."""

    open_row: Optional[int] = None
    act_cycle: int = NEVER
    last_read_issue: int = NEVER
    last_write_data_end: int = NEVER
    precharge_done: int = 0
    last_use: int = NEVER

    @property
    def is_open(self) -> bool:
        """True when a row is activated in this subarray."""
        return self.open_row is not None

    def earliest_precharge(
        self,
        timings: TimingParameters,
        ignore_write_recovery: bool = False,
    ) -> int:
        """Earliest cycle a PRE may be issued to this subarray.

        Parameters
        ----------
        timings:
            Timing parameter set.
        ignore_write_recovery:
            SALP-2/MASA: when the controller is switching to a
            *different* subarray, the write-recovery window (tWR) of
            this subarray overlaps the other subarray's activation and
            no longer gates the precharge.
        """
        if not self.is_open:
            raise SchedulingError("PRE issued to a subarray with no open row")
        bound = max(
            self.act_cycle + timings.tRAS,
            self.last_read_issue + timings.tRTP,
        )
        if ignore_write_recovery:
            # SALP-2/MASA hide the tWR recovery window, but the PRE can
            # never precede the write data itself.
            bound = max(bound, self.last_write_data_end)
        else:
            bound = max(bound, self.last_write_data_end + timings.tWR)
        return bound

    def precharge(self, cycle: int, timings: TimingParameters) -> None:
        """Apply a PRE at ``cycle``."""
        if not self.is_open:
            raise SchedulingError("PRE issued to a subarray with no open row")
        self.open_row = None
        self.precharge_done = cycle + timings.tRP
        self.act_cycle = NEVER
        self.last_read_issue = NEVER
        self.last_write_data_end = NEVER

    def activate(self, row: int, cycle: int) -> None:
        """Apply an ACT of ``row`` at ``cycle``."""
        if self.is_open:
            raise SchedulingError(
                f"ACT issued to subarray with row {self.open_row} open")
        self.open_row = row
        self.act_cycle = cycle
        self.last_use = cycle


@dataclass
class BankState:
    """Dynamic state of one bank (all of its subarrays)."""

    num_subarrays: int
    subarrays: Dict[int, SubarrayState] = field(default_factory=dict)
    #: Most recently used activated subarray (MASA subarray-select).
    mru_subarray: Optional[int] = None
    #: Cycle at which the latest *bank-level* precharge completes.  On
    #: commodity DRAM (no subarray-level parallelism) tRP gates any ACT
    #: to the bank, whichever subarray was precharged; SALP makes the
    #: wait subarray-local and ignores this field.
    precharge_done: int = 0
    #: Cycle of the latest PRE command issued to any subarray of the
    #: bank.  A later ACT may never be *issued* before it: even SALP's
    #: precharge/activation overlap starts the ACT right after the PRE
    #: command, not before it.
    last_pre_cycle: int = NEVER

    def subarray(self, index: int) -> SubarrayState:
        """State of subarray ``index`` (created lazily)."""
        if index < 0 or index >= self.num_subarrays:
            raise SchedulingError(
                f"subarray {index} out of range (bank has "
                f"{self.num_subarrays})")
        if index not in self.subarrays:
            self.subarrays[index] = SubarrayState()
        return self.subarrays[index]

    @property
    def open_subarrays(self) -> List[int]:
        """Indices of subarrays with an activated row."""
        return [i for i, s in self.subarrays.items() if s.is_open]

    @property
    def any_open(self) -> bool:
        """True when any subarray of the bank has an open row."""
        return any(s.is_open for s in self.subarrays.values())

    def the_open_subarray(self) -> Optional[int]:
        """The single open subarray, for architectures allowing one.

        Raises :class:`SchedulingError` if more than one is open, which
        would indicate the controller violated the architecture rules.
        """
        open_list = self.open_subarrays
        if len(open_list) > 1:
            raise SchedulingError(
                f"bank has {len(open_list)} activated subarrays but the "
                "architecture allows one")
        return open_list[0] if open_list else None

    def lru_open_subarray(self) -> int:
        """Least recently used activated subarray (MASA eviction)."""
        open_list = self.open_subarrays
        if not open_list:
            raise SchedulingError("no activated subarray to evict")
        return min(open_list, key=lambda i: self.subarrays[i].last_use)


@dataclass
class RankState:
    """Rank-wide timing state (shared command/data bus, ACT pacing).

    The command bus is modelled as a set of occupied cycles: requests
    are *serviced* in FCFS order, but a later request's preparatory
    commands (PRE/ACT for another bank) may slot into free command
    cycles before an earlier request's column command, exactly as a
    real FCFS controller interleaves bank-level commands.
    """

    last_act_cycle: int = NEVER
    act_history: List[int] = field(default_factory=list)
    last_col_cycle: int = NEVER
    last_read_issue: int = NEVER
    last_write_data_end: int = NEVER
    bus_free: int = 0
    occupied_cmd_cycles: set = field(default_factory=set)

    def earliest_activate(self, timings: TimingParameters) -> int:
        """Earliest cycle an ACT may be issued rank-wide (tRRD, tFAW)."""
        bound = self.last_act_cycle + timings.tRRD
        if len(self.act_history) >= 4:
            bound = max(bound, self.act_history[-4] + timings.tFAW)
        return bound

    def record_activate(self, cycle: int) -> None:
        """Record an ACT at ``cycle``."""
        self.last_act_cycle = cycle
        self.act_history.append(cycle)
        if len(self.act_history) > 8:
            del self.act_history[:-8]

    def earliest_read(self, timings: TimingParameters) -> int:
        """Earliest cycle a RD may be issued (tCCD, write->read turnaround)."""
        return max(
            self.last_col_cycle + timings.tCCD,
            self.last_write_data_end + timings.tWTR,
        )

    def earliest_write(self, timings: TimingParameters) -> int:
        """Earliest cycle a WR may be issued (tCCD, read->write turnaround)."""
        return max(
            self.last_col_cycle + timings.tCCD,
            self.last_read_issue + timings.tRTW,
        )

    def next_command_slot(self, earliest: int) -> int:
        """First free command-bus cycle at or after ``earliest``."""
        cycle = max(earliest, 0)
        while cycle in self.occupied_cmd_cycles:
            cycle += 1
        return cycle

    def record_command(self, cycle: int) -> None:
        """Record occupancy of the command bus at ``cycle``."""
        if cycle in self.occupied_cmd_cycles:
            raise SchedulingError(
                f"command bus conflict at cycle {cycle}")
        self.occupied_cmd_cycles.add(cycle)
