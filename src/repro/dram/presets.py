"""Table-II DRAM configurations.

The paper evaluates ``DDR3-1600 2Gb x8`` and ``SALP 2Gb x8`` with
1 channel, 1 rank per channel, 1 chip per rank, 8 banks per chip, and
(for SALP) 8 subarrays per bank.

A 2 Gb x8 device has 8 banks x 32768 rows x 1024 columns x 8 bits.
Commodity DDR3 physically contains subarrays too (Section II-B), it
just cannot exploit them; we keep ``subarrays_per_bank=8`` for DDR3 as
well so the *same* address space is shared by every architecture and a
mapping policy means the same placement everywhere.  Only the
architecture behaviour flags differ.

.. deprecated::
    Importing these geometry constants directly is deprecated: prefer
    resolving a full :class:`~repro.dram.device.DeviceProfile` from
    :data:`repro.dram.device.DEVICE_REGISTRY` (the objects are shared,
    so ``get_device("ddr3-1600-2gb-x8").organization is
    DDR3_1600_2GB_X8``).
"""

from __future__ import annotations

from .architecture import DRAMArchitecture
from .spec import DRAMOrganization

#: The paper's 2 Gb x8 geometry with 8 subarrays per bank (Table II).
DDR3_1600_2GB_X8 = DRAMOrganization(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=8,
    subarrays_per_bank=8,
    rows_per_bank=32768,
    columns_per_row=1024,
    device_width_bits=8,
    burst_length=8,
)

#: A miniature organization for fast tests and walk-based validation.
TINY_ORGANIZATION = DRAMOrganization(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=4,
    subarrays_per_bank=4,
    rows_per_bank=64,
    columns_per_row=64,
    device_width_bits=8,
    burst_length=8,
)


def organization_for(
    architecture: DRAMArchitecture,
    device=None,
) -> DRAMOrganization:
    """Geometry of ``device`` (default: the Table-II device), after
    checking that the device supports ``architecture``.

    Architectures never change the geometry — SALP differs only in
    behaviour flags (see module docstring) — but a device may not model
    every architecture, so the capability set is enforced here.
    """
    from .device import resolve_device

    profile = resolve_device(device)
    profile.require_architecture(architecture)
    return profile.organization
