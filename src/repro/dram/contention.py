"""Multi-requestor channel contention: configuration and arbiters.

The paper evaluates every mapping on an *uncontended* channel — one
accelerator owns the DRAM.  Real deployments share the channel between
N requestors (accelerator cores, concurrent tenant jobs), and a front
end must arbitrate among their streams before the memory controller
ever sees a request.  This module provides the configuration value and
the pluggable arbitration policies for that front end
(:class:`repro.dram.crossbar.Crossbar`), registered exactly like the
controller policies of :mod:`repro.dram.policies`:

* **Arbiters** decide which backlogged requestor's head-of-queue
  request is forwarded to the controller next.

  - ``round-robin`` — rotate over the backlogged requestors; a
    backlogged requestor is granted within N-1 grants
    (starvation-free by construction).
  - ``fixed-priority`` — lowest requestor index first; deliberately
    unfair (models a latency-critical core owning the channel).
  - ``age-based`` — FR-FCFS-aware: prefer heads that would hit their
    requestor's own row state, oldest first, but once any head has
    waited ``age_limit`` grants the oldest head wins unconditionally,
    so the wait is bounded by ``age_limit + N - 1`` grants.

* **Stream assignment** decides how a single flat request stream is
  split across requestors (``interleave``: request *i* goes to
  requestor ``i mod N``; ``block``: contiguous even chunks).

The frozen :class:`ContentionConfig` value is hashable and picklable:
it travels in characterization cache keys and the on-disk store's spec
hash, and in the pickled :class:`repro.core.engine.ExplorationContext`,
so contended variants can never be served an uncontended
characterization (or vice versa).  ``requestors=1`` is canonicalized to
the default config — an uncontended channel has no arbitration, so all
N=1 configs are behaviourally (and cache-key) identical.

Example
-------
>>> config = contention_config(requestors=2, arbiter="age-based")
>>> config.label
'2req/age-based'
>>> contention_config() == DEFAULT_CONTENTION_CONFIG
True
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from ..errors import ConfigurationError
from .commands import Request, ServicedRequest

#: Default soft in-flight cap per requestor: arbitration prefers
#: requestors with fewer outstanding requests at the controller.  Eight
#: matches a small per-core MSHR file; under the FCFS controller at
#: most one request is ever outstanding, so the default cap is
#: invisible there.
DEFAULT_IN_FLIGHT_LIMIT = 8

#: Default age escape of the ``age-based`` arbiter, in grants: once a
#: head-of-queue request has watched this many grants go elsewhere, it
#: wins unconditionally (row hits may no longer overtake it).
DEFAULT_AGE_LIMIT = 16


class ArbiterKind(enum.Enum):
    """Channel arbitration disciplines."""

    ROUND_ROBIN = "round-robin"
    FIXED_PRIORITY = "fixed-priority"
    AGE_BASED = "age-based"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class AssignmentKind(enum.Enum):
    """How a flat request stream is split across requestors."""

    INTERLEAVE = "interleave"
    BLOCK = "block"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ContentionConfig:
    """One multi-requestor contention configuration.

    Attributes
    ----------
    requestors:
        Number of request streams sharing the channel (1 = the
        paper's uncontended channel; the crossbar is bypassed).
    arbiter:
        Arbitration discipline among backlogged requestors.
    assignment:
        How :func:`split_stream` distributes a flat stream.
    in_flight_limit:
        Soft per-requestor outstanding-request cap; arbitration
        prefers requestors under the cap but never deadlocks on it.
    age_limit:
        ``age-based`` escape threshold in grants (ignored by the
        other arbiters).
    """

    requestors: int = 1
    arbiter: ArbiterKind = ArbiterKind.ROUND_ROBIN
    assignment: AssignmentKind = AssignmentKind.INTERLEAVE
    in_flight_limit: int = DEFAULT_IN_FLIGHT_LIMIT
    age_limit: int = DEFAULT_AGE_LIMIT

    def __post_init__(self) -> None:
        if not isinstance(self.requestors, int) or self.requestors < 1:
            raise ConfigurationError(
                f"requestors must be a positive integer, got "
                f"{self.requestors!r}")
        if not isinstance(self.arbiter, ArbiterKind):
            raise ConfigurationError(
                f"arbiter must be an ArbiterKind, got {self.arbiter!r}")
        if not isinstance(self.assignment, AssignmentKind):
            raise ConfigurationError(
                f"assignment must be an AssignmentKind, got "
                f"{self.assignment!r}")
        if not isinstance(self.in_flight_limit, int) \
                or self.in_flight_limit < 1:
            raise ConfigurationError(
                f"in_flight_limit must be a positive integer, got "
                f"{self.in_flight_limit!r}")
        if not isinstance(self.age_limit, int) or self.age_limit < 1:
            raise ConfigurationError(
                f"age_limit must be a positive integer, got "
                f"{self.age_limit!r}")
        # Canonicalize inactive knobs so behaviourally identical
        # configs are equal (mirroring ControllerConfig): with one
        # requestor there is nothing to arbitrate, so every knob is
        # inert; with a non-age-based arbiter the age escape is inert.
        # Letting them differentiate equality would split the
        # characterization cache over identical channels.
        if self.requestors == 1:
            object.__setattr__(
                self, "arbiter", ArbiterKind.ROUND_ROBIN)
            object.__setattr__(
                self, "assignment", AssignmentKind.INTERLEAVE)
            object.__setattr__(
                self, "in_flight_limit", DEFAULT_IN_FLIGHT_LIMIT)
            object.__setattr__(self, "age_limit", DEFAULT_AGE_LIMIT)
        elif self.arbiter is not ArbiterKind.AGE_BASED:
            object.__setattr__(self, "age_limit", DEFAULT_AGE_LIMIT)

    @property
    def label(self) -> str:
        """Short ``Nreq/arbiter`` tag for titles and keys."""
        if self.requestors == 1:
            return "1req"
        return f"{self.requestors}req/{self.arbiter.value}"

    @property
    def is_default(self) -> bool:
        """True for the paper's uncontended single-requestor channel."""
        return self == DEFAULT_CONTENTION_CONFIG

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.requestors == 1:
            return "requestors=1 (uncontended channel)"
        parts = [f"requestors={self.requestors}",
                 f"arbiter={self.arbiter.value}",
                 f"assignment={self.assignment.value}",
                 f"in-flight={self.in_flight_limit}"]
        if self.arbiter is ArbiterKind.AGE_BASED:
            parts.append(f"age-limit={self.age_limit}")
        return ", ".join(parts)


# ----------------------------------------------------------------------
# Arbiter policies
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RequestorView:
    """Snapshot of one backlogged requestor handed to the arbiter.

    Attributes
    ----------
    index:
        Requestor index.
    waited:
        Grants that went elsewhere since this head became pending.
    would_hit:
        The head would hit this requestor's own per-requestor row
        state (its bank machine) if forwarded now.
    in_flight:
        Requests forwarded to the controller but not yet serviced.
    """

    index: int
    waited: int
    would_hit: bool
    in_flight: int


class ArbiterPolicy:
    """Arbitration decision: which backlogged requestor goes next."""

    kind: ArbiterKind

    def select(self, candidates: Sequence[RequestorView],
               last_grant: int, config: ContentionConfig) -> int:
        """Requestor :attr:`RequestorView.index` granted next.

        ``candidates`` is non-empty; ``last_grant`` is the previously
        granted requestor index (-1 before the first grant).
        """
        raise NotImplementedError


class RoundRobinArbiter(ArbiterPolicy):
    """Rotate over backlogged requestors: starvation-free.

    The next backlogged index after ``last_grant`` (cyclically) wins,
    so a backlogged requestor is granted within N-1 grants.
    """

    kind = ArbiterKind.ROUND_ROBIN

    def select(self, candidates: Sequence[RequestorView],
               last_grant: int, config: ContentionConfig) -> int:
        present = {view.index for view in candidates}
        for offset in range(1, config.requestors + 1):
            index = (last_grant + offset) % config.requestors
            if index in present:
                return index
        raise AssertionError(
            "no candidate present")  # pragma: no cover - unreachable

    def describe(self) -> str:
        return "cyclic rotation, bounded wait of N-1 grants"


class FixedPriorityArbiter(ArbiterPolicy):
    """Lowest requestor index first: deliberately unfair.

    Models a latency-critical core that owns the channel whenever it
    has traffic; lower-priority requestors may starve.
    """

    kind = ArbiterKind.FIXED_PRIORITY

    def select(self, candidates: Sequence[RequestorView],
               last_grant: int, config: ContentionConfig) -> int:
        return min(view.index for view in candidates)

    def describe(self) -> str:
        return "lowest index wins; lower priorities may starve"


class AgeBasedArbiter(ArbiterPolicy):
    """FR-FCFS-aware aging: row hits first, bounded by the age escape.

    Heads that would hit their requestor's own row state overtake
    non-hits (oldest hit first), mirroring FR-FCFS at the channel
    level — but once any head has waited ``age_limit`` grants, the
    oldest head wins unconditionally, bounding every requestor's wait
    by ``age_limit + N - 1`` grants.
    """

    kind = ArbiterKind.AGE_BASED

    @staticmethod
    def _oldest(views: Sequence[RequestorView]) -> RequestorView:
        return max(views, key=lambda view: (view.waited, -view.index))

    def select(self, candidates: Sequence[RequestorView],
               last_grant: int, config: ContentionConfig) -> int:
        oldest = self._oldest(candidates)
        if oldest.waited >= config.age_limit:
            return oldest.index
        hits = [view for view in candidates if view.would_hit]
        return self._oldest(hits or candidates).index

    def describe(self) -> str:
        return "row-hit-first with an age escape (bounded wait)"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_ARBITERS: Dict[ArbiterKind, ArbiterPolicy] = {
    ArbiterKind.ROUND_ROBIN: RoundRobinArbiter(),
    ArbiterKind.FIXED_PRIORITY: FixedPriorityArbiter(),
    ArbiterKind.AGE_BASED: AgeBasedArbiter(),
}

#: One-line purpose of each arbiter, for the CLI listing.
ARBITER_SUMMARIES: Dict[ArbiterKind, str] = {
    ArbiterKind.ROUND_ROBIN:
        "rotate over backlogged requestors (starvation-free)",
    ArbiterKind.FIXED_PRIORITY:
        "lowest requestor index wins (may starve the rest)",
    ArbiterKind.AGE_BASED:
        "row-hit-first with an age escape (bounded wait)",
}

#: One-line purpose of each stream assignment, for the CLI listing.
ASSIGNMENT_SUMMARIES: Dict[AssignmentKind, str] = {
    AssignmentKind.INTERLEAVE:
        "request i goes to requestor i mod N",
    AssignmentKind.BLOCK:
        "contiguous even chunks, one per requestor",
}


def _parse(kind_cls, value, what: str):
    """Normalize a name or enum member to the enum member."""
    if isinstance(value, kind_cls):
        return value
    try:
        return kind_cls(value)
    except ValueError:
        choices = ", ".join(member.value for member in kind_cls)
        raise ConfigurationError(
            f"unknown {what} {value!r}; choose from: {choices}"
        ) from None


def arbiter_names() -> Tuple[str, ...]:
    """Registered arbiter names, round-robin first."""
    return tuple(kind.value for kind in ArbiterKind)


def assignment_names() -> Tuple[str, ...]:
    """Registered stream-assignment names, interleave first."""
    return tuple(kind.value for kind in AssignmentKind)


def get_arbiter(kind: Union[str, ArbiterKind]) -> ArbiterPolicy:
    """Arbiter policy object for ``kind`` (name or enum member)."""
    return _ARBITERS[_parse(ArbiterKind, kind, "arbiter")]


def contention_config(
    requestors: int = 1,
    arbiter: Union[str, ArbiterKind] = ArbiterKind.ROUND_ROBIN,
    assignment: Union[str, AssignmentKind] = AssignmentKind.INTERLEAVE,
    in_flight_limit: int = DEFAULT_IN_FLIGHT_LIMIT,
    age_limit: int = DEFAULT_AGE_LIMIT,
) -> ContentionConfig:
    """Build a :class:`ContentionConfig` from names or enum members.

    Unknown names raise :class:`ConfigurationError` listing the valid
    choices (the CLI surfaces this as an exit-2 usage error).
    """
    return ContentionConfig(
        requestors=requestors,
        arbiter=_parse(ArbiterKind, arbiter, "arbiter"),
        assignment=_parse(AssignmentKind, assignment, "assignment"),
        in_flight_limit=in_flight_limit,
        age_limit=age_limit,
    )


def resolve_contention(config=None) -> ContentionConfig:
    """Normalize an optional config (``None`` means the default)."""
    if config is None:
        return DEFAULT_CONTENTION_CONFIG
    if not isinstance(config, ContentionConfig):
        raise ConfigurationError(
            f"contention must be a ContentionConfig or None, got "
            f"{config!r}")
    return config


#: The paper's channel: a single uncontended requestor.
DEFAULT_CONTENTION_CONFIG = ContentionConfig()


# ----------------------------------------------------------------------
# Stream assignment
# ----------------------------------------------------------------------

def requestor_tag(index: int) -> str:
    """Canonical tag of requestor ``index`` (``r0``, ``r1``, ...)."""
    return f"r{index}"


def split_stream(
    requests: Iterable[Request],
    config: ContentionConfig = None,
) -> List[List[Request]]:
    """Split a flat request stream into per-requestor streams.

    Untagged requests are tagged with their requestor's canonical tag
    so the trace accounting can attribute completions; requests that
    already carry a tag keep it.
    """
    config = resolve_contention(config)
    materialized = list(requests)
    streams: List[List[Request]] = [
        [] for _ in range(config.requestors)]
    if config.assignment is AssignmentKind.INTERLEAVE:
        owner = [index % config.requestors
                 for index in range(len(materialized))]
    else:
        # Block: contiguous chunks, as even as possible (the first
        # ``len % N`` requestors take one extra request).
        base, extra = divmod(len(materialized), config.requestors)
        owner = []
        for requestor in range(config.requestors):
            owner.extend([requestor] * (base + (1 if requestor < extra
                                                else 0)))
    for request, requestor in zip(materialized, owner):
        if request.tag is None:
            request = replace(request, tag=requestor_tag(requestor))
        streams[requestor].append(request)
    return streams


# ----------------------------------------------------------------------
# Per-requestor accounting
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RequestorStats:
    """Bandwidth/latency accounting for one requestor.

    Attributes
    ----------
    requestor:
        The requestor's tag (``r0``, ``r1``, ...).
    serviced:
        Requests completed for this requestor.
    row_hits / row_misses / row_conflicts:
        Row-buffer outcomes of those requests.
    mean_service_cycles:
        Mean cycles from the first command of a request to the end of
        its data burst (the service latency seen by the requestor).
    bus_share:
        This requestor's fraction of all data bursts — with equal
        burst lengths, exactly its share of the channel bandwidth.
    """

    requestor: str
    serviced: int
    row_hits: int
    row_misses: int
    row_conflicts: int
    mean_service_cycles: float
    bus_share: float


def per_requestor_stats(
    serviced: Sequence[ServicedRequest],
) -> Tuple[RequestorStats, ...]:
    """Aggregate completion records by requestor tag.

    Untagged requests are attributed to requestor ``r0`` (the
    uncontended channel never tags its stream).
    """
    by_tag: Dict[str, List[ServicedRequest]] = {}
    for record in serviced:
        tag = record.request.tag or requestor_tag(0)
        by_tag.setdefault(tag, []).append(record)
    total = len(serviced)
    stats = []
    for tag in sorted(by_tag):
        records = by_tag[tag]
        latency = sum(r.data_cycle - r.issue_cycle for r in records)
        stats.append(RequestorStats(
            requestor=tag,
            serviced=len(records),
            row_hits=sum(1 for r in records if r.row_hit),
            row_misses=sum(1 for r in records if r.row_miss),
            row_conflicts=sum(1 for r in records if r.row_conflict),
            mean_service_cycles=latency / len(records),
            bus_share=len(records) / total,
        ))
    return tuple(stats)
