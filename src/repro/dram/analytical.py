"""Closed-form analytical DRAM access-cost model.

The cycle-level simulator measures the paper's Fig.-1 per-condition
costs by running micro-experiment streams — tens of milliseconds per
``(device, architecture, controller)``.  This module derives the same
five :class:`~repro.dram.characterize.AccessCondition` costs directly
from a :class:`~repro.dram.device.DeviceProfile`'s JEDEC timing and
IDD current parameters, in closed form, with no simulation at all.

The derivation mirrors the steady-state structure of the controller
(see :mod:`repro.dram.controller`); per marginal access of each
condition, under the default FCFS/open-row controller:

* **row hit** — back-to-back column commands are paced by the column
  cadence: ``max(tCCD, tBL)`` cycles.
* **row miss** — an isolated request on an idle device:
  ``tRCD + tCL + tBL`` cycles (reads; ``tCWL`` replaces ``tCL`` in the
  write energy window).
* **row conflict** — the PRE→ACT→column chain of bouncing between two
  rows of one subarray: ``max(tRAS, tRCD + tRTP) + tRP`` cycles (the
  classic ``tRC`` when ``tRAS`` dominates).
* **subarray-level parallelism** — commodity DDR3 serves the stream as
  conflicts; SALP-1/2 overlap the precharge with the next subarray's
  activation, collapsing the trailing ``tRP`` to the one-cycle command
  hand-off: ``max(tRAS, tRCD + tRTP) + 1``; MASA keeps all local row
  buffers open, so the stream is paced like bank-level parallelism
  with the per-subarray reactivation chain amortized over
  ``subarrays_per_bank`` revisits.
* **bank-level parallelism** — activations overlap across banks under
  the rank-level pacing ``max(tRRD, tFAW/4, tCCD, tBL)``, floored by
  each bank's own reactivation chain amortized over
  ``banks_per_chip`` revisits.

Energy reuses the per-command :class:`~repro.dram.power.EnergyModel`
(the VAMPIRE role) exactly: each marginal access is charged its
command energies (ACT / PRE / burst, with MASA's concurrent-subarray
activation overhead) plus active-standby background energy over the
marginal cycle window — the same accounting the simulator's
:class:`~repro.dram.energy.EnergyAccountant` applies to real traces.

Controller configurations adjust the model where they change the
steady streams: a **closed-row** policy turns hits into reactivations
and charges misses the auto-precharge; the **timeout** row policy and
the **fr-fcfs** scheduler leave the single-stream characterization
workloads unchanged and are modelled as open/fcfs.

On the shipped device presets the closed-form numbers match the
simulator to within a few percent per condition (most are exact) —
see ``tests/dram/test_analytical.py`` for the pinned bounds.  The
model's purpose is *ranking*: the funnel search strategy
(:mod:`repro.core.strategies`) scores the full design space with it
and re-evaluates only the top candidates with exact characterization.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..caching import LRUMemo
from .architecture import ArchitectureBehavior, DRAMArchitecture, behavior_of
from .characterize import (
    AccessCondition,
    CharacterizationResult,
    ConditionCost,
)
from .commands import RequestKind
from .device import DeviceProfile, resolve_device
from .policies import ControllerConfig, RowPolicyKind, resolve_controller
from .power import EnergyModel
from .spec import DRAMOrganization


class AnalyticalModel:
    """Closed-form Fig.-1 costs for one device + controller.

    Parameters
    ----------
    device:
        Device profile (default: the paper's Table-II device).
    organization:
        Optional geometry override of the profile (sweep use).
    controller:
        Memory-controller configuration (default: FCFS/open-row).
        Only the row policy enters the formulas; see the module
        docstring for the approximation notes.
    """

    def __init__(
        self,
        device: Optional[DeviceProfile] = None,
        organization: Optional[DRAMOrganization] = None,
        controller: Optional[ControllerConfig] = None,
    ) -> None:
        self.device = resolve_device(device, organization)
        self.controller = resolve_controller(controller)
        self.organization = self.device.organization
        self.timings = self.device.timings
        self.energy_model = EnergyModel(
            self.organization, self.timings, self.device.currents)

    # ------------------------------------------------------------------
    # Cycle formulas
    # ------------------------------------------------------------------

    @property
    def _closed_row(self) -> bool:
        return self.controller.row_policy is RowPolicyKind.CLOSED

    def _column_cadence(self) -> float:
        """Back-to-back column-command pacing."""
        t = self.timings
        return float(max(t.tCCD, t.tBL))

    def _reactivation_chain(self, kind: RequestKind,
                            overlap_precharge: bool = False,
                            overlap_write_recovery: bool = False) -> float:
        """PRE -> ACT -> column chain of one row switch.

        The precharge waits for the open row's quiet window
        (``tRAS`` / read-to-precharge / write recovery), then the
        activation waits ``tRP`` — or just the one-cycle command
        hand-off when a SALP architecture overlaps the precharge of
        one subarray with the activation of another.
        """
        t = self.timings
        if kind is RequestKind.READ:
            quiet = max(t.tRAS, t.tRCD + t.tRTP)
        else:
            write_window = t.tRCD + t.tCWL + t.tBL
            if not overlap_write_recovery:
                write_window += t.tWR
            quiet = max(t.tRAS, write_window)
        return float(quiet + (1 if overlap_precharge else t.tRP))

    def _parallel_pacing(self, kind: RequestKind, ways: int) -> float:
        """Marginal cycles of a stream striding ``ways`` banks/subarrays.

        Activations overlap under the rank-level pacing constraints;
        the floor is each stride target's own reactivation chain
        amortized over its revisit period.
        """
        t = self.timings
        chain = self._reactivation_chain(kind)
        return max(float(t.tRRD), t.tFAW / 4.0, self._column_cadence(),
                   chain / max(ways, 1))

    def _hit_cycles(self, kind: RequestKind) -> float:
        if self._closed_row:
            # Every access auto-precharges: the "same row" stream pays
            # a full reactivation chain per access.
            return self._reactivation_chain(kind)
        return self._column_cadence()

    def _miss_cycles(self, kind: RequestKind) -> float:
        """Isolated request on an idle device (Fig. 1's miss)."""
        t = self.timings
        cas = t.tCL if kind is RequestKind.READ else t.tCWL
        return float(t.tRCD + cas + t.tBL)

    def _conflict_cycles(self, kind: RequestKind) -> float:
        return self._reactivation_chain(kind)

    def _subarray_cycles(self, kind: RequestKind,
                         behavior: ArchitectureBehavior) -> float:
        if not behavior.overlap_precharge_with_activation:
            # Commodity DDR3: tRP is bank-global; subarray switches are
            # plain row conflicts.
            return self._reactivation_chain(kind)
        if behavior.multiple_activated_subarrays and not self._closed_row:
            # MASA: local row buffers stay open, so the stream paces
            # like bank-level parallelism, floored by the per-subarray
            # reactivation chain amortized over the revisit period.
            ways = min(self.organization.subarrays_per_bank,
                       behavior.max_activated_subarrays)
            return self._parallel_pacing(kind, ways)
        return self._reactivation_chain(
            kind,
            overlap_precharge=True,
            overlap_write_recovery=behavior.overlap_write_recovery)

    def _bank_cycles(self, kind: RequestKind) -> float:
        return self._parallel_pacing(
            kind, self.organization.banks_per_chip)

    # ------------------------------------------------------------------
    # Energy formulas
    # ------------------------------------------------------------------

    def _burst_nj(self, kind: RequestKind) -> float:
        if kind is RequestKind.READ:
            return self.energy_model.read_burst_nj()
        return self.energy_model.write_burst_nj()

    def _background_nj(self, cycles: float) -> float:
        # The characterization streams keep a row open essentially
        # always (active_fraction=1), matching the simulator's
        # EnergyAccountant defaults.
        return self.energy_model.background_nj(cycles, active_fraction=1.0)

    def _switch_energy_nj(self, kind: RequestKind, cycles: float,
                          extra_subarrays: int = 0) -> float:
        """ACT + PRE + burst + background of one row-switching access."""
        return (self.energy_model.activation_nj(
                    extra_subarrays_active=extra_subarrays)
                + self.energy_model.precharge_nj()
                + self._burst_nj(kind)
                + self._background_nj(cycles))

    # ------------------------------------------------------------------
    # Per-condition assembly
    # ------------------------------------------------------------------

    def condition_costs(
        self,
        architecture: DRAMArchitecture,
    ) -> Dict[AccessCondition, ConditionCost]:
        """The five Fig.-1 costs of ``architecture`` on this device."""
        self.device.require_architecture(architecture)
        behavior = behavior_of(architecture)
        costs: Dict[AccessCondition, ConditionCost] = {}

        def hit_energy(kind: RequestKind) -> float:
            cycles = self._hit_cycles(kind)
            if self._closed_row:
                return self._switch_energy_nj(kind, cycles)
            return self._burst_nj(kind) + self._background_nj(cycles)
        costs[AccessCondition.ROW_HIT] = ConditionCost(
            cycles=self._hit_cycles(RequestKind.READ),
            read_energy_nj=hit_energy(RequestKind.READ),
            write_energy_nj=hit_energy(RequestKind.WRITE),
        )

        def miss_energy(kind: RequestKind) -> float:
            energy = (self.energy_model.activation_nj()
                      + self._burst_nj(kind)
                      + self._background_nj(self._miss_cycles(kind)))
            if self._closed_row:
                energy += self.energy_model.precharge_nj()
            return energy
        costs[AccessCondition.ROW_MISS] = ConditionCost(
            cycles=self._miss_cycles(RequestKind.READ),
            read_energy_nj=miss_energy(RequestKind.READ),
            write_energy_nj=miss_energy(RequestKind.WRITE),
        )

        costs[AccessCondition.ROW_CONFLICT] = ConditionCost(
            cycles=self._conflict_cycles(RequestKind.READ),
            read_energy_nj=self._switch_energy_nj(
                RequestKind.READ, self._conflict_cycles(RequestKind.READ)),
            write_energy_nj=self._switch_energy_nj(
                RequestKind.WRITE, self._conflict_cycles(RequestKind.WRITE)),
        )

        masa_extra = 0
        if behavior.multiple_activated_subarrays:
            masa_extra = min(self.organization.subarrays_per_bank,
                             behavior.max_activated_subarrays) - 1
        costs[AccessCondition.SUBARRAY_PARALLEL] = ConditionCost(
            cycles=self._subarray_cycles(RequestKind.READ, behavior),
            read_energy_nj=self._switch_energy_nj(
                RequestKind.READ,
                self._subarray_cycles(RequestKind.READ, behavior),
                extra_subarrays=masa_extra),
            write_energy_nj=self._switch_energy_nj(
                RequestKind.WRITE,
                self._subarray_cycles(RequestKind.WRITE, behavior),
                extra_subarrays=masa_extra),
        )

        costs[AccessCondition.BANK_PARALLEL] = ConditionCost(
            cycles=self._bank_cycles(RequestKind.READ),
            read_energy_nj=self._switch_energy_nj(
                RequestKind.READ, self._bank_cycles(RequestKind.READ)),
            write_energy_nj=self._switch_energy_nj(
                RequestKind.WRITE, self._bank_cycles(RequestKind.WRITE)),
        )
        return costs

    def characterization(
        self,
        architecture: DRAMArchitecture,
    ) -> CharacterizationResult:
        """Analytical costs in the simulator-measured result shape.

        Downstream EDP code (:func:`repro.core.conditions.run_cost`,
        :func:`repro.core.edp.layer_edp`) consumes the result exactly
        like a simulator characterization — the cost model is
        swappable point-for-point.
        """
        return CharacterizationResult(
            architecture=architecture,
            costs=self.condition_costs(architecture),
            tck_ns=self.timings.tck_ns,
            device_name=self.device.name,
            controller=self.controller,
        )


#: Process-wide memo of analytical characterizations, keyed like the
#: simulator cache on ``(profile, architecture, controller)``.
_ANALYTICAL_MEMO = LRUMemo(256)


def analytical_characterization(
    architecture: DRAMArchitecture,
    device: Optional[DeviceProfile] = None,
    organization: Optional[DRAMOrganization] = None,
    controller: Optional[ControllerConfig] = None,
) -> CharacterizationResult:
    """Memoized closed-form characterization of one configuration.

    A drop-in sibling of
    :func:`repro.dram.characterize.characterize_cached` that never
    touches the cycle-level simulator.
    """
    profile = resolve_device(device, organization)
    config = resolve_controller(controller)
    return _ANALYTICAL_MEMO.get_or_compute(
        (profile, architecture, config),
        lambda: AnalyticalModel(
            device=profile, controller=config
        ).characterization(architecture))


def compare_to_simulator(
    architecture: DRAMArchitecture,
    device: Optional[DeviceProfile] = None,
    controller: Optional[ControllerConfig] = None,
) -> Dict[AccessCondition, Dict[str, float]]:
    """Per-condition relative errors of the model vs the simulator.

    Returns ``{condition: {"cycles": e, "read_energy_nj": e,
    "write_energy_nj": e}}`` where each ``e`` is
    ``|analytical - simulated| / simulated``.  Used by the validation
    suite and :mod:`examples.strategy_study`.
    """
    from .characterize import characterize_cached

    profile = resolve_device(device)
    exact = characterize_cached(
        architecture, device=profile, controller=controller)
    model = analytical_characterization(
        architecture, device=profile, controller=controller)

    def rel(a: float, b: float) -> float:
        if b == 0:
            return 0.0 if a == 0 else float("inf")
        return abs(a - b) / abs(b)

    report: Dict[AccessCondition, Dict[str, float]] = {}
    for condition in exact.costs:
        simulated = exact.cost(condition)
        analytical = model.cost(condition)
        report[condition] = {
            "cycles": rel(analytical.cycles, simulated.cycles),
            "read_energy_nj": rel(analytical.read_energy_nj,
                                  simulated.read_energy_nj),
            "write_energy_nj": rel(analytical.write_energy_nj,
                                   simulated.write_energy_nj),
        }
    return report
