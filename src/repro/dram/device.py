"""Spec-driven DRAM device profiles and the device registry.

The paper's experiments fix one device — DDR3-1600 2 Gb x8 (Table II)
— but its claim is that DRMap is *generic*: row-buffer economics shift
with timings, IDD currents and geometry across DRAM generations, and
the mapping policy should win everywhere.  This module makes the device
a first-class input instead of a set of module-level constants:

* :class:`DeviceProfile` bundles a name, a
  :class:`~repro.dram.spec.DRAMOrganization`, a
  :class:`~repro.dram.timing.TimingParameters` set, a
  :class:`~repro.dram.power.CurrentParameters` set and the
  *architecture capability set* — which
  :class:`~repro.dram.architecture.DRAMArchitecture` behaviours the
  device is modelled to support.
* :class:`DeviceRegistry` resolves profile names to profiles; the
  process-wide :data:`DEVICE_REGISTRY` ships with the paper's device,
  a fast-test ``tiny`` profile, and DDR4 / LPDDR4 / HBM2-class
  generations with datasheet-style parameters.

The ``DDR3`` member of :class:`~repro.dram.architecture.DRAMArchitecture`
denotes *commodity baseline behaviour* (no subarray-level parallelism
exposed); it applies to every generation, so every profile supports at
least that architecture.  Profiles whose subarray structure we model as
SALP-modifiable additionally list the SALP variants.

Example
-------
>>> from repro.dram.device import get_device
>>> profile = get_device("ddr3-1600-2gb-x8")
>>> profile.data_rate_mts
1600
>>> from repro.dram.architecture import DRAMArchitecture
>>> profile.supports(DRAMArchitecture.SALP_MASA)
True
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional, Tuple

from ..errors import ConfigurationError
from .architecture import ALL_ARCHITECTURES, DRAMArchitecture
from .power import CurrentParameters, DDR3_1600_2GB_X8_CURRENTS
from .presets import DDR3_1600_2GB_X8, TINY_ORGANIZATION
from .spec import DRAMOrganization
from .timing import DDR3_1600_TIMINGS, TimingParameters

#: Name of the paper's Table-II device; the default everywhere a
#: ``device`` parameter is omitted.
DEFAULT_DEVICE_NAME = "ddr3-1600-2gb-x8"

#: Capability set of devices whose subarray structure is modelled as
#: SALP-modifiable (the paper's study).
COMMODITY_AND_SALP = ALL_ARCHITECTURES

#: Capability set of devices modelled only with commodity behaviour.
COMMODITY_ONLY = (DRAMArchitecture.DDR3,)


@dataclass(frozen=True)
class DeviceProfile:
    """One DRAM device generation: geometry + timings + currents.

    Attributes
    ----------
    name:
        Registry key, a short kebab-case slug (``ddr4-2400``).
    organization:
        Channel/rank/bank/subarray/row/column geometry.
    timings:
        JEDEC timing constraints in clock cycles (plus ``tck_ns``).
    currents:
        IDD currents and supply voltage for the energy model.
    supported_architectures:
        The :class:`DRAMArchitecture` behaviours this device is
        modelled to support.  ``DDR3`` means commodity baseline
        behaviour and is mandatory; SALP variants are listed only for
        devices whose subarrays we model as SALP-modifiable.
    description:
        One-line human-readable summary.
    reference:
        Datasheet / JEDEC standard the parameters follow.
    """

    name: str
    organization: DRAMOrganization
    timings: TimingParameters
    currents: CurrentParameters
    supported_architectures: Tuple[DRAMArchitecture, ...] = \
        COMMODITY_AND_SALP
    description: str = ""
    reference: str = ""

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ConfigurationError(
                f"device name must be a non-empty slug, got {self.name!r}")
        if self.name == "all":
            raise ConfigurationError(
                "device name 'all' is reserved (the CLI's every-device "
                "sentinel)")
        if not self.supported_architectures:
            raise ConfigurationError(
                f"device {self.name!r} must support at least one "
                "architecture")
        seen = set()
        for architecture in self.supported_architectures:
            if architecture in seen:
                raise ConfigurationError(
                    f"device {self.name!r} lists architecture "
                    f"{architecture.value!r} twice")
            seen.add(architecture)
        if DRAMArchitecture.DDR3 not in seen:
            raise ConfigurationError(
                f"device {self.name!r} must support the commodity "
                f"baseline architecture {DRAMArchitecture.DDR3.value!r}")

    # ------------------------------------------------------------------
    # Derived interface figures
    # ------------------------------------------------------------------

    @property
    def tck_ns(self) -> float:
        """Clock period in nanoseconds."""
        return self.timings.tck_ns

    @property
    def data_rate_mts(self) -> int:
        """Interface data rate in MT/s (double data rate: 2 / tCK)."""
        return round(2000.0 / self.timings.tck_ns)

    @property
    def capacity_bytes(self) -> int:
        """Total system capacity in bytes."""
        return self.organization.total_bytes

    # ------------------------------------------------------------------
    # Capability set
    # ------------------------------------------------------------------

    def supports(self, architecture: DRAMArchitecture) -> bool:
        """Whether ``architecture`` is in this device's capability set."""
        return architecture in self.supported_architectures

    def require_architecture(self, architecture: DRAMArchitecture) -> None:
        """Raise :class:`ConfigurationError` unless supported."""
        if not self.supports(architecture):
            supported = ", ".join(
                a.value for a in self.supported_architectures)
            raise ConfigurationError(
                f"device {self.name!r} does not support architecture "
                f"{architecture.value!r}; supported: {supported}")

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def with_organization(self, organization: DRAMOrganization
                          ) -> "DeviceProfile":
        """A copy of this profile on a different geometry.

        Used by sensitivity sweeps (e.g. varying subarrays per bank) so
        the characterization cache can keep keying on
        ``(profile, architecture)`` for ad-hoc geometries too.
        """
        if organization == self.organization:
            return self
        return replace(self, organization=organization)

    def describe(self) -> str:
        """One-line summary: rate, geometry, capability set."""
        archs = "/".join(a.value for a in self.supported_architectures)
        return (f"{self.name}: {self.data_rate_mts} MT/s, "
                f"{self.organization.describe()}, archs: {archs}")


class DeviceRegistry:
    """Name-to-profile registry with stable registration order."""

    def __init__(self) -> None:
        self._profiles: Dict[str, DeviceProfile] = {}

    def register(self, profile: DeviceProfile,
                 replace_existing: bool = False) -> DeviceProfile:
        """Add ``profile`` under its name; returns the profile.

        Registering a second profile under an existing name raises
        :class:`ConfigurationError` unless ``replace_existing`` is set.
        """
        if profile.name in self._profiles and not replace_existing:
            raise ConfigurationError(
                f"device {profile.name!r} is already registered; pass "
                "replace_existing=True to overwrite")
        self._profiles[profile.name] = profile
        return profile

    def get(self, name: str) -> DeviceProfile:
        """The profile registered as ``name``.

        Raises :class:`ConfigurationError` naming the valid choices for
        unknown names (never a bare ``KeyError``).
        """
        try:
            return self._profiles[name]
        except KeyError:
            choices = ", ".join(self.names())
            raise ConfigurationError(
                f"unknown device {name!r}; registered devices: {choices}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """Registered names in registration order."""
        return tuple(self._profiles)

    def profiles(self) -> Tuple[DeviceProfile, ...]:
        """Registered profiles in registration order."""
        return tuple(self._profiles.values())

    def __contains__(self, name: object) -> bool:
        return name in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[DeviceProfile]:
        return iter(self._profiles.values())


# ----------------------------------------------------------------------
# Built-in profiles
# ----------------------------------------------------------------------

#: The paper's device (Table II): DDR3-1600K 2 Gb x8, SALP-modifiable.
#: Shares the exact constant objects of :mod:`repro.dram.timing`,
#: :mod:`repro.dram.power` and :mod:`repro.dram.presets`, so behaviour
#: is byte-identical to the pre-registry code paths.
DDR3_1600_2GB_X8_DEVICE = DeviceProfile(
    name=DEFAULT_DEVICE_NAME,
    organization=DDR3_1600_2GB_X8,
    timings=DDR3_1600_TIMINGS,
    currents=DDR3_1600_2GB_X8_CURRENTS,
    supported_architectures=COMMODITY_AND_SALP,
    description="DDR3-1600K 11-11-11, 2 Gb x8 (the paper's Table II)",
    reference="JEDEC JESD79-3F; Micron MT41J256M8 datasheet",
)

#: Miniature device for fast tests and exhaustive walks.
TINY_DEVICE = DeviceProfile(
    name="tiny",
    organization=TINY_ORGANIZATION,
    timings=DDR3_1600_TIMINGS,
    currents=DDR3_1600_2GB_X8_CURRENTS,
    supported_architectures=COMMODITY_AND_SALP,
    description="miniature 4-bank device for fast tests",
    reference="synthetic",
)

#: DDR4-2400 17-17-17, 4 Gb x8: 16 banks (4 bank groups), 1.2 V.
DDR4_2400_TIMINGS = TimingParameters(
    tck_ns=2000.0 / 2400.0, tRCD=17, tRP=17, tCL=17, tCWL=12,
    tRAS=39, tRC=56, tWR=18, tRTP=9, tCCD=4, tRRD=4, tFAW=26,
    tWTR=3, tRTW=8, tBL=4, tRFC=312, tREFI=9360,
)

DDR4_2400_4GB_X8_CURRENTS = CurrentParameters(
    idd0=48.0, idd2n=34.0, idd3n=42.0, idd4r=140.0, idd4w=125.0,
    idd5b=190.0, vdd=1.2,
)

DDR4_2400_4GB_X8 = DRAMOrganization(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=16,
    subarrays_per_bank=8,
    rows_per_bank=32768,
    columns_per_row=1024,
    device_width_bits=8,
    burst_length=8,
)

DDR4_2400_DEVICE = DeviceProfile(
    name="ddr4-2400",
    organization=DDR4_2400_4GB_X8,
    timings=DDR4_2400_TIMINGS,
    currents=DDR4_2400_4GB_X8_CURRENTS,
    supported_architectures=COMMODITY_AND_SALP,
    description="DDR4-2400 17-17-17, 4 Gb x8, 16 banks",
    reference="JEDEC JESD79-4B; Micron MT40A512M8 datasheet class",
)

#: LPDDR4-3200 28-29-29, 8 Gb x16: BL16, 1.1 V, mobile part.  Modelled
#: commodity-only: no SALP variant of LPDDR4 is published, so the
#: capability set excludes the SALP family (the enforcement path the
#: CLI's ``--arch`` validation exercises).
LPDDR4_3200_TIMINGS = TimingParameters(
    tck_ns=0.625, tRCD=29, tRP=29, tCL=28, tCWL=14,
    tRAS=68, tRC=97, tWR=29, tRTP=12, tCCD=8, tRRD=16, tFAW=64,
    tWTR=16, tRTW=14, tBL=8, tRFC=288, tREFI=6248,
)

LPDDR4_3200_8GB_X16_CURRENTS = CurrentParameters(
    idd0=70.0, idd2n=30.0, idd3n=42.0, idd4r=285.0, idd4w=270.0,
    idd5b=140.0, vdd=1.1,
)

LPDDR4_3200_8GB_X16 = DRAMOrganization(
    channels=1,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=8,
    subarrays_per_bank=8,
    rows_per_bank=65536,
    columns_per_row=1024,
    device_width_bits=16,
    burst_length=16,
)

LPDDR4_3200_DEVICE = DeviceProfile(
    name="lpddr4-3200",
    organization=LPDDR4_3200_8GB_X16,
    timings=LPDDR4_3200_TIMINGS,
    currents=LPDDR4_3200_8GB_X16_CURRENTS,
    supported_architectures=COMMODITY_ONLY,
    description="LPDDR4-3200 28-29-29, 8 Gb x16, BL16 (mobile)",
    reference="JEDEC JESD209-4B; Micron MT53B512M16 datasheet class",
)

#: HBM2-class stack: 8 channels x128 @ 2.0 Gbps/pin, 2 KB rows, BL4.
#: Wide-interface behaviour is captured by the geometry (large
#: bytes-per-burst, many channels); commodity-only capability set.
HBM2_TIMINGS = TimingParameters(
    tck_ns=1.0, tRCD=14, tRP=14, tCL=14, tCWL=7,
    tRAS=33, tRC=47, tWR=15, tRTP=7, tCCD=2, tRRD=4, tFAW=16,
    tWTR=8, tRTW=7, tBL=2, tRFC=260, tREFI=3900,
)

HBM2_CURRENTS = CurrentParameters(
    idd0=65.0, idd2n=40.0, idd3n=50.0, idd4r=230.0, idd4w=210.0,
    idd5b=250.0, vdd=1.2,
)

HBM2_ORGANIZATION = DRAMOrganization(
    channels=8,
    ranks_per_channel=1,
    chips_per_rank=1,
    banks_per_chip=16,
    subarrays_per_bank=16,
    rows_per_bank=16384,
    columns_per_row=128,
    device_width_bits=128,
    burst_length=4,
)

HBM2_DEVICE = DeviceProfile(
    name="hbm2",
    organization=HBM2_ORGANIZATION,
    timings=HBM2_TIMINGS,
    currents=HBM2_CURRENTS,
    supported_architectures=COMMODITY_ONLY,
    description="HBM2-class stack, 8 channels x128, 2.0 Gbps/pin",
    reference="JEDEC JESD235B class",
)


#: Process-wide registry with the built-in profiles, in presentation
#: order: the paper's device first, then the fast-test profile, then
#: the generation extensions.
DEVICE_REGISTRY = DeviceRegistry()
for _profile in (DDR3_1600_2GB_X8_DEVICE, TINY_DEVICE, DDR4_2400_DEVICE,
                 LPDDR4_3200_DEVICE, HBM2_DEVICE):
    DEVICE_REGISTRY.register(_profile)
del _profile


def get_device(name: str) -> DeviceProfile:
    """Resolve ``name`` in the process-wide :data:`DEVICE_REGISTRY`."""
    return DEVICE_REGISTRY.get(name)


def register_device(profile: DeviceProfile,
                    replace_existing: bool = False) -> DeviceProfile:
    """Register ``profile`` in the process-wide registry."""
    return DEVICE_REGISTRY.register(
        profile, replace_existing=replace_existing)


def device_names() -> Tuple[str, ...]:
    """Names registered in the process-wide registry."""
    return DEVICE_REGISTRY.names()


def default_device() -> DeviceProfile:
    """The paper's Table-II device (the default everywhere)."""
    return DEVICE_REGISTRY.get(DEFAULT_DEVICE_NAME)


def resolve_device(
    device: Optional[DeviceProfile] = None,
    organization: Optional[DRAMOrganization] = None,
) -> DeviceProfile:
    """Normalize the common ``(device, organization)`` parameter pair.

    ``device=None`` selects the default device.  A non-``None``
    ``organization`` overrides the profile's geometry (sweeps vary the
    geometry of a fixed speed grade), keeping timings/currents and the
    capability set.
    """
    profile = device if device is not None else default_device()
    if organization is not None:
        profile = profile.with_organization(organization)
    return profile
