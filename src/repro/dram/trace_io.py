"""Request- and command-trace file I/O.

Two plain-text formats:

* **Request traces** use a Ramulator-style line format,
  ``<address> <R|W>``, where the address is the byte address of the
  burst under a given mapping policy.  This lets request streams move
  between this simulator and other DRAM simulators (or be captured
  from real traces).
* **Command traces** are written as ``<cycle> <CMD> <coordinate>``
  lines — the interchange format between the scheduler and external
  power models (the role VAMPIRE's input plays in the paper's Fig. 8).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Union

from ..errors import ConfigurationError
from .address import Coordinate
from .commands import Command, CommandKind, Request, RequestKind
from .spec import DRAMOrganization
from ..mapping.policy import MappingPolicy

PathLike = Union[str, Path]


def request_to_address(
    request: Request,
    policy: MappingPolicy,
    organization: DRAMOrganization,
) -> int:
    """Byte address of a request's burst under ``policy``.

    The inverse of the mapping's mixed-radix decomposition: recompose
    the access index from the coordinate's digits, then scale by the
    burst size.
    """
    from ..mapping.dims import Dim

    coord = request.coordinate
    by_dim = {
        Dim.CHANNEL: coord.channel,
        Dim.RANK: coord.rank,
        Dim.BANK: coord.bank,
        Dim.SUBARRAY: coord.subarray,
        Dim.ROW: coord.row,
        Dim.COLUMN: coord.column,
    }
    index = 0
    for dim, stride in zip(policy.full_order,
                           policy.strides(organization)):
        index += by_dim[dim] * stride
    return index * organization.bytes_per_burst


def address_to_request(
    address: int,
    kind: RequestKind,
    policy: MappingPolicy,
    organization: DRAMOrganization,
) -> Request:
    """Rebuild a request from a byte address under ``policy``."""
    if address < 0:
        raise ConfigurationError(f"address must be non-negative, got "
                                 f"{address}")
    if address % organization.bytes_per_burst:
        raise ConfigurationError(
            f"address {address} is not burst-aligned "
            f"({organization.bytes_per_burst} B bursts)")
    index = address // organization.bytes_per_burst
    return Request(kind, policy.coordinate_of(index, organization))


def write_request_trace(
    path: PathLike,
    requests: Iterable[Request],
    policy: MappingPolicy,
    organization: DRAMOrganization,
) -> int:
    """Write requests as ``<hex address> <R|W>`` lines; returns count."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        for request in requests:
            address = request_to_address(request, policy, organization)
            letter = "R" if request.kind is RequestKind.READ else "W"
            handle.write(f"0x{address:x} {letter}\n")
            count += 1
    return count


def read_request_trace(
    path: PathLike,
    policy: MappingPolicy,
    organization: DRAMOrganization,
) -> List[Request]:
    """Parse a ``<address> <R|W>`` request trace."""
    requests: List[Request] = []
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 2:
                raise ConfigurationError(
                    f"{path}:{line_number}: expected '<address> <R|W>', "
                    f"got {stripped!r}")
            address_text, kind_text = parts
            try:
                address = int(address_text, 0)
            except ValueError:
                raise ConfigurationError(
                    f"{path}:{line_number}: bad address "
                    f"{address_text!r}")
            if kind_text.upper() == "R":
                kind = RequestKind.READ
            elif kind_text.upper() == "W":
                kind = RequestKind.WRITE
            else:
                raise ConfigurationError(
                    f"{path}:{line_number}: bad direction "
                    f"{kind_text!r} (expected R or W)")
            requests.append(address_to_request(
                address, kind, policy, organization))
    return requests


def write_command_trace(path: PathLike, commands: Iterable[Command]
                        ) -> int:
    """Write commands as ``<cycle> <CMD> ch ra ba sa ro co`` lines."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        for command in commands:
            coord = command.coordinate
            handle.write(
                f"{command.cycle} {command.kind.value} "
                f"{coord.channel} {coord.rank} {coord.bank} "
                f"{coord.subarray} {coord.row} {coord.column} "
                f"{command.concurrent_subarrays}\n")
            count += 1
    return count


def read_command_trace(path: PathLike) -> List[Command]:
    """Parse a command trace written by :func:`write_command_trace`."""
    commands: List[Command] = []
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 9:
                raise ConfigurationError(
                    f"{path}:{line_number}: expected 9 fields, got "
                    f"{len(parts)}")
            cycle = int(parts[0])
            kind = CommandKind(parts[1])
            channel, rank, bank, subarray, row, column, concurrent = \
                map(int, parts[2:])
            commands.append(Command(
                kind=kind, cycle=cycle,
                coordinate=Coordinate(
                    channel=channel, rank=rank, bank=bank,
                    subarray=subarray, row=row, column=column),
                concurrent_subarrays=concurrent))
    return commands
