"""Energy accounting over a command trace (the VAMPIRE role).

Walks a :class:`~repro.dram.commands.CommandTrace` and charges each
command through the :class:`~repro.dram.power.EnergyModel`, plus the
standby (background) energy over the elapsed cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from .commands import CommandKind, CommandTrace
from .power import EnergyModel


@dataclass(frozen=True)
class TraceEnergy:
    """Energy breakdown of one command trace, in nanojoules."""

    activation_nj: float
    precharge_nj: float
    read_nj: float
    write_nj: float
    refresh_nj: float
    background_nj: float

    @property
    def total_nj(self) -> float:
        """Total trace energy."""
        return (self.activation_nj + self.precharge_nj + self.read_nj
                + self.write_nj + self.refresh_nj + self.background_nj)

    @property
    def dynamic_nj(self) -> float:
        """Command (non-background) energy."""
        return self.total_nj - self.background_nj


class EnergyAccountant:
    """Accumulates per-command energy for command traces.

    Parameters
    ----------
    model:
        The per-command energy model.
    include_background:
        Charge standby energy over the trace duration.  The paper's
        per-access characterization (Fig. 1) includes the background
        share of the access window, so this defaults to True.
    active_fraction:
        Fraction of the trace during which at least one row is open.
        Streams that keep rows open (every stream the mapping policies
        generate) are effectively always active, hence the default 1.0.
    """

    def __init__(
        self,
        model: EnergyModel,
        include_background: bool = True,
        active_fraction: float = 1.0,
    ) -> None:
        self.model = model
        self.include_background = include_background
        self.active_fraction = active_fraction

    def account(self, trace: CommandTrace) -> TraceEnergy:
        """Return the energy breakdown of ``trace``."""
        activation = 0.0
        precharge = 0.0
        read = 0.0
        write = 0.0
        refresh = 0.0
        for command in trace.commands:
            if command.kind is CommandKind.ACT:
                activation += self.model.activation_nj(
                    extra_subarrays_active=command.concurrent_subarrays)
            elif command.kind is CommandKind.PRE:
                precharge += self.model.precharge_nj()
            elif command.kind is CommandKind.RD:
                read += self.model.read_burst_nj()
            elif command.kind is CommandKind.WR:
                write += self.model.write_burst_nj()
            elif command.kind is CommandKind.REF:
                refresh += self.model.refresh_nj()
        background = 0.0
        if self.include_background:
            background = self.model.background_nj(
                trace.total_cycles, self.active_fraction)
        return TraceEnergy(
            activation_nj=activation,
            precharge_nj=precharge,
            read_nj=read,
            write_nj=write,
            refresh_nj=refresh,
            background_nj=background,
        )
