"""Pluggable memory-controller policies: scheduling and row buffer.

The paper fixes one controller configuration — FCFS scheduling with an
open-row policy (Table II) — but its central claim (the mapping policy
dominates EDP) is only credible if it survives controller variation.
Ramulator-style simulators treat the scheduler and the row-buffer
policy as first-class axes; this module makes them first-class here:

* **Schedulers** decide which pending request to service next.

  - ``fcfs`` — strict arrival order (the paper's Table-II controller).
  - ``fr-fcfs`` — first-ready FCFS: within a bounded reorder window,
    the oldest request that would be a *row-buffer hit* under the
    current bank state is serviced first; with no ready hit the oldest
    request wins.  Relative order is preserved among hits and among
    non-hits, so the reordering is exactly "hits jump the queue".

* **Row-buffer policies** decide what happens to a row after the
  column access.

  - ``open`` — rows stay open until a conflicting access or an
    eviction forces a precharge (the paper's policy).
  - ``closed`` — every access auto-precharges its row at the earliest
    legal cycle (tRAS/tRTP/tWR respected), trading hit locality for
    conflict-free misses.
  - ``timeout`` — an open row idle for more than ``timeout_cycles``
    is closed in the background; accesses arriving within the window
    still hit, late conflicts pay only the activation.

Every combination composes with the SALP-1/2/MASA architecture
behaviours of :mod:`repro.dram.architecture` unchanged: the policies
decide *what* to do, the architecture flags decide *how fast* the
resulting command sequence may run.

The frozen :class:`ControllerConfig` value is hashable and picklable:
it travels in characterization cache keys (``(profile, architecture,
controller)``) and in the pickled
:class:`repro.core.engine.ExplorationContext`, so policy variants can
never be served a stale default-config characterization.

Example
-------
>>> config = controller_config(scheduler="fr-fcfs", row_policy="closed")
>>> config.label
'fr-fcfs/closed'
>>> controller_config() == DEFAULT_CONTROLLER_CONFIG
True
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple, Union

from ..errors import ConfigurationError

#: Default FR-FCFS reorder-window depth (requests the scheduler may
#: look ahead).  Real controllers bound this by their transaction
#: queue; 16 keeps reordering meaningful without unbounded lookahead.
DEFAULT_REORDER_WINDOW = 16

#: Default idle window of the ``timeout`` row policy, in memory-clock
#: cycles.  Roughly ten conflict services on DDR3-1600: long enough
#: that tight streams keep their hits, short enough that genuinely
#: idle rows stop paying the conflict precharge on re-access.
DEFAULT_TIMEOUT_CYCLES = 512


class SchedulerKind(enum.Enum):
    """Request-scheduling disciplines."""

    FCFS = "fcfs"
    FR_FCFS = "fr-fcfs"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class RowPolicyKind(enum.Enum):
    """Row-buffer management disciplines."""

    OPEN = "open"
    CLOSED = "closed"
    TIMEOUT = "timeout"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ControllerConfig:
    """One memory-controller configuration.

    Attributes
    ----------
    scheduler:
        Request-scheduling discipline.
    row_policy:
        Row-buffer management discipline.
    reorder_window:
        FR-FCFS lookahead depth in requests (ignored by ``fcfs``).
    timeout_cycles:
        Idle window of the ``timeout`` row policy in memory-clock
        cycles (ignored by ``open`` and ``closed``).
    """

    scheduler: SchedulerKind = SchedulerKind.FCFS
    row_policy: RowPolicyKind = RowPolicyKind.OPEN
    reorder_window: int = DEFAULT_REORDER_WINDOW
    timeout_cycles: int = DEFAULT_TIMEOUT_CYCLES

    def __post_init__(self) -> None:
        if not isinstance(self.scheduler, SchedulerKind):
            raise ConfigurationError(
                f"scheduler must be a SchedulerKind, got "
                f"{self.scheduler!r}")
        if not isinstance(self.row_policy, RowPolicyKind):
            raise ConfigurationError(
                f"row_policy must be a RowPolicyKind, got "
                f"{self.row_policy!r}")
        if not isinstance(self.reorder_window, int) \
                or self.reorder_window < 1:
            raise ConfigurationError(
                f"reorder_window must be a positive integer, got "
                f"{self.reorder_window!r}")
        if not isinstance(self.timeout_cycles, int) \
                or self.timeout_cycles < 1:
            raise ConfigurationError(
                f"timeout_cycles must be a positive integer, got "
                f"{self.timeout_cycles!r}")
        # Canonicalize inactive knobs so behaviourally identical
        # configs are equal: an fcfs config's reorder_window and a
        # non-timeout config's timeout_cycles affect nothing, and
        # letting them differentiate equality would split the
        # characterization cache and mislabel defaults.
        if self.scheduler is not SchedulerKind.FR_FCFS:
            object.__setattr__(
                self, "reorder_window", DEFAULT_REORDER_WINDOW)
        if self.row_policy is not RowPolicyKind.TIMEOUT:
            object.__setattr__(
                self, "timeout_cycles", DEFAULT_TIMEOUT_CYCLES)

    @property
    def label(self) -> str:
        """Short ``scheduler/row-policy`` tag for titles and keys."""
        return f"{self.scheduler.value}/{self.row_policy.value}"

    @property
    def is_default(self) -> bool:
        """True for the paper's Table-II configuration."""
        return self == DEFAULT_CONTROLLER_CONFIG

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [f"scheduler={self.scheduler.value}",
                 f"row-policy={self.row_policy.value}"]
        if self.scheduler is SchedulerKind.FR_FCFS:
            parts.append(f"window={self.reorder_window}")
        if self.row_policy is RowPolicyKind.TIMEOUT:
            parts.append(f"timeout={self.timeout_cycles}cy")
        return ", ".join(parts)


# ----------------------------------------------------------------------
# Scheduler policies
# ----------------------------------------------------------------------

#: Predicate the controller hands to the scheduler: "would this request
#: be a row-buffer hit right now?"
HitPredicate = Callable[[object], bool]


class SchedulerPolicy:
    """Scheduling decision: which windowed request is serviced next."""

    kind: SchedulerKind

    def window_size(self, config: ControllerConfig) -> int:
        """Reorder-window depth under ``config``."""
        raise NotImplementedError

    def select(self, window: Sequence[object],
               is_row_hit: HitPredicate) -> int:
        """Index of the window entry to service next."""
        raise NotImplementedError


class FcfsScheduler(SchedulerPolicy):
    """Strict first-come first-served: no reordering at all."""

    kind = SchedulerKind.FCFS

    def window_size(self, config: ControllerConfig) -> int:
        return 1

    def select(self, window: Sequence[object],
               is_row_hit: HitPredicate) -> int:
        return 0


class FrFcfsScheduler(SchedulerPolicy):
    """First-ready FCFS: oldest row-hit first, else oldest request.

    Relative order is preserved among hits and among non-hits — the
    only reordering is a ready hit overtaking older non-hits, which is
    the classic FR-FCFS row-hit-first rule at request granularity.
    """

    kind = SchedulerKind.FR_FCFS

    def window_size(self, config: ControllerConfig) -> int:
        return config.reorder_window

    def select(self, window: Sequence[object],
               is_row_hit: HitPredicate) -> int:
        for index, request in enumerate(window):
            if is_row_hit(request):
                return index
        return 0


# ----------------------------------------------------------------------
# Row-buffer policies
# ----------------------------------------------------------------------

class RowBufferPolicy:
    """Row-buffer decision: what happens to a row after the access."""

    kind: RowPolicyKind

    def close_after_access(self, config: ControllerConfig) -> bool:
        """True when every access auto-precharges its row."""
        return False

    def idle_limit(self, config: ControllerConfig):
        """Idle cycles after which an open row is closed (None: never)."""
        return None


class OpenRowPolicy(RowBufferPolicy):
    """Rows stay open until a conflict evicts them (Table II)."""

    kind = RowPolicyKind.OPEN


class ClosedRowPolicy(RowBufferPolicy):
    """Auto-precharge: the row closes at the earliest legal cycle."""

    kind = RowPolicyKind.CLOSED

    def close_after_access(self, config: ControllerConfig) -> bool:
        return True


class TimeoutRowPolicy(RowBufferPolicy):
    """Hybrid: open rows are closed after ``timeout_cycles`` idle."""

    kind = RowPolicyKind.TIMEOUT

    def idle_limit(self, config: ControllerConfig):
        return config.timeout_cycles


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_SCHEDULERS: Dict[SchedulerKind, SchedulerPolicy] = {
    SchedulerKind.FCFS: FcfsScheduler(),
    SchedulerKind.FR_FCFS: FrFcfsScheduler(),
}

_ROW_POLICIES: Dict[RowPolicyKind, RowBufferPolicy] = {
    RowPolicyKind.OPEN: OpenRowPolicy(),
    RowPolicyKind.CLOSED: ClosedRowPolicy(),
    RowPolicyKind.TIMEOUT: TimeoutRowPolicy(),
}

#: One-line purpose of each scheduler, for the CLI listing.
SCHEDULER_SUMMARIES: Dict[SchedulerKind, str] = {
    SchedulerKind.FCFS:
        "strict arrival order (the paper's Table-II controller)",
    SchedulerKind.FR_FCFS:
        "row-hit-first within a bounded reorder window",
}

#: One-line purpose of each row policy, for the CLI listing.
ROW_POLICY_SUMMARIES: Dict[RowPolicyKind, str] = {
    RowPolicyKind.OPEN:
        "rows stay open until a conflict (the paper's Table-II policy)",
    RowPolicyKind.CLOSED:
        "auto-precharge after every access",
    RowPolicyKind.TIMEOUT:
        "close rows left idle past the timeout",
}


def _parse(kind_cls, value, what: str):
    """Normalize a name or enum member to the enum member."""
    if isinstance(value, kind_cls):
        return value
    try:
        return kind_cls(value)
    except ValueError:
        choices = ", ".join(member.value for member in kind_cls)
        raise ConfigurationError(
            f"unknown {what} {value!r}; choose from: {choices}"
        ) from None


def scheduler_names() -> Tuple[str, ...]:
    """Registered scheduler names, FCFS first."""
    return tuple(kind.value for kind in SchedulerKind)


def row_policy_names() -> Tuple[str, ...]:
    """Registered row-policy names, open first."""
    return tuple(kind.value for kind in RowPolicyKind)


def get_scheduler(
    kind: Union[str, SchedulerKind],
) -> SchedulerPolicy:
    """Scheduler policy object for ``kind`` (name or enum member)."""
    return _SCHEDULERS[_parse(SchedulerKind, kind, "scheduler")]


def get_row_policy(
    kind: Union[str, RowPolicyKind],
) -> RowBufferPolicy:
    """Row-buffer policy object for ``kind`` (name or enum member)."""
    return _ROW_POLICIES[_parse(RowPolicyKind, kind, "row policy")]


def controller_config(
    scheduler: Union[str, SchedulerKind] = SchedulerKind.FCFS,
    row_policy: Union[str, RowPolicyKind] = RowPolicyKind.OPEN,
    reorder_window: int = DEFAULT_REORDER_WINDOW,
    timeout_cycles: int = DEFAULT_TIMEOUT_CYCLES,
) -> ControllerConfig:
    """Build a :class:`ControllerConfig` from names or enum members.

    Unknown names raise :class:`ConfigurationError` listing the valid
    choices (the CLI surfaces this as an exit-2 usage error).
    """
    return ControllerConfig(
        scheduler=_parse(SchedulerKind, scheduler, "scheduler"),
        row_policy=_parse(RowPolicyKind, row_policy, "row policy"),
        reorder_window=reorder_window,
        timeout_cycles=timeout_cycles,
    )


def resolve_controller(config=None) -> ControllerConfig:
    """Normalize an optional config (``None`` means the default)."""
    if config is None:
        return DEFAULT_CONTROLLER_CONFIG
    if not isinstance(config, ControllerConfig):
        raise ConfigurationError(
            f"controller must be a ControllerConfig or None, got "
            f"{config!r}")
    return config


#: The paper's Table-II controller: FCFS scheduling, open-row policy.
DEFAULT_CONTROLLER_CONFIG = ControllerConfig()


def all_controller_configs(
    reorder_window: int = DEFAULT_REORDER_WINDOW,
    timeout_cycles: int = DEFAULT_TIMEOUT_CYCLES,
) -> Tuple[ControllerConfig, ...]:
    """Every scheduler x row-policy combination, defaults first."""
    configs: List[ControllerConfig] = []
    for scheduler in SchedulerKind:
        for row_policy in RowPolicyKind:
            configs.append(ControllerConfig(
                scheduler=scheduler,
                row_policy=row_policy,
                reorder_window=reorder_window,
                timeout_cycles=timeout_cycles,
            ))
    return tuple(configs)
