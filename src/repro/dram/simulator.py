"""Trace-driven DRAM simulator facade.

Bundles organization, timings, architecture, controller and energy
model into one object, mirroring the paper's Fig. 8 tool flow:

    requests -> cycle-level controller -> command trace -> energy model
             -> (cycles, energy) statistics

Example
-------
>>> from repro.dram import DRAMSimulator
>>> from repro.dram.architecture import DRAMArchitecture
>>> sim = DRAMSimulator.from_profile("ddr3-1600-2gb-x8",
...                                  DRAMArchitecture.SALP_1)
>>> result = sim.run(sim.sequential_reads(bank=0, subarray=0, row=0, count=8))
>>> result.trace.row_hits
7
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..errors import ConfigurationError
from .address import Coordinate
from .architecture import DRAMArchitecture
from .commands import CommandTrace, Request
from .contention import ContentionConfig, resolve_contention
from .controller import MemoryController
from .crossbar import Crossbar
from .energy import EnergyAccountant, TraceEnergy
from .policies import ControllerConfig, resolve_controller
from .power import CurrentParameters, DDR3_1600_2GB_X8_CURRENTS, EnergyModel
from .spec import DRAMOrganization
from .timing import DDR3_1600_TIMINGS, TimingParameters


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run."""

    trace: CommandTrace
    energy: TraceEnergy
    tck_ns: float

    @property
    def total_cycles(self) -> int:
        """Cycles from first command to last data beat."""
        return self.trace.total_cycles

    @property
    def total_ns(self) -> float:
        """Wall-clock nanoseconds of the run."""
        return self.trace.total_cycles * self.tck_ns

    @property
    def total_energy_nj(self) -> float:
        """Total energy in nanojoules (commands + background)."""
        return self.energy.total_nj

    def cycles_per_access(self) -> float:
        """Average cycles per serviced request."""
        count = len(self.trace.serviced)
        if count == 0:
            return 0.0
        return self.trace.total_cycles / count

    def energy_per_access_nj(self) -> float:
        """Average energy per serviced request in nanojoules."""
        count = len(self.trace.serviced)
        if count == 0:
            return 0.0
        return self.energy.total_nj / count


class DRAMSimulator:
    """Convenience wrapper tying controller and energy model together."""

    def __init__(
        self,
        organization: DRAMOrganization,
        timings: TimingParameters = DDR3_1600_TIMINGS,
        architecture: DRAMArchitecture = DRAMArchitecture.DDR3,
        currents: CurrentParameters = DDR3_1600_2GB_X8_CURRENTS,
        include_background_energy: bool = True,
        controller: Optional[ControllerConfig] = None,
        contention: Optional[ContentionConfig] = None,
        refresh_enabled: bool = False,
    ) -> None:
        self.organization = organization
        self.timings = timings
        self.architecture = architecture
        self.controller = resolve_controller(controller)
        self.contention = resolve_contention(contention)
        self.refresh_enabled = refresh_enabled
        self.energy_model = EnergyModel(organization, timings, currents)
        self.include_background_energy = include_background_energy

    @classmethod
    def from_profile(
        cls,
        device,
        architecture: DRAMArchitecture = DRAMArchitecture.DDR3,
        **overrides,
    ) -> "DRAMSimulator":
        """Build a simulator for a registered device profile.

        ``device`` is a :class:`~repro.dram.device.DeviceProfile` or a
        registry name; its capability set must include
        ``architecture``.  ``overrides`` may replace any constructor
        parameter (e.g. ``organization=`` for sweep geometries).
        """
        from .device import get_device
        if isinstance(device, str):
            device = get_device(device)
        device.require_architecture(architecture)
        overrides.setdefault("organization", device.organization)
        overrides.setdefault("timings", device.timings)
        overrides.setdefault("currents", device.currents)
        return cls(architecture=architecture, **overrides)

    @classmethod
    def from_preset(
        cls,
        architecture: DRAMArchitecture = DRAMArchitecture.DDR3,
        **overrides,
    ) -> "DRAMSimulator":
        """Build a simulator for a Table-II configuration.

        .. deprecated::
            Use :meth:`from_profile` with an explicit device; this is
            equivalent to ``from_profile(default_device(), ...)``.
        """
        from .device import default_device
        return cls.from_profile(
            default_device(), architecture=architecture, **overrides)

    # ------------------------------------------------------------------
    # Running traces
    # ------------------------------------------------------------------

    def run(self, requests: Iterable[Request]) -> SimulationResult:
        """Service ``requests`` on a fresh controller and account energy.

        With ``contention.requestors > 1`` the flat stream is split per
        the configured assignment and merged back through the crossbar
        front end; the single-requestor default drives the bare
        controller, command-for-command identical to the pre-crossbar
        path.
        """
        controller = self._fresh_controller()
        if self.contention.requestors > 1:
            trace = Crossbar(controller, self.contention
                             ).run_merged(requests)
        else:
            trace = controller.run(requests)
        return self._account(trace)

    @property
    def supports_split_run(self) -> bool:
        """True when :meth:`run_split` is valid for this configuration.

        Prefix accounting requires strictly sequential service: the
        depth-1 (FCFS) scheduler on an uncontended channel.  A
        reordering window drains differently at a stream's end, and
        the crossbar's arbitration depends on the full stream, so for
        those the prefix of a long run is *not* the short run.
        """
        from .policies import get_scheduler
        return (self.contention.requestors == 1
                and get_scheduler(self.controller.scheduler)
                .window_size(self.controller) == 1)

    def run_split(
        self, requests: List[Request], checkpoint: int,
    ) -> "tuple[SimulationResult, SimulationResult]":
        """One controller walk accounted at ``checkpoint`` and the end.

        Returns ``(prefix, full)`` results, each exactly what
        :meth:`run` would return for ``requests[:checkpoint]`` and
        ``requests``: the controller keeps cumulative state across
        ``run`` calls, and under FCFS servicing is strictly
        sequential, so two back-to-back runs on one fresh controller
        are indistinguishable from one concatenated run.  The
        characterization's marginal measurement uses this to halve its
        simulator work (the short stream is a prefix of the long one).
        """
        if not self.supports_split_run:
            raise ConfigurationError(
                "run_split requires the depth-1 FCFS scheduler on an "
                "uncontended channel; use two independent run() calls")
        requests = list(requests)
        controller = self._fresh_controller()
        prefix = self._account(controller.run(requests[:checkpoint]))
        full = self._account(controller.run(requests[checkpoint:]))
        return prefix, full

    def run_streams(self, streams) -> SimulationResult:
        """Service one explicit request stream per requestor.

        ``streams`` must hold exactly ``contention.requestors``
        iterables (one is fine — the N=1 crossbar is the identity
        front end).
        """
        trace = Crossbar(self._fresh_controller(), self.contention
                         ).run(streams)
        return self._account(trace)

    def _fresh_controller(self) -> MemoryController:
        return MemoryController(
            self.organization, self.timings, self.architecture,
            refresh_enabled=self.refresh_enabled,
            config=self.controller)

    def _account(self, trace: CommandTrace) -> SimulationResult:
        accountant = EnergyAccountant(
            self.energy_model,
            include_background=self.include_background_energy)
        energy = accountant.account(trace)
        return SimulationResult(
            trace=trace, energy=energy, tck_ns=self.timings.tck_ns)

    # ------------------------------------------------------------------
    # Canned request generators (used by characterization and tests)
    # ------------------------------------------------------------------

    def sequential_reads(
        self,
        bank: int,
        subarray: int,
        row: int,
        count: int,
        start_column: int = 0,
    ) -> List[Request]:
        """Reads marching through columns of one row (row-hit stream)."""
        bursts = self.organization.bursts_per_row
        return [
            Request.read(Coordinate(
                bank=bank, subarray=subarray, row=row,
                column=(start_column + i) % bursts))
            for i in range(count)
        ]

    def alternating_row_reads(
        self, bank: int, subarray: int, rows: Iterable[int], per_row: int = 1,
    ) -> List[Request]:
        """Reads bouncing between rows of one subarray (conflict stream)."""
        requests: List[Request] = []
        for row in rows:
            for column in range(per_row):
                requests.append(Request.read(Coordinate(
                    bank=bank, subarray=subarray, row=row, column=column)))
        return requests

    def round_robin_subarray_reads(
        self, bank: int, count: int, row: int = 0,
    ) -> List[Request]:
        """Reads cycling across subarrays of one bank (SALP stream)."""
        num = self.organization.subarrays_per_bank
        bursts = self.organization.bursts_per_row
        return [
            Request.read(Coordinate(
                bank=bank, subarray=i % num, row=row,
                column=(i // num) % bursts))
            for i in range(count)
        ]

    def round_robin_bank_reads(
        self, count: int, subarray: int = 0, row: int = 0,
    ) -> List[Request]:
        """Reads cycling across banks (bank-level-parallelism stream)."""
        num = self.organization.banks_per_chip
        bursts = self.organization.bursts_per_row
        return [
            Request.read(Coordinate(
                bank=i % num, subarray=subarray, row=row,
                column=(i // num) % bursts))
            for i in range(count)
        ]
