"""Vectorized batch characterization kernel (numpy fast path).

The Fig.-1 characterization (:mod:`repro.dram.characterize`) walks the
object simulator one Python ``Request``/``Command`` object at a time —
tens of milliseconds per (device, architecture) triple, which every
DSE, sweep and funnel verify ultimately bottoms out in.  This module
re-expresses the same micro-experiments as a batch kernel:

* **Synthesis** — the eight micro-experiment streams (``_STREAMS`` ×
  READ/WRITE) plus the isolated-miss probes are synthesized directly
  as numpy structured arrays (:data:`STREAM_DTYPE`), never as request
  objects.
* **Classification** — row hit / miss / conflict outcomes fall out of
  shifted-array comparisons over per-bank timelines
  (:func:`classify_stream`): under the default FCFS/open-row
  controller every access leaves its own ``(subarray, row)`` open in
  its bank, so outcome *i* depends only on the previous access to the
  same bank.
* **Evaluation** — the JEDEC timing gates (tRCD/tRP/tRAS/tCCD/tRRD/
  tFAW and the SALP/MASA subarray variants) and the per-command energy
  accumulation run as a tight scalar recurrence over primitive ints
  and floats.  The recurrence is kept *scalar* deliberately: the
  simulator's command-bus model fills free slots out of order and the
  data-bus push feeds back into command placement, so a lane-parallel
  formulation could only approximate it — and the contract of this
  module is **exact** equality with the object simulator, enforced
  bit-for-bit by ``tests/dram/test_kernel_differential.py``.
* **Amortization** — :class:`KernelCharacterizer` shares synthesis,
  classification and whole micro-experiment runs across the
  architectures of one device profile, and
  :func:`characterize_batch` amortizes that over a grid slice.  Runs
  are shared only under *checkable* invariances: a stream touching a
  single subarray index exercises none of the SALP/MASA behaviour
  flags (every precharge victim is the activation target, so the
  subarray-local tRP re-interpretation collapses onto the bank-global
  one), and a read-only stream never arms the write-recovery window
  SALP-2 relaxes, making SALP-2 ≡ SALP-1 for reads.  The differential
  suite pins each sharing decision against the simulator for every
  preset × architecture.

Eligibility
-----------
The kernel models exactly the configuration the paper characterizes
under: the default FCFS/open-row controller, refresh off, an
uncontended channel.  Everything else — FR-FCFS, closed/timeout row
policies, refresh, ``requestors > 1`` — stays on the object simulator,
the single source of truth for traces, properties and non-default
controllers.  :func:`kernel_ineligibility` names the first violated
requirement (or ``None``), so callers can raise or fall back with a
useful message.

Results are plain :class:`~repro.dram.characterize.CharacterizationResult`
objects, indistinguishable from simulator-produced ones: cache keys
and the on-disk spec hash carry **no backend marker** — a
kernel-produced entry is a valid cache hit for a simulator request and
vice versa, which is only sound because of the exact-equality
contract.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from .architecture import ArchitectureBehavior, DRAMArchitecture, behavior_of
from .bank import NEVER
from .commands import RequestKind
from .contention import ContentionConfig, resolve_contention
from .device import DeviceProfile, resolve_device
from .policies import (
    DEFAULT_CONTROLLER_CONFIG,
    ControllerConfig,
    resolve_controller,
)
from .power import EnergyModel
from .spec import DRAMOrganization
from .timing import TimingParameters

# Imported for the condition enum, the stream formulas' single source
# of truth (_STREAMS order) and the result dataclasses.  characterize
# imports *this* module lazily, so there is no cycle.
from .characterize import (
    _STREAMS,
    AccessCondition,
    CharacterizationResult,
    ConditionCost,
)


#: Structured layout of one synthesized request stream.  ``kind`` is 0
#: for READ, 1 for WRITE (:data:`_KIND_CODES`).
STREAM_DTYPE = np.dtype([
    ("bank", np.int64),
    ("subarray", np.int64),
    ("row", np.int64),
    ("column", np.int64),
    ("kind", np.uint8),
])

_KIND_CODES = {RequestKind.READ: 0, RequestKind.WRITE: 1}

#: Outcome codes produced by :func:`classify_stream`.
OUTCOME_HIT = 0
OUTCOME_MISS = 1
OUTCOME_CONFLICT = 2


# ----------------------------------------------------------------------
# Stream synthesis
# ----------------------------------------------------------------------

def synthesize_stream(
    condition: AccessCondition,
    organization: DRAMOrganization,
    kind: RequestKind,
    count: int,
) -> np.ndarray:
    """Structured-array twin of the characterize stream generators.

    Element ``i`` equals the coordinate of the ``i``-th request the
    corresponding generator in :mod:`repro.dram.characterize` emits
    (the formulas are transcribed, not sampled).  ``ROW_MISS`` yields
    the single isolated probe request regardless of ``count``.
    """
    if condition is AccessCondition.ROW_MISS:
        probe = np.zeros(1, dtype=STREAM_DTYPE)
        probe["kind"] = _KIND_CODES[kind]
        return probe
    index = np.arange(count, dtype=np.int64)
    stream = np.zeros(count, dtype=STREAM_DTYPE)
    stream["kind"] = _KIND_CODES[kind]
    if condition is AccessCondition.ROW_HIT:
        stream["column"] = index % organization.bursts_per_row
    elif condition is AccessCondition.ROW_CONFLICT:
        stream["row"] = index % 2
        stream["column"] = (index // 2) % organization.bursts_per_row
    elif condition is AccessCondition.SUBARRAY_PARALLEL:
        num = organization.subarrays_per_bank
        stream["subarray"] = index % num
        stream["row"] = (index // num) % organization.rows_per_subarray
    elif condition is AccessCondition.BANK_PARALLEL:
        num = organization.banks_per_chip
        stream["bank"] = index % num
        stream["row"] = (index // num) % organization.rows_per_subarray
    else:  # pragma: no cover - enum is closed
        raise ConfigurationError(f"no stream for condition {condition}")
    return stream


def classify_stream(stream: np.ndarray) -> Tuple[np.ndarray, ...]:
    """Vectorized row-buffer outcomes under single-open-subarray rules.

    Valid for DDR3/SALP-1/SALP-2 (at most one activated subarray per
    bank) under the open-row policy with refresh off: after servicing
    any request its bank holds exactly that ``(subarray, row)`` open,
    so the outcome of access ``i`` is a pure function of the previous
    access to the same bank — a stable per-bank sort plus shifted
    comparisons.  MASA keeps several rows open with LRU eviction tied
    to *timing-assigned* cycles, so its outcomes are classified inside
    the evaluation walk instead.

    Returns ``(outcomes, victims, victim_other)`` in stream order:
    outcome codes, the subarray a conflict must precharge first, and
    whether that victim is a different subarray than the target.
    """
    n = len(stream)
    order = np.argsort(stream["bank"], kind="stable")
    bank = stream["bank"][order]
    sub = stream["subarray"][order]
    row = stream["row"][order]
    same_bank = np.zeros(n, dtype=bool)
    prev_sub = np.full(n, -1, dtype=np.int64)
    prev_row = np.full(n, -1, dtype=np.int64)
    if n > 1:
        same_bank[1:] = bank[1:] == bank[:-1]
        prev_sub[1:] = sub[:-1]
        prev_row[1:] = row[:-1]
    hit = same_bank & (prev_sub == sub) & (prev_row == row)
    codes = np.where(
        hit, OUTCOME_HIT,
        np.where(same_bank, OUTCOME_CONFLICT, OUTCOME_MISS),
    ).astype(np.int8)
    other = same_bank & (prev_sub != sub)
    outcomes = np.empty(n, dtype=np.int8)
    victims = np.empty(n, dtype=np.int64)
    victim_other = np.empty(n, dtype=bool)
    outcomes[order] = codes
    victims[order] = prev_sub
    victim_other[order] = other
    return outcomes, victims, victim_other


# ----------------------------------------------------------------------
# Eligibility
# ----------------------------------------------------------------------

def kernel_ineligibility(
    controller: Optional[ControllerConfig] = None,
    contention: Optional[ContentionConfig] = None,
    refresh_enabled: bool = False,
) -> Optional[str]:
    """Why the kernel cannot serve this configuration, or ``None``.

    The kernel models the paper's characterization configuration
    exactly and nothing else: default FCFS/open-row controller, one
    uncontended requestor, refresh off.
    """
    config = resolve_controller(controller)
    channel = resolve_contention(contention)
    if config != DEFAULT_CONTROLLER_CONFIG:
        return (f"controller {config.label!r} (the kernel models the "
                f"default {DEFAULT_CONTROLLER_CONFIG.label!r} controller "
                "only)")
    if channel.requestors != 1:
        return (f"{channel.requestors} requestors (the kernel models the "
                "uncontended channel only)")
    if refresh_enabled:
        return "refresh enabled (the kernel never issues REF commands)"
    return None


def kernel_supported(
    controller: Optional[ControllerConfig] = None,
    contention: Optional[ContentionConfig] = None,
    refresh_enabled: bool = False,
) -> bool:
    """True when the kernel reproduces this configuration bit-for-bit."""
    return kernel_ineligibility(controller, contention,
                                refresh_enabled) is None


# ----------------------------------------------------------------------
# Exact evaluation walks
#
# Both walks replicate the controller's command-issue arithmetic on
# primitive locals.  Variable glossary (all absolute memory cycles):
# ``occ`` the occupied command-bus set, ``bus_free`` the first free
# data-bus cycle, ``hist`` the last four ACT cycles (tFAW), ``last_de``
# the trace's total_cycles (last data beat).  Per-subarray state lists
# are [act_cycle, last_read_issue, last_write_data_end,
# precharge_done(, open_row, last_use)]; per-bank state lists are
# [precharge_done, last_pre_cycle, subarrays(, mru, open_count)].
# Energy is accumulated per category in command-issue order, exactly
# like EnergyAccountant, so float sums match bit-for-bit.
# ----------------------------------------------------------------------

def _walk_single_open(
    bank_l, sub_l, out_l, victim_l, vother_l,
    count: int,
    checkpoint: int,
    timings: TimingParameters,
    overlap_precharge: bool,
    overlap_write_recovery: bool,
    act_nj: float,
    pre_nj: float,
    col_nj: float,
    is_read: bool,
) -> Tuple[tuple, tuple]:
    """Exact walk for the single-open-subarray architectures.

    Consumes pre-classified outcomes (:func:`classify_stream`) and
    returns ``(short, full)`` — ``(total_cycles, activation_nj,
    precharge_nj, column_nj)`` after ``checkpoint`` requests and after
    all ``count`` requests.
    """
    tRCD = timings.tRCD
    tRP = timings.tRP
    tRAS = timings.tRAS
    tRTP = timings.tRTP
    tWR = timings.tWR
    tCCD = timings.tCCD
    tRRD = timings.tRRD
    tFAW = timings.tFAW
    tWTR = timings.tWTR
    tRTW = timings.tRTW
    tBL = timings.tBL
    cas = timings.tCL if is_read else timings.tCWL

    banks: dict = {}
    last_act = NEVER
    hist: list = []
    last_col = NEVER
    rank_lri = NEVER
    rank_lwde = NEVER
    bus_free = 0
    last_de = 0
    occ: set = set()
    occ_add = occ.add

    act_e = 0.0
    pre_e = 0.0
    col_e = 0.0
    short = (0, 0.0, 0.0, 0.0)

    done = 0
    for b, s, o, v, vo in zip(bank_l, sub_l, out_l, victim_l, vother_l):
        bst = banks.get(b)
        if bst is None:
            bst = banks[b] = [0, NEVER, {}]
        subs = bst[2]
        if o == OUTCOME_HIT:
            tgt = subs[s]
            act_ref = tgt[0]
        else:
            if o == OUTCOME_CONFLICT:
                # PRE the victim subarray.
                vst = subs[v]
                e = vst[0] + tRAS
                cand = vst[1] + tRTP
                if cand > e:
                    e = cand
                if vo and overlap_write_recovery:
                    cand = vst[2]
                else:
                    cand = vst[2] + tWR
                if cand > e:
                    e = cand
                if e < 0:
                    e = 0
                while e in occ:
                    e += 1
                occ_add(e)
                pre_cycle = e
                done_at = e + tRP
                vst[0] = NEVER
                vst[1] = NEVER
                vst[2] = NEVER
                vst[3] = done_at
                if done_at > bst[0]:
                    bst[0] = done_at
                if e > bst[1]:
                    bst[1] = e
                pre_e += pre_nj
            else:
                pre_cycle = None
            # ACT the target subarray.
            tgt = subs.get(s)
            if tgt is None:
                tgt = subs[s] = [NEVER, NEVER, NEVER, 0]
            e = last_act + tRRD
            if len(hist) == 4:
                cand = hist[0] + tFAW
                if cand > e:
                    e = cand
            if tgt[3] > e:
                e = tgt[3]
            if not overlap_precharge and bst[0] > e:
                e = bst[0]
            cand = bst[1] + 1
            if cand > e:
                e = cand
            if pre_cycle is not None:
                if vo and overlap_precharge:
                    cand = pre_cycle + 1
                else:
                    cand = pre_cycle + tRP
                if cand > e:
                    e = cand
            if e < 0:
                e = 0
            while e in occ:
                e += 1
            occ_add(e)
            last_act = e
            hist.append(e)
            if len(hist) > 4:
                del hist[0]
            tgt[0] = e
            act_ref = e
            act_e += act_nj
        # Column command: command bus and data bus must both be free.
        if is_read:
            e = last_col + tCCD
            cand = rank_lwde + tWTR
        else:
            e = last_col + tCCD
            cand = rank_lri + tRTW
        if cand > e:
            e = cand
        cand = act_ref + tRCD
        if cand > e:
            e = cand
        c = e if e > 0 else 0
        while True:
            while c in occ:
                c += 1
            ds = c + cas
            if ds >= bus_free:
                break
            c += bus_free - ds
        occ_add(c)
        last_col = c
        de = ds + tBL
        bus_free = de
        if is_read:
            tgt[1] = c
            rank_lri = c
        else:
            tgt[2] = de
            rank_lwde = de
        col_e += col_nj
        if de > last_de:
            last_de = de
        done += 1
        if done == checkpoint:
            short = (last_de, act_e, pre_e, col_e)
    full = (last_de, act_e, pre_e, col_e)
    if checkpoint >= count and checkpoint != done:
        short = full
    return short, full


def _walk_masa(
    bank_l, sub_l, row_l,
    count: int,
    checkpoint: int,
    timings: TimingParameters,
    behavior: ArchitectureBehavior,
    organization: DRAMOrganization,
    model: EnergyModel,
    pre_nj: float,
    col_nj: float,
    is_read: bool,
) -> Tuple[tuple, tuple]:
    """Exact walk for SALP-MASA (multiple activated subarrays).

    Classification happens inside the walk: MASA's LRU eviction order
    depends on the *timing-assigned* last-use cycles, which cannot be
    precomputed from coordinates alone.  Activation energy varies with
    the concurrent-subarray count, memoized per count so the per-call
    floats match EnergyAccountant's exactly.
    """
    tRCD = timings.tRCD
    tRP = timings.tRP
    tRAS = timings.tRAS
    tRTP = timings.tRTP
    tWR = timings.tWR
    tCCD = timings.tCCD
    tRRD = timings.tRRD
    tFAW = timings.tFAW
    tWTR = timings.tWTR
    tRTW = timings.tRTW
    tBL = timings.tBL
    cas = timings.tCL if is_read else timings.tCWL
    overlap_wr = behavior.overlap_write_recovery
    select_cycles = behavior.subarray_select_cycles
    budget = min(behavior.max_activated_subarrays,
                 organization.subarrays_per_bank)

    banks: dict = {}
    last_act = NEVER
    hist: list = []
    last_col = NEVER
    rank_lri = NEVER
    rank_lwde = NEVER
    bus_free = 0
    last_de = 0
    occ: set = set()
    occ_add = occ.add

    act_costs: dict = {}
    act_e = 0.0
    pre_e = 0.0
    col_e = 0.0
    short = (0, 0.0, 0.0, 0.0)

    done = 0
    for b, s, r in zip(bank_l, sub_l, row_l):
        bst = banks.get(b)
        if bst is None:
            # [precharge_done, last_pre_cycle, subarrays, mru, open_count]
            bst = banks[b] = [0, NEVER, {}, None, 0]
        subs = bst[2]
        tgt = subs.get(s)
        if tgt is None:
            # [act, last_read_issue, last_write_data_end,
            #  precharge_done, open_row, last_use]
            tgt = subs[s] = [NEVER, NEVER, NEVER, 0, None, NEVER]
        open_row = tgt[4]
        if open_row is not None and open_row == r:
            act_ref = tgt[0]
        else:
            pre_cycle = None
            victim_other = False
            if open_row is not None:
                # Wrong row in the *same* subarray: SALP cannot help.
                vst = tgt
            elif bst[4] >= budget:
                # Activated-subarray budget exhausted: evict the LRU
                # open subarray (first strict minimum in subarray
                # first-touch order, matching BankState.lru_open_subarray).
                victim_other = True
                vst = None
                best = None
                for state in subs.values():
                    if state[4] is not None and (best is None
                                                 or state[5] < best):
                        best = state[5]
                        vst = state
            else:
                vst = None
            if vst is not None:
                e = vst[0] + tRAS
                cand = vst[1] + tRTP
                if cand > e:
                    e = cand
                if victim_other and overlap_wr:
                    cand = vst[2]
                else:
                    cand = vst[2] + tWR
                if cand > e:
                    e = cand
                if e < 0:
                    e = 0
                while e in occ:
                    e += 1
                occ_add(e)
                pre_cycle = e
                done_at = e + tRP
                vst[0] = NEVER
                vst[1] = NEVER
                vst[2] = NEVER
                vst[3] = done_at
                vst[4] = None
                bst[4] -= 1
                if done_at > bst[0]:
                    bst[0] = done_at
                if e > bst[1]:
                    bst[1] = e
                pre_e += pre_nj
            # ACT the target subarray (overlap_precharge is always on
            # for MASA, so bank-global precharge_done never gates it).
            e = last_act + tRRD
            if len(hist) == 4:
                cand = hist[0] + tFAW
                if cand > e:
                    e = cand
            if tgt[3] > e:
                e = tgt[3]
            cand = bst[1] + 1
            if cand > e:
                e = cand
            if pre_cycle is not None:
                if victim_other:
                    cand = pre_cycle + 1
                else:
                    cand = pre_cycle + tRP
                if cand > e:
                    e = cand
            if e < 0:
                e = 0
            while e in occ:
                e += 1
            occ_add(e)
            last_act = e
            hist.append(e)
            if len(hist) > 4:
                del hist[0]
            tgt[0] = e
            tgt[4] = r
            tgt[5] = e
            bst[4] += 1
            act_ref = e
            concurrent = bst[4] - 1
            cost = act_costs.get(concurrent)
            if cost is None:
                cost = act_costs[concurrent] = model.activation_nj(concurrent)
            act_e += cost
        # Column command (with MASA subarray-select when the target is
        # not the most recently used activated subarray).
        if is_read:
            e = last_col + tCCD
            cand = rank_lwde + tWTR
        else:
            e = last_col + tCCD
            cand = rank_lri + tRTW
        if cand > e:
            e = cand
        cand = act_ref + tRCD
        if cand > e:
            e = cand
        mru = bst[3]
        if mru is not None and mru != s:
            e += select_cycles
        c = e if e > 0 else 0
        while True:
            while c in occ:
                c += 1
            ds = c + cas
            if ds >= bus_free:
                break
            c += bus_free - ds
        occ_add(c)
        last_col = c
        de = ds + tBL
        bus_free = de
        tgt[5] = c
        bst[3] = s
        if is_read:
            tgt[1] = c
            rank_lri = c
        else:
            tgt[2] = de
            rank_lwde = de
        col_e += col_nj
        if de > last_de:
            last_de = de
        done += 1
        if done == checkpoint:
            short = (last_de, act_e, pre_e, col_e)
    full = (last_de, act_e, pre_e, col_e)
    if checkpoint >= count and checkpoint != done:
        short = full
    return short, full


# ----------------------------------------------------------------------
# Batch characterizer
# ----------------------------------------------------------------------

class KernelCharacterizer:
    """Batch-amortized kernel characterization of one parameter set.

    One instance owns the synthesized streams, their classifications
    and the finished micro-experiment runs for a single
    (organization, timings, energy model) triple, sharing them across
    every architecture it characterizes — the setup-amortization that
    makes :func:`characterize_batch` cheaper than per-triple calls.

    The configuration must be kernel-eligible
    (:func:`kernel_ineligibility`); ``controller`` / ``contention``
    are accepted only to label the result, exactly as the simulator
    path does.
    """

    def __init__(
        self,
        organization: DRAMOrganization,
        timings: TimingParameters,
        energy_model: EnergyModel,
        include_background: bool = True,
        device_name: str = "custom",
        short_count: int = 64,
        long_count: int = 320,
        controller: Optional[ControllerConfig] = None,
        contention: Optional[ContentionConfig] = None,
    ) -> None:
        reason = kernel_ineligibility(controller, contention)
        if reason is not None:
            raise ConfigurationError(
                f"kernel characterization cannot model {reason}")
        self.organization = organization
        self.timings = timings
        self.model = energy_model
        self.include_background = include_background
        self.device_name = device_name
        self.short_count = short_count
        self.long_count = long_count
        self.controller = resolve_controller(controller)
        self.contention = resolve_contention(contention)
        self._pre_nj = energy_model.precharge_nj()
        self._act0_nj = energy_model.activation_nj(0)
        self._col_nj = {
            RequestKind.READ: energy_model.read_burst_nj(),
            RequestKind.WRITE: energy_model.write_burst_nj(),
        }
        self._streams: Dict[AccessCondition, tuple] = {}
        self._classified: Dict[AccessCondition, tuple] = {}
        self._runs: Dict[tuple, tuple] = {}
        self._results: Dict[DRAMArchitecture, CharacterizationResult] = {}

    @classmethod
    def from_profile(cls, profile: DeviceProfile,
                     **kwargs) -> "KernelCharacterizer":
        """Build a characterizer for a registered device profile."""
        kwargs.setdefault("device_name", profile.name)
        return cls(
            profile.organization,
            profile.timings,
            EnergyModel(profile.organization, profile.timings,
                        profile.currents),
            **kwargs,
        )

    # -- shared synthesis --------------------------------------------

    def _stream(self, condition: AccessCondition) -> tuple:
        """(bank, subarray, row) columns + single-subarray flag."""
        cached = self._streams.get(condition)
        if cached is None:
            count = 1 if condition is AccessCondition.ROW_MISS \
                else self.long_count
            array = synthesize_stream(
                condition, self.organization, RequestKind.READ, count)
            single = bool(np.unique(array["subarray"]).size == 1)
            cached = self._streams[condition] = (
                array,
                array["bank"].tolist(),
                array["subarray"].tolist(),
                array["row"].tolist(),
                single,
            )
        return cached

    def _outcomes(self, condition: AccessCondition) -> tuple:
        """Pre-classified outcome columns + conflict-chain flag."""
        cached = self._classified.get(condition)
        if cached is None:
            outcomes, victims, other = classify_stream(
                self._stream(condition)[0])
            # A "conflict chain": one miss, then every access conflicts
            # with (and therefore precharges) the previous target.  A
            # CONFLICT outcome requires the previous same-bank access,
            # so a chain is necessarily single-bank and its victim is
            # always the previous target — the shape under which the
            # walk is provably label-invariant (see _run_key).
            chain = bool(
                outcomes[0] == OUTCOME_MISS
                and (outcomes[1:] == OUTCOME_CONFLICT).all())
            cached = self._classified[condition] = (
                outcomes.tolist(), victims.tolist(), other.tolist(),
                chain)
        return cached

    # -- run sharing -------------------------------------------------

    def _run_key(self, condition: AccessCondition, kind: RequestKind,
                 behavior: ArchitectureBehavior, single: bool,
                 chain: bool, count: int) -> tuple:
        """Smallest key under which this run is provably shareable.

        * A conflict chain (see :meth:`_outcomes`) with dead overlap
          flags is *label-invariant*: the victim's timing state always
          mirrors the rank-level aggregates (its ACT is ``last_act``,
          its last column is ``rank_lri``/``rank_lwde``) and every
          per-subarray activation gate is dominated by the bank-level
          ``precharge_done`` maximum, so which subarray each access
          names cannot change a single issue cycle.  The flags are
          dead when the victim is never another subarray (single) or
          when the architecture has neither overlap (the
          write-recovery one only observable by writes).  This is what
          lets the commodity-DDR3 subarray-parallel stream reuse the
          row-conflict run — the paper's Fig.-1 equality of those two
          bars on DDR3.
        * Single-subarray streams never exercise a SALP/MASA flag
          (every precharge victim is the activation target, MASA's
          budget/select/concurrency never engage), so all four
          architectures share one run.
        * Otherwise MASA runs stand alone, and the non-MASA key keeps
          only the flags the stream can observe: the write-recovery
          overlap is invisible to a read-only stream, collapsing
          SALP-2 onto SALP-1 for reads.
        """
        if not single and behavior.multiple_activated_subarrays:
            # The chain flag comes from the single-open-subarray
            # classifier and does not describe a multi-subarray stream
            # under MASA (several subarrays stay open), so MASA runs
            # must dodge the canonical branch below.
            return (condition, kind, "masa")
        if chain and (
                single
                or (not behavior.overlap_precharge_with_activation
                    and (kind is RequestKind.READ
                         or not behavior.overlap_write_recovery))):
            # count disambiguates the 1-request ROW_MISS probe (also a
            # chain) from the long streams.
            return ("conflict-chain", kind, count)
        if single:
            return (condition, kind)
        overlap_wr = behavior.overlap_write_recovery \
            if kind is RequestKind.WRITE else None
        return (condition, kind,
                behavior.overlap_precharge_with_activation, overlap_wr)

    def _run(self, condition: AccessCondition, kind: RequestKind,
             behavior: ArchitectureBehavior) -> tuple:
        """(short, full) totals of one micro-experiment, memoized."""
        array, bank_l, sub_l, row_l, single = self._stream(condition)
        count = len(bank_l)
        is_masa = behavior.multiple_activated_subarrays
        if is_masa and not single:
            chain = False  # classifier outcomes do not apply (masa key)
        else:
            chain = self._outcomes(condition)[3]
        key = self._run_key(condition, kind, behavior, single, chain,
                            count)
        cached = self._runs.get(key)
        if cached is not None:
            return cached
        checkpoint = 0 if condition is AccessCondition.ROW_MISS \
            else self.short_count
        is_read = kind is RequestKind.READ
        if is_masa:
            result = _walk_masa(
                bank_l, sub_l, row_l, count, checkpoint,
                self.timings, behavior, self.organization, self.model,
                self._pre_nj, self._col_nj[kind], is_read)
        else:
            out_l, victim_l, other_l, _chain = self._outcomes(condition)
            result = _walk_single_open(
                bank_l, sub_l, out_l, victim_l, other_l, count, checkpoint,
                self.timings,
                behavior.overlap_precharge_with_activation,
                behavior.overlap_write_recovery,
                self._act0_nj, self._pre_nj, self._col_nj[kind], is_read)
        self._runs[key] = result
        return result

    # -- result assembly ---------------------------------------------

    def _total_nj(self, totals: tuple, is_read: bool) -> float:
        """TraceEnergy.total_nj, replicated term-for-term.

        The accountant sums activation + precharge + read + write +
        refresh + background left-associatively; the explicit zero
        terms keep the float operation sequence (and thus the result
        bits) identical.
        """
        cycles, act_e, pre_e, col_e = totals
        read_e = col_e if is_read else 0.0
        write_e = 0.0 if is_read else col_e
        background = 0.0
        if self.include_background:
            background = self.model.background_nj(cycles, 1.0)
        return act_e + pre_e + read_e + write_e + 0.0 + background

    def _marginal(self, condition: AccessCondition, kind: RequestKind,
                  behavior: ArchitectureBehavior) -> Tuple[float, float]:
        short, full = self._run(condition, kind, behavior)
        denom = self.long_count - self.short_count
        is_read = kind is RequestKind.READ
        cycles = (full[0] - short[0]) / denom
        energy = (self._total_nj(full, is_read)
                  - self._total_nj(short, is_read)) / denom
        return cycles, energy

    def _probe(self, kind: RequestKind,
               behavior: ArchitectureBehavior) -> Tuple[float, float]:
        _short, full = self._run(AccessCondition.ROW_MISS, kind, behavior)
        return float(full[0]), self._total_nj(full,
                                              kind is RequestKind.READ)

    def characterize(
        self, architecture: DRAMArchitecture,
    ) -> CharacterizationResult:
        """Fig.-1 costs for ``architecture``, memoized per instance."""
        cached = self._results.get(architecture)
        if cached is not None:
            return cached
        behavior = behavior_of(architecture)
        costs: Dict[AccessCondition, ConditionCost] = {}
        for condition in _STREAMS:
            read_cycles, read_nj = self._marginal(
                condition, RequestKind.READ, behavior)
            _w_cycles, write_nj = self._marginal(
                condition, RequestKind.WRITE, behavior)
            costs[condition] = ConditionCost(
                cycles=read_cycles,
                read_energy_nj=read_nj,
                write_energy_nj=write_nj,
            )
        miss_cycles, miss_read_nj = self._probe(RequestKind.READ, behavior)
        _m_cycles, miss_write_nj = self._probe(RequestKind.WRITE, behavior)
        costs[AccessCondition.ROW_MISS] = ConditionCost(
            cycles=miss_cycles,
            read_energy_nj=miss_read_nj,
            write_energy_nj=miss_write_nj,
        )
        result = CharacterizationResult(
            architecture=architecture,
            costs=costs,
            tck_ns=self.timings.tck_ns,
            device_name=self.device_name,
            controller=self.controller,
            contention=self.contention,
            requestor_stats=(),
        )
        self._results[architecture] = result
        return result


# ----------------------------------------------------------------------
# Grid-slice batching
# ----------------------------------------------------------------------

def _normalize_item(item) -> tuple:
    """(profile, architecture, controller, contention) of a batch item."""
    parts = tuple(item) + (None, None)
    device, architecture, controller, contention = parts[:4]
    if isinstance(device, str):
        from .device import get_device
        device = get_device(device)
    profile = resolve_device(device)
    profile.require_architecture(architecture)
    return (profile, architecture, resolve_controller(controller),
            resolve_contention(contention))


def characterize_batch(
    items: Iterable,
    short_count: int = 64,
    long_count: int = 320,
) -> Dict[tuple, CharacterizationResult]:
    """Characterize a grid slice in one amortized kernel pass.

    ``items`` yields ``(device, architecture)`` pairs — optionally
    extended to ``(device, architecture, controller, contention)`` —
    where ``device`` is a :class:`DeviceProfile`, a registry name or
    ``None`` for the Table-II default.  Items sharing a device profile
    share one :class:`KernelCharacterizer` (one synthesis, one
    classification, shared micro-experiment runs), which is where the
    batch's speedup over per-triple calls comes from.  Items that are
    not kernel-eligible are routed to the object simulator, so a mixed
    grid slice stays a single call.

    Returns ``{(profile, architecture, controller, contention):
    CharacterizationResult}`` covering every distinct normalized item.
    """
    results: Dict[tuple, CharacterizationResult] = {}
    characterizers: Dict[tuple, KernelCharacterizer] = {}
    for item in items:
        key = _normalize_item(item)
        if key in results:
            continue
        profile, architecture, config, channel = key
        if kernel_ineligibility(config, channel) is None:
            engine_key = (profile, config, channel)
            engine = characterizers.get(engine_key)
            if engine is None:
                engine = characterizers[engine_key] = \
                    KernelCharacterizer.from_profile(
                        profile, short_count=short_count,
                        long_count=long_count,
                        controller=config, contention=channel)
            results[key] = engine.characterize(architecture)
        else:
            from .characterize import characterize
            results[key] = characterize(
                architecture, short_count=short_count,
                long_count=long_count, device=profile,
                controller=config, contention=channel,
                model="simulator")
    return results
