"""Per-condition DRAM access characterization (the paper's Fig. 1).

The paper feeds Ramulator+VAMPIRE micro-experiments into the analytical
EDP model: one (cycles, energy) pair per *access condition* per DRAM
architecture.  The five conditions of Fig. 1 are

* **row buffer hit** — the next column of an already-open row;
* **row buffer miss** — an access to a bank with nothing open;
* **row buffer conflict** — an access to a different row of the
  currently-open subarray (precharge + activate + access);
* **subarray-level parallelism** — consecutive accesses bouncing across
  subarrays of the *same bank* (mapping-2's inner loop).  Commodity
  DDR3 serves these as conflicts; SALP-1/2 overlap the precharge /
  write recovery; MASA keeps all local row buffers open and serves
  revisits as hits;
* **bank-level parallelism** — consecutive accesses bouncing across
  banks (activations overlap under tRRD/tFAW pacing).

Hit / conflict / subarray / bank costs are measured as *steady-state
marginal* costs: run the stream at two lengths and divide the cycle and
energy deltas by the access-count delta.  This is the incremental cost
one more access of that class adds to a mapped stream, which is exactly
what Eq. 2-3 multiply by access counts.  The miss cost is measured as
an isolated request on an idle device (a miss is a one-off event at the
start of a tile, never a steady state).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..caching import CacheStats, LRUMemo
from ..errors import ConfigurationError

from .address import Coordinate
from .architecture import DRAMArchitecture
from .commands import Request, RequestKind, ServicedRequest
from .contention import (
    DEFAULT_CONTENTION_CONFIG,
    ContentionConfig,
    RequestorStats,
    per_requestor_stats,
    resolve_contention,
)
from .device import DEFAULT_DEVICE_NAME, DeviceProfile, resolve_device
from .policies import (
    DEFAULT_CONTROLLER_CONFIG,
    ControllerConfig,
    resolve_controller,
)
from .simulator import DRAMSimulator
from .spec import DRAMOrganization


class AccessCondition(enum.Enum):
    """The five access conditions of the paper's Fig. 1."""

    ROW_HIT = "row-hit"
    ROW_MISS = "row-miss"
    ROW_CONFLICT = "row-conflict"
    SUBARRAY_PARALLEL = "subarray-parallel"
    BANK_PARALLEL = "bank-parallel"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Conditions in the figure's left-to-right order.
ALL_CONDITIONS = (
    AccessCondition.ROW_HIT,
    AccessCondition.ROW_MISS,
    AccessCondition.ROW_CONFLICT,
    AccessCondition.SUBARRAY_PARALLEL,
    AccessCondition.BANK_PARALLEL,
)


@dataclass(frozen=True)
class ConditionCost:
    """Per-access cost of one condition."""

    cycles: float
    read_energy_nj: float
    write_energy_nj: float

    def energy_nj(self, kind: RequestKind) -> float:
        """Energy for a read or write access of this condition."""
        if kind is RequestKind.READ:
            return self.read_energy_nj
        return self.write_energy_nj


@dataclass(frozen=True)
class CharacterizationResult:
    """Fig.-1 numbers for one architecture on one device.

    ``controller`` records the memory-controller configuration the
    costs were measured under (the paper's Fig. 1 uses the default
    FCFS/open-row controller); ``contention`` records the channel
    contention configuration (the paper's channel is uncontended).
    Under contention (``requestors > 1``) ``requestor_stats`` carries
    per-requestor bandwidth/latency accounting aggregated over the
    steady-state micro-experiment streams; it is empty for the
    uncontended default.
    """

    architecture: DRAMArchitecture
    costs: Mapping[AccessCondition, ConditionCost]
    tck_ns: float
    device_name: str = DEFAULT_DEVICE_NAME
    controller: ControllerConfig = DEFAULT_CONTROLLER_CONFIG
    contention: ContentionConfig = DEFAULT_CONTENTION_CONFIG
    requestor_stats: Tuple[RequestorStats, ...] = ()

    def cost(self, condition: AccessCondition) -> ConditionCost:
        """Cost of ``condition``."""
        return self.costs[condition]

    def cost_vectors(
        self,
    ) -> Dict[AccessCondition, Tuple[float, float, float]]:
        """Per-condition ``(cycles, read nJ, write nJ)`` cost triples.

        The flat-float view batch evaluators gather from
        (:mod:`repro.core.eval_kernel`): one dict lookup per condition
        replaces three attribute chains, and the floats are exactly
        the ones :meth:`cost` exposes — no rounding, no reordering —
        so any arithmetic built on them can match the scalar model
        bit for bit.  Works for simulator-measured and analytical
        characterizations alike (both produce this result type).
        """
        return {
            condition: (cost.cycles, cost.read_energy_nj,
                        cost.write_energy_nj)
            for condition, cost in self.costs.items()
        }

    def rows(self) -> List[tuple]:
        """(condition, cycles, read nJ, write nJ) rows for reporting."""
        return [
            (condition.value, self.costs[condition].cycles,
             self.costs[condition].read_energy_nj,
             self.costs[condition].write_energy_nj)
            for condition in ALL_CONDITIONS
        ]


# ----------------------------------------------------------------------
# Stream generators
# ----------------------------------------------------------------------

def _hit_stream(org: DRAMOrganization, kind: RequestKind, count: int
                ) -> List[Request]:
    bursts = org.bursts_per_row
    return [
        Request(kind, Coordinate(bank=0, subarray=0, row=0, column=i % bursts))
        for i in range(count)
    ]


def _conflict_stream(org: DRAMOrganization, kind: RequestKind, count: int
                     ) -> List[Request]:
    # Bounce between two rows of one subarray; advance the column so the
    # addresses are all distinct.
    bursts = org.bursts_per_row
    return [
        Request(kind, Coordinate(
            bank=0, subarray=0, row=i % 2, column=(i // 2) % bursts))
        for i in range(count)
    ]


def _subarray_stream(org: DRAMOrganization, kind: RequestKind, count: int
                     ) -> List[Request]:
    # Sweep the subarrays of bank 0, advancing the row each full sweep:
    # every access activates a fresh row in a different subarray than
    # the previous access.  This is the "subarray-level parallelism"
    # case of Fig. 1 (concurrent activations under SALP/MASA; serial
    # row conflicts on commodity DDR3).
    num = org.subarrays_per_bank
    rows = org.rows_per_subarray
    return [
        Request(kind, Coordinate(
            bank=0, subarray=i % num, row=(i // num) % rows, column=0))
        for i in range(count)
    ]


def _bank_stream(org: DRAMOrganization, kind: RequestKind, count: int
                 ) -> List[Request]:
    # Sweep the banks, advancing the row each full sweep so every visit
    # needs a (cross-bank overlapped) activation -- the cost a mapping
    # policy pays when its bank loop wraps into fresh rows.
    num = org.banks_per_chip
    rows = org.rows_per_subarray
    return [
        Request(kind, Coordinate(
            bank=i % num, subarray=0, row=(i // num) % rows, column=0))
        for i in range(count)
    ]


_STREAMS: Dict[AccessCondition, Callable] = {
    AccessCondition.ROW_HIT: _hit_stream,
    AccessCondition.ROW_CONFLICT: _conflict_stream,
    AccessCondition.SUBARRAY_PARALLEL: _subarray_stream,
    AccessCondition.BANK_PARALLEL: _bank_stream,
}


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------

def _marginal_cost(
    simulator: DRAMSimulator,
    stream: Callable,
    kind: RequestKind,
    short_count: int,
    long_count: int,
) -> tuple:
    org = simulator.organization
    if simulator.supports_split_run:
        # Every stream generator is a pure function of the request
        # index, so the short stream is a strict prefix of the long
        # one: a single long walk, accounted once at ``short_count``
        # and once at the end, replaces two simulator runs.
        short, long = simulator.run_split(
            stream(org, kind, long_count), short_count)
    else:
        # Reordering schedulers drain their lookahead window
        # differently at a stream's end, and the crossbar's arbitration
        # depends on total stream length — the prefix identity does not
        # hold, so measure with two independent runs.
        short = simulator.run(stream(org, kind, short_count))
        long = simulator.run(stream(org, kind, long_count))
    denom = long_count - short_count
    cycles = (long.total_cycles - short.total_cycles) / denom
    energy = (long.total_energy_nj - short.total_energy_nj) / denom
    return cycles, energy, long.trace.serviced


def _isolated_miss_cost(simulator: DRAMSimulator, kind: RequestKind) -> tuple:
    request = Request(kind, Coordinate(bank=0, subarray=0, row=0, column=0))
    result = simulator.run([request])
    return float(result.total_cycles), result.total_energy_nj


#: Valid ``model=`` arguments of :func:`characterize`.
CHARACTERIZE_MODELS = ("auto", "simulator", "kernel")


def characterize(
    architecture: DRAMArchitecture,
    simulator: DRAMSimulator = None,
    short_count: int = 64,
    long_count: int = 320,
    device: Optional[DeviceProfile] = None,
    controller: Optional[ControllerConfig] = None,
    contention: Optional[ContentionConfig] = None,
    model: str = "auto",
) -> CharacterizationResult:
    """Measure the Fig.-1 per-condition costs for ``architecture``.

    Parameters
    ----------
    architecture:
        DRAM architecture to characterize.
    simulator:
        Optional pre-built simulator (must match ``architecture``); by
        default one is built from ``device``.
    short_count / long_count:
        Stream lengths for the marginal measurement.  Both must exceed
        one full sweep of the widest stream so warm-up effects cancel.
    device:
        Device profile to characterize (default: the paper's Table-II
        device).  Its capability set must include ``architecture``.
        When ``simulator`` is supplied the profile's parameters are
        not used; it only labels the result's ``device_name`` (a
        pre-built simulator of unknown provenance is labelled
        ``"custom"``).
    controller:
        Memory-controller configuration to measure under (default:
        the paper's FCFS/open-row controller).  When ``simulator`` is
        supplied its own configuration wins and ``controller`` must
        not disagree with it.
    contention:
        Channel contention configuration (default: the paper's
        uncontended single requestor).  With ``requestors > 1`` each
        micro-experiment stream is split across the requestors and
        merged back through the crossbar front end, and the result
        carries per-requestor bandwidth/latency accounting.  When
        ``simulator`` is supplied its own configuration wins and
        ``contention`` must not disagree with it.
    model:
        Characterization backend.  ``"auto"`` (default) uses the
        vectorized numpy kernel (:mod:`repro.dram.kernel`) whenever
        the configuration is kernel-eligible — default FCFS/open-row
        controller, refresh off, uncontended — and the object
        simulator otherwise; the two are exactly equal where both
        apply (enforced by the differential suite), so the result
        carries no backend marker.  ``"simulator"`` forces the object
        simulator; ``"kernel"`` forces the kernel and raises
        :class:`ConfigurationError` for non-eligible configurations.
    """
    if model not in CHARACTERIZE_MODELS:
        raise ConfigurationError(
            f"unknown characterization model {model!r}; "
            f"choose one of {', '.join(CHARACTERIZE_MODELS)}")
    if simulator is None:
        profile = resolve_device(device)
        config = resolve_controller(controller)
        channel = resolve_contention(contention)
        simulator = DRAMSimulator.from_profile(
            profile, architecture, controller=config, contention=channel)
        device_name = profile.name
    else:
        if controller is not None \
                and resolve_controller(controller) != simulator.controller:
            raise ConfigurationError(
                f"controller {resolve_controller(controller).label!r} "
                f"disagrees with the pre-built simulator's "
                f"{simulator.controller.label!r}")
        if contention is not None \
                and resolve_contention(contention) != simulator.contention:
            raise ConfigurationError(
                f"contention {resolve_contention(contention).label!r} "
                f"disagrees with the pre-built simulator's "
                f"{simulator.contention.label!r}")
        config = simulator.controller
        channel = simulator.contention
        device_name = device.name if device is not None else "custom"
    if model != "simulator":
        from .kernel import KernelCharacterizer, kernel_ineligibility
        reason = kernel_ineligibility(
            config, channel, simulator.refresh_enabled)
        if reason is None:
            engine = KernelCharacterizer(
                simulator.organization,
                simulator.timings,
                simulator.energy_model,
                include_background=simulator.include_background_energy,
                device_name=device_name,
                short_count=short_count,
                long_count=long_count,
                controller=config,
                contention=channel,
            )
            return engine.characterize(architecture)
        if model == "kernel":
            raise ConfigurationError(
                f"model 'kernel' cannot characterize {reason}; "
                "use model='simulator' (or 'auto' to fall back)")
    costs: Dict[AccessCondition, ConditionCost] = {}
    steady_state: List[ServicedRequest] = []
    for condition, stream in _STREAMS.items():
        read_cycles, read_nj, read_serviced = _marginal_cost(
            simulator, stream, RequestKind.READ, short_count, long_count)
        _w_cycles, write_nj, write_serviced = _marginal_cost(
            simulator, stream, RequestKind.WRITE, short_count, long_count)
        steady_state.extend(read_serviced)
        steady_state.extend(write_serviced)
        costs[condition] = ConditionCost(
            cycles=read_cycles,
            read_energy_nj=read_nj,
            write_energy_nj=write_nj,
        )
    miss_cycles, miss_read_nj = _isolated_miss_cost(
        simulator, RequestKind.READ)
    _miss_w_cycles, miss_write_nj = _isolated_miss_cost(
        simulator, RequestKind.WRITE)
    costs[AccessCondition.ROW_MISS] = ConditionCost(
        cycles=miss_cycles,
        read_energy_nj=miss_read_nj,
        write_energy_nj=miss_write_nj,
    )
    requestor_stats: Tuple[RequestorStats, ...] = ()
    if channel.requestors > 1:
        requestor_stats = per_requestor_stats(steady_state)
    return CharacterizationResult(
        architecture=architecture,
        costs=costs,
        tck_ns=simulator.timings.tck_ns,
        device_name=device_name,
        controller=config,
        contention=channel,
        requestor_stats=requestor_stats,
    )


class CharacterizationCache:
    """LRU cache of :func:`characterize` results.

    Characterizing one architecture runs eight micro-experiment streams
    plus two isolated requests on the cycle-level simulator — tens of
    milliseconds each, which dominates small sweeps when repeated per
    design point.  This cache keys results on the triple
    ``(profile, architecture, controller)`` — a :class:`DeviceProfile`
    captures geometry, timings and currents, so two devices sharing a
    geometry but differing in speed grade or IDD currents can never
    collide, and a :class:`ControllerConfig` captures the scheduler
    and row policy, so policy variants can never be served the default
    controller's costs — and evicts least-recently-used entries beyond
    ``maxsize``.  Both
    read and write costs are measured in one pass, so the request kind
    needs no key component.  Hits and misses are additionally counted
    per device name (:meth:`device_stats`).

    The cache is safe to share across threads of one process for
    *reading* mixed workloads (CPython dict operations are atomic
    enough for this access pattern); worker processes of the parallel
    DSE engine receive pre-characterized results instead and never
    touch it.

    Example
    -------
    >>> from repro.dram.architecture import DRAMArchitecture
    >>> cache = CharacterizationCache()
    >>> first = cache.get(DRAMArchitecture.DDR3)
    >>> second = cache.get(DRAMArchitecture.DDR3)
    >>> first is second
    True
    >>> cache.stats.hits, cache.stats.misses
    (1, 1)
    """

    def __init__(self, maxsize: int = 64, store=None) -> None:
        self._memo = LRUMemo(maxsize)
        self._per_device: Dict[str, List[int]] = {}
        #: Optional :class:`repro.dram.store.CharacterizationStore`
        #: consulted on in-memory misses and written after fresh
        #: simulations.
        self.store = store

    def attach_store(self, store) -> None:
        """Back this cache with an on-disk store (``None`` detaches).

        ``store`` is a
        :class:`repro.dram.store.CharacterizationStore` (or anything
        with its ``load`` / ``save`` shape).  In-memory hits never
        touch the disk; in-memory misses try the store before
        simulating, and freshly simulated results are persisted.
        """
        self.store = store

    @property
    def maxsize(self) -> int:
        """Maximum number of cached configurations."""
        return self._memo.maxsize

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss counters."""
        return self._memo.stats

    def device_stats(self, device_name: str) -> CacheStats:
        """Hit/miss counters for one device name."""
        hits, misses = self._per_device.get(device_name, (0, 0))
        return CacheStats(hits=hits, misses=misses)

    def per_device_stats(self) -> Dict[str, CacheStats]:
        """Hit/miss counters of every device this cache has served."""
        return {
            name: CacheStats(hits=hits, misses=misses)
            for name, (hits, misses) in self._per_device.items()
        }

    def __len__(self) -> int:
        return len(self._memo)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._memo.clear()
        self._per_device.clear()

    def get(
        self,
        architecture: DRAMArchitecture,
        organization: Optional[DRAMOrganization] = None,
        device: Optional[DeviceProfile] = None,
        controller: Optional[ControllerConfig] = None,
        contention: Optional[ContentionConfig] = None,
        model: str = "auto",
    ) -> CharacterizationResult:
        """Characterization of ``architecture`` on a device.

        ``device=None`` selects the paper's Table-II device; a
        non-``None`` ``organization`` overrides the profile's geometry
        (the sweeps vary geometry at a fixed speed grade).  The
        device's capability set must include ``architecture``.
        ``controller`` selects the memory-controller configuration
        (default: FCFS/open-row) and ``contention`` the channel
        contention (default: one uncontended requestor); both are part
        of the cache key — a ``(profile, architecture)`` key would
        silently serve one configuration's costs to another.  Results
        are computed on first use and served from the cache — as the
        *same object* — afterwards.

        ``model`` selects the backend on a miss (see
        :func:`characterize`).  It is deliberately **not** part of
        the cache key or the store's spec hash: kernel and simulator
        results are exactly equal wherever both apply, so a
        kernel-produced entry is a valid hit for a simulator request
        and vice versa.
        """
        profile = resolve_device(device, organization)
        profile.require_architecture(architecture)
        config = resolve_controller(controller)
        channel = resolve_contention(contention)
        return self._get(profile, architecture, config, channel, model)

    def _get(
        self,
        profile: DeviceProfile,
        architecture: DRAMArchitecture,
        config: ControllerConfig,
        channel: ContentionConfig,
        model: str,
        precomputed: Optional[CharacterizationResult] = None,
    ) -> CharacterizationResult:
        """Resolved-parameter lookup; ``precomputed`` skips computing.

        ``precomputed`` is a result the caller already obtained for
        this exact key (a batch kernel pass or an early store load);
        it is installed via the ordinary miss path so the hit/miss and
        per-device counters stay truthful.
        """

        def compute() -> CharacterizationResult:
            if precomputed is not None:
                return precomputed
            if self.store is not None:
                stored = self.store.load(
                    profile, architecture, config, channel)
                if stored is not None:
                    return stored
            result = characterize(
                architecture, device=profile, controller=config,
                contention=channel, model=model)
            if self.store is not None:
                self.store.save(
                    result, profile, architecture, config, channel)
            return result

        result, hit = self._memo.get_or_compute_flagged(
            (profile, architecture, config, channel), compute)
        counters = self._per_device.setdefault(profile.name, [0, 0])
        counters[0 if hit else 1] += 1
        return result

    def get_many(
        self,
        architectures,
        organization: Optional[DRAMOrganization] = None,
        device: Optional[DeviceProfile] = None,
        controller: Optional[ControllerConfig] = None,
        contention: Optional[ContentionConfig] = None,
        model: str = "auto",
    ) -> Dict[DRAMArchitecture, CharacterizationResult]:
        """Characterizations of several architectures on one device.

        Semantically identical to one :meth:`get` per architecture —
        same keys, same store traffic, same counters — but the
        architectures that miss both the memo and the store are
        computed in a single :func:`repro.dram.kernel
        .characterize_batch` pass when the configuration is
        kernel-eligible, sharing stream synthesis, classification and
        the architecture-invariant micro-experiment runs instead of
        paying per-architecture setup.
        """
        profile = resolve_device(device, organization)
        config = resolve_controller(controller)
        channel = resolve_contention(contention)
        architectures = tuple(architectures)
        for architecture in architectures:
            profile.require_architecture(architecture)
        precomputed: Dict[DRAMArchitecture, CharacterizationResult] = {}
        if model != "simulator":
            from .kernel import characterize_batch, kernel_supported
            need = [
                architecture for architecture in architectures
                if self._memo.peek(
                    (profile, architecture, config, channel)) is None
            ] if kernel_supported(config, channel) else []
            # Only worth (and only safe to) front-run the per-key miss
            # path when at least two keys would otherwise compute:
            # once the store pass runs here, every remaining miss must
            # also resolve here, or the per-key path would consult the
            # store a second time and skew its traffic counters.
            if len(need) > 1:
                if self.store is not None:
                    still = []
                    for architecture in need:
                        stored = self.store.load(
                            profile, architecture, config, channel)
                        if stored is not None:
                            precomputed[architecture] = stored
                        else:
                            still.append(architecture)
                    need = still
                if need:
                    batch = characterize_batch(
                        [(profile, architecture, config, channel)
                         for architecture in need])
                    for architecture in need:
                        result = batch[
                            (profile, architecture, config, channel)]
                        precomputed[architecture] = result
                        if self.store is not None:
                            self.store.save(result, profile,
                                            architecture, config, channel)
        return {
            architecture: self._get(
                profile, architecture, config, channel, model,
                precomputed=precomputed.get(architecture))
            for architecture in architectures
        }


#: Process-wide default cache; :func:`characterize_preset`,
#: :func:`characterize_cached`, the sweeps and the DSE engine all share
#: it, so any two call sites asking for the same configuration pay for
#: characterization once.
DEFAULT_CHARACTERIZATION_CACHE = CharacterizationCache()


def characterize_cached(
    architecture: DRAMArchitecture,
    organization: Optional[DRAMOrganization] = None,
    device: Optional[DeviceProfile] = None,
    controller: Optional[ControllerConfig] = None,
    contention: Optional[ContentionConfig] = None,
    model: str = "auto",
) -> CharacterizationResult:
    """Characterize through the process-wide LRU cache.

    Like :func:`characterize` but keyed on ``(profile, architecture,
    controller, contention)`` so repeated requests — e.g. one per
    design point of a sweep — hit the simulator only once per
    configuration.  ``model`` selects the backend on a miss; it is
    not part of the key (kernel and simulator results are exactly
    interchangeable).
    """
    return DEFAULT_CHARACTERIZATION_CACHE.get(
        architecture, organization, device=device, controller=controller,
        contention=contention, model=model)


def characterize_analytical(
    architecture: DRAMArchitecture,
    organization: Optional[DRAMOrganization] = None,
    device: Optional[DeviceProfile] = None,
    controller: Optional[ControllerConfig] = None,
    contention: Optional[ContentionConfig] = None,
) -> CharacterizationResult:
    """Closed-form characterization (no simulation).

    A drop-in sibling of :func:`characterize_cached` backed by the
    analytical model of :mod:`repro.dram.analytical`: the returned
    :class:`CharacterizationResult` has the exact same per-condition
    shape, so every downstream consumer (``run_cost``, ``layer_edp``,
    the DSE engine) is model-agnostic.  Used by the ``funnel`` search
    strategy's pruning phase.

    The closed-form model is contention-blind: it scores the
    *uncontended* channel regardless of ``contention`` (the parameter
    is accepted for signature parity).  Funnel pruning therefore ranks
    candidates by uncontended cost and the exact verification phase
    applies the contended simulation — an explicit, documented
    approximation.
    """
    from .analytical import analytical_characterization

    del contention  # contention-blind by design; see docstring
    return analytical_characterization(
        architecture, device=device, organization=organization,
        controller=controller)


def characterize_preset(architecture: DRAMArchitecture
                        ) -> CharacterizationResult:
    """Cached characterization of the Table-II preset configuration.

    .. deprecated::
        Use :func:`characterize_cached` with an explicit ``device``;
        this is equivalent to ``device=default_device()``.
    """
    return DEFAULT_CHARACTERIZATION_CACHE.get(architecture)


def characterize_device(
    device: DeviceProfile,
    architectures: Optional[tuple] = None,
    controller: Optional[ControllerConfig] = None,
    contention: Optional[ContentionConfig] = None,
    model: str = "auto",
) -> Dict[DRAMArchitecture, CharacterizationResult]:
    """Cached Fig.-1 characterization of one device.

    By default every architecture in the device's capability set is
    characterized; an explicit ``architectures`` sequence is validated
    against that set.  ``controller`` selects the memory-controller
    configuration (default: the paper's FCFS/open-row) and
    ``contention`` the channel contention (default: uncontended).
    Cold architectures are computed in one batched kernel pass when
    the configuration is kernel-eligible (see
    :meth:`CharacterizationCache.get_many`).
    """
    if architectures is None:
        architectures = device.supported_architectures
    return DEFAULT_CHARACTERIZATION_CACHE.get_many(
        architectures, device=device, controller=controller,
        contention=contention, model=model)


def characterize_all(
    device: Optional[DeviceProfile] = None,
    controller: Optional[ControllerConfig] = None,
    contention: Optional[ContentionConfig] = None,
    model: str = "auto",
) -> Dict[DRAMArchitecture, CharacterizationResult]:
    """Fig.-1 characterization for every supported architecture.

    With the default device and controller this is the paper's Fig. 1:
    all four architectures on DDR3-1600 2 Gb x8 under FCFS/open-row.
    """
    profile = resolve_device(device)
    return characterize_device(
        profile, controller=controller, contention=contention,
        model=model)
