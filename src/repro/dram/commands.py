"""DRAM commands and requests.

The controller consumes :class:`Request` objects (reads and writes at
burst granularity) and emits a trace of timestamped :class:`Command`
records, which the energy model integrates (mirroring the paper's
Ramulator -> command trace -> VAMPIRE tool flow of Fig. 8).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from .address import Coordinate


class CommandKind(enum.Enum):
    """DDR command set subset used by the model."""

    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    REF = "REF"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_column(self) -> bool:
        """True for commands that move data over the bus."""
        return self in (CommandKind.RD, CommandKind.WR)


class RequestKind(enum.Enum):
    """Request direction."""

    READ = "READ"
    WRITE = "WRITE"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Request:
    """One burst-granularity memory request."""

    kind: RequestKind
    coordinate: Coordinate
    tag: Optional[str] = None

    @staticmethod
    def read(coordinate: Coordinate, tag: Optional[str] = None) -> "Request":
        """Convenience constructor for a read request."""
        return Request(RequestKind.READ, coordinate, tag)

    @staticmethod
    def write(coordinate: Coordinate, tag: Optional[str] = None) -> "Request":
        """Convenience constructor for a write request."""
        return Request(RequestKind.WRITE, coordinate, tag)


@dataclass(frozen=True)
class Command:
    """A command issued at a specific cycle."""

    kind: CommandKind
    cycle: int
    coordinate: Coordinate
    #: Number of *other* subarrays concurrently activated in the bank at
    #: issue time (drives MASA activation-energy overhead).
    concurrent_subarrays: int = 0


@dataclass(frozen=True)
class ServicedRequest:
    """Completion record for one request.

    Attributes
    ----------
    request:
        The originating request.
    issue_cycle:
        Cycle at which the controller started working on the request
        (its first command, or the column command for a hit).
    data_cycle:
        Cycle at which the data burst *finished* on the bus.
    row_hit / row_miss / row_conflict:
        Row-buffer outcome flags (exactly one is set).
    """

    request: Request
    issue_cycle: int
    data_cycle: int
    row_hit: bool
    row_miss: bool
    row_conflict: bool

    def __post_init__(self) -> None:
        flags = int(self.row_hit) + int(self.row_miss) + int(self.row_conflict)
        if flags != 1:
            raise ValueError(
                "exactly one of row_hit/row_miss/row_conflict must be set")


@dataclass
class CommandTrace:
    """A complete command trace plus completion records.

    ``commands`` and ``serviced`` are immutable snapshots (the
    controller builds them as tuples, once per ``run``), so a trace
    stays valid after the controller keeps servicing — the
    characterization's split-run prefix accounting depends on that.
    Any :class:`~typing.Sequence` is accepted for hand-built traces.
    """

    commands: Sequence[Command]
    serviced: Sequence[ServicedRequest]
    total_cycles: int

    @property
    def num_activations(self) -> int:
        """Count of ACT commands."""
        return sum(1 for c in self.commands if c.kind is CommandKind.ACT)

    @property
    def num_precharges(self) -> int:
        """Count of PRE commands."""
        return sum(1 for c in self.commands if c.kind is CommandKind.PRE)

    @property
    def num_reads(self) -> int:
        """Count of RD commands."""
        return sum(1 for c in self.commands if c.kind is CommandKind.RD)

    @property
    def num_writes(self) -> int:
        """Count of WR commands."""
        return sum(1 for c in self.commands if c.kind is CommandKind.WR)

    @property
    def row_hits(self) -> int:
        """Requests serviced as row-buffer hits."""
        return sum(1 for s in self.serviced if s.row_hit)

    @property
    def row_misses(self) -> int:
        """Requests serviced as row-buffer misses."""
        return sum(1 for s in self.serviced if s.row_miss)

    @property
    def row_conflicts(self) -> int:
        """Requests serviced as row-buffer conflicts."""
        return sum(1 for s in self.serviced if s.row_conflict)
