"""Policy-driven memory controller over the cycle-level DRAM model.

This is the "ramulator-lite" scheduler.  By default it services
requests strictly in order (FCFS, matching Table II's controller
policy) and keeps rows open after use (open-row policy), issuing each
command at the earliest cycle that satisfies every JEDEC constraint
tracked by :mod:`repro.dram.bank`.  Both decisions are pluggable via
:class:`repro.dram.policies.ControllerConfig`:

* the **scheduler** (``fcfs`` / ``fr-fcfs``) picks which pending
  request of a bounded reorder window is serviced next;
* the **row-buffer policy** (``open`` / ``closed`` / ``timeout``)
  decides whether the row is auto-precharged after the access or left
  open (possibly with an idle timeout).

The default configuration reproduces the paper's controller exactly —
command traces are byte-identical to the pre-policy implementation.

The SALP architecture flags (:mod:`repro.dram.architecture`) relax
specific inter-command waits:

* SALP-1: when switching subarrays inside a bank, the ACT to the new
  subarray may be issued right after the PRE of the old one instead of
  waiting ``tRP``.
* SALP-2: that ACT is additionally not gated by the old subarray's
  read-to-precharge / write-recovery window at all (the PRE is issued
  later, in the shadow of the activation).
* SALP-MASA: subarrays keep their local row buffers open, so no PRE is
  needed when switching subarrays (until the activated-subarray budget
  forces an eviction); re-visiting an activated subarray is a row hit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from .architecture import (
    ArchitectureBehavior,
    DRAMArchitecture,
    behavior_of,
)
from .address import Coordinate
from .bank import NEVER, BankState, RankState, SubarrayState
from .commands import (
    Command,
    CommandKind,
    CommandTrace,
    Request,
    RequestKind,
    ServicedRequest,
)
from .policies import (
    ControllerConfig,
    get_row_policy,
    get_scheduler,
    resolve_controller,
)
from .spec import DRAMOrganization
from .timing import TimingParameters


@dataclass
class _Outcome:
    """Row-buffer outcome of a request before scheduling it."""

    hit: bool = False
    miss: bool = False
    conflict: bool = False
    #: Subarray that must be precharged first (None if none).
    victim_subarray: Optional[int] = None
    #: True when the victim lives in a *different* subarray than the
    #: target, i.e. SALP overlap rules apply.
    victim_is_other_subarray: bool = False


class MemoryController:
    """Policy-driven controller for one DRAM system.

    Parameters
    ----------
    organization:
        DRAM geometry.
    timings:
        Timing parameter set.
    architecture:
        One of the four paper architectures; selects the behaviour flags.
    refresh_enabled:
        Issue all-bank REF commands on the tREFI schedule.
    config:
        Controller-policy configuration (scheduler + row-buffer
        policy); ``None`` selects the paper's FCFS/open-row default.
    """

    def __init__(
        self,
        organization: DRAMOrganization,
        timings: TimingParameters,
        architecture: DRAMArchitecture = DRAMArchitecture.DDR3,
        refresh_enabled: bool = False,
        config: Optional[ControllerConfig] = None,
    ) -> None:
        self.organization = organization
        self.timings = timings
        self.architecture = architecture
        self.behavior: ArchitectureBehavior = behavior_of(architecture)
        self.refresh_enabled = refresh_enabled
        self.config = resolve_controller(config)
        self._scheduler = get_scheduler(self.config.scheduler)
        self._row_policy = get_row_policy(self.config.row_policy)
        self._window_size = self._scheduler.window_size(self.config)
        self._close_after_access = \
            self._row_policy.close_after_access(self.config)
        self._idle_limit = self._row_policy.idle_limit(self.config)
        self._banks: Dict[Tuple, BankState] = {}
        self._ranks: Dict[Tuple, RankState] = {}
        self._commands: List[Command] = []
        self._serviced: List[ServicedRequest] = []
        self._active_cycles: int = 0
        self._last_data_end: int = 0
        self._next_refresh: int = timings.tREFI

    # ------------------------------------------------------------------
    # State accessors
    # ------------------------------------------------------------------

    def bank_state(self, bank_key: Tuple) -> BankState:
        """Dynamic state of the bank identified by ``bank_key``."""
        if bank_key not in self._banks:
            self._banks[bank_key] = BankState(
                num_subarrays=self.organization.subarrays_per_bank)
        return self._banks[bank_key]

    def rank_state(self, rank_key: Tuple) -> RankState:
        """Dynamic state of the rank identified by ``rank_key``."""
        if rank_key not in self._ranks:
            self._ranks[rank_key] = RankState()
        return self._ranks[rank_key]

    @property
    def serviced(self) -> List[ServicedRequest]:
        """Completion records so far, in service order (do not mutate).

        The crossbar front end reads this mid-run to attribute
        completions to requestors while the request stream is still
        being consumed.
        """
        return self._serviced

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, requests: Iterable[Request]) -> CommandTrace:
        """Service ``requests`` and return the command trace.

        The configured scheduler picks the next request from a bounded
        lookahead window (depth 1 under FCFS — strict order); the
        window refills from the request stream as entries drain.
        """
        if self._window_size == 1:
            # FCFS fast path: no window bookkeeping.
            for request in requests:
                self._service(request)
        else:
            # Stream the request iterator through a bounded window, so
            # memory stays O(reorder_window) on arbitrarily long
            # traces (matching the FCFS path's streaming behaviour).
            # A deque keeps the dominant removals O(1): FR-FCFS picks
            # the oldest request (index 0) whenever no row hit is
            # pending, and a list.pop(0) there made long reordered
            # traces quadratic-ish.  Removal must preserve arrival
            # order for the remaining entries — the scheduler's
            # tie-break is "oldest first" — so a swap-pop would be
            # wrong; del-by-index handles the (rarer) mid-window hits.
            iterator = iter(requests)
            window: Deque[Request] = deque()
            exhausted = False
            while True:
                while not exhausted \
                        and len(window) < self._window_size:
                    try:
                        window.append(next(iterator))
                    except StopIteration:
                        exhausted = True
                if not window:
                    break
                index = self._scheduler.select(window, self._would_hit)
                if index == 0:
                    request = window.popleft()
                else:
                    request = window[index]
                    del window[index]
                self._service(request)
        return CommandTrace(
            commands=tuple(self._commands),
            serviced=tuple(self._serviced),
            total_cycles=self._last_data_end,
        )

    def reset(self) -> None:
        """Forget all bank/rank state and recorded traces."""
        self._banks.clear()
        self._ranks.clear()
        self._commands.clear()
        self._serviced.clear()
        self._active_cycles = 0
        self._last_data_end = 0
        self._next_refresh = self.timings.tREFI

    # ------------------------------------------------------------------
    # Request servicing
    # ------------------------------------------------------------------

    def _service(self, request: Request) -> None:
        if self.refresh_enabled:
            self._maybe_refresh()
        coord = request.coordinate
        coord.validate(self.organization)
        bank = self.bank_state(coord.bank_key)
        rank = self.rank_state((coord.channel, coord.rank))
        if self._idle_limit is not None:
            self._expire_idle_rows(rank, bank, coord)
        outcome = self._classify(bank, coord)

        first_cmd_cycle: Optional[int] = None
        act_cycle: Optional[int] = None

        if outcome.conflict and outcome.victim_subarray is not None:
            pre_cycle = self._issue_precharge(
                rank, bank, coord, outcome.victim_subarray,
                switching_subarray=outcome.victim_is_other_subarray)
            if first_cmd_cycle is None:
                first_cmd_cycle = pre_cycle
            act_cycle = self._issue_activate(
                rank, bank, coord,
                pre_cycle=pre_cycle,
                victim_other_subarray=outcome.victim_is_other_subarray)
        elif outcome.miss:
            if self._needs_masa_eviction(bank, coord):
                victim = bank.lru_open_subarray()
                pre_cycle = self._issue_precharge(
                    rank, bank, coord, victim, switching_subarray=True)
                first_cmd_cycle = pre_cycle
                act_cycle = self._issue_activate(
                    rank, bank, coord,
                    pre_cycle=pre_cycle, victim_other_subarray=True)
            else:
                act_cycle = self._issue_activate(
                    rank, bank, coord, pre_cycle=None,
                    victim_other_subarray=False)
            if first_cmd_cycle is None:
                first_cmd_cycle = act_cycle

        col_cycle, data_end = self._issue_column(
            rank, bank, coord, request.kind, act_cycle)
        if first_cmd_cycle is None:
            first_cmd_cycle = col_cycle

        if self._close_after_access:
            # Closed-row policy: auto-precharge the accessed row at the
            # earliest legal cycle (tRAS / tRTP / tWR all respected by
            # the ordinary precharge path).
            self._issue_precharge(
                rank, bank, coord, coord.subarray,
                switching_subarray=False)

        self._last_data_end = max(self._last_data_end, data_end)
        self._serviced.append(ServicedRequest(
            request=request,
            issue_cycle=first_cmd_cycle,
            data_cycle=data_end,
            row_hit=outcome.hit,
            row_miss=outcome.miss,
            row_conflict=outcome.conflict,
        ))

    def _maybe_refresh(self) -> None:
        """Issue an all-bank REF when the tREFI deadline has passed.

        The refresh internally precharges every bank: all open rows are
        lost and no activation may start until tRFC has elapsed.  The
        paper's per-access characterization excludes refresh (as does
        the default controller configuration); enabling it lets users
        measure its overhead on full-layer traces.
        """
        timings = self.timings
        while self._last_data_end >= self._next_refresh:
            refresh_cycle = self._next_refresh
            for rank in self._ranks.values():
                refresh_cycle = rank.next_command_slot(refresh_cycle)
            for rank in self._ranks.values():
                rank.record_command(refresh_cycle)
            ready = refresh_cycle + timings.tRFC
            for bank in self._banks.values():
                for subarray_state in bank.subarrays.values():
                    subarray_state.open_row = None
                    subarray_state.act_cycle = NEVER
                    subarray_state.last_read_issue = NEVER
                    subarray_state.last_write_data_end = NEVER
                    subarray_state.precharge_done = ready
                bank.mru_subarray = None
                bank.precharge_done = max(bank.precharge_done, ready)
            for rank in self._ranks.values():
                rank.bus_free = max(rank.bus_free, ready)
            self._commands.append(Command(
                kind=CommandKind.REF,
                cycle=refresh_cycle,
                coordinate=Coordinate(),
            ))
            self._last_data_end = max(self._last_data_end, ready)
            self._next_refresh += timings.tREFI

    # ------------------------------------------------------------------
    # Outcome classification
    # ------------------------------------------------------------------

    def _classify(self, bank: BankState, coord) -> _Outcome:
        target = bank.subarray(coord.subarray)
        if self.behavior.multiple_activated_subarrays:
            if target.open_row == coord.row:
                return _Outcome(hit=True)
            if target.is_open:
                # Wrong row in the *same* subarray: SALP cannot help.
                return _Outcome(
                    conflict=True,
                    victim_subarray=coord.subarray,
                    victim_is_other_subarray=False)
            # Subarray closed: a fresh activation, regardless of other
            # subarrays' state (their buffers stay open under MASA).
            return _Outcome(miss=True)

        open_subarray = bank.the_open_subarray()
        if open_subarray is None:
            return _Outcome(miss=True)
        open_state = bank.subarray(open_subarray)
        if open_subarray == coord.subarray \
                and open_state.open_row == coord.row:
            return _Outcome(hit=True)
        return _Outcome(
            conflict=True,
            victim_subarray=open_subarray,
            victim_is_other_subarray=(open_subarray != coord.subarray))

    def _needs_masa_eviction(self, bank: BankState, coord) -> bool:
        if not self.behavior.multiple_activated_subarrays:
            return False
        budget = min(self.behavior.max_activated_subarrays,
                     self.organization.subarrays_per_bank)
        return len(bank.open_subarrays) >= budget

    def _would_hit(self, request: Request) -> bool:
        """Hit predicate for the scheduler's row-hit-first selection.

        Evaluated against the *current* bank state, exactly as the
        request would classify if serviced next — including the
        timeout row policy's pending expiry (an expired row cannot be
        hit; it will be closed before service).
        """
        coord = request.coordinate
        coord.validate(self.organization)
        bank = self.bank_state(coord.bank_key)
        target = bank.subarray(coord.subarray)
        if self._idle_limit is not None and target.is_open \
                and target.last_use + self._idle_limit \
                <= self._last_data_end:
            return False
        return self._classify(bank, coord).hit

    def _expire_idle_rows(self, rank: RankState, bank: BankState,
                          coord) -> None:
        """Timeout row policy: close rows left idle past the limit.

        Expiry is evaluated lazily, when the bank is next touched: any
        subarray whose open row saw no activity for ``timeout_cycles``
        before the controller's current time is precharged at the
        cycle its timeout elapsed (pushed later only by tRAS / tRTP /
        tWR legality and command-bus occupancy).
        """
        now = self._last_data_end
        for victim in sorted(bank.open_subarrays):
            state = bank.subarray(victim)
            deadline = state.last_use + self._idle_limit
            if deadline > now:
                continue
            earliest = max(state.earliest_precharge(self.timings),
                           deadline)
            cycle = rank.next_command_slot(max(earliest, 0))
            rank.record_command(cycle)
            state.precharge(cycle, self.timings)
            bank.precharge_done = max(
                bank.precharge_done, cycle + self.timings.tRP)
            bank.last_pre_cycle = max(bank.last_pre_cycle, cycle)
            self._commands.append(Command(
                kind=CommandKind.PRE,
                cycle=cycle,
                coordinate=coord.replace(subarray=victim, column=0),
            ))

    # ------------------------------------------------------------------
    # Command issue helpers
    # ------------------------------------------------------------------

    def _issue_precharge(
        self,
        rank: RankState,
        bank: BankState,
        coord,
        victim: int,
        switching_subarray: bool = False,
    ) -> int:
        ignore_write_recovery = (
            switching_subarray and self.behavior.overlap_write_recovery)
        state = bank.subarray(victim)
        earliest = state.earliest_precharge(
            self.timings, ignore_write_recovery=ignore_write_recovery)
        cycle = rank.next_command_slot(max(earliest, 0))
        rank.record_command(cycle)
        state.precharge(cycle, self.timings)
        bank.precharge_done = max(
            bank.precharge_done, cycle + self.timings.tRP)
        bank.last_pre_cycle = max(bank.last_pre_cycle, cycle)
        self._commands.append(Command(
            kind=CommandKind.PRE,
            cycle=cycle,
            coordinate=coord.replace(subarray=victim, column=0),
        ))
        return cycle

    def _issue_activate(
        self,
        rank: RankState,
        bank: BankState,
        coord,
        pre_cycle: Optional[int],
        victim_other_subarray: bool,
    ) -> int:
        timings = self.timings
        target = bank.subarray(coord.subarray)
        earliest = max(
            rank.earliest_activate(timings),
            target.precharge_done,
            0,
        )
        if not self.behavior.overlap_precharge_with_activation:
            # Commodity DRAM: tRP is bank-global, so any earlier
            # precharge of *any* subarray of this bank (closed-row
            # auto-precharge, timeout expiry) gates the ACT.  SALP
            # makes the wait subarray-local.
            earliest = max(earliest, bank.precharge_done)
        # No ACT may be issued before a PRE the controller already
        # committed to this bank: SALP's overlap starts the activation
        # right after the precharge command, never ahead of it.
        earliest = max(earliest, bank.last_pre_cycle + 1)
        if pre_cycle is not None:
            if victim_other_subarray \
                    and self.behavior.overlap_precharge_with_activation:
                # SALP-1/2/MASA: the precharge is local to the victim
                # subarray; the ACT may follow the PRE immediately.
                earliest = max(earliest, pre_cycle + 1)
            else:
                # DDR3, or a same-subarray conflict on any architecture:
                # the precharge must complete (tRP) before the ACT.
                earliest = max(earliest, pre_cycle + timings.tRP)
        cycle = rank.next_command_slot(earliest)
        rank.record_command(cycle)
        rank.record_activate(cycle)
        target.activate(coord.row, cycle)
        concurrent = max(0, len(bank.open_subarrays) - 1)
        self._commands.append(Command(
            kind=CommandKind.ACT,
            cycle=cycle,
            coordinate=coord.replace(column=0),
            concurrent_subarrays=concurrent,
        ))
        return cycle

    def _issue_column(
        self,
        rank: RankState,
        bank: BankState,
        coord,
        kind: RequestKind,
        act_cycle: Optional[int],
    ) -> Tuple[int, int]:
        timings = self.timings
        target = bank.subarray(coord.subarray)
        if kind is RequestKind.READ:
            earliest = rank.earliest_read(timings)
            cas = timings.tCL
            command_kind = CommandKind.RD
        else:
            earliest = rank.earliest_write(timings)
            cas = timings.tCWL
            command_kind = CommandKind.WR
        if act_cycle is not None:
            earliest = max(earliest, act_cycle + timings.tRCD)
        else:
            earliest = max(earliest, target.act_cycle + timings.tRCD)
        if self.behavior.multiple_activated_subarrays \
                and bank.mru_subarray is not None \
                and bank.mru_subarray != coord.subarray:
            # MASA subarray-select: re-designating the active subarray
            # costs a cycle or two before the column command.
            earliest += self.behavior.subarray_select_cycles
        # Respect both the command bus (free slot) and the data bus (the
        # burst may not overlap the previous one); iterate until a cycle
        # satisfies both.
        cycle = max(earliest, 0)
        while True:
            cycle = rank.next_command_slot(cycle)
            data_start = cycle + cas
            if data_start >= rank.bus_free:
                break
            cycle += rank.bus_free - data_start
        rank.record_command(cycle)
        rank.last_col_cycle = cycle
        data_end = data_start + timings.tBL
        rank.bus_free = data_end
        target.last_use = cycle
        bank.mru_subarray = coord.subarray
        if kind is RequestKind.READ:
            target.last_read_issue = cycle
            rank.last_read_issue = cycle
        else:
            target.last_write_data_end = data_end
            rank.last_write_data_end = data_end
        self._commands.append(Command(
            kind=command_kind, cycle=cycle, coordinate=coord))
        return cycle, data_end
