"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration problems from modelling problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters.

    Examples: a DRAM organization whose row does not hold a whole number
    of bursts, a timing set where ``tRAS + tRP != tRC``, or an on-chip
    buffer with non-positive capacity.
    """


class CapacityError(ReproError):
    """Data does not fit in the targeted resource.

    Raised when a tile exceeds its on-chip buffer, or a mapped region
    exceeds the DRAM rank/channel capacity.
    """


class SchedulingError(ReproError):
    """The memory controller was asked to do something illegal.

    Examples: issuing a column command to a bank with no activated row,
    or replaying a command trace that violates timing constraints.
    """


class MappingError(ReproError):
    """A mapping policy is malformed.

    Examples: a loop order that repeats a dimension, omits the column
    dimension, or addresses a dimension the organization does not have.
    """


class DseError(ReproError):
    """The design-space exploration could not produce a result.

    Raised when no tiling satisfies the buffer constraints for a layer
    (Algorithm 1 line 9 never admits a point).
    """


class WorkloadError(ConfigurationError):
    """A workload graph is malformed.

    Examples: an operator consuming an undeclared tensor, two operators
    producing the same tensor, an element-wise op whose input shapes
    disagree, or a matmul whose tensor volume does not factor into
    ``tokens x features``.
    """
