"""Layer partitioning (tiling) — paper Section II-A.

A :class:`TilingConfig` fixes the outer-loop step sizes of Fig. 3:
``Th`` x ``Tw`` spatial ofms tile, ``Tj`` ofms channels, ``Ti`` ifms
channels.  Following Algorithm 1's initialization, the kernel is never
tiled (``Tp = P``, ``Tq = Q``).

The tile sizes of all three data types must fit in their on-chip
buffers (Algorithm 1 line 9); :func:`enumerate_tilings` generates the
candidate partitionings the DSE explores.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..errors import ConfigurationError
from ..units import ceil_div
from .layer import ConvLayer


@dataclass(frozen=True)
class BufferConfig:
    """On-chip buffer capacities in bytes (Table II: 64 KB each)."""

    ifms_bytes: int = 64 * 1024
    wghs_bytes: int = 64 * 1024
    ofms_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        for name in ("ifms_bytes", "wghs_bytes", "ofms_bytes"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigurationError(
                    f"{name} must be a positive integer, got {value!r}")


#: The paper's Table-II buffer configuration.
TABLE2_BUFFERS = BufferConfig()


@dataclass(frozen=True)
class TilingConfig:
    """Outer-loop step sizes (Th, Tw, Tj, Ti) for one layer."""

    th: int
    tw: int
    tj: int
    ti: int

    def __post_init__(self) -> None:
        for name in ("th", "tw", "tj", "ti"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigurationError(
                    f"{name} must be a positive integer, got {value!r}")

    # ------------------------------------------------------------------
    # Validation against a layer
    # ------------------------------------------------------------------

    def validate(self, layer: ConvLayer) -> None:
        """Raise if any step exceeds its loop bound."""
        bounds = {
            "th": layer.out_height,
            "tw": layer.out_width,
            "tj": layer.out_channels_per_group,
            "ti": layer.in_channels_per_group,
        }
        for name, bound in bounds.items():
            value = getattr(self, name)
            if value > bound:
                raise ConfigurationError(
                    f"{name}={value} exceeds the layer bound {bound} "
                    f"for {layer.name}")

    # ------------------------------------------------------------------
    # Tile byte sizes (buffer occupancy)
    # ------------------------------------------------------------------

    def ifms_tile_bytes(self, layer: ConvLayer) -> int:
        """Bytes of the ifms tile feeding one (Th, Tw, Ti) block."""
        tile_h = (self.th - 1) * layer.stride + layer.kernel_height
        tile_w = (self.tw - 1) * layer.stride + layer.kernel_width
        return self.ti * tile_h * tile_w * layer.bytes_per_element

    def wghs_tile_bytes(self, layer: ConvLayer) -> int:
        """Bytes of the (Ti, Tj, P, Q) weight tile."""
        return (self.ti * self.tj * layer.kernel_height
                * layer.kernel_width * layer.bytes_per_element)

    def ofms_tile_bytes(self, layer: ConvLayer) -> int:
        """Bytes of the (Th, Tw, Tj) ofms tile."""
        return self.th * self.tw * self.tj * layer.bytes_per_element

    def fits(self, layer: ConvLayer, buffers: BufferConfig) -> bool:
        """Algorithm 1 line 9: do all three tiles fit their buffers?"""
        return (self.ifms_tile_bytes(layer) <= buffers.ifms_bytes
                and self.wghs_tile_bytes(layer) <= buffers.wghs_bytes
                and self.ofms_tile_bytes(layer) <= buffers.ofms_bytes)

    # ------------------------------------------------------------------
    # Trip counts (per group)
    # ------------------------------------------------------------------

    def trip_counts(self, layer: ConvLayer) -> Tuple[int, int, int, int]:
        """Outer-loop trip counts ``(n_h, n_w, n_j, n_i)`` per group."""
        self.validate(layer)
        return (
            ceil_div(layer.out_height, self.th),
            ceil_div(layer.out_width, self.tw),
            ceil_div(layer.out_channels_per_group, self.tj),
            ceil_div(layer.in_channels_per_group, self.ti),
        )

    def tiles_per_group(self, layer: ConvLayer) -> int:
        """Number of (h, w, j, i) iterations per group."""
        n_h, n_w, n_j, n_i = self.trip_counts(layer)
        return n_h * n_w * n_j * n_i


def _candidate_steps(bound: int) -> List[int]:
    """Powers of two up to ``bound``, plus ``bound`` itself."""
    steps = []
    value = 1
    while value < bound:
        steps.append(value)
        value *= 2
    steps.append(bound)
    return steps


def enumerate_tilings(
    layer: ConvLayer,
    buffers: BufferConfig = TABLE2_BUFFERS,
    only_maximal: bool = True,
    limit: Optional[int] = None,
) -> List[TilingConfig]:
    """Candidate tilings for the DSE (Algorithm 1, step 1a).

    Step sizes are drawn from powers of two (plus the full extent) per
    dimension and filtered by the buffer constraint.

    Parameters
    ----------
    layer:
        Layer to partition.
    buffers:
        On-chip buffer capacities.
    only_maximal:
        Keep only tilings where no single step can be raised to the
        next candidate without violating a buffer -- dominated tilings
        move strictly less data per fetch at the same trip counts or
        worse, so pruning them loses nothing.
    limit:
        Optional hard cap on the number of returned tilings.

    Raises
    ------
    repro.errors.DseError
        If no candidate fits the buffers.
    """
    from ..errors import DseError

    th_candidates = _candidate_steps(layer.out_height)
    tw_candidates = _candidate_steps(layer.out_width)
    tj_candidates = _candidate_steps(layer.out_channels_per_group)
    ti_candidates = _candidate_steps(layer.in_channels_per_group)

    fitting: List[TilingConfig] = []
    for th, tw, tj, ti in itertools.product(
            th_candidates, tw_candidates, tj_candidates, ti_candidates):
        tiling = TilingConfig(th=th, tw=tw, tj=tj, ti=ti)
        if tiling.fits(layer, buffers):
            fitting.append(tiling)
    if not fitting:
        raise DseError(
            f"no tiling of {layer.name} fits the buffers "
            f"({buffers.ifms_bytes}/{buffers.wghs_bytes}/"
            f"{buffers.ofms_bytes} B); the layer's smallest tile is "
            "already too large")

    if only_maximal:
        def next_step(value: int, candidates: List[int]) -> Optional[int]:
            larger = [c for c in candidates if c > value]
            return min(larger) if larger else None

        maximal = []
        for tiling in fitting:
            grown_any = False
            for field_name, candidates in (
                    ("th", th_candidates), ("tw", tw_candidates),
                    ("tj", tj_candidates), ("ti", ti_candidates)):
                bigger = next_step(getattr(tiling, field_name), candidates)
                if bigger is None:
                    continue
                grown = TilingConfig(**{
                    **{"th": tiling.th, "tw": tiling.tw,
                       "tj": tiling.tj, "ti": tiling.ti},
                    field_name: bigger,
                })
                if grown.fits(layer, buffers):
                    grown_any = True
                    break
            if not grown_any:
                maximal.append(tiling)
        fitting = maximal

    if limit is not None:
        fitting = fitting[:limit]
    return fitting
