"""Network model zoo.

The paper evaluates AlexNet on ImageNet (Section IV); the exact layer
geometry (including the historical two-group convolutions) is
reproduced here.  VGG-16, LeNet-5 and a miniature test network are
included so downstream users (and the ablation benchmarks) can run the
DSE on other workloads.
"""

from __future__ import annotations

from typing import List

from .layer import ConvLayer


def alexnet(batch: int = 1, bytes_per_element: int = 1) -> List[ConvLayer]:
    """AlexNet (Krizhevsky et al., NIPS 2012) for 227x227 ImageNet.

    Layer shapes follow the original two-GPU implementation: CONV2,
    CONV4 and CONV5 are grouped with ``groups=2``.  Pooling layers move
    no DRAM weights and are folded into the inter-layer feature-map
    shapes, as the paper's DRAM study does.
    """
    conv = ConvLayer.conv
    fc = ConvLayer.fully_connected
    kwargs = {"batch": batch, "bytes_per_element": bytes_per_element}
    return [
        conv("CONV1", (3, 227, 227), 96, kernel=11, stride=4, **kwargs),
        conv("CONV2", (96, 27, 27), 256, kernel=5, padding=2, groups=2,
             **kwargs),
        conv("CONV3", (256, 13, 13), 384, kernel=3, padding=1, **kwargs),
        conv("CONV4", (384, 13, 13), 384, kernel=3, padding=1, groups=2,
             **kwargs),
        conv("CONV5", (384, 13, 13), 256, kernel=3, padding=1, groups=2,
             **kwargs),
        fc("FC6", 256 * 6 * 6, 4096, **kwargs),
        fc("FC7", 4096, 4096, **kwargs),
        fc("FC8", 4096, 1000, **kwargs),
    ]


def vgg16(batch: int = 1, bytes_per_element: int = 1) -> List[ConvLayer]:
    """VGG-16 (Simonyan & Zisserman) for 224x224 ImageNet."""
    conv = ConvLayer.conv
    fc = ConvLayer.fully_connected
    kwargs = {"batch": batch, "bytes_per_element": bytes_per_element}
    layers: List[ConvLayer] = []
    shapes = [
        # (name, in_shape, out_channels)
        ("CONV1_1", (3, 224, 224), 64),
        ("CONV1_2", (64, 224, 224), 64),
        ("CONV2_1", (64, 112, 112), 128),
        ("CONV2_2", (128, 112, 112), 128),
        ("CONV3_1", (128, 56, 56), 256),
        ("CONV3_2", (256, 56, 56), 256),
        ("CONV3_3", (256, 56, 56), 256),
        ("CONV4_1", (256, 28, 28), 512),
        ("CONV4_2", (512, 28, 28), 512),
        ("CONV4_3", (512, 28, 28), 512),
        ("CONV5_1", (512, 14, 14), 512),
        ("CONV5_2", (512, 14, 14), 512),
        ("CONV5_3", (512, 14, 14), 512),
    ]
    for name, in_shape, out_channels in shapes:
        layers.append(conv(name, in_shape, out_channels, kernel=3,
                           padding=1, **kwargs))
    layers.append(fc("FC6", 512 * 7 * 7, 4096, **kwargs))
    layers.append(fc("FC7", 4096, 4096, **kwargs))
    layers.append(fc("FC8", 4096, 1000, **kwargs))
    return layers


def lenet5(batch: int = 1, bytes_per_element: int = 1) -> List[ConvLayer]:
    """LeNet-5 for 32x32 MNIST-style input (a small smoke workload)."""
    conv = ConvLayer.conv
    fc = ConvLayer.fully_connected
    kwargs = {"batch": batch, "bytes_per_element": bytes_per_element}
    return [
        conv("C1", (1, 32, 32), 6, kernel=5, **kwargs),
        conv("C3", (6, 14, 14), 16, kernel=5, **kwargs),
        conv("C5", (16, 5, 5), 120, kernel=5, **kwargs),
        fc("F6", 120, 84, **kwargs),
        fc("OUTPUT", 84, 10, **kwargs),
    ]


def resnet18_convs(batch: int = 1, bytes_per_element: int = 1
                   ) -> List[ConvLayer]:
    """The convolutional backbone of ResNet-18 (224x224 input).

    Downsampling 1x1 projection shortcuts are included; the residual
    adds themselves move no DRAM weights and are omitted, as are
    batch-norm parameters (negligible next to conv weights).
    """
    conv = ConvLayer.conv
    fc = ConvLayer.fully_connected
    kwargs = {"batch": batch, "bytes_per_element": bytes_per_element}
    layers: List[ConvLayer] = [
        conv("CONV1", (3, 224, 224), 64, kernel=7, stride=2, padding=3,
             **kwargs),
    ]
    stages = [
        # (name, channels, spatial, first_stride)
        ("LAYER1", 64, 56, 1),
        ("LAYER2", 128, 28, 2),
        ("LAYER3", 256, 14, 2),
        ("LAYER4", 512, 7, 2),
    ]
    in_channels = 64
    in_spatial = 56
    for name, channels, spatial, first_stride in stages:
        layers.append(conv(
            f"{name}_B1_CONV1", (in_channels, in_spatial, in_spatial),
            channels, kernel=3, stride=first_stride, padding=1, **kwargs))
        layers.append(conv(
            f"{name}_B1_CONV2", (channels, spatial, spatial),
            channels, kernel=3, padding=1, **kwargs))
        if first_stride != 1 or in_channels != channels:
            layers.append(conv(
                f"{name}_B1_PROJ", (in_channels, in_spatial, in_spatial),
                channels, kernel=1, stride=first_stride, **kwargs))
        layers.append(conv(
            f"{name}_B2_CONV1", (channels, spatial, spatial),
            channels, kernel=3, padding=1, **kwargs))
        layers.append(conv(
            f"{name}_B2_CONV2", (channels, spatial, spatial),
            channels, kernel=3, padding=1, **kwargs))
        in_channels = channels
        in_spatial = spatial
    layers.append(fc("FC", 512, 1000, **kwargs))
    return layers


def mobilenet_v1(batch: int = 1, bytes_per_element: int = 1
                 ) -> List[ConvLayer]:
    """MobileNetV1 (224x224, width 1.0).

    Depthwise separable convolutions exercise the grouped-conv path in
    its extreme form: the depthwise stage has ``groups == channels``.
    """
    conv = ConvLayer.conv
    fc = ConvLayer.fully_connected
    kwargs = {"batch": batch, "bytes_per_element": bytes_per_element}
    layers: List[ConvLayer] = [
        conv("CONV1", (3, 224, 224), 32, kernel=3, stride=2, padding=1,
             **kwargs),
    ]
    # (in_channels, out_channels, spatial_in, stride) per separable block
    blocks = [
        (32, 64, 112, 1), (64, 128, 112, 2), (128, 128, 56, 1),
        (128, 256, 56, 2), (256, 256, 28, 1), (256, 512, 28, 2),
        (512, 512, 14, 1), (512, 512, 14, 1), (512, 512, 14, 1),
        (512, 512, 14, 1), (512, 512, 14, 1), (512, 1024, 14, 2),
        (1024, 1024, 7, 1),
    ]
    for index, (cin, cout, spatial, stride) in enumerate(blocks, start=1):
        layers.append(conv(
            f"DW{index}", (cin, spatial, spatial), cin, kernel=3,
            stride=stride, padding=1, groups=cin, **kwargs))
        out_spatial = spatial // stride
        layers.append(conv(
            f"PW{index}", (cin, out_spatial, out_spatial), cout,
            kernel=1, **kwargs))
    layers.append(fc("FC", 1024, 1000, **kwargs))
    return layers


def tiny_test_network(bytes_per_element: int = 1) -> List[ConvLayer]:
    """A two-layer network small enough for trace-level simulation."""
    conv = ConvLayer.conv
    fc = ConvLayer.fully_connected
    return [
        conv("TINY_CONV", (4, 8, 8), 8, kernel=3, padding=1,
             bytes_per_element=bytes_per_element),
        fc("TINY_FC", 8 * 8 * 8, 16, bytes_per_element=bytes_per_element),
    ]


#: Registry of model constructors by name.
MODEL_REGISTRY = {
    "alexnet": alexnet,
    "vgg16": vgg16,
    "lenet5": lenet5,
    "resnet18": resnet18_convs,
    "mobilenetv1": mobilenet_v1,
    "tiny": tiny_test_network,
}


def model_by_name(name: str, **kwargs) -> List[ConvLayer]:
    """Instantiate a registered model by name."""
    if name not in MODEL_REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: "
            f"{sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[name](**kwargs)
