"""Flat-list model zoo — compatibility shim over the graph IR.

.. deprecated::
    The model zoo lives in :mod:`repro.workloads.zoo` as graph
    builders; this module lowers those graphs back to the historical
    ``List[ConvLayer]`` shape for callers that predate the workload
    IR.  The lowered lists are byte-identical to what these
    constructors always returned (golden-pinned by
    ``tests/workloads/test_lowering_golden.py``), but they drop graph
    structure: residual skip edges, pooling nodes, and feature-map
    hand-offs are only visible on the :class:`repro.workloads.Network`
    objects.  New code should call
    :func:`repro.workloads.get_workload` (or the builders in
    :mod:`repro.workloads.zoo`) and use
    :meth:`~repro.workloads.Network.lower` only at the boundary that
    truly needs a flat list.

Register additional workloads with
:func:`repro.workloads.register_workload`; they become visible here
(and in the CLI) automatically.
"""

from __future__ import annotations

from typing import Callable, List, Mapping

# Submodule imports (not the package root) keep this module importable
# while ``repro.workloads.__init__`` is itself mid-import.
from ..workloads import registry
from ..workloads import zoo
from ..workloads.registry import get_workload
from .layer import ConvLayer


def alexnet(batch: int = 1, bytes_per_element: int = 1) -> List[ConvLayer]:
    """AlexNet, lowered from :func:`repro.workloads.zoo.alexnet`."""
    return zoo.alexnet(batch=batch,
                       bytes_per_element=bytes_per_element).lower()


def vgg16(batch: int = 1, bytes_per_element: int = 1) -> List[ConvLayer]:
    """VGG-16, lowered from :func:`repro.workloads.zoo.vgg16`."""
    return zoo.vgg16(batch=batch,
                     bytes_per_element=bytes_per_element).lower()


def lenet5(batch: int = 1, bytes_per_element: int = 1) -> List[ConvLayer]:
    """LeNet-5, lowered from :func:`repro.workloads.zoo.lenet5`."""
    return zoo.lenet5(batch=batch,
                      bytes_per_element=bytes_per_element).lower()


def resnet18_convs(batch: int = 1, bytes_per_element: int = 1
                   ) -> List[ConvLayer]:
    """ResNet-18's conv backbone, lowered from
    :func:`repro.workloads.zoo.resnet18`.

    The residual adds are traffic-only graph nodes and do not appear
    here; use the graph to see them.
    """
    return zoo.resnet18(batch=batch,
                        bytes_per_element=bytes_per_element).lower()


def mobilenet_v1(batch: int = 1, bytes_per_element: int = 1
                 ) -> List[ConvLayer]:
    """MobileNetV1, lowered from
    :func:`repro.workloads.zoo.mobilenet_v1`."""
    return zoo.mobilenet_v1(batch=batch,
                            bytes_per_element=bytes_per_element).lower()


def mobilenet_v2(batch: int = 1, bytes_per_element: int = 1
                 ) -> List[ConvLayer]:
    """MobileNetV2, lowered from
    :func:`repro.workloads.zoo.mobilenet_v2` (skip edges dropped)."""
    return zoo.mobilenet_v2(batch=batch,
                            bytes_per_element=bytes_per_element).lower()


def bert_encoder(batch: int = 1, bytes_per_element: int = 1, **kwargs
                 ) -> List[ConvLayer]:
    """A BERT-style encoder block's matmuls, lowered from
    :func:`repro.workloads.zoo.bert_encoder`."""
    return zoo.bert_encoder(batch=batch,
                            bytes_per_element=bytes_per_element,
                            **kwargs).lower()


def tiny_test_network(bytes_per_element: int = 1) -> List[ConvLayer]:
    """A two-layer network small enough for trace-level simulation."""
    return zoo.tiny(bytes_per_element=bytes_per_element).lower()


class _RegistryView(Mapping[str, Callable[..., List[ConvLayer]]]):
    """Live read-only view of the workload registry as lowering
    callables, preserving the historical ``MODEL_REGISTRY`` shape.

    Deriving from :class:`collections.abc.Mapping` keeps every read
    method (``get``, ``items``, ``len`` ...) consistent with the
    overridden ``__getitem__``.  Writes are rejected loudly: register
    new workloads through
    :func:`repro.workloads.register_workload` instead.
    """

    def _lowering(self, name: str) -> Callable[..., List[ConvLayer]]:
        def build(**kwargs) -> List[ConvLayer]:
            return get_workload(name, **kwargs).lower()
        build.__name__ = name
        return build

    def __getitem__(self, name: str) -> Callable[..., List[ConvLayer]]:
        if name not in registry.WORKLOAD_REGISTRY:
            raise KeyError(name)
        return self._lowering(name)

    def __iter__(self):
        return iter(registry.workload_names())

    def __len__(self) -> int:
        return len(registry.WORKLOAD_REGISTRY)

    def __setitem__(self, name: str, builder) -> None:
        raise TypeError(
            "MODEL_REGISTRY is a read-only view; add workloads with "
            "repro.workloads.register_workload(name, builder) — the "
            "builder returns a Network, and the entry appears here "
            "automatically")


#: Registry of model constructors by name (live view of
#: :data:`repro.workloads.WORKLOAD_REGISTRY`; each entry lowers the
#: graph to the legacy layer list).
MODEL_REGISTRY = _RegistryView()


def model_by_name(name: str, **kwargs) -> List[ConvLayer]:
    """Instantiate a registered model by name, as a lowered list.

    .. deprecated:: prefer :func:`repro.workloads.get_workload`, which
       returns the graph.
    """
    if name not in MODEL_REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: "
            f"{registry.workload_names()}")
    return get_workload(name, **kwargs).lower()
