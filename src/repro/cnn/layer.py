"""CNN layer geometry.

Dimension names follow the paper's loop nest (Fig. 3):

* ``H`` / ``W`` — height / width of the ofms,
* ``J`` — depth (channels) of the ofms,
* ``I`` — depth of the ifms and wghs,
* ``P`` / ``Q`` — height / width of the wghs kernel,
* ``B`` — batch size.

Grouped convolutions (AlexNet CONV2/4/5) are modelled as ``groups``
independent convolutions with ``I/groups`` input and ``J/groups``
output channels processed back to back; all volume and MAC properties
account for this.  Fully-connected layers are 1x1 convolutions on a
1x1 feature map.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ConvLayer:
    """One convolutional (or fully-connected) layer.

    Parameters
    ----------
    name:
        Layer label used in reports (e.g. ``"CONV1"``).
    out_height / out_width:
        Spatial size of the ofms (``H`` x ``W``).
    out_channels:
        Total ofms depth ``J`` (across all groups).
    in_channels:
        Total ifms depth ``I`` (across all groups).
    kernel_height / kernel_width:
        Weight kernel size ``P`` x ``Q``.
    stride:
        Convolution stride.
    in_height / in_width:
        Spatial size of the (unpadded) ifms actually resident in DRAM.
    groups:
        Grouped-convolution factor.
    batch:
        Batch size ``B``.
    bytes_per_element:
        Datum size; 1 for the int8 inference the TPU-like accelerator
        performs.
    """

    name: str
    out_height: int
    out_width: int
    out_channels: int
    in_channels: int
    kernel_height: int
    kernel_width: int
    stride: int
    in_height: int
    in_width: int
    groups: int = 1
    batch: int = 1
    bytes_per_element: int = 1

    def __post_init__(self) -> None:
        positive = (
            "out_height", "out_width", "out_channels", "in_channels",
            "kernel_height", "kernel_width", "stride", "in_height",
            "in_width", "groups", "batch", "bytes_per_element",
        )
        for field_name in positive:
            value = getattr(self, field_name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigurationError(
                    f"{field_name} must be a positive integer, "
                    f"got {value!r}")
        if self.in_channels % self.groups != 0:
            raise ConfigurationError(
                f"in_channels ({self.in_channels}) must divide evenly "
                f"into groups ({self.groups})")
        if self.out_channels % self.groups != 0:
            raise ConfigurationError(
                f"out_channels ({self.out_channels}) must divide evenly "
                f"into groups ({self.groups})")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def conv(
        name: str,
        in_shape: tuple,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        batch: int = 1,
        bytes_per_element: int = 1,
    ) -> "ConvLayer":
        """Build a conv layer from its input shape.

        Parameters
        ----------
        in_shape:
            ``(in_channels, in_height, in_width)``.
        kernel:
            Square kernel size.
        padding:
            Zero padding on each border (affects the output size but
            not the DRAM-resident ifms volume).
        """
        in_channels, in_height, in_width = in_shape
        out_height = (in_height + 2 * padding - kernel) // stride + 1
        out_width = (in_width + 2 * padding - kernel) // stride + 1
        return ConvLayer(
            name=name,
            out_height=out_height,
            out_width=out_width,
            out_channels=out_channels,
            in_channels=in_channels,
            kernel_height=kernel,
            kernel_width=kernel,
            stride=stride,
            in_height=in_height,
            in_width=in_width,
            groups=groups,
            batch=batch,
            bytes_per_element=bytes_per_element,
        )

    @staticmethod
    def fully_connected(
        name: str,
        in_features: int,
        out_features: int,
        batch: int = 1,
        bytes_per_element: int = 1,
    ) -> "ConvLayer":
        """Build a fully-connected layer as a 1x1 convolution."""
        return ConvLayer(
            name=name,
            out_height=1,
            out_width=1,
            out_channels=out_features,
            in_channels=in_features,
            kernel_height=1,
            kernel_width=1,
            stride=1,
            in_height=1,
            in_width=1,
            batch=batch,
            bytes_per_element=bytes_per_element,
        )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------

    @property
    def is_fully_connected(self) -> bool:
        """True for 1x1 layers on 1x1 feature maps."""
        return (self.out_height == 1 and self.out_width == 1
                and self.kernel_height == 1 and self.kernel_width == 1)

    @property
    def in_channels_per_group(self) -> int:
        """ifms depth seen by each group."""
        return self.in_channels // self.groups

    @property
    def out_channels_per_group(self) -> int:
        """ofms depth produced by each group."""
        return self.out_channels // self.groups

    @property
    def ifms_bytes(self) -> int:
        """DRAM-resident ifms volume in bytes."""
        return (self.batch * self.in_channels * self.in_height
                * self.in_width * self.bytes_per_element)

    @property
    def wghs_bytes(self) -> int:
        """Weight volume in bytes (grouped kernels counted once)."""
        return (self.out_channels * self.in_channels_per_group
                * self.kernel_height * self.kernel_width
                * self.bytes_per_element)

    @property
    def ofms_bytes(self) -> int:
        """ofms volume in bytes."""
        return (self.batch * self.out_channels * self.out_height
                * self.out_width * self.bytes_per_element)

    @property
    def total_bytes(self) -> int:
        """Sum of all three data-type volumes."""
        return self.ifms_bytes + self.wghs_bytes + self.ofms_bytes

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for one inference."""
        return (self.batch * self.out_height * self.out_width
                * self.out_channels * self.in_channels_per_group
                * self.kernel_height * self.kernel_width)

    def describe(self) -> str:
        """One-line summary for reports."""
        if self.is_fully_connected:
            return (f"{self.name}: FC {self.in_channels} -> "
                    f"{self.out_channels}")
        return (
            f"{self.name}: ifms {self.in_channels}x{self.in_height}x"
            f"{self.in_width} -> ofms {self.out_channels}x"
            f"{self.out_height}x{self.out_width}, kernel "
            f"{self.kernel_height}x{self.kernel_width}/s{self.stride}"
            + (f", groups={self.groups}" if self.groups > 1 else "")
        )
