"""DRAM traffic model: tile fetch counts per data type.

Given a layer, a tiling and a loop order, this module computes how many
times each data-type tile crosses the DRAM boundary -- the quantity the
scheduling schemes trade against each other, and the multiplier the EDP
model applies to per-tile access costs.

The rule (standard loop-nest reuse analysis, cf. SmartShuttle [14]):
with one buffer-resident tile per data type, the tile of type ``T`` is
(re)loaded at every iteration of the *innermost loop T depends on*;
its total fetch count is the product of the trip counts of that loop
and every loop outside it.  ofms tiles additionally pay partial-sum
traffic: every visit writes the tile back, and every visit after the
first reads it back in (when the ``i`` loop sits outside the innermost
ofms-dependent loop, partial sums bounce through DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .layer import ConvLayer
from .scheduling import (
    DEPENDENCIES,
    LoopVar,
    ReuseScheme,
    loop_order,
)
from .tiling import TilingConfig


@dataclass(frozen=True)
class DataTypeTraffic:
    """DRAM traffic of one data type for one layer.

    Attributes
    ----------
    tile_bytes:
        Bytes moved per tile fetch.
    read_tiles:
        Number of tile *loads* from DRAM.
    write_tiles:
        Number of tile *stores* to DRAM (ofms only).
    """

    tile_bytes: int
    read_tiles: int
    write_tiles: int = 0

    @property
    def read_bytes(self) -> int:
        """Total bytes read."""
        return self.tile_bytes * self.read_tiles

    @property
    def write_bytes(self) -> int:
        """Total bytes written."""
        return self.tile_bytes * self.write_tiles

    @property
    def total_bytes(self) -> int:
        """Total bytes moved."""
        return self.read_bytes + self.write_bytes


@dataclass(frozen=True)
class LayerTraffic:
    """DRAM traffic of all three data types for one layer."""

    layer_name: str
    ifms: DataTypeTraffic
    wghs: DataTypeTraffic
    ofms: DataTypeTraffic

    @property
    def total_bytes(self) -> int:
        """Total DRAM bytes moved for the layer."""
        return (self.ifms.total_bytes + self.wghs.total_bytes
                + self.ofms.total_bytes)

    def by_type(self) -> Dict[str, DataTypeTraffic]:
        """Traffic keyed by data-type name."""
        return {"ifms": self.ifms, "wghs": self.wghs, "ofms": self.ofms}


def _trip_count_map(layer: ConvLayer, tiling: TilingConfig
                    ) -> Dict[LoopVar, int]:
    n_h, n_w, n_j, n_i = tiling.trip_counts(layer)
    return {LoopVar.H: n_h, LoopVar.W: n_w, LoopVar.J: n_j, LoopVar.I: n_i}


def _visits(order: Tuple[LoopVar, ...], trips: Dict[LoopVar, int],
            dependencies: frozenset) -> int:
    """Tile fetches: product of trips down to the innermost dependency."""
    innermost_dep = max(
        (position for position, var in enumerate(order)
         if var in dependencies),
        default=-1,
    )
    visits = 1
    for position in range(innermost_dep + 1):
        visits *= trips[order[position]]
    return visits


def layer_traffic(
    layer: ConvLayer,
    tiling: TilingConfig,
    scheme: ReuseScheme,
) -> LayerTraffic:
    """DRAM traffic of ``layer`` under ``tiling`` and ``scheme``.

    Grouped convolutions run their groups back to back; all counts are
    scaled by ``layer.groups``.
    """
    order = loop_order(scheme)
    trips = _trip_count_map(layer, tiling)
    groups = layer.groups
    batch = layer.batch

    ifms_visits = _visits(order, trips, DEPENDENCIES["ifms"])
    wghs_visits = _visits(order, trips, DEPENDENCIES["wghs"])
    ofms_visits = _visits(order, trips, DEPENDENCIES["ofms"])
    distinct_ofms = trips[LoopVar.H] * trips[LoopVar.W] * trips[LoopVar.J]

    scale = groups * batch
    ifms = DataTypeTraffic(
        tile_bytes=tiling.ifms_tile_bytes(layer),
        read_tiles=ifms_visits * scale,
    )
    wghs = DataTypeTraffic(
        tile_bytes=tiling.wghs_tile_bytes(layer),
        # Weights are batch-invariant, but with one resident tile they
        # are re-streamed per image unless the batch loop is innermost;
        # the Fig.-3 nest has the batch loop outermost, so scale by it.
        read_tiles=wghs_visits * scale,
    )
    ofms = DataTypeTraffic(
        tile_bytes=tiling.ofms_tile_bytes(layer),
        # Every visit writes the (partial) tile back; every visit after
        # the first must first re-load the partial sums.
        read_tiles=(ofms_visits - distinct_ofms) * scale,
        write_tiles=ofms_visits * scale,
    )
    return LayerTraffic(
        layer_name=layer.name, ifms=ifms, wghs=wghs, ofms=ofms)


def best_concrete_scheme(
    layer: ConvLayer,
    tiling: TilingConfig,
) -> Tuple[ReuseScheme, LayerTraffic]:
    """The concrete scheme moving the fewest DRAM bytes (adaptive-reuse).

    Ties break in the paper's enumeration order (ifms, wghs, ofms).
    """
    from .scheduling import CONCRETE_SCHEMES

    best_scheme = None
    best_traffic = None
    for scheme in CONCRETE_SCHEMES:
        traffic = layer_traffic(layer, tiling, scheme)
        if best_traffic is None \
                or traffic.total_bytes < best_traffic.total_bytes:
            best_scheme = scheme
            best_traffic = traffic
    return best_scheme, best_traffic
