"""Request-trace generation: loop nest -> DRAM request stream.

For small layers, this module materializes the actual burst-granularity
request sequence the accelerator's DMA would issue under a given
tiling, scheduling scheme and mapping policy, suitable for replay on
the cycle-level simulator.  It is the integration bridge between the
CNN substrate and the DRAM substrate, and the ground truth the
analytical EDP model is validated against.

Data placement: the three data-type regions are laid out back to back
in *access-index space* (each region starts at a row-aligned offset),
and the mapping policy translates access indices to DRAM coordinates.
Tiles within a region are stored in loop-nest order, each occupying a
contiguous run of access indices.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..dram.commands import Request, RequestKind
from ..dram.spec import DRAMOrganization
from ..mapping.policy import MappingPolicy
from ..units import ceil_div
from .layer import ConvLayer
from .scheduling import DEPENDENCIES, LoopVar, ReuseScheme, loop_order
from .tiling import TilingConfig


@dataclass(frozen=True)
class RegionLayout:
    """Placement of one data type's tiles in access-index space."""

    name: str
    base: int
    tile_accesses: int
    num_tiles: int

    @property
    def end(self) -> int:
        """First access index past the region."""
        return self.base + self.tile_accesses * self.num_tiles

    def tile_start(self, tile_index: int) -> int:
        """Access index of tile ``tile_index``'s first burst."""
        if not 0 <= tile_index < self.num_tiles:
            raise IndexError(
                f"tile {tile_index} out of range for region {self.name} "
                f"({self.num_tiles} tiles)")
        return self.base + tile_index * self.tile_accesses


def _align_up(value: int, alignment: int) -> int:
    return ceil_div(value, alignment) * alignment if value else 0


def build_layout(
    layer: ConvLayer,
    tiling: TilingConfig,
    organization: DRAMOrganization,
) -> Dict[str, RegionLayout]:
    """Row-aligned region layout for the three data types of a layer."""
    n_h, n_w, n_j, n_i = tiling.trip_counts(layer)
    groups = layer.groups * layer.batch
    distinct = {
        "ifms": n_h * n_w * n_i * groups,
        "wghs": n_j * n_i * groups,
        "ofms": n_h * n_w * n_j * groups,
    }
    tile_bytes = {
        "ifms": tiling.ifms_tile_bytes(layer),
        "wghs": tiling.wghs_tile_bytes(layer),
        "ofms": tiling.ofms_tile_bytes(layer),
    }
    alignment = organization.bursts_per_row
    layouts: Dict[str, RegionLayout] = {}
    base = 0
    for name in ("ifms", "wghs", "ofms"):
        tile_accesses = organization.accesses_for_bytes(tile_bytes[name])
        layouts[name] = RegionLayout(
            name=name,
            base=base,
            tile_accesses=tile_accesses,
            num_tiles=distinct[name],
        )
        base = _align_up(layouts[name].end, alignment)
    return layouts


def _tile_linear_index(
    order: Tuple[LoopVar, ...],
    indices: Dict[LoopVar, int],
    trips: Dict[LoopVar, int],
    dependencies: frozenset,
    group_index: int,
    groups: int,
) -> int:
    """Linear index of the tile addressed by the dependent loop vars."""
    del groups
    linear = group_index
    for var in order:
        if var in dependencies:
            linear = linear * trips[var] + indices[var]
    return linear


def generate_layer_trace(
    layer: ConvLayer,
    tiling: TilingConfig,
    scheme: ReuseScheme,
    policy: MappingPolicy,
    organization: DRAMOrganization,
    max_requests: Optional[int] = None,
) -> List[Request]:
    """The DRAM request stream of one layer's processing.

    Parameters
    ----------
    max_requests:
        Optional truncation for sampling large layers; ``None`` keeps
        the full trace.

    Notes
    -----
    The stream interleaves data types exactly as the Fig.-3 loop nest
    does: on each outer-loop iteration, newly-needed ifms / wghs tiles
    are loaded, a displaced dirty ofms tile is written back first, and
    a previously-started ofms tile is re-loaded before accumulation
    continues.
    """
    order = loop_order(scheme)
    n_h, n_w, n_j, n_i = tiling.trip_counts(layer)
    trips = {LoopVar.H: n_h, LoopVar.W: n_w, LoopVar.J: n_j, LoopVar.I: n_i}
    layouts = build_layout(layer, tiling, organization)
    groups = layer.groups * layer.batch

    requests: List[Request] = []
    resident: Dict[str, Optional[int]] = {
        "ifms": None, "wghs": None, "ofms": None}
    started_ofms: set = set()

    def emit(region: RegionLayout, tile: int, kind: RequestKind,
             tag: str) -> None:
        start = region.tile_start(tile)
        for coord in policy.iter_coordinates(
                region.tile_accesses, organization, start=start):
            requests.append(Request(kind, coord, tag=tag))

    def flush_ofms() -> None:
        if resident["ofms"] is not None:
            emit(layouts["ofms"], resident["ofms"], RequestKind.WRITE,
                 tag="ofms")
            resident["ofms"] = None

    trip_ranges = [range(trips[var]) for var in order]
    for group_index in range(groups):
        for combo in itertools.product(*trip_ranges):
            indices = dict(zip(order, combo))
            wanted = {
                name: _tile_linear_index(
                    order, indices, trips, DEPENDENCIES[name],
                    group_index, groups)
                for name in ("ifms", "wghs", "ofms")
            }
            if resident["ofms"] is not None \
                    and resident["ofms"] != wanted["ofms"]:
                flush_ofms()
            for name in ("ifms", "wghs"):
                if resident[name] != wanted[name]:
                    emit(layouts[name], wanted[name], RequestKind.READ,
                         tag=name)
                    resident[name] = wanted[name]
            if resident["ofms"] != wanted["ofms"]:
                if wanted["ofms"] in started_ofms:
                    emit(layouts["ofms"], wanted["ofms"], RequestKind.READ,
                         tag="ofms")
                resident["ofms"] = wanted["ofms"]
                started_ofms.add(wanted["ofms"])
            if max_requests is not None and len(requests) >= max_requests:
                return requests[:max_requests]
    flush_ofms()
    return requests


def trace_summary(requests: List[Request]) -> Dict[str, int]:
    """Read/write burst counts per data type (for checking traffic)."""
    summary: Dict[str, int] = {}
    for request in requests:
        key = f"{request.tag}_{request.kind.value.lower()}s"
        summary[key] = summary.get(key, 0) + 1
    return summary
