"""DRAM access scheduling schemes — paper Section III-B, step 1b.

A scheduling scheme is the order of the four outer tile loops of
Fig. 3.  The paper considers four schemes, named after the data type
whose reuse they prioritize:

* **ifms-reuse** — the ifms tile stays on chip while everything that
  needs it streams past: the ``j`` loop is innermost.
* **wghs-reuse** — the weight tile stays resident: the spatial loops
  are innermost.
* **ofms-reuse** — the ofms (partial-sum) tile stays resident until
  complete: the ``i`` loop is innermost (output-stationary).
* **adaptive-reuse** — per layer, whichever of the three moves the
  fewest DRAM bytes (the SmartShuttle [14] idea).
"""

from __future__ import annotations

import enum
from typing import Tuple


class LoopVar(enum.Enum):
    """Outer tile-loop variables of the Fig.-3 loop nest."""

    H = "h"
    W = "w"
    J = "j"
    I = "i"  # noqa: E741 - the paper's name for the ifms-depth loop

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ReuseScheme(enum.Enum):
    """The four scheduling schemes of the paper."""

    IFMS_REUSE = "ifms-reuse"
    WGHS_REUSE = "wghs-reuse"
    OFMS_REUSE = "ofms-reuse"
    ADAPTIVE_REUSE = "adaptive-reuse"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Loop order (outermost first) realizing each concrete scheme.
_LOOP_ORDERS = {
    ReuseScheme.IFMS_REUSE: (LoopVar.H, LoopVar.W, LoopVar.I, LoopVar.J),
    ReuseScheme.WGHS_REUSE: (LoopVar.J, LoopVar.I, LoopVar.H, LoopVar.W),
    ReuseScheme.OFMS_REUSE: (LoopVar.H, LoopVar.W, LoopVar.J, LoopVar.I),
}

#: Loops each data type's tile address depends on.
DEPENDENCIES = {
    "ifms": frozenset({LoopVar.H, LoopVar.W, LoopVar.I}),
    "wghs": frozenset({LoopVar.J, LoopVar.I}),
    "ofms": frozenset({LoopVar.H, LoopVar.W, LoopVar.J}),
}

#: The three concrete (non-adaptive) schemes.
CONCRETE_SCHEMES = (
    ReuseScheme.IFMS_REUSE,
    ReuseScheme.WGHS_REUSE,
    ReuseScheme.OFMS_REUSE,
)

#: All four schemes in the paper's Fig.-9 order.
ALL_SCHEMES = CONCRETE_SCHEMES + (ReuseScheme.ADAPTIVE_REUSE,)


def loop_order(scheme: ReuseScheme) -> Tuple[LoopVar, ...]:
    """Outer-loop order (outermost first) of a concrete scheme.

    ``ADAPTIVE_REUSE`` has no fixed order -- resolve it per layer with
    :func:`repro.core.adaptive.resolve_adaptive` first.
    """
    if scheme is ReuseScheme.ADAPTIVE_REUSE:
        raise ValueError(
            "adaptive-reuse resolves to a concrete scheme per layer; "
            "use repro.core.adaptive.resolve_adaptive")
    return _LOOP_ORDERS[scheme]
