"""CNN substrate: layer geometry, models, tiling, scheduling, traffic."""

from .layer import ConvLayer
from .models import (
    MODEL_REGISTRY,
    alexnet,
    bert_encoder,
    lenet5,
    mobilenet_v1,
    mobilenet_v2,
    model_by_name,
    resnet18_convs,
    tiny_test_network,
    vgg16,
)
from .scheduling import (
    ALL_SCHEMES,
    CONCRETE_SCHEMES,
    DEPENDENCIES,
    LoopVar,
    ReuseScheme,
    loop_order,
)
from .tiling import (
    BufferConfig,
    TABLE2_BUFFERS,
    TilingConfig,
    enumerate_tilings,
)
from .traffic import (
    DataTypeTraffic,
    LayerTraffic,
    best_concrete_scheme,
    layer_traffic,
)
from .trace import (
    RegionLayout,
    build_layout,
    generate_layer_trace,
    trace_summary,
)

__all__ = [
    "ALL_SCHEMES",
    "BufferConfig",
    "CONCRETE_SCHEMES",
    "ConvLayer",
    "DEPENDENCIES",
    "DataTypeTraffic",
    "LayerTraffic",
    "LoopVar",
    "MODEL_REGISTRY",
    "RegionLayout",
    "ReuseScheme",
    "TABLE2_BUFFERS",
    "TilingConfig",
    "alexnet",
    "bert_encoder",
    "best_concrete_scheme",
    "build_layout",
    "enumerate_tilings",
    "generate_layer_trace",
    "layer_traffic",
    "lenet5",
    "loop_order",
    "mobilenet_v1",
    "mobilenet_v2",
    "model_by_name",
    "resnet18_convs",
    "tiny_test_network",
    "trace_summary",
    "vgg16",
]
