"""Bounded LRU memoization with hit/miss accounting.

One implementation shared by every cache in the library — the Fig.-1
characterization cache (:mod:`repro.dram.characterize`) and the DSE
engine's evaluation memos (:mod:`repro.core.engine`) — so eviction and
accounting behavior cannot drift between them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of a cache."""

    hits: int
    misses: int

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class LRUMemo:
    """A bounded memo dict: least-recently-used entries are evicted.

    Cached values must not be ``None`` (``None`` marks a miss).
    """

    __slots__ = ("maxsize", "entries", "hits", "misses")

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss counters."""
        return CacheStats(hits=self.hits, misses=self.misses)

    def __len__(self) -> int:
        return len(self.entries)

    def peek(self, key):
        """The cached value for ``key``, or ``None`` — no accounting.

        Unlike :meth:`get_or_compute_flagged` this neither bumps the
        hit/miss counters nor refreshes the entry's recency; batch
        front ends use it to plan which keys need computing before
        running the (counted) lookups.
        """
        return self.entries.get(key)

    def get_or_compute(self, key, compute: Callable):
        """The cached value for ``key``, computing it on first use."""
        return self.get_or_compute_flagged(key, compute)[0]

    def get_or_compute_flagged(self, key, compute: Callable):
        """Like :meth:`get_or_compute`, returning ``(value, hit)``.

        The flag mirrors exactly what the hit/miss counters recorded
        for this lookup, so callers layering their own accounting on
        top (e.g. per-device stats) cannot diverge from ``stats``.
        """
        cached = self.entries.get(key)
        if cached is not None:
            self.hits += 1
            self.entries.move_to_end(key)
            return cached, True
        self.misses += 1
        value = compute()
        self.entries[key] = value
        if len(self.entries) > self.maxsize:
            self.entries.popitem(last=False)
        return value, False

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self.entries.clear()
        self.hits = 0
        self.misses = 0
