"""repro — a reproduction of DRMap (Putra, Hanif, Shafique; DAC 2020).

DRMap is a generic DRAM data mapping policy for energy-efficient CNN
accelerators: map each data tile first across the columns of a row
(row-buffer hits), then across banks (bank-level parallelism), then
across subarrays (subarray-level parallelism for SALP-enabled DRAMs),
and only last across rows.

Package layout
--------------
``repro.dram``
    Cycle-level DRAM model (DDR3-1600 + SALP-1/2/MASA), current-based
    energy model, and the Fig.-1 per-condition characterization.
``repro.mapping``
    Mapping policies (Table I, DRMap), closed-form Eq. 2/3 access
    counts, state-aware reference walk.
``repro.cnn``
    CNN layers and models (AlexNet et al.), tiling, scheduling schemes,
    DRAM traffic model, request-trace generation.
``repro.core``
    Analytical EDP model, the Algorithm-1 design space exploration,
    pareto utilities, reporting.
``repro.accelerator``
    Table-II accelerator configuration, buffer and compute models.

Quickstart
----------
>>> from repro import quick_layer_edp
>>> from repro.cnn import alexnet
>>> from repro.mapping import DRMAP
>>> from repro.dram import DRAMArchitecture
>>> layer = alexnet()[0]
>>> result = quick_layer_edp(layer, DRMAP, DRAMArchitecture.SALP_MASA)
>>> result.edp_js > 0
True
"""

from __future__ import annotations

from .cnn.layer import ConvLayer
from .cnn.scheduling import ReuseScheme
from .cnn.tiling import TilingConfig
from .core.edp import LayerEDP
from .dram.architecture import DRAMArchitecture
from .dram.device import (
    DEVICE_REGISTRY,
    DeviceProfile,
    DeviceRegistry,
    default_device,
    device_names,
    get_device,
    register_device,
)
from .errors import (
    CapacityError,
    ConfigurationError,
    DseError,
    MappingError,
    ReproError,
    SchedulingError,
)
from .mapping.policy import MappingPolicy

__version__ = "1.0.0"


def quick_layer_edp(
    layer: ConvLayer,
    policy: MappingPolicy,
    architecture: DRAMArchitecture = DRAMArchitecture.DDR3,
    scheme: ReuseScheme = ReuseScheme.ADAPTIVE_REUSE,
    tiling: TilingConfig = None,
    device: DeviceProfile = None,
) -> LayerEDP:
    """One-call EDP estimate for a layer with sensible defaults.

    Uses the Table-II buffers and, unless a tiling is given, the
    buffer-maximal tiling with the lowest EDP.  ``device`` selects a
    DRAM device profile (default: the paper's Table-II device).
    """
    from .cnn.tiling import enumerate_tilings
    from .core.edp import layer_edp

    if tiling is not None:
        return layer_edp(layer, tiling, scheme, policy, architecture,
                         device=device)
    best = None
    for candidate in enumerate_tilings(layer):
        result = layer_edp(layer, candidate, scheme, policy, architecture,
                           device=device)
        if best is None or result.edp_js < best.edp_js:
            best = result
    return best


__all__ = [
    "CapacityError",
    "ConfigurationError",
    "ConvLayer",
    "DEVICE_REGISTRY",
    "DRAMArchitecture",
    "DeviceProfile",
    "DeviceRegistry",
    "DseError",
    "LayerEDP",
    "MappingError",
    "MappingPolicy",
    "ReproError",
    "ReuseScheme",
    "SchedulingError",
    "TilingConfig",
    "default_device",
    "device_names",
    "get_device",
    "quick_layer_edp",
    "register_device",
    "__version__",
]
