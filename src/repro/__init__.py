"""repro — a reproduction of DRMap (Putra, Hanif, Shafique; DAC 2020).

DRMap is a generic DRAM data mapping policy for energy-efficient CNN
accelerators: map each data tile first across the columns of a row
(row-buffer hits), then across banks (bank-level parallelism), then
across subarrays (subarray-level parallelism for SALP-enabled DRAMs),
and only last across rows.

Package layout
--------------
``repro.dram``
    Cycle-level DRAM model (DDR3-1600 + SALP-1/2/MASA), current-based
    energy model, and the Fig.-1 per-condition characterization.
``repro.mapping``
    Mapping policies (Table I, DRMap), closed-form Eq. 2/3 access
    counts, state-aware reference walk.
``repro.cnn``
    CNN layers, tiling, scheduling schemes, DRAM traffic model,
    request-trace generation, and the flat-list model-zoo shim.
``repro.workloads``
    Graph-based workload IR: operators (conv, depthwise, matmul,
    pool, eltwise) wired by named feature-map tensors, the model zoo
    as graph builders (AlexNet ... BERT encoder), the workload
    registry, and network-level reuse / EDP analysis.
``repro.core``
    Analytical EDP model, the Algorithm-1 design space exploration,
    pareto utilities, reporting.
``repro.accelerator``
    Table-II accelerator configuration, buffer and compute models.

Quickstart
----------
>>> from repro import quick_layer_edp
>>> from repro.cnn import alexnet
>>> from repro.mapping import DRMAP
>>> from repro.dram import DRAMArchitecture
>>> layer = alexnet()[0]
>>> result = quick_layer_edp(layer, DRMAP, DRAMArchitecture.SALP_MASA)
>>> result.edp_js > 0
True
"""

from __future__ import annotations

from .cnn.layer import ConvLayer
from .cnn.scheduling import ReuseScheme
from .cnn.tiling import TilingConfig
from .core.edp import LayerEDP
from .dram.architecture import DRAMArchitecture
from .dram.device import (
    DEVICE_REGISTRY,
    DeviceProfile,
    DeviceRegistry,
    default_device,
    device_names,
    get_device,
    register_device,
)
from .dram.policies import (
    DEFAULT_CONTROLLER_CONFIG,
    ControllerConfig,
    controller_config,
    row_policy_names,
    scheduler_names,
)
from .errors import (
    CapacityError,
    ConfigurationError,
    DseError,
    MappingError,
    ReproError,
    SchedulingError,
    WorkloadError,
)
from .mapping.policy import MappingPolicy
from .workloads import (
    ConvOp,
    DepthwiseConvOp,
    EltwiseOp,
    MatmulOp,
    Network,
    PoolOp,
    TensorSpec,
    get_workload,
    register_model,
    register_workload,
    workload_names,
)

__version__ = "1.0.0"


def quick_layer_edp(
    layer: ConvLayer,
    policy: MappingPolicy,
    architecture: DRAMArchitecture = DRAMArchitecture.DDR3,
    scheme: ReuseScheme = ReuseScheme.ADAPTIVE_REUSE,
    tiling: TilingConfig = None,
    device: DeviceProfile = None,
    controller: ControllerConfig = None,
) -> LayerEDP:
    """One-call EDP estimate for a layer with sensible defaults.

    Uses the Table-II buffers and, unless a tiling is given, the
    buffer-maximal tiling with the lowest EDP.  ``device`` selects a
    DRAM device profile (default: the paper's Table-II device);
    ``controller`` a memory-controller configuration (default: the
    paper's FCFS/open-row Table-II controller).
    """
    from .cnn.tiling import enumerate_tilings
    from .core.edp import layer_edp

    if tiling is not None:
        return layer_edp(layer, tiling, scheme, policy, architecture,
                         device=device, controller=controller)
    best = None
    for candidate in enumerate_tilings(layer):
        result = layer_edp(layer, candidate, scheme, policy, architecture,
                           device=device, controller=controller)
        if best is None or result.edp_js < best.edp_js:
            best = result
    return best


__all__ = [
    "CapacityError",
    "ConfigurationError",
    "ControllerConfig",
    "ConvLayer",
    "ConvOp",
    "DEFAULT_CONTROLLER_CONFIG",
    "DEVICE_REGISTRY",
    "DRAMArchitecture",
    "DepthwiseConvOp",
    "DeviceProfile",
    "DeviceRegistry",
    "DseError",
    "EltwiseOp",
    "LayerEDP",
    "MappingError",
    "MappingPolicy",
    "MatmulOp",
    "Network",
    "PoolOp",
    "ReproError",
    "ReuseScheme",
    "SchedulingError",
    "TensorSpec",
    "TilingConfig",
    "WorkloadError",
    "controller_config",
    "default_device",
    "device_names",
    "get_device",
    "get_workload",
    "quick_layer_edp",
    "register_device",
    "register_model",
    "register_workload",
    "row_policy_names",
    "scheduler_names",
    "workload_names",
    "__version__",
]
