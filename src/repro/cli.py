"""Command-line interface for the DRMap reproduction.

Usage::

    python -m repro characterize [--arch DDR3] [--device NAME|all]
                                 [--scheduler fr-fcfs] [--row-policy closed]
                                 [--requestors N] [--arbiter NAME]
    python -m repro edp --model alexnet --layer CONV2 [--mapping 3]
                        [--device NAME] [--batch B]
                        [--bytes-per-element N]
                        [--scheduler NAME] [--row-policy NAME]
                        [--requestors N] [--arbiter NAME]
    python -m repro dse --model alexnet [--arch SALP-MASA] [--layer FC6]
                        [--jobs N] [--chunk-size M] [--device NAME]
                        [--batch B] [--bytes-per-element N]
                        [--scheduler NAME] [--row-policy NAME]
                        [--requestors N] [--arbiter NAME]
                        [--strategy NAME] [--seed S] [--funnel-topk PCT]
                        [--eval-model auto|scalar|vector]
    python -m repro traffic --model alexnet [--device NAME] [--batch B]
                            [--bytes-per-element N]
    python -m repro models [--detail] [--model NAME]
    python -m repro devices
    python -m repro policies
    python -m repro arbiters
    python -m repro strategies
    python -m repro cache {stats,clear} [--cache-dir DIR]

Each subcommand prints the same plain-text tables the benchmark
harness produces, so the paper's experiments are reachable without
writing any Python.

``--model`` accepts any workload in the
:mod:`repro.workloads` registry — the graph zoo (``alexnet`` ...
``resnet18``, ``mobilenetv2``, ``bert-encoder``) plus anything added
via :func:`repro.workloads.register_workload`.  Graphs lower to the
paper's 7-dim loop nests before exploration, so ``dse`` runs
unchanged on CNNs and transformer blocks alike; ``models --detail``
shows the graph itself (per-op lowering and feature-map hand-off
residency).  ``--batch`` / ``--bytes-per-element`` instantiate the
workload at a given batch size and precision.

``--device`` selects a registered DRAM device profile (see
``repro devices``); the default is the paper's ``ddr3-1600-2gb-x8``.
``--arch`` is validated against the device's capability set; unknown
``--arch``/``--device`` values exit with status 2 and the list of
valid names.  ``characterize --device all`` prints the per-condition
cost tables for every registered device.

``--scheduler`` / ``--row-policy`` select the memory-controller
configuration (see ``repro policies``); the defaults are the paper's
Table-II controller, ``fcfs`` and ``open``.  Non-default
configurations are flagged in the table titles; DRAM traffic volumes
are controller-independent, so ``traffic`` accepts the flags for
interface uniformity but its byte counts never change.

``--requestors`` / ``--arbiter`` select the channel-contention
configuration (see ``repro arbiters``): how many tagged request
streams share the channel and which arbitration policy interleaves
them through the crossbar front end.  The default single requestor
drives the bare controller, command-for-command identical to the
pre-contention CLI; contended runs are flagged in the table titles and
``characterize`` additionally prints the per-requestor accounting
table.

``dse`` runs on the sharded :mod:`repro.core.engine`:

``--jobs N``
    Worker processes for the exploration grid.  ``1`` (default) stays
    in-process; ``0`` spawns one worker per CPU.  Output is identical
    for every value — shards merge deterministically in grid order.
``--chunk-size M``
    Grid points per shard (default 256).  Smaller chunks smooth load
    balancing across workers; larger chunks cut scheduling overhead.
``--strategy NAME``
    Search strategy over the grid (see ``repro strategies``).  The
    default ``exhaustive`` evaluates every point and its output is
    byte-identical to the pre-strategy CLI; ``funnel`` prunes with
    the closed-form analytical cost model and exactly re-evaluates
    only the top ``--funnel-topk`` percent per layer; ``random`` /
    ``greedy-refine`` are seeded heuristics (``--seed``).
``--eval-model NAME``
    Point-evaluation backend.  ``vector`` batches whole grid chunks
    through the numpy Eq. 2/3 kernel, ``scalar`` keeps the per-point
    loop, and ``auto`` (default) picks ``vector`` when numpy is
    importable.  Every backend produces bit-identical EDP floats, so
    the table output never depends on the choice.
    Non-exhaustive runs are tagged in the table title and followed by
    a one-line evaluation-count summary.

Characterizations are persisted to an on-disk store (default
``~/.cache/repro``, override with ``--cache-dir`` or the
``REPRO_CACHE_DIR`` environment variable) keyed by a hash of the full
device/architecture/controller spec, so repeated CLI runs warm-start
instead of re-simulating; ``--no-disk-cache`` disables it and ``repro
cache {stats,clear}`` inspects or empties it.  Results are identical
with and without the store.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .cnn.scheduling import ALL_SCHEMES, CONCRETE_SCHEMES, ReuseScheme
from .cnn.tiling import enumerate_tilings
from .cnn.traffic import layer_traffic
from .core.dse import explore_layer
from .core.report import format_table
from .dram.architecture import DRAMArchitecture
from .dram.characterize import characterize_device
from .dram.device import (
    DEVICE_REGISTRY,
    DeviceProfile,
    default_device,
    get_device,
)
from .dram.contention import (
    ContentionConfig,
    arbiter_names,
    contention_config,
)
from .dram.policies import (
    ControllerConfig,
    controller_config,
    row_policy_names,
    scheduler_names,
)
from .errors import ConfigurationError
from .mapping.catalog import TABLE1_MAPPINGS, mapping_by_index
from .units import format_bytes
from .workloads import get_workload, handoff_summary, workload_names


def _architecture(name: str) -> DRAMArchitecture:
    try:
        return DRAMArchitecture(name)
    except ValueError:
        choices = ", ".join(a.value for a in DRAMArchitecture)
        raise ConfigurationError(
            f"unknown architecture {name!r}; choose from: {choices}"
        ) from None


def _device(name: Optional[str]) -> DeviceProfile:
    """Resolve ``--device`` (default: the paper's device)."""
    if name is None:
        return default_device()
    return get_device(name)


def _controller(args: argparse.Namespace) -> ControllerConfig:
    """Resolve ``--scheduler``/``--row-policy`` to a config."""
    return controller_config(
        scheduler=getattr(args, "scheduler", "fcfs"),
        row_policy=getattr(args, "row_policy", "open"))


def _contention(args: argparse.Namespace) -> ContentionConfig:
    """Resolve ``--requestors``/``--arbiter`` to a config."""
    return contention_config(
        requestors=getattr(args, "requestors", 1),
        arbiter=getattr(args, "arbiter", "round-robin"))


def _configure_store(args: argparse.Namespace):
    """Attach (or detach) the on-disk store per the cache flags.

    Returns the attached
    :class:`repro.dram.store.CharacterizationStore` or ``None`` when
    ``--no-disk-cache`` was given.  The store only affects wall-clock
    time; command output is identical either way.
    """
    from .dram.characterize import DEFAULT_CHARACTERIZATION_CACHE
    from .dram.store import CharacterizationStore

    store = None
    if not getattr(args, "no_disk_cache", False):
        store = CharacterizationStore(getattr(args, "cache_dir", None))
    DEFAULT_CHARACTERIZATION_CACHE.attach_store(store)
    return store


def _strategy_options(args: argparse.Namespace):
    """``(strategy, seed, options)`` from the dse flags."""
    strategy = getattr(args, "strategy", "exhaustive")
    seed = getattr(args, "seed", None)
    topk = getattr(args, "funnel_topk", 5.0)
    if not 0.0 < topk <= 100.0:
        raise SystemExit(
            f"--funnel-topk must be in (0, 100], got {topk}")
    options = {}
    if strategy == "funnel":
        options["top_fraction"] = topk / 100.0
    return strategy, seed, options


def _title_suffix(
    config: ControllerConfig,
    channel: Optional[ContentionConfig] = None,
) -> str:
    """Table-title tag for non-default controller/contention configs.

    Empty for the default (Table-II) controller and the default single
    requestor, so default output stays byte-identical to the
    pre-policy, pre-contention CLI.
    """
    tags = []
    if not config.is_default:
        tags.append(config.label)
    if channel is not None and not channel.is_default:
        tags.append(channel.label)
    if not tags:
        return ""
    return f" [{', '.join(tags)}]"


def _workload(args: argparse.Namespace):
    """Instantiate the requested workload graph from the registry."""
    batch = getattr(args, "batch", 1)
    bytes_per_element = getattr(args, "bytes_per_element", 1)
    if batch <= 0:
        raise SystemExit(f"--batch must be positive, got {batch}")
    if bytes_per_element <= 0:
        raise SystemExit(
            f"--bytes-per-element must be positive, "
            f"got {bytes_per_element}")
    return get_workload(
        args.model, batch=batch, bytes_per_element=bytes_per_element)


def _layers(args: argparse.Namespace):
    """The lowered 7-dim loop nests of the requested workload."""
    layers = _workload(args).lower()
    layer = getattr(args, "layer", None)
    if layer is None:
        return layers
    matching = [l for l in layers if l.name == layer]
    if not matching:
        names = ", ".join(l.name for l in layers)
        raise SystemExit(
            f"model {args.model!r} has no layer {layer!r}; "
            f"layers: {names}")
    return matching


def cmd_characterize(args: argparse.Namespace) -> int:
    """Print the Fig.-1 per-condition costs."""
    _configure_store(args)
    requested = _architecture(args.arch) if args.arch else None
    config = _controller(args)
    channel = _contention(args)
    model = getattr(args, "model", "auto")
    if model == "kernel":
        from .dram.kernel import kernel_ineligibility

        reason = kernel_ineligibility(config, channel)
        if reason is not None:
            print(f"warning: model 'kernel' cannot characterize "
                  f"{reason}; falling back to the simulator",
                  file=sys.stderr)
            model = "simulator"
    if args.device == "all":
        devices = list(DEVICE_REGISTRY)
        if requested is not None:
            # Characterize the devices that support the architecture
            # rather than aborting the whole sweep on the first
            # commodity-only profile.
            devices = [d for d in devices if d.supports(requested)]
            if not devices:
                raise ConfigurationError(
                    f"no registered device supports architecture "
                    f"{requested.value!r}")
    else:
        devices = [_device(args.device)]
        if requested is not None:
            devices[0].require_architecture(requested)
    rows = []
    contended = []
    for device in devices:
        if requested is not None:
            architectures = (requested,)
        else:
            architectures = device.supported_architectures
        if model == "analytical":
            from .dram.characterize import characterize_analytical

            results = {
                architecture: characterize_analytical(
                    architecture, device=device, controller=config,
                    contention=channel)
                for architecture in architectures
            }
        else:
            results = characterize_device(
                device, architectures, controller=config,
                contention=channel, model=model)
        for architecture in architectures:
            result = results[architecture]
            for name, cycles, read_nj, write_nj in result.rows():
                rows.append([device.name, architecture.value, name,
                             f"{cycles:.1f}", f"{read_nj:.2f}",
                             f"{write_nj:.2f}"])
            if result.requestor_stats:
                contended.append((device, architecture, result))
    print(format_table(
        ["device", "architecture", "condition", "cycles", "read nJ",
         "write nJ"],
        rows, title="Per-access DRAM costs (paper Fig. 1)"
                    + _title_suffix(config, channel)))
    for device, architecture, result in contended:
        from .core.report import requestor_stats_table

        print()
        print(requestor_stats_table(
            result.requestor_stats,
            title=f"Per-requestor accounting on {architecture.value} "
                  f"({device.name}, steady-state streams)"
                  + _title_suffix(config, channel)))
    return 0


def cmd_edp(args: argparse.Namespace) -> int:
    """Per-mapping EDP for one layer (best tiling each)."""
    _configure_store(args)
    architecture = _architecture(args.arch)
    device = _device(args.device)
    device.require_architecture(architecture)
    config = _controller(args)
    channel = _contention(args)
    scheme = ReuseScheme(args.scheme)
    policies = ([mapping_by_index(args.mapping)] if args.mapping
                else list(TABLE1_MAPPINGS))
    for layer in _layers(args):
        result = explore_layer(
            layer, architectures=(architecture,), schemes=(scheme,),
            policies=policies, device=device, controller=config,
            contention=channel)
        rows = []
        for policy in policies:
            best = result.best(policy=policy)
            rows.append([
                policy.name,
                f"{best.result.energy_nj * 1e-6:.4f}",
                f"{best.result.latency_ns * 1e-6:.4f}",
                f"{best.edp_js:.3e}",
            ])
        print(format_table(
            ["mapping", "energy [mJ]", "latency [ms]", "EDP [J*s]"],
            rows,
            title=f"{layer.name} on {architecture.value} "
                  f"({device.name}), "
                  f"{scheme.value} (best tiling per mapping)"
                  + _title_suffix(config, channel)))
        print()
    return 0


def cmd_dse(args: argparse.Namespace) -> int:
    """Algorithm 1: min-EDP design point per layer."""
    from .core.engine import DEFAULT_CHUNK_SIZE, ExplorationEngine

    _configure_store(args)
    architecture = _architecture(args.arch)
    device = _device(args.device)
    device.require_architecture(architecture)
    config = _controller(args)
    channel = _contention(args)
    strategy, seed, options = _strategy_options(args)
    if args.jobs < 0:
        raise SystemExit(f"--jobs must be >= 0, got {args.jobs}")
    if args.chunk_size is not None and args.chunk_size <= 0:
        raise SystemExit(
            f"--chunk-size must be positive, got {args.chunk_size}")
    engine = ExplorationEngine(
        jobs=args.jobs,
        chunk_size=(args.chunk_size if args.chunk_size is not None
                    else DEFAULT_CHUNK_SIZE),
        strategy=strategy,
        seed=seed,
        strategy_options=options,
        eval_model=args.eval_model)
    rows = []
    total = 0.0
    evaluated = 0
    scored = 0
    grid_points = 0
    for layer in _layers(args):
        result = explore_layer(
            layer, architectures=(architecture,), engine=engine,
            device=device, controller=config, contention=channel)
        best = result.best()
        total += best.edp_js
        evaluated += result.evaluated_points
        scored += result.scored_points
        grid_points += result.total_points
        tiling = best.tiling
        rows.append([
            layer.name, best.policy.name,
            best.result.resolved_scheme.value,
            f"{tiling.th}/{tiling.tw}/{tiling.tj}/{tiling.ti}",
            f"{best.edp_js:.3e}",
        ])
    rows.append(["TOTAL", "", "", "", f"{total:.3e}"])
    # The default exhaustive strategy keeps the title byte-identical
    # to the pre-strategy CLI; heuristic runs are tagged and
    # summarized.
    strategy_suffix = "" if strategy == "exhaustive" \
        else f" [strategy: {strategy}]"
    print(format_table(
        ["layer", "mapping", "schedule", "tiling Th/Tw/Tj/Ti",
         "min EDP [J*s]"],
        rows, title=f"Algorithm 1 on {architecture.value} "
                    f"({device.name})" + _title_suffix(config, channel)
                    + strategy_suffix))
    if strategy != "exhaustive":
        line = (f"strategy {strategy}: {evaluated}/{grid_points} design "
                f"points evaluated exactly")
        if scored:
            line += f", {scored} scored analytically"
        if seed is not None:
            line += f", seed {seed}"
        print(line)
    return 0


def cmd_traffic(args: argparse.Namespace) -> int:
    """DRAM traffic per scheduling scheme for each layer.

    Byte counts are device-independent; with ``--device`` each cell
    also shows the burst count on that device's interface (bytes per
    burst differ across generations).
    """
    device = _device(args.device) if args.device else None
    # --scheduler/--row-policy are accepted for interface uniformity
    # (argparse constrains them to registered names); traffic volumes
    # are controller-independent, so they affect nothing here.
    rows = []
    for layer in _layers(args):
        tiling = enumerate_tilings(layer)[0]
        row = [layer.name]
        for scheme in CONCRETE_SCHEMES:
            traffic = layer_traffic(layer, tiling, scheme)
            cell = format_bytes(traffic.total_bytes)
            if device is not None:
                bursts = device.organization.accesses_for_bytes(
                    traffic.total_bytes)
                cell += f" ({bursts} bursts)"
            row.append(cell)
        rows.append(row)
    title = f"DRAM traffic of {args.model}"
    if device is not None:
        title += (f" on {device.name} "
                  f"({device.organization.bytes_per_burst} B/burst)")
    print(format_table(
        ["layer"] + [s.value for s in CONCRETE_SCHEMES],
        rows, title=title))
    return 0


def cmd_models(args: argparse.Namespace) -> int:
    """List the registered workloads; ``--detail`` shows the graphs."""
    from .core.report import handoff_table

    names = workload_names()
    if args.model is not None:
        if args.model not in names:
            raise ConfigurationError(
                f"unknown model {args.model!r}; choose from: "
                f"{', '.join(names)}")
        names = [args.model]
    rows = []
    networks = {}
    for name in names:
        network = get_workload(name)
        networks[name] = network
        summary = handoff_summary(network)
        rows.append([
            name,
            str(len(network.ops)),
            str(len(network.lower())),
            str(len(summary.skip_edges)),
            format_bytes(network.weight_bytes),
        ])
    print(format_table(
        ["model", "ops", "loop nests", "skip edges", "weights"],
        rows, title="Registered workloads"))
    if not args.detail:
        return 0
    for name in names:
        network = networks[name]
        print()
        print(format_table(
            ["op", "kind", "inputs", "output (CxHxW)", "lowers to"],
            network.describe_rows(),
            title=f"{name}: operator graph (batch={network.batch})"))
        print()
        print(handoff_table(handoff_summary(network)))
    return 0


def cmd_policies(args: argparse.Namespace) -> int:
    """List the registered memory-controller policies."""
    from .core.report import policies_table

    del args
    print(policies_table())
    return 0


def cmd_arbiters(args: argparse.Namespace) -> int:
    """List the registered channel arbiters."""
    from .core.report import arbiters_table

    del args
    print(arbiters_table())
    return 0


def cmd_strategies(args: argparse.Namespace) -> int:
    """List the registered DSE search strategies."""
    from .core.strategies import strategy_summaries

    del args
    rows = [[name, summary]
            for name, summary in strategy_summaries().items()]
    print(format_table(
        ["strategy", "purpose"], rows,
        title="Registered DSE search strategies"))
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or empty the on-disk characterization store."""
    from .dram.store import CharacterizationStore
    from .units import format_bytes as _fmt

    store = CharacterizationStore(args.cache_dir)
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached characterization(s) from "
              f"{store.root}")
        return 0
    stats = store.stats()
    rows = [
        ["root", stats.root],
        ["entries", str(stats.entries)],
        ["size", _fmt(stats.total_bytes)],
    ]
    print(format_table(
        ["field", "value"], rows,
        title="On-disk characterization store"))
    from .core.engine import evaluation_cache_stats
    from .dram.characterize import DEFAULT_CHARACTERIZATION_CACHE

    memo = DEFAULT_CHARACTERIZATION_CACHE.stats
    evaluation = evaluation_cache_stats()
    memory_rows = [
        ["characterization", str(memo.hits), str(memo.misses),
         f"{memo.hit_rate:.0%}"],
        ["evaluation", str(evaluation.hits), str(evaluation.misses),
         f"{evaluation.hit_rate:.0%}"],
    ]
    print()
    print(format_table(
        ["cache", "hits", "misses", "hit rate"], memory_rows,
        title="In-memory caches (this process)"))
    return 0


def cmd_devices(args: argparse.Namespace) -> int:
    """List the registered DRAM device profiles."""
    del args
    rows = []
    for profile in DEVICE_REGISTRY:
        org = profile.organization
        geometry = (f"{org.channels}ch x {org.banks_per_chip}ba x "
                    f"{org.subarrays_per_bank}sa, "
                    f"x{org.device_width_bits}")
        rows.append([
            profile.name,
            str(profile.data_rate_mts),
            geometry,
            format_bytes(profile.capacity_bytes),
            "/".join(a.value for a in profile.supported_architectures),
        ])
    print(format_table(
        ["device", "MT/s", "geometry", "capacity", "architectures"],
        rows, title="Registered DRAM device profiles"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DRMap reproduction command-line interface")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_controller_arguments(subparser: argparse.ArgumentParser
                                 ) -> None:
        """``--scheduler``/``--row-policy`` pair.

        Choices derive from the policy registry, so new policies
        appear without touching the CLI.
        """
        subparser.add_argument(
            "--scheduler", default="fcfs",
            choices=scheduler_names(),
            help="controller scheduling policy (default: fcfs, the "
                 "paper's Table-II controller)")
        subparser.add_argument(
            "--row-policy", dest="row_policy", default="open",
            choices=row_policy_names(),
            help="row-buffer policy (default: open, the paper's "
                 "Table-II policy)")

    def add_contention_arguments(subparser: argparse.ArgumentParser
                                 ) -> None:
        """``--requestors``/``--arbiter`` pair.

        Arbiter choices derive from the contention registry, so new
        arbiters appear without touching the CLI.
        """
        subparser.add_argument(
            "--requestors", type=int, default=1,
            help="request streams sharing the channel (default: 1, "
                 "the uncontended pre-crossbar path)")
        subparser.add_argument(
            "--arbiter", default="round-robin",
            choices=arbiter_names(),
            help="crossbar arbitration policy for contended runs "
                 "(default: round-robin; ignored at --requestors 1)")

    def add_cache_arguments(subparser: argparse.ArgumentParser) -> None:
        """``--cache-dir``/``--no-disk-cache`` pair."""
        subparser.add_argument(
            "--cache-dir", dest="cache_dir", default=None,
            help="on-disk characterization store directory (default: "
                 "$REPRO_CACHE_DIR or ~/.cache/repro)")
        subparser.add_argument(
            "--no-disk-cache", dest="no_disk_cache",
            action="store_true",
            help="do not read or write the on-disk characterization "
                 "store")

    p_char = subparsers.add_parser(
        "characterize", help="print the Fig.-1 per-condition costs")
    p_char.add_argument("--arch", default=None,
                        help="one architecture (default: every "
                             "architecture the device supports)")
    p_char.add_argument("--device", default=None,
                        help="device profile name, or 'all' for every "
                             "registered device (default: "
                             "ddr3-1600-2gb-x8)")
    p_char.add_argument(
        "--model", default="auto",
        choices=("auto", "simulator", "analytical", "kernel"),
        help="characterization backend: the cycle-level simulator, "
             "the closed-form analytical model, the vectorized batch "
             "kernel, or 'auto' (kernel when the configuration is "
             "eligible, simulator otherwise; the default)")
    add_controller_arguments(p_char)
    add_contention_arguments(p_char)
    add_cache_arguments(p_char)
    p_char.set_defaults(func=cmd_characterize)

    def add_workload_arguments(subparser: argparse.ArgumentParser
                               ) -> None:
        """``--model``/``--batch``/``--bytes-per-element`` trio.

        Choices derive from the live workload registry, so
        ``register_workload`` additions appear without touching the
        CLI.
        """
        subparser.add_argument("--model", default="alexnet",
                               choices=workload_names())
        subparser.add_argument("--layer", default=None)
        subparser.add_argument(
            "--batch", type=int, default=1,
            help="workload batch size B (default: 1)")
        subparser.add_argument(
            "--bytes-per-element", type=int, default=1,
            help="datum size in bytes: 1=int8, 2=fp16, 4=fp32 "
                 "(default: 1)")

    p_edp = subparsers.add_parser(
        "edp", help="per-mapping EDP for one layer")
    add_workload_arguments(p_edp)
    p_edp.add_argument("--arch", default="DDR3")
    p_edp.add_argument("--scheme", default="adaptive-reuse",
                       choices=[s.value for s in ALL_SCHEMES])
    p_edp.add_argument("--mapping", type=int, default=None,
                       choices=range(1, 7),
                       help="Table-I index (default: all six)")
    p_edp.add_argument("--device", default=None,
                       help="device profile name (default: "
                            "ddr3-1600-2gb-x8)")
    add_controller_arguments(p_edp)
    add_contention_arguments(p_edp)
    add_cache_arguments(p_edp)
    p_edp.set_defaults(func=cmd_edp)

    p_dse = subparsers.add_parser(
        "dse", help="Algorithm 1: min-EDP design point per layer")
    add_workload_arguments(p_dse)
    p_dse.add_argument("--arch", default="DDR3")
    p_dse.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the exploration grid "
             "(1: in-process, 0: one per CPU); results are identical "
             "for every value")
    p_dse.add_argument(
        "--chunk-size", type=int, default=None,
        help="grid points per shard (default: 256)")
    p_dse.add_argument("--device", default=None,
                       help="device profile name (default: "
                            "ddr3-1600-2gb-x8)")
    add_controller_arguments(p_dse)
    add_contention_arguments(p_dse)
    add_cache_arguments(p_dse)
    from .core.strategies import strategy_names

    p_dse.add_argument(
        "--strategy", default="exhaustive",
        choices=strategy_names(),
        help="search strategy over the design grid (default: "
             "exhaustive, the paper's Algorithm 1; see 'repro "
             "strategies')")
    p_dse.add_argument(
        "--seed", type=int, default=None,
        help="seed of the strategy's randomized choices (default: "
             "the strategy's deterministic default, 0)")
    p_dse.add_argument(
        "--funnel-topk", dest="funnel_topk", type=float, default=5.0,
        help="funnel strategy: percentage of each layer's grid "
             "re-evaluated exactly after analytical pruning "
             "(default: 5)")
    from .core.eval_kernel import EVAL_MODELS

    p_dse.add_argument(
        "--eval-model", dest="eval_model", default="auto",
        choices=EVAL_MODELS,
        help="point-evaluation backend: 'vector' batches whole "
             "chunks through the numpy Eq. 2/3 kernel, 'scalar' "
             "keeps the per-point loop, 'auto' (default) vectorizes "
             "when numpy is available; results are bit-identical "
             "for every choice")
    p_dse.set_defaults(func=cmd_dse)

    p_traffic = subparsers.add_parser(
        "traffic", help="DRAM traffic per scheduling scheme")
    add_workload_arguments(p_traffic)
    p_traffic.add_argument("--device", default=None,
                           help="device profile name: adds per-device "
                                "burst counts")
    add_controller_arguments(p_traffic)
    p_traffic.set_defaults(func=cmd_traffic)

    p_models = subparsers.add_parser(
        "models", help="list registered workloads")
    p_models.add_argument(
        "--detail", action="store_true",
        help="print each workload's operator graph and feature-map "
             "hand-off residency analysis")
    p_models.add_argument(
        "--model", default=None,
        help="restrict the listing to one workload")
    p_models.set_defaults(func=cmd_models)

    p_devices = subparsers.add_parser(
        "devices", help="list registered DRAM device profiles")
    p_devices.set_defaults(func=cmd_devices)

    p_policies = subparsers.add_parser(
        "policies", help="list registered memory-controller policies")
    p_policies.set_defaults(func=cmd_policies)

    p_arbiters = subparsers.add_parser(
        "arbiters", help="list registered channel arbiters")
    p_arbiters.set_defaults(func=cmd_arbiters)

    p_strategies = subparsers.add_parser(
        "strategies", help="list registered DSE search strategies")
    p_strategies.set_defaults(func=cmd_strategies)

    p_cache = subparsers.add_parser(
        "cache", help="inspect or empty the on-disk characterization "
                      "store")
    p_cache.add_argument("action", choices=("stats", "clear"),
                         help="'stats' prints the store contents; "
                              "'clear' deletes every entry")
    p_cache.add_argument(
        "--cache-dir", dest="cache_dir", default=None,
        help="store directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)")
    p_cache.set_defaults(func=cmd_cache)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Configuration problems — unknown ``--device``/``--arch`` names, an
    architecture outside the device's capability set — exit with
    status 2 (argparse's usage-error convention) and the message names
    the valid choices.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (head, a pager) closed the pipe; park
        # stdout on devnull so the interpreter's shutdown flush does
        # not print a second traceback, and exit with SIGPIPE's
        # conventional status.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
