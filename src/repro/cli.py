"""Command-line interface for the DRMap reproduction.

Usage::

    python -m repro characterize [--arch DDR3]
    python -m repro edp --model alexnet --layer CONV2 [--mapping 3]
    python -m repro dse --model alexnet [--arch SALP-MASA] [--layer FC6]
                        [--jobs N] [--chunk-size M]
    python -m repro traffic --model alexnet
    python -m repro models

Each subcommand prints the same plain-text tables the benchmark
harness produces, so the paper's experiments are reachable without
writing any Python.

``dse`` runs on the sharded :mod:`repro.core.engine`:

``--jobs N``
    Worker processes for the exploration grid.  ``1`` (default) stays
    in-process; ``0`` spawns one worker per CPU.  Output is identical
    for every value — shards merge deterministically in grid order.
``--chunk-size M``
    Grid points per shard (default 256).  Smaller chunks smooth load
    balancing across workers; larger chunks cut scheduling overhead.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .cnn.models import MODEL_REGISTRY, model_by_name
from .cnn.scheduling import ALL_SCHEMES, CONCRETE_SCHEMES, ReuseScheme
from .cnn.tiling import enumerate_tilings
from .cnn.traffic import layer_traffic
from .core.dse import explore_layer
from .core.report import format_table
from .dram.architecture import ALL_ARCHITECTURES, DRAMArchitecture
from .dram.characterize import characterize_preset
from .mapping.catalog import TABLE1_MAPPINGS, mapping_by_index
from .units import format_bytes


def _architecture(name: str) -> DRAMArchitecture:
    try:
        return DRAMArchitecture(name)
    except ValueError:
        choices = ", ".join(a.value for a in DRAMArchitecture)
        raise SystemExit(
            f"unknown architecture {name!r}; choose from: {choices}")


def _layers(model: str, layer: Optional[str]):
    layers = model_by_name(model)
    if layer is None:
        return layers
    matching = [l for l in layers if l.name == layer]
    if not matching:
        names = ", ".join(l.name for l in layers)
        raise SystemExit(
            f"model {model!r} has no layer {layer!r}; layers: {names}")
    return matching


def cmd_characterize(args: argparse.Namespace) -> int:
    """Print the Fig.-1 per-condition costs."""
    architectures = ([_architecture(args.arch)] if args.arch
                     else list(ALL_ARCHITECTURES))
    rows = []
    for architecture in architectures:
        result = characterize_preset(architecture)
        for name, cycles, read_nj, write_nj in result.rows():
            rows.append([architecture.value, name, f"{cycles:.1f}",
                         f"{read_nj:.2f}", f"{write_nj:.2f}"])
    print(format_table(
        ["architecture", "condition", "cycles", "read nJ", "write nJ"],
        rows, title="Per-access DRAM costs (paper Fig. 1)"))
    return 0


def cmd_edp(args: argparse.Namespace) -> int:
    """Per-mapping EDP for one layer (best tiling each)."""
    architecture = _architecture(args.arch)
    scheme = ReuseScheme(args.scheme)
    policies = ([mapping_by_index(args.mapping)] if args.mapping
                else list(TABLE1_MAPPINGS))
    for layer in _layers(args.model, args.layer):
        result = explore_layer(
            layer, architectures=(architecture,), schemes=(scheme,),
            policies=policies)
        rows = []
        for policy in policies:
            best = result.best(policy=policy)
            rows.append([
                policy.name,
                f"{best.result.energy_nj * 1e-6:.4f}",
                f"{best.result.latency_ns * 1e-6:.4f}",
                f"{best.edp_js:.3e}",
            ])
        print(format_table(
            ["mapping", "energy [mJ]", "latency [ms]", "EDP [J*s]"],
            rows,
            title=f"{layer.name} on {architecture.value}, "
                  f"{scheme.value} (best tiling per mapping)"))
        print()
    return 0


def cmd_dse(args: argparse.Namespace) -> int:
    """Algorithm 1: min-EDP design point per layer."""
    from .core.engine import DEFAULT_CHUNK_SIZE, ExplorationEngine

    architecture = _architecture(args.arch)
    if args.jobs < 0:
        raise SystemExit(f"--jobs must be >= 0, got {args.jobs}")
    if args.chunk_size is not None and args.chunk_size <= 0:
        raise SystemExit(
            f"--chunk-size must be positive, got {args.chunk_size}")
    engine = ExplorationEngine(
        jobs=args.jobs,
        chunk_size=(args.chunk_size if args.chunk_size is not None
                    else DEFAULT_CHUNK_SIZE))
    rows = []
    total = 0.0
    for layer in _layers(args.model, args.layer):
        result = explore_layer(
            layer, architectures=(architecture,), engine=engine)
        best = result.best()
        total += best.edp_js
        tiling = best.tiling
        rows.append([
            layer.name, best.policy.name,
            best.result.resolved_scheme.value,
            f"{tiling.th}/{tiling.tw}/{tiling.tj}/{tiling.ti}",
            f"{best.edp_js:.3e}",
        ])
    rows.append(["TOTAL", "", "", "", f"{total:.3e}"])
    print(format_table(
        ["layer", "mapping", "schedule", "tiling Th/Tw/Tj/Ti",
         "min EDP [J*s]"],
        rows, title=f"Algorithm 1 on {architecture.value}"))
    return 0


def cmd_traffic(args: argparse.Namespace) -> int:
    """DRAM traffic per scheduling scheme for each layer."""
    rows = []
    for layer in _layers(args.model, args.layer):
        tiling = enumerate_tilings(layer)[0]
        row = [layer.name]
        for scheme in CONCRETE_SCHEMES:
            traffic = layer_traffic(layer, tiling, scheme)
            row.append(format_bytes(traffic.total_bytes))
        rows.append(row)
    print(format_table(
        ["layer"] + [s.value for s in CONCRETE_SCHEMES],
        rows, title=f"DRAM traffic of {args.model}"))
    return 0


def cmd_models(args: argparse.Namespace) -> int:
    """List the registered models and their layers."""
    del args
    rows = []
    for name in sorted(MODEL_REGISTRY):
        layers = model_by_name(name)
        weights = sum(l.wghs_bytes for l in layers)
        rows.append([name, str(len(layers)), format_bytes(weights)])
    print(format_table(
        ["model", "layers", "weights"], rows, title="Registered models"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DRMap reproduction command-line interface")
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_char = subparsers.add_parser(
        "characterize", help="print the Fig.-1 per-condition costs")
    p_char.add_argument("--arch", default=None,
                        help="one architecture (default: all four)")
    p_char.set_defaults(func=cmd_characterize)

    p_edp = subparsers.add_parser(
        "edp", help="per-mapping EDP for one layer")
    p_edp.add_argument("--model", default="alexnet",
                       choices=sorted(MODEL_REGISTRY))
    p_edp.add_argument("--layer", default=None)
    p_edp.add_argument("--arch", default="DDR3")
    p_edp.add_argument("--scheme", default="adaptive-reuse",
                       choices=[s.value for s in ALL_SCHEMES])
    p_edp.add_argument("--mapping", type=int, default=None,
                       choices=range(1, 7),
                       help="Table-I index (default: all six)")
    p_edp.set_defaults(func=cmd_edp)

    p_dse = subparsers.add_parser(
        "dse", help="Algorithm 1: min-EDP design point per layer")
    p_dse.add_argument("--model", default="alexnet",
                       choices=sorted(MODEL_REGISTRY))
    p_dse.add_argument("--layer", default=None)
    p_dse.add_argument("--arch", default="DDR3")
    p_dse.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the exploration grid "
             "(1: in-process, 0: one per CPU); results are identical "
             "for every value")
    p_dse.add_argument(
        "--chunk-size", type=int, default=None,
        help="grid points per shard (default: 256)")
    p_dse.set_defaults(func=cmd_dse)

    p_traffic = subparsers.add_parser(
        "traffic", help="DRAM traffic per scheduling scheme")
    p_traffic.add_argument("--model", default="alexnet",
                           choices=sorted(MODEL_REGISTRY))
    p_traffic.add_argument("--layer", default=None)
    p_traffic.set_defaults(func=cmd_traffic)

    p_models = subparsers.add_parser(
        "models", help="list registered models")
    p_models.set_defaults(func=cmd_models)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
