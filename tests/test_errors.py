"""Tests for the exception hierarchy."""

import pytest

from repro import errors


@pytest.mark.parametrize("exc_class", [
    errors.ConfigurationError,
    errors.CapacityError,
    errors.SchedulingError,
    errors.MappingError,
    errors.DseError,
])
def test_all_derive_from_repro_error(exc_class):
    assert issubclass(exc_class, errors.ReproError)


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)


def test_catching_base_catches_specific():
    with pytest.raises(errors.ReproError):
        raise errors.MappingError("loop order broken")


def test_distinct_branches():
    # Configuration and scheduling problems are separate branches.
    assert not issubclass(errors.SchedulingError, errors.ConfigurationError)
    assert not issubclass(errors.ConfigurationError, errors.SchedulingError)
