"""Tests for repro.units."""

import math

import pytest

from repro import units


class TestTimeConversions:
    def test_ns_to_s_round_trip(self):
        assert units.s_to_ns(units.ns_to_s(123.0)) == pytest.approx(123.0)

    def test_ns_to_s_magnitude(self):
        assert units.ns_to_s(1e9) == pytest.approx(1.0)

    def test_cycles_to_ns(self):
        assert units.cycles_to_ns(10, 1.25) == pytest.approx(12.5)

    def test_ns_to_cycles_rounds_up(self):
        assert units.ns_to_cycles(13.75, 1.25) == 11
        assert units.ns_to_cycles(13.80, 1.25) == 12

    def test_ns_to_cycles_exact_boundary(self):
        # 15 ns at 1.25 ns/cycle is exactly 12 cycles, not 13.
        assert units.ns_to_cycles(15.0, 1.25) == 12


class TestEnergyConversions:
    def test_nj_to_j_round_trip(self):
        assert units.j_to_nj(units.nj_to_j(42.0)) == pytest.approx(42.0)

    def test_edp_joule_seconds(self):
        # 1e9 nJ over 1e9 ns is 1 J over 1 s -> 1 J*s.
        assert units.edp_joule_seconds(1e9, 1e9) == pytest.approx(1.0)

    def test_edp_scales_bilinearly(self):
        base = units.edp_joule_seconds(100.0, 200.0)
        assert units.edp_joule_seconds(200.0, 200.0) \
            == pytest.approx(2 * base)
        assert units.edp_joule_seconds(100.0, 400.0) \
            == pytest.approx(2 * base)


class TestFormatting:
    def test_format_si_zero(self):
        assert units.format_si(0, "J") == "0 J"

    def test_format_si_milli(self):
        assert units.format_si(2.5e-3, "J") == "2.5 mJ"

    def test_format_si_kilo(self):
        assert units.format_si(1500.0, "B/s") == "1.5 kB/s"

    def test_format_si_nano(self):
        assert "nJ" in units.format_si(3.2e-9, "J")

    def test_format_bytes_small(self):
        assert units.format_bytes(17) == "17 B"

    def test_format_bytes_exact_kb(self):
        assert units.format_bytes(64 * 1024) == "64 KB"

    def test_format_bytes_fractional_mb(self):
        assert units.format_bytes(int(2.5 * 1024 * 1024)) == "2.50 MB"


class TestCeilDiv:
    def test_exact(self):
        assert units.ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert units.ceil_div(9, 4) == 3

    def test_zero_numerator(self):
        assert units.ceil_div(0, 4) == 0

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            units.ceil_div(1, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValueError):
            units.ceil_div(-1, 4)

    def test_matches_math_ceil(self):
        for numerator in range(0, 50):
            for denominator in range(1, 9):
                assert units.ceil_div(numerator, denominator) \
                    == math.ceil(numerator / denominator)
