"""Differential suite: vector evaluation backend vs the scalar loop.

The vectorized kernel (:mod:`repro.core.eval_kernel`) is contractually
bit-for-bit identical to the scalar per-point loop — not "numerically
close".  This module pins that contract on the paper's AlexNet/DDR3
workload across every supported architecture, every jobs/chunk-size
combination the streaming tests exercise, the funnel's batched
analytical scoring, and the reduced/Pareto merge paths.
"""

import pytest

from repro.cnn.models import alexnet, tiny_test_network
from repro.core import eval_kernel
from repro.core.engine import (
    EvaluationCache,
    ExplorationEngine,
    _build_context,
)
from repro.core.eval_kernel import (
    EVAL_MODELS,
    batch_scores,
    have_numpy,
    iter_layer_segments,
    make_chunk_evaluator,
    validate_eval_model,
)
from repro.core.strategies import analytical_scores
from repro.dram.characterize import DEFAULT_CHARACTERIZATION_CACHE
from repro.dram.device import get_device
from repro.cnn.scheduling import ALL_SCHEMES
from repro.cnn.tiling import TABLE2_BUFFERS
from repro.errors import CapacityError, DseError
from repro.mapping.catalog import TABLE1_MAPPINGS
from repro.mapping.counts import count_transitions, count_transitions_batch

np = pytest.importorskip("numpy")


@pytest.fixture(scope="module")
def conv1():
    return [layer for layer in alexnet() if layer.name == "CONV1"]


@pytest.fixture(scope="module")
def tiny_layer():
    return tiny_test_network()[0]


@pytest.fixture(scope="module")
def scalar_reference(conv1):
    """The scalar jobs=1 exhaustive result every variant must equal."""
    return ExplorationEngine(jobs=1, eval_model="scalar") \
        .explore_network(conv1)


def _hex_points(result):
    """Bit-exact view of every float the DSE produced."""
    return [
        (point.layer_name, point.architecture, point.scheme,
         point.policy.name, point.tiling,
         point.result.energy_nj.hex(), float(point.result.cycles).hex(),
         point.edp_js.hex(),
         tuple((name, cost.cycles.hex(), cost.energy_nj.hex())
               for name, cost in point.result.by_type.items()))
        for point in result.points
    ]


class TestCountsBatch:
    """count_transitions_batch vs the scalar Eq. 2/3 closed form."""

    @pytest.mark.parametrize("policy", TABLE1_MAPPINGS,
                             ids=[p.name for p in TABLE1_MAPPINGS])
    def test_matches_scalar_counts(self, policy, table2_org):
        lengths = np.asarray(
            [1, 2, 3, 7, 8, 64, 1024, 4096, 65536], dtype=np.int64)
        batch = count_transitions_batch(policy, table2_org, lengths)
        for column, n in enumerate(lengths.tolist()):
            scalar = count_transitions(policy, table2_org, n)
            expected = [scalar.by_dim.get(dim, 0)
                        for dim in policy.full_order]
            assert batch[:, column].tolist() == expected

    def test_conservation_across_the_batch(self, table2_org):
        policy = TABLE1_MAPPINGS[0]
        lengths = np.arange(1, 513, dtype=np.int64)
        batch = count_transitions_batch(policy, table2_org, lengths)
        assert (batch.sum(axis=0) + 1 == lengths).all()

    def test_over_capacity_raises_capacity_error(self, table2_org):
        policy = TABLE1_MAPPINGS[0]
        too_long = policy.capacity(table2_org) + 1
        with pytest.raises(CapacityError):
            count_transitions_batch(
                policy, table2_org,
                np.asarray([1, too_long], dtype=np.int64))

    def test_rejects_non_positive_lengths(self, table2_org):
        policy = TABLE1_MAPPINGS[0]
        with pytest.raises(ValueError):
            count_transitions_batch(
                policy, table2_org, np.asarray([4, 0], dtype=np.int64))


class TestBitIdentityOnAlexNet:
    """AlexNet/DDR3: vector output bit-equal for every jobs x chunk."""

    def test_covers_all_four_architectures(self, scalar_reference):
        assert len({point.architecture
                    for point in scalar_reference.points}) == 4

    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("chunk_size", [7, 64, 256, 1000])
    def test_vector_points_bit_equal(self, conv1, scalar_reference,
                                     jobs, chunk_size):
        vector = ExplorationEngine(
            jobs=jobs, chunk_size=chunk_size,
            eval_model="vector").explore_network(conv1)
        assert vector.points == scalar_reference.points
        assert _hex_points(vector) == _hex_points(scalar_reference)
        assert vector.best() == scalar_reference.best()

    def test_auto_equals_vector_equals_scalar(self, conv1,
                                              scalar_reference):
        auto = ExplorationEngine(jobs=1, eval_model="auto") \
            .explore_network(conv1)
        assert _hex_points(auto) == _hex_points(scalar_reference)

    @pytest.mark.parametrize("device_name",
                             ["ddr4-2400", "lpddr4-3200", "hbm2"])
    def test_other_devices_bit_equal(self, conv1, device_name):
        device = get_device(device_name)
        scalar = ExplorationEngine(jobs=1, eval_model="scalar") \
            .explore_network(conv1, device=device)
        vector = ExplorationEngine(jobs=1, eval_model="vector") \
            .explore_network(conv1, device=device)
        assert _hex_points(vector) == _hex_points(scalar)


class TestReducedAndPareto:
    """Reduced merge + Pareto front under the vector backend."""

    def test_parallel_vector_reduced_equals_serial_scalar(self, conv1):
        scalar = ExplorationEngine(jobs=1, eval_model="scalar") \
            .explore_reduced(conv1)
        vector = ExplorationEngine(jobs=2, chunk_size=61,
                                   eval_model="vector") \
            .explore_reduced(conv1)
        assert vector.best() == scalar.best()
        assert vector.best_by_key == scalar.best_by_key
        scalar_front = [(p.energy_nj, p.latency_ns)
                        for p in scalar.pareto.front()]
        vector_front = [(p.energy_nj, p.latency_ns)
                        for p in vector.pareto.front()]
        assert vector_front == scalar_front


class TestFunnelAndScores:
    """The funnel's batched analytical scoring vs the scalar loop."""

    def _context(self, layers):
        return _build_context(
            layers, None, ALL_SCHEMES, TABLE1_MAPPINGS, TABLE2_BUFFERS,
            None, None, DEFAULT_CHARACTERIZATION_CACHE)

    def test_batch_scores_bit_equal(self, conv1):
        context = self._context(conv1)
        scalar = analytical_scores(
            context, EvaluationCache(), eval_model="scalar")
        batched = batch_scores(context, EvaluationCache())
        assert batched is not None
        assert len(batched) == len(scalar) == context.total_points
        assert [b.hex() for b in batched] == [s.hex() for s in scalar]

    def test_analytical_scores_auto_uses_batch(self, conv1):
        context = self._context(conv1)
        auto = analytical_scores(context, EvaluationCache())
        scalar = analytical_scores(
            context, EvaluationCache(), eval_model="scalar")
        assert [a.hex() for a in auto] == [s.hex() for s in scalar]

    def test_funnel_end_to_end_bit_equal(self, conv1):
        scalar = ExplorationEngine(jobs=1, strategy="funnel",
                                   eval_model="scalar") \
            .explore_network(conv1)
        vector = ExplorationEngine(jobs=1, strategy="funnel",
                                   eval_model="vector") \
            .explore_network(conv1)
        assert _hex_points(vector) == _hex_points(scalar)
        assert vector.scored_points == scalar.scored_points


class TestEvalModelKnob:
    """Validation, fallback and cache-stat surfacing."""

    def test_unknown_model_rejected(self):
        with pytest.raises(DseError, match="unknown eval_model"):
            ExplorationEngine(eval_model="gpu")
        assert validate_eval_model("auto") == "auto"
        assert set(EVAL_MODELS) == {"auto", "scalar", "vector"}

    def test_scalar_model_returns_fallback_unchanged(self, tiny_layer):
        sentinel = object()
        context = _build_context(
            [tiny_layer], None, ALL_SCHEMES, TABLE1_MAPPINGS,
            TABLE2_BUFFERS, None, None, DEFAULT_CHARACTERIZATION_CACHE)
        assert make_chunk_evaluator(
            context, EvaluationCache(), "scalar", sentinel) is sentinel

    def test_vector_without_numpy_rejected(self, monkeypatch):
        monkeypatch.setattr(eval_kernel, "np", None)
        with pytest.raises(DseError, match="requires numpy"):
            validate_eval_model("vector")

    def test_auto_without_numpy_degrades_to_scalar(self, monkeypatch,
                                                   tiny_layer):
        monkeypatch.setattr(eval_kernel, "np", None)
        assert not have_numpy()
        sentinel = object()
        context = _build_context(
            [tiny_layer], None, ALL_SCHEMES, TABLE1_MAPPINGS,
            TABLE2_BUFFERS, None, None, DEFAULT_CHARACTERIZATION_CACHE)
        assert make_chunk_evaluator(
            context, EvaluationCache(), "auto", sentinel) is sentinel
        assert batch_scores(context, EvaluationCache()) is None

    def test_layer_segments_respect_boundaries(self, conv1, tiny_layer):
        context = _build_context(
            conv1 + [tiny_layer], None, ALL_SCHEMES, TABLE1_MAPPINGS,
            TABLE2_BUFFERS, None, None, DEFAULT_CHARACTERIZATION_CACHE)
        segments = list(iter_layer_segments(
            context, 0, context.total_points))
        assert [start for _, start, _ in segments] \
            == list(context.offsets)
        assert segments[-1][2] == context.total_points
        boundary = context.offsets[1]
        straddling = list(iter_layer_segments(
            context, boundary - 3, boundary + 3))
        assert straddling == [(0, boundary - 3, boundary),
                              (1, boundary, boundary + 3)]

    def test_engine_chunks_are_layer_aligned(self, conv1, tiny_layer):
        engine = ExplorationEngine(jobs=1, chunk_size=7)
        context = _build_context(
            conv1 + [tiny_layer], None, ALL_SCHEMES, TABLE1_MAPPINGS,
            TABLE2_BUFFERS, None, None, DEFAULT_CHARACTERIZATION_CACHE)
        chunks = list(engine._chunks(context))
        # Gapless, in-order cover of the grid ...
        assert chunks[0][0] == 0
        assert chunks[-1][1] == context.total_points
        for (_, stop), (next_start, _) in zip(chunks, chunks[1:]):
            assert stop == next_start
        # ... where no chunk straddles a layer boundary; every interior
        # boundary instead starts a fresh chunk.
        boundaries = set(context.offsets[1:])
        for start, stop in chunks:
            assert not any(start < b < stop for b in boundaries)
        assert boundaries <= {start for start, _ in chunks}

    def test_cache_stats_surfaced_serial_and_parallel(self, tiny_layer):
        serial = ExplorationEngine(jobs=1, eval_model="vector") \
            .explore_network([tiny_layer])
        assert serial.eval_cache_stats is not None
        assert serial.eval_cache_stats.lookups > 0
        parallel = ExplorationEngine(jobs=2, chunk_size=7,
                                     eval_model="vector") \
            .explore_network([tiny_layer])
        assert parallel.eval_cache_stats is not None
        assert parallel.eval_cache_stats.lookups > 0

    def test_cache_stats_merge_on_extend(self, tiny_layer):
        first = ExplorationEngine(jobs=1, eval_model="vector") \
            .explore_network([tiny_layer])
        second = ExplorationEngine(jobs=1, eval_model="scalar") \
            .explore_network([tiny_layer])
        lookups = (first.eval_cache_stats.lookups
                   + second.eval_cache_stats.lookups)
        first.extend(second)
        assert first.eval_cache_stats.lookups == lookups
