"""Tests for the ASCII figure renderer."""

import pytest

from repro.core.figures import bar_chart, grouped_bar_chart, sparkline


class TestBarChart:
    def test_each_value_gets_a_line(self):
        chart = bar_chart({"a": 1.0, "b": 2.0}, title="T")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 3

    def test_larger_value_longer_bar(self):
        chart = bar_chart({"small": 1.0, "big": 10.0})
        small_line, big_line = chart.splitlines()
        assert big_line.count("#") > small_line.count("#")

    def test_log_scale_compresses_ratios(self):
        linear = bar_chart({"a": 1.0, "b": 1000.0}, width=60)
        logarithmic = bar_chart({"a": 1.0, "b": 1000.0}, width=60,
                                log_scale=True)
        a_linear = linear.splitlines()[0].count("#")
        a_log = logarithmic.splitlines()[0].count("#")
        assert a_log > a_linear

    def test_value_printed_with_unit(self):
        chart = bar_chart({"a": 2.5}, unit=" nJ")
        assert "2.5 nJ" in chart

    def test_empty_returns_title(self):
        assert bar_chart({}, title="empty") == "empty"

    def test_all_non_positive_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0})

    def test_equal_values_full_bars(self):
        chart = bar_chart({"a": 5.0, "b": 5.0}, width=10)
        for line in chart.splitlines():
            assert "#" in line


class TestGroupedBarChart:
    def test_groups_labeled(self):
        chart = grouped_bar_chart(
            {"DDR3": {"hit": 4.0, "conflict": 39.0},
             "MASA": {"hit": 4.0, "conflict": 39.0}})
        assert "[DDR3]" in chart
        assert "[MASA]" in chart

    def test_shared_scale_across_groups(self):
        chart = grouped_bar_chart(
            {"g1": {"x": 1.0}, "g2": {"x": 1.0}}, log_scale=False)
        bars = [line.count("#") for line in chart.splitlines()
                if "#" in line]
        assert bars[0] == bars[1]

    def test_requires_positive_values(self):
        with pytest.raises(ValueError):
            grouped_bar_chart({"g": {"x": 0.0}})


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "___"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_series_uses_increasing_blocks(self):
        line = sparkline([1, 2, 3, 4, 5, 6])
        assert line[0] != line[-1]
