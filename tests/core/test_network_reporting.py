"""Tests for network-level sweeps, report tables and figures."""

import pytest

from repro.cnn.scheduling import ReuseScheme
from repro.core.dse import explore_workload
from repro.core.figures import network_edp_chart
from repro.core.report import handoff_table, network_edp_table
from repro.core.sweep import sweep_network_batch
from repro.dram.architecture import DRAMArchitecture
from repro.workloads import handoff_summary, zoo


@pytest.fixture(scope="module")
def tiny_summary():
    _, _, summary = explore_workload(
        "tiny", architecture=DRAMArchitecture.DDR3,
        scheme=ReuseScheme.ADAPTIVE_REUSE)
    return summary


class TestSweepNetworkBatch:
    def test_by_registered_name(self):
        points = sweep_network_batch("tiny", batches=(1, 2))
        assert [p.value for p in points] == [1, 2]
        assert all(p.parameter == "tiny:batch" for p in points)
        # Doubling the batch cannot shrink the network EDP.
        assert points[1].drmap_edp_js > points[0].drmap_edp_js
        # The worst mapping stays worse (or equal) at every point.
        assert all(p.worst_edp_js >= p.drmap_edp_js for p in points)

    def test_by_builder_callable(self):
        points = sweep_network_batch(zoo.tiny, batches=(2,))
        assert points[0].value == 2
        named = sweep_network_batch("tiny", batches=(2,))
        assert points[0].drmap_edp_js == named[0].drmap_edp_js


class TestReportTables:
    def test_network_edp_table_rows(self, tiny_summary):
        text = network_edp_table(tiny_summary)
        assert "TINY_CONV" in text
        assert "TINY_FC" in text
        assert "NETWORK" in text
        assert "topological aggregation" in text

    def test_handoff_table_contents(self, tiny_summary):
        text = handoff_table(tiny_summary.handoffs)
        assert "TINY_CONV" in text       # producer column
        assert "residency" in text
        assert "hand-off DRAM traffic" in text

    def test_handoff_table_flags_skip_edges(self):
        text = handoff_table(handoff_summary(zoo.resnet18()))
        assert "skip" in text


class TestNetworkFigure:
    def test_chart_has_one_bar_per_op_plus_total(self, tiny_summary):
        chart = network_edp_chart(tiny_summary)
        lines = chart.splitlines()
        assert lines[0].startswith("min-EDP per op of tiny")
        assert len(lines) == 1 + len(tiny_summary.per_op) + 1
        assert any(line.startswith("NETWORK") for line in lines)
