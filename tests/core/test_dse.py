"""Tests for the Algorithm-1 design space exploration."""

import pytest

from repro.cnn.models import alexnet
from repro.cnn.scheduling import ReuseScheme
from repro.cnn.tiling import BufferConfig, TilingConfig
from repro.core.dse import (
    best_mapping_per_layer,
    explore_layer,
    explore_network,
    min_edp_series,
)
from repro.dram.architecture import DRAMArchitecture
from repro.errors import DseError
from repro.mapping.catalog import DRMAP, TABLE1_MAPPINGS


@pytest.fixture(scope="module")
def conv3():
    return alexnet()[2]


@pytest.fixture(scope="module")
def dse(conv3):
    return explore_layer(
        conv3,
        architectures=(DRAMArchitecture.DDR3, DRAMArchitecture.SALP_MASA),
        schemes=(ReuseScheme.OFMS_REUSE, ReuseScheme.ADAPTIVE_REUSE),
    )


class TestExploration:
    def test_point_count(self, dse, conv3):
        from repro.cnn.tiling import enumerate_tilings
        n_tilings = len(enumerate_tilings(conv3))
        assert len(dse.points) == 2 * 2 * 6 * n_tilings

    def test_every_point_satisfies_buffers(self, dse, conv3):
        from repro.cnn.tiling import TABLE2_BUFFERS
        for point in dse.points:
            assert point.tiling.fits(conv3, TABLE2_BUFFERS)

    def test_filters_compose(self, dse):
        subset = dse.filtered(
            architecture=DRAMArchitecture.DDR3,
            scheme=ReuseScheme.OFMS_REUSE,
            policy=DRMAP)
        assert subset
        for point in subset:
            assert point.architecture is DRAMArchitecture.DDR3
            assert point.policy == DRMAP

    def test_best_is_minimum(self, dse):
        best = dse.best(architecture=DRAMArchitecture.DDR3)
        for point in dse.filtered(architecture=DRAMArchitecture.DDR3):
            assert best.edp_js <= point.edp_js

    def test_best_with_empty_filter_raises(self, dse):
        with pytest.raises(DseError):
            dse.best(architecture=DRAMArchitecture.SALP_1)

    def test_explicit_tilings_respected(self, conv3):
        tiling = TilingConfig(th=13, tw=13, tj=8, ti=8)
        result = explore_layer(
            conv3,
            architectures=(DRAMArchitecture.DDR3,),
            schemes=(ReuseScheme.OFMS_REUSE,),
            tilings=[tiling],
        )
        assert len(result.points) == 6
        assert all(p.tiling == tiling for p in result.points)

    def test_infeasible_buffers_raise(self, conv3):
        with pytest.raises(DseError):
            explore_layer(
                conv3,
                buffers=BufferConfig(
                    ifms_bytes=1, wghs_bytes=1, ofms_bytes=1))


class TestPaperResult:
    """Algorithm 1's output must name DRMap (Key Observation 1)."""

    def test_drmap_wins_everywhere(self, dse):
        for architecture in (DRAMArchitecture.DDR3,
                             DRAMArchitecture.SALP_MASA):
            for scheme in (ReuseScheme.OFMS_REUSE,
                           ReuseScheme.ADAPTIVE_REUSE):
                best = dse.best(architecture=architecture, scheme=scheme)
                assert best.policy == DRMAP, (
                    f"{architecture} {scheme}: expected DRMap, got "
                    f"{best.policy.name}")

    def test_best_mapping_per_layer(self, dse):
        by_layer = best_mapping_per_layer(
            dse, DRAMArchitecture.DDR3, ReuseScheme.ADAPTIVE_REUSE)
        assert by_layer["CONV3"].policy == DRMAP

    def test_min_edp_series_shape(self, dse):
        series, total = min_edp_series(
            dse, DRAMArchitecture.DDR3, ReuseScheme.OFMS_REUSE, DRMAP,
            layer_names=["CONV3"])
        assert len(series) == 1
        assert total == pytest.approx(series[0])


class TestExploreNetwork:
    def test_two_layer_network(self):
        layers = alexnet()[2:4]
        result = explore_network(
            layers,
            architectures=(DRAMArchitecture.DDR3,),
            schemes=(ReuseScheme.OFMS_REUSE,),
            policies=(DRMAP,),
        )
        names = {p.layer_name for p in result.points}
        assert names == {"CONV3", "CONV4"}
