"""Property-based tests on pareto-front invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.pareto import ObjectivePoint, pareto_front

finite = st.floats(min_value=0.001, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
point_lists = st.lists(
    st.tuples(finite, finite), min_size=0, max_size=60)


def to_points(pairs):
    return [ObjectivePoint(energy_nj=e, latency_ns=l) for e, l in pairs]


@given(pairs=point_lists)
@settings(max_examples=200, deadline=None)
def test_front_members_are_mutually_non_dominating(pairs):
    front = pareto_front(to_points(pairs))
    for a in front:
        for b in front:
            assert not a.dominates(b)


@given(pairs=point_lists)
@settings(max_examples=200, deadline=None)
def test_every_input_dominated_or_on_front(pairs):
    points = to_points(pairs)
    front = pareto_front(points)
    front_objectives = {(p.energy_nj, p.latency_ns) for p in front}
    for point in points:
        on_front = (point.energy_nj, point.latency_ns) in front_objectives
        dominated = any(f.dominates(point) for f in front)
        assert on_front or dominated


@given(pairs=point_lists)
@settings(max_examples=100, deadline=None)
def test_front_is_idempotent(pairs):
    front = pareto_front(to_points(pairs))
    again = pareto_front(front)
    assert {(p.energy_nj, p.latency_ns) for p in front} \
        == {(p.energy_nj, p.latency_ns) for p in again}


@given(pairs=point_lists, extra=st.tuples(finite, finite))
@settings(max_examples=100, deadline=None)
def test_adding_dominated_point_never_changes_front(pairs, extra):
    points = to_points(pairs)
    front = pareto_front(points)
    if not front:
        return
    worst = max(points, key=lambda p: (p.energy_nj, p.latency_ns))
    dominated = ObjectivePoint(
        energy_nj=worst.energy_nj * 2, latency_ns=worst.latency_ns * 2)
    new_front = pareto_front(points + [dominated])
    assert {(p.energy_nj, p.latency_ns) for p in front} \
        == {(p.energy_nj, p.latency_ns) for p in new_front}
