"""Engine tests for workload-graph threading."""

from repro.cnn.scheduling import ReuseScheme
from repro.core.engine import ExplorationEngine, _build_context
from repro.dram.architecture import DRAMArchitecture
from repro.dram.characterize import DEFAULT_CHARACTERIZATION_CACHE
from repro.mapping.catalog import TABLE1_MAPPINGS
from repro.cnn.tiling import TABLE2_BUFFERS
from repro.workloads import get_workload, zoo


def _context_for(workload):
    return _build_context(
        workload, (DRAMArchitecture.DDR3,),
        (ReuseScheme.ADAPTIVE_REUSE,), tuple(TABLE1_MAPPINGS),
        TABLE2_BUFFERS, None, None, DEFAULT_CHARACTERIZATION_CACHE)


class TestContextWorkload:
    def test_network_rides_in_context(self):
        net = zoo.tiny()
        context = _context_for(net)
        assert context.workload is net
        assert [grid.layer.name for grid in context.layers] \
            == ["TINY_CONV", "TINY_FC"]

    def test_layer_list_leaves_workload_unset(self):
        context = _context_for(zoo.tiny().lower())
        assert context.workload is None

    def test_context_with_network_pickles(self):
        import pickle

        context = _context_for(zoo.tiny())
        clone = pickle.loads(pickle.dumps(context))
        assert clone.workload.name == "tiny"
        assert clone.total_points == context.total_points


class TestEngineOnNetworks:
    def test_network_equals_lowered_list(self):
        net = get_workload("lenet5")
        engine = ExplorationEngine(jobs=1)
        from_graph = engine.explore_network(
            net, architectures=(DRAMArchitecture.DDR3,))
        from_list = engine.explore_network(
            net.lower(), architectures=(DRAMArchitecture.DDR3,))
        assert from_graph.points == from_list.points

    def test_parallel_jobs_identical_on_network(self):
        net = zoo.tiny()
        serial = ExplorationEngine(jobs=1).explore_network(net)
        sharded = ExplorationEngine(jobs=2, chunk_size=7) \
            .explore_network(net)
        assert sharded.points == serial.points

    def test_reduced_exploration_accepts_network(self):
        net = zoo.tiny()
        reduced = ExplorationEngine(jobs=1).explore_reduced(net)
        full = ExplorationEngine(jobs=1).explore_network(net)
        assert reduced.total_points == len(full.points)
        assert reduced.best().edp_js == full.best().edp_js
