"""Tests for the walk-based EDP estimator."""

import pytest

from repro.cnn.models import alexnet
from repro.cnn.scheduling import ReuseScheme
from repro.cnn.tiling import TilingConfig
from repro.core.edp import layer_edp
from repro.core.walk_edp import layer_edp_via_walk
from repro.dram.architecture import DRAMArchitecture
from repro.mapping.catalog import DRMAP, MAPPING_2, MAPPING_4


@pytest.fixture(scope="module")
def conv3():
    return alexnet()[2]


@pytest.fixture(scope="module")
def tiling():
    return TilingConfig(th=13, tw=13, tj=16, ti=16)


def both(layer, tiling, policy, architecture,
         scheme=ReuseScheme.OFMS_REUSE):
    analytic = layer_edp(layer, tiling, scheme, policy, architecture)
    walked = layer_edp_via_walk(layer, tiling, scheme, policy,
                                architecture)
    return analytic, walked


class TestAgreementForHitFriendlyMappings:
    def test_drmap_estimates_agree(self, conv3, tiling):
        analytic, walked = both(conv3, tiling, DRMAP,
                                DRAMArchitecture.DDR3)
        assert walked.cycles == pytest.approx(analytic.cycles, rel=0.15)
        assert walked.energy_nj == pytest.approx(
            analytic.energy_nj, rel=0.15)

    def test_resolved_scheme_identical(self, conv3, tiling):
        analytic, walked = both(conv3, tiling, DRMAP,
                                DRAMArchitecture.DDR3,
                                scheme=ReuseScheme.ADAPTIVE_REUSE)
        assert walked.resolved_scheme is analytic.resolved_scheme


class TestKnownDisagreements:
    def test_mapping2_ddr3_walk_is_more_expensive(self, conv3, tiling):
        """The loop-wrap model is optimistic for Mapping-2 on DDR3:
        the walk charges the post-sweep wraps as conflicts."""
        analytic, walked = both(conv3, tiling, MAPPING_2,
                                DRAMArchitecture.DDR3)
        assert walked.edp_js > analytic.edp_js

    def test_mapping4_ddr3_walk_is_cheaper(self, conv3, tiling):
        """Mapping-4's bank revisits are genuine hits; the loop-wrap
        model charges them as bank switches."""
        analytic, walked = both(conv3, tiling, MAPPING_4,
                                DRAMArchitecture.DDR3)
        assert walked.edp_js < analytic.edp_js

    def test_mapping2_masa_walk_is_cheaper(self, conv3, tiling):
        """Under MASA the local row buffers turn Mapping-2's subarray
        revisits into genuine hits, so the walk lands *below* the
        analytic estimate (which charges the SA-parallel activation
        cost) -- but within a small factor."""
        analytic, walked = both(conv3, tiling, MAPPING_2,
                                DRAMArchitecture.SALP_MASA)
        assert walked.edp_js < analytic.edp_js
        assert walked.edp_js > analytic.edp_js / 5.0


class TestRankingPreserved:
    @pytest.mark.parametrize("arch", [DRAMArchitecture.DDR3,
                                      DRAMArchitecture.SALP_MASA],
                             ids=["DDR3", "MASA"])
    def test_drmap_still_wins_under_walk(self, conv3, tiling, arch):
        drmap = layer_edp_via_walk(
            conv3, tiling, ReuseScheme.OFMS_REUSE, DRMAP, arch)
        rival = layer_edp_via_walk(
            conv3, tiling, ReuseScheme.OFMS_REUSE, MAPPING_2, arch)
        assert drmap.edp_js < rival.edp_js

    def test_breakdown_sums(self, conv3, tiling):
        walked = layer_edp_via_walk(
            conv3, tiling, ReuseScheme.OFMS_REUSE, DRMAP,
            DRAMArchitecture.DDR3)
        assert sum(c.energy_nj for c in walked.by_type.values()) \
            == pytest.approx(walked.energy_nj)
