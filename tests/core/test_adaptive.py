"""Tests for adaptive-reuse resolution."""

from repro.cnn.models import alexnet
from repro.cnn.scheduling import CONCRETE_SCHEMES, ReuseScheme
from repro.cnn.tiling import enumerate_tilings
from repro.cnn.traffic import layer_traffic
from repro.core.adaptive import resolve_adaptive


class TestResolution:
    def test_concrete_schemes_pass_through(self):
        layer = alexnet()[0]
        tiling = enumerate_tilings(layer)[0]
        for scheme in CONCRETE_SCHEMES:
            assert resolve_adaptive(layer, tiling, scheme) is scheme

    def test_adaptive_resolves_to_concrete(self):
        layer = alexnet()[0]
        tiling = enumerate_tilings(layer)[0]
        resolved = resolve_adaptive(
            layer, tiling, ReuseScheme.ADAPTIVE_REUSE)
        assert resolved in CONCRETE_SCHEMES

    def test_adaptive_is_traffic_minimal(self):
        """The resolved scheme moves no more bytes than any other."""
        for layer in alexnet():
            tiling = enumerate_tilings(layer)[0]
            resolved = resolve_adaptive(
                layer, tiling, ReuseScheme.ADAPTIVE_REUSE)
            chosen = layer_traffic(layer, tiling, resolved).total_bytes
            for scheme in CONCRETE_SCHEMES:
                other = layer_traffic(layer, tiling, scheme).total_bytes
                assert chosen <= other

    def test_adaptive_varies_across_layers(self):
        """The paper's motivation: no single scheme wins every layer.

        Across AlexNet's conv and FC layers the adaptive choice should
        use at least two different concrete schemes.
        """
        choices = set()
        for layer in alexnet():
            tiling = enumerate_tilings(layer)[0]
            choices.add(resolve_adaptive(
                layer, tiling, ReuseScheme.ADAPTIVE_REUSE))
        assert len(choices) >= 2
