"""Tests for the pluggable search-strategy layer.

The two load-bearing guarantees:

* ``--strategy exhaustive`` (the default) is **byte-identical** to the
  pre-strategy engine — same points, same order, for every ``jobs`` /
  ``chunk_size``.
* the ``funnel`` strategy recovers the same AlexNet/DDR3 EDP-optimal
  mapping as the exhaustive DSE while cycle-accurately evaluating at
  least 10x fewer points (pinned acceptance test).
"""

import pytest

from repro.cnn.models import alexnet, tiny_test_network
from repro.cnn.scheduling import ReuseScheme
from repro.core.dse import best_mapping_per_layer, explore_network
from repro.core.dse import explore_layer
from repro.core.engine import ExplorationEngine, _build_context
from repro.core.strategies import (
    MIN_EXACT_PER_SLICE,
    FunnelStrategy,
    SearchStrategy,
    analytical_scores,
    get_strategy,
    register_strategy,
    strategy_names,
    strategy_summaries,
)
from repro.dram.architecture import DRAMArchitecture
from repro.errors import ConfigurationError

DDR3 = DRAMArchitecture.DDR3


@pytest.fixture(scope="module")
def tiny_layer():
    return tiny_test_network()[0]


@pytest.fixture(scope="module")
def tiny_full(tiny_layer):
    return explore_layer(tiny_layer)


class TestRegistry:
    def test_builtin_names(self):
        names = strategy_names()
        assert names[0] == "exhaustive"
        assert set(names) >= {"exhaustive", "random", "greedy-refine",
                              "funnel"}

    def test_summaries_cover_every_name(self):
        assert set(strategy_summaries()) == set(strategy_names())

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown search"):
            get_strategy("simulated-annealing")

    def test_bad_options_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid options"):
            get_strategy("funnel", not_an_option=1)
        with pytest.raises(ConfigurationError, match="top_fraction"):
            get_strategy("funnel", top_fraction=0.0)
        with pytest.raises(ConfigurationError, match="fraction"):
            get_strategy("random", fraction=2.0)
        with pytest.raises(ConfigurationError, match="restarts"):
            get_strategy("greedy-refine", restarts=0)

    def test_instance_passes_through(self):
        instance = FunnelStrategy(top_fraction=0.5)
        assert get_strategy(instance) is instance
        with pytest.raises(ConfigurationError):
            get_strategy(instance, top_fraction=0.1)

    def test_custom_registration(self):
        class Probe(SearchStrategy):
            name = "probe-everything"
            summary = "test double"

            def shards(self, engine, context, run):
                return engine._shard_results(context)

        register_strategy(Probe)
        try:
            assert "probe-everything" in strategy_names()
            with pytest.raises(ConfigurationError,
                               match="already registered"):
                register_strategy(Probe)
        finally:
            from repro.core import strategies as module

            del module._STRATEGIES["probe-everything"]

    def test_engine_rejects_unknown_strategy_eagerly(self):
        with pytest.raises(ConfigurationError):
            ExplorationEngine(strategy="nope")


class TestExhaustiveByteIdentity:
    def test_explicit_exhaustive_identical_to_default(
            self, tiny_layer, tiny_full):
        explicit = explore_layer(tiny_layer, strategy="exhaustive")
        assert explicit.points == tiny_full.points

    def test_default_provenance(self, tiny_full):
        assert tiny_full.strategy == "exhaustive"
        assert tiny_full.total_points == len(tiny_full.points)
        assert tiny_full.evaluated_points == tiny_full.total_points
        assert tiny_full.scored_points == 0
        assert tiny_full.exact_evaluation_fraction == 1.0

    def test_parallel_exhaustive_still_identical(
            self, tiny_layer, tiny_full):
        parallel = explore_layer(
            tiny_layer, strategy="exhaustive", jobs=2, chunk_size=17)
        assert parallel.points == tiny_full.points

    def test_run_records_strategy_and_seed(self, tiny_layer):
        from repro.cnn.scheduling import ALL_SCHEMES
        from repro.cnn.tiling import TABLE2_BUFFERS
        from repro.mapping.catalog import TABLE1_MAPPINGS

        engine = ExplorationEngine(strategy="random", seed=11)
        _search, run, _iter = engine._start(
            [tiny_layer], None, ALL_SCHEMES, TABLE1_MAPPINGS,
            TABLE2_BUFFERS, None, None, None, None, None, None, None,
            None)
        assert (run.strategy, run.seed) == ("random", 11)

    def test_context_dataclass_carries_provenance(self, tiny_layer):
        import pickle

        from repro.cnn.scheduling import ALL_SCHEMES
        from repro.cnn.tiling import TABLE2_BUFFERS
        from repro.dram.characterize import CharacterizationCache
        from repro.mapping.catalog import TABLE1_MAPPINGS

        context = _build_context(
            [tiny_layer], (DDR3,), ALL_SCHEMES, TABLE1_MAPPINGS,
            TABLE2_BUFFERS, None, None, CharacterizationCache(),
            strategy="funnel", seed=5)
        clone = pickle.loads(pickle.dumps(context))
        assert (clone.strategy, clone.seed) == ("funnel", 5)

    def test_encode_inverts_decode(self, tiny_layer):
        from repro.cnn.scheduling import ALL_SCHEMES
        from repro.cnn.tiling import TABLE2_BUFFERS
        from repro.dram.characterize import CharacterizationCache
        from repro.mapping.catalog import TABLE1_MAPPINGS

        context = _build_context(
            [tiny_layer], None, ALL_SCHEMES, TABLE1_MAPPINGS,
            TABLE2_BUFFERS, None, None, CharacterizationCache())
        for index in range(context.total_points):
            layer, arch, scheme, policy, tiling = context.decode(index)
            encoded = context.encode(
                0,
                context.architectures.index(arch),
                context.schemes.index(scheme),
                context.policies.index(policy),
                context.layers[0].tilings.index(tiling))
            assert encoded == index


class TestRandomStrategy:
    def test_same_seed_same_points(self, tiny_layer):
        first = explore_layer(tiny_layer, strategy="random", seed=7)
        second = explore_layer(tiny_layer, strategy="random", seed=7)
        assert first.points == second.points
        assert first.seed == 7

    def test_different_seed_different_sample(self, tiny_layer):
        first = explore_layer(tiny_layer, strategy="random", seed=7)
        second = explore_layer(tiny_layer, strategy="random", seed=8)
        assert first.points != second.points

    def test_points_are_an_ordered_subset(self, tiny_layer, tiny_full):
        sampled = explore_layer(tiny_layer, strategy="random", seed=3)
        assert sampled.evaluated_points == len(sampled.points)
        assert sampled.evaluated_points < tiny_full.total_points
        positions = [tiny_full.points.index(point)
                     for point in sampled.points]
        assert positions == sorted(positions)

    def test_fraction_controls_sample_size(self, tiny_layer, tiny_full):
        half = explore_layer(
            tiny_layer, strategy="random",
            strategy_options={"fraction": 0.5})
        assert half.evaluated_points >= tiny_full.total_points // 2

    def test_parallel_matches_serial(self, tiny_layer):
        serial = explore_layer(tiny_layer, strategy="random", seed=5)
        parallel = explore_layer(
            tiny_layer, strategy="random", seed=5, jobs=2, chunk_size=7)
        assert parallel.points == serial.points


class TestGreedyRefine:
    def test_finds_the_tiny_grid_optimum(self, tiny_layer, tiny_full):
        greedy = explore_layer(tiny_layer, strategy="greedy-refine")
        # Equal-EDP ties may resolve to a different (scheme, tiling)
        # than the exhaustive scan; the achieved optimum is what the
        # strategy guarantees.
        assert greedy.best().edp_js == tiny_full.best().edp_js
        assert greedy.evaluated_points < tiny_full.total_points

    def test_deterministic_per_seed(self, tiny_layer):
        first = explore_layer(
            tiny_layer, strategy="greedy-refine", seed=2)
        second = explore_layer(
            tiny_layer, strategy="greedy-refine", seed=2)
        assert first.points == second.points

    def test_probes_are_never_duplicated(self, tiny_layer):
        greedy = explore_layer(tiny_layer, strategy="greedy-refine")
        names = [(p.layer_name, p.architecture, p.scheme, p.policy,
                  p.tiling) for p in greedy.points]
        assert len(names) == len(set(names))


class TestFunnel:
    def test_analytical_scores_cover_the_grid(self, tiny_layer):
        from repro.cnn.scheduling import ALL_SCHEMES
        from repro.cnn.tiling import TABLE2_BUFFERS
        from repro.core.engine import EvaluationCache
        from repro.dram.characterize import CharacterizationCache
        from repro.mapping.catalog import TABLE1_MAPPINGS

        context = _build_context(
            [tiny_layer], None, ALL_SCHEMES, TABLE1_MAPPINGS,
            TABLE2_BUFFERS, None, None, CharacterizationCache())
        scores = analytical_scores(context, EvaluationCache())
        assert len(scores) == context.total_points
        assert all(score > 0 for score in scores)

    def test_funnel_matches_exhaustive_best(self, tiny_layer, tiny_full):
        funnel = explore_layer(tiny_layer, strategy="funnel")
        assert funnel.best() == tiny_full.best()
        assert funnel.scored_points == tiny_full.total_points
        assert funnel.evaluated_points < tiny_full.total_points

    def test_parallel_matches_serial(self, tiny_layer):
        serial = explore_layer(tiny_layer, strategy="funnel")
        parallel = explore_layer(
            tiny_layer, strategy="funnel", jobs=2, chunk_size=7)
        assert parallel.points == serial.points

    def test_reduced_mode_works_with_funnel(self, tiny_layer, tiny_full):
        engine = ExplorationEngine(strategy="funnel")
        reduced = engine.explore_reduced([tiny_layer])
        assert reduced.best() == tiny_full.best()

    def test_min_exact_floor_covers_every_slice(self, tiny_layer,
                                                tiny_full):
        funnel = explore_layer(
            tiny_layer, strategy="funnel",
            strategy_options={"top_fraction": 0.01})
        architectures = {p.architecture for p in tiny_full.points}
        block = tiny_full.total_points // len(architectures)
        expected = len(architectures) * min(MIN_EXACT_PER_SLICE, block)
        assert funnel.evaluated_points == expected
        # Every architecture slice stays queryable.
        for architecture in architectures:
            assert funnel.best(architecture=architecture)


class TestFunnelAlexNetPinned:
    """Pinned acceptance: same AlexNet/DDR3 optimum, >=10x fewer exact
    evaluations, on the paper's full Algorithm-1 grid."""

    @pytest.fixture(scope="class")
    def layers(self):
        return alexnet()

    @pytest.fixture(scope="class")
    def exhaustive(self, layers):
        return explore_network(layers)

    @pytest.fixture(scope="class")
    def funnel(self, layers):
        return explore_network(layers, strategy="funnel")

    def test_at_least_10x_fewer_exact_evaluations(self, exhaustive,
                                                  funnel):
        assert exhaustive.evaluated_points == exhaustive.total_points
        assert funnel.evaluated_points * 10 <= exhaustive.evaluated_points
        assert funnel.scored_points == exhaustive.total_points

    def test_global_optimum_identical(self, exhaustive, funnel):
        assert funnel.best() == exhaustive.best()

    def test_ddr3_optimum_identical(self, exhaustive, funnel):
        assert funnel.best(architecture=DDR3) \
            == exhaustive.best(architecture=DDR3)

    def test_per_layer_ddr3_mapping_identical(self, exhaustive, funnel):
        """Algorithm 1's headline output: the DDR3 min-EDP mapping per
        layer, with its tiling and EDP value.

        Compared on (policy, tiling, EDP, resolved scheme) rather than
        raw points: the requested-scheme attribute can differ on
        equal-EDP ties (``adaptive-reuse`` resolves to the same
        concrete scheme and traffic, so the funnel's pruning keeps the
        lower-indexed concrete-scheme twin).
        """
        def headline(result, layer_name):
            best = result.best(layer_name=layer_name,
                               architecture=DDR3)
            return (best.policy, best.tiling, best.edp_js,
                    best.result.resolved_scheme)

        expected = best_mapping_per_layer(
            exhaustive, DDR3, ReuseScheme.ADAPTIVE_REUSE)
        for name in expected:
            assert headline(funnel, name) == headline(exhaustive, name), \
                name

    def test_per_layer_best_identical_on_every_architecture(
            self, exhaustive, funnel, layers):
        for layer in layers:
            assert funnel.best(layer_name=layer.name) \
                == exhaustive.best(layer_name=layer.name)


class TestSweepThreading:
    def test_sweep_accepts_strategy(self, tiny_layer):
        from repro.core.sweep import sweep_subarrays

        exhaustive = sweep_subarrays(tiny_layer, subarray_counts=(2, 4))
        funnel = sweep_subarrays(
            tiny_layer, subarray_counts=(2, 4), strategy="funnel")
        # The funnel floor covers these tiny one-policy grids fully,
        # so the sweep values are identical.
        assert [p.drmap_edp_js for p in funnel] \
            == [p.drmap_edp_js for p in exhaustive]
        assert [p.worst_edp_js for p in funnel] \
            == [p.worst_edp_js for p in exhaustive]


class TestResultMerging:
    def test_extend_accumulates_counts(self, tiny_layer):
        first = explore_layer(tiny_layer, strategy="funnel")
        second = explore_layer(tiny_layer, strategy="funnel")
        merged_total = first.total_points + second.total_points
        first.extend(second)
        assert first.total_points == merged_total
        assert first.strategy == "funnel"

    def test_extend_mixed_strategies_flagged(self, tiny_layer):
        funnel = explore_layer(tiny_layer, strategy="funnel")
        random_result = explore_layer(tiny_layer, strategy="random")
        funnel.extend(random_result)
        assert funnel.strategy == "mixed"
