"""Tests for the parallel sharded exploration engine.

The load-bearing guarantee: for any ``jobs`` / ``chunk_size``, the
engine returns byte-identical exploration records and minimum-EDP
selections to the serial Algorithm-1 path.
"""

import pytest

from repro.cnn.models import alexnet, tiny_test_network
from repro.cnn.scheduling import ReuseScheme
from repro.core.dse import explore_layer, explore_network
from repro.core.engine import (
    EvaluationCache,
    ExplorationEngine,
    ExplorationProgress,
)
from repro.core.pareto import (
    ObjectivePoint,
    ParetoAccumulator,
    pareto_front,
    points_from_dse,
)
from repro.dram.architecture import DRAMArchitecture
from repro.dram.characterize import CharacterizationCache
from repro.errors import DseError
from repro.mapping.catalog import DRMAP, TABLE1_MAPPINGS


@pytest.fixture(scope="module")
def conv_layers():
    """The AlexNet convolutional layers (CONV1..CONV5)."""
    return [layer for layer in alexnet() if layer.name.startswith("CONV")]


@pytest.fixture(scope="module")
def tiny_layer():
    return tiny_test_network()[0]


@pytest.fixture(scope="module")
def serial_conv_dse(conv_layers):
    return explore_network(conv_layers, jobs=1)


class TestDeterminism:
    """jobs=2 must reproduce the serial records exactly."""

    def test_parallel_records_identical(self, conv_layers, serial_conv_dse):
        # An odd chunk size that does not divide the grid, so shards
        # straddle layer and architecture boundaries.
        parallel = explore_network(conv_layers, jobs=2, chunk_size=157)
        assert parallel.points == serial_conv_dse.points

    def test_parallel_min_edp_selections_identical(
            self, conv_layers, serial_conv_dse):
        parallel = explore_network(conv_layers, jobs=2, chunk_size=157)
        for layer in conv_layers:
            serial_best = serial_conv_dse.best(layer_name=layer.name)
            parallel_best = parallel.best(layer_name=layer.name)
            assert serial_best == parallel_best
        for architecture in (DRAMArchitecture.DDR3,
                             DRAMArchitecture.SALP_MASA):
            assert (parallel.best(architecture=architecture)
                    == serial_conv_dse.best(architecture=architecture))

    def test_chunk_size_invariance(self, tiny_layer):
        baseline = explore_layer(tiny_layer, jobs=1, chunk_size=1_000_000)
        one_point_chunks = explore_layer(tiny_layer, jobs=1, chunk_size=1)
        assert baseline.points == one_point_chunks.points

    def test_reduced_matches_full(self, tiny_layer):
        engine = ExplorationEngine(jobs=1, chunk_size=37)
        reduced = engine.explore_reduced([tiny_layer])
        full = explore_layer(tiny_layer)
        assert reduced.total_points == len(full.points)
        assert reduced.best() == full.best()
        for policy in TABLE1_MAPPINGS:
            assert reduced.best(policy=policy) == full.best(policy=policy)

    def test_reduced_pareto_matches_batch(self, tiny_layer):
        engine = ExplorationEngine(jobs=1, chunk_size=13)
        reduced = engine.explore_reduced([tiny_layer])
        full = explore_layer(tiny_layer)
        batch = pareto_front(points_from_dse(full.points))
        streamed = reduced.pareto.front()
        assert [(p.energy_nj, p.latency_ns) for p in streamed] \
            == [(p.energy_nj, p.latency_ns) for p in batch]

    def test_reduced_tie_breaks_by_grid_index(self):
        """Equal-EDP points: the lowest flattened index must win,
        regardless of shard arrival order."""
        from repro.core.dse import DsePoint
        from repro.core.edp import LayerEDP
        from repro.core.engine import ReducedExploration
        from repro.cnn.tiling import TilingConfig
        from repro.mapping.catalog import MAPPING_1, MAPPING_2

        def point(policy):
            return DsePoint(
                layer_name="L", architecture=DRAMArchitecture.DDR3,
                scheme=ReuseScheme.IFMS_REUSE, policy=policy,
                tiling=TilingConfig(1, 1, 1, 1),
                result=LayerEDP(
                    layer_name="L", energy_nj=1.0, cycles=1.0,
                    tck_ns=1.0, by_type={},
                    resolved_scheme=ReuseScheme.IFMS_REUSE))

        first, second = point(MAPPING_1), point(MAPPING_2)
        assert first.edp_js == second.edp_js
        in_order = ReducedExploration()
        in_order.absorb(0, [first])
        in_order.absorb(1, [second])
        reversed_arrival = ReducedExploration()
        reversed_arrival.absorb(1, [second])
        reversed_arrival.absorb(0, [first])
        for reduced in (in_order, reversed_arrival):
            assert reduced.best().policy == MAPPING_1
            assert reduced.best_per_layer(
                DRAMArchitecture.DDR3,
                ReuseScheme.IFMS_REUSE)["L"].policy == MAPPING_1

    def test_reduced_best_per_layer(self, tiny_layer):
        engine = ExplorationEngine(jobs=1)
        reduced = engine.explore_reduced([tiny_layer])
        full = explore_layer(tiny_layer)
        by_layer = reduced.best_per_layer(
            DRAMArchitecture.DDR3, ReuseScheme.ADAPTIVE_REUSE)
        assert by_layer[tiny_layer.name] == full.best(
            architecture=DRAMArchitecture.DDR3,
            scheme=ReuseScheme.ADAPTIVE_REUSE,
            layer_name=tiny_layer.name)


class TestDeviceThreading:
    """The device profile must survive shard serialization and default
    to the paper's device."""

    def test_explicit_default_device_is_identical(self, tiny_layer):
        from repro.dram.device import default_device

        implicit = explore_layer(tiny_layer, jobs=1)
        explicit = explore_layer(
            tiny_layer, jobs=1, device=default_device())
        assert implicit.points == explicit.points

    def test_parallel_workers_reconstruct_the_device(self, tiny_layer):
        from repro.dram.device import DDR4_2400_DEVICE

        serial = explore_layer(
            tiny_layer, jobs=1, device=DDR4_2400_DEVICE)
        parallel = explore_layer(
            tiny_layer, jobs=2, chunk_size=61, device=DDR4_2400_DEVICE)
        assert serial.points == parallel.points

    def test_devices_change_the_numbers(self, tiny_layer):
        from repro.dram.device import DDR4_2400_DEVICE

        ddr3 = explore_layer(
            tiny_layer, architectures=(DRAMArchitecture.DDR3,), jobs=1)
        ddr4 = explore_layer(
            tiny_layer, architectures=(DRAMArchitecture.DDR3,), jobs=1,
            device=DDR4_2400_DEVICE)
        assert len(ddr3.points) == len(ddr4.points)
        assert ddr3.best().edp_js != ddr4.best().edp_js

    def test_unsupported_architecture_rejected(self, tiny_layer):
        from repro.dram.device import LPDDR4_3200_DEVICE
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="does not support"):
            explore_layer(
                tiny_layer,
                architectures=(DRAMArchitecture.SALP_MASA,),
                device=LPDDR4_3200_DEVICE)

    def test_engine_counts_cache_traffic_per_device(self, tiny_layer):
        from repro.dram.device import LPDDR4_3200_DEVICE

        cache = CharacterizationCache()
        engine = ExplorationEngine(jobs=1, characterization_cache=cache)
        engine.explore_layer(
            tiny_layer, architectures=(DRAMArchitecture.DDR3,),
            device=LPDDR4_3200_DEVICE)
        engine.explore_layer(
            tiny_layer, architectures=(DRAMArchitecture.DDR3,),
            device=LPDDR4_3200_DEVICE)
        stats = cache.device_stats("lpddr4-3200")
        assert (stats.hits, stats.misses) == (1, 1)


class TestCaching:
    def test_characterization_runs_once_per_configuration(self, tiny_layer):
        cache = CharacterizationCache()
        engine = ExplorationEngine(jobs=1, characterization_cache=cache)
        engine.explore_layer(tiny_layer)
        first = cache.stats
        assert first.misses == 4      # one per architecture
        engine.explore_layer(tiny_layer)
        second = cache.stats
        assert second.misses == 4     # nothing re-characterized
        assert second.hits == first.hits + 4

    def test_characterization_cache_identity_and_lru(self):
        cache = CharacterizationCache(maxsize=1)
        ddr3_first = cache.get(DRAMArchitecture.DDR3)
        assert cache.get(DRAMArchitecture.DDR3) is ddr3_first
        cache.get(DRAMArchitecture.SALP_1)     # evicts DDR3
        assert len(cache) == 1
        assert cache.get(DRAMArchitecture.DDR3) is not None
        assert cache.stats.misses == 3

    def test_evaluation_cache_reused_across_points(self, tiny_layer):
        # Pinned to the scalar backend: the vectorized kernel touches
        # each memo key once per table build, so hit counts there say
        # nothing about per-point reuse.
        engine = ExplorationEngine(jobs=1, eval_model="scalar")
        engine.explore_layer(tiny_layer)
        counts = engine.evaluation_cache.counts_memo
        traffic = engine.evaluation_cache.traffic_memo
        # 24 (arch x scheme x policy)-fold reuse of per-tiling work
        # means hits dominate misses on both memos.
        assert counts.hits > counts.misses
        assert traffic.hits > traffic.misses

    def test_evaluation_cache_clear(self, tiny_layer):
        cache = EvaluationCache()
        engine = ExplorationEngine(jobs=1)
        engine.evaluation_cache = cache
        engine.explore_layer(tiny_layer)
        cache.clear()
        assert cache.counts_memo.hits == 0
        assert not cache.counts_memo.entries

    def test_repeated_sweep_hits_shared_cache(self, tiny_layer):
        from repro.core.sweep import sweep_subarrays
        from repro.dram.characterize import DEFAULT_CHARACTERIZATION_CACHE

        sweep_subarrays(tiny_layer, subarray_counts=(2, 4))
        before = DEFAULT_CHARACTERIZATION_CACHE.stats
        sweep_subarrays(tiny_layer, subarray_counts=(2, 4))
        after = DEFAULT_CHARACTERIZATION_CACHE.stats
        assert after.misses == before.misses
        assert after.hits > before.hits


class TestProgress:
    def test_progress_streams_monotonically(self, tiny_layer):
        snapshots = []
        engine = ExplorationEngine(
            jobs=1, chunk_size=50, progress=snapshots.append)
        result = engine.explore_layer(tiny_layer)
        assert snapshots
        assert all(isinstance(s, ExplorationProgress) for s in snapshots)
        completed = [s.completed_points for s in snapshots]
        assert completed == sorted(completed)
        final = snapshots[-1]
        assert final.completed_points == final.total_points \
            == len(result.points)
        assert final.completed_chunks == final.total_chunks
        assert final.fraction == 1.0
        assert final.best_edp_js == result.best().edp_js

    def test_progress_fires_in_parallel_mode(self, tiny_layer):
        snapshots = []
        engine = ExplorationEngine(
            jobs=2, chunk_size=64, progress=snapshots.append)
        result = engine.explore_layer(tiny_layer)
        assert snapshots[-1].completed_points == len(result.points)


class TestValidation:
    def test_empty_tilings_raise(self, tiny_layer):
        with pytest.raises(DseError):
            explore_layer(tiny_layer, tilings=[])

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            ExplorationEngine(jobs=-1)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            ExplorationEngine(chunk_size=0)

    def test_jobs_zero_means_all_cpus(self):
        assert ExplorationEngine(jobs=0).jobs >= 1

    def test_explicit_tilings_still_filtered(self, tiny_layer):
        from repro.cnn.tiling import enumerate_tilings

        tilings = enumerate_tilings(tiny_layer)
        via_engine = explore_layer(tiny_layer, tilings=tilings, jobs=1)
        default = explore_layer(tiny_layer)
        assert via_engine.points == default.points


class TestParetoAccumulator:
    def test_matches_batch_front(self):
        points = [
            ObjectivePoint(energy_nj=float(e), latency_ns=float(l))
            for e, l in [(5, 1), (1, 5), (3, 3), (2, 4), (4, 4),
                         (2, 4), (6, 6), (1, 5)]
        ]
        acc = ParetoAccumulator()
        for order, point in enumerate(points):
            acc.add(point, order=order)
        assert [(p.energy_nj, p.latency_ns) for p in acc.front()] \
            == [(p.energy_nj, p.latency_ns)
                for p in pareto_front(points)]

    def test_duplicate_vector_keeps_lowest_order(self):
        acc = ParetoAccumulator()
        first = ObjectivePoint(1.0, 1.0, payload="late")
        second = ObjectivePoint(1.0, 1.0, payload="early")
        acc.add(first, order=10)
        assert not acc.add(ObjectivePoint(1.0, 1.0, payload="later"),
                           order=20)
        assert acc.add(second, order=5)
        assert acc.front()[0].payload == "early"

    def test_dominated_point_rejected(self):
        acc = ParetoAccumulator()
        assert acc.add(ObjectivePoint(1.0, 1.0))
        assert not acc.add(ObjectivePoint(2.0, 2.0))
        assert len(acc) == 1


class TestControllerThreading:
    """ControllerConfig must travel intact through the engine."""

    def test_explicit_default_controller_is_identical(self, tiny_layer):
        from repro.dram.policies import DEFAULT_CONTROLLER_CONFIG

        implicit = explore_layer(tiny_layer)
        explicit = explore_layer(
            tiny_layer, controller=DEFAULT_CONTROLLER_CONFIG)
        assert implicit.points == explicit.points

    def test_controller_changes_the_numbers(self, tiny_layer):
        from repro.dram.policies import controller_config

        default = explore_layer(
            tiny_layer, architectures=(DRAMArchitecture.DDR3,))
        closed = explore_layer(
            tiny_layer, architectures=(DRAMArchitecture.DDR3,),
            controller=controller_config(row_policy="closed"))
        assert default.best().edp_js != closed.best().edp_js

    def test_parallel_workers_reconstruct_the_controller(self, tiny_layer):
        from repro.dram.policies import controller_config

        config = controller_config("fr-fcfs", "closed")
        serial = explore_layer(
            tiny_layer, jobs=1, controller=config)
        parallel = explore_layer(
            tiny_layer, jobs=2, chunk_size=7, controller=config)
        assert parallel.points == serial.points

    def test_context_pickles_the_controller(self, tiny_layer):
        import pickle

        from repro.core.engine import _build_context
        from repro.cnn.tiling import TABLE2_BUFFERS
        from repro.cnn.scheduling import ALL_SCHEMES
        from repro.dram.policies import controller_config

        config = controller_config("fr-fcfs")
        context = _build_context(
            [tiny_layer], (DRAMArchitecture.DDR3,), ALL_SCHEMES,
            TABLE1_MAPPINGS, TABLE2_BUFFERS, None, None,
            CharacterizationCache(), controller=config)
        clone = pickle.loads(pickle.dumps(context))
        assert clone.controller == config
        assert clone.characterizations[
            DRAMArchitecture.DDR3].controller == config

    def test_cache_distinguishes_controllers(self, tiny_layer):
        from repro.dram.policies import controller_config

        cache = CharacterizationCache()
        engine = ExplorationEngine(characterization_cache=cache)
        engine.explore_layer(
            tiny_layer, architectures=(DRAMArchitecture.DDR3,))
        engine.explore_layer(
            tiny_layer, architectures=(DRAMArchitecture.DDR3,),
            controller=controller_config(row_policy="closed"))
        assert len(cache) == 2
        assert cache.stats.misses == 2
