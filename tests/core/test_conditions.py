"""Tests for the dimension -> condition bridge and Eq. 2/3 costing."""

import pytest

from repro.core.conditions import (
    AccessCost,
    DIM_TO_CONDITION,
    INITIAL_ACCESS_CONDITION,
    ZERO_COST,
    condition_counts,
    run_cost,
)
from repro.dram.architecture import DRAMArchitecture
from repro.dram.characterize import AccessCondition, characterize_preset
from repro.dram.commands import RequestKind
from repro.dram.presets import DDR3_1600_2GB_X8 as ORG
from repro.mapping.catalog import DRMAP, MAPPING_2
from repro.mapping.counts import TransitionCounts, count_transitions
from repro.mapping.dims import Dim


@pytest.fixture(scope="module")
def ddr3():
    return characterize_preset(DRAMArchitecture.DDR3)


class TestDimMapping:
    def test_column_is_hit(self):
        assert DIM_TO_CONDITION[Dim.COLUMN] is AccessCondition.ROW_HIT

    def test_row_is_conflict(self):
        assert DIM_TO_CONDITION[Dim.ROW] is AccessCondition.ROW_CONFLICT

    def test_subarray_and_bank(self):
        assert DIM_TO_CONDITION[Dim.SUBARRAY] \
            is AccessCondition.SUBARRAY_PARALLEL
        assert DIM_TO_CONDITION[Dim.BANK] is AccessCondition.BANK_PARALLEL

    def test_rank_channel_charged_as_bank_parallel(self):
        assert DIM_TO_CONDITION[Dim.RANK] is AccessCondition.BANK_PARALLEL
        assert DIM_TO_CONDITION[Dim.CHANNEL] \
            is AccessCondition.BANK_PARALLEL

    def test_initial_access_is_conflict(self):
        assert INITIAL_ACCESS_CONDITION is AccessCondition.ROW_CONFLICT


class TestConditionCounts:
    def test_initial_folded_into_conflicts(self):
        counts = TransitionCounts(by_dim={Dim.COLUMN: 7}, initial=1,
                                  total=8)
        by_condition = condition_counts(counts)
        assert by_condition[AccessCondition.ROW_HIT] == 7
        assert by_condition[AccessCondition.ROW_CONFLICT] == 1

    def test_total_preserved(self):
        counts = count_transitions(DRMAP, ORG, 8192)
        by_condition = condition_counts(counts)
        assert sum(by_condition.values()) == 8192


class TestRunCost:
    def test_cost_positive(self, ddr3):
        counts = count_transitions(DRMAP, ORG, 1000)
        cost = run_cost(counts, ddr3, RequestKind.READ)
        assert cost.cycles > 0 and cost.energy_nj > 0

    def test_drmap_cheaper_than_mapping2(self, ddr3):
        """DRMap's hit-heavy transition mix must cost less (Eq. 2/3)."""
        drmap = run_cost(
            count_transitions(DRMAP, ORG, 8192), ddr3, RequestKind.READ)
        mapping2 = run_cost(
            count_transitions(MAPPING_2, ORG, 8192), ddr3,
            RequestKind.READ)
        assert drmap.cycles < mapping2.cycles
        assert drmap.energy_nj < mapping2.energy_nj

    def test_write_energy_differs_from_read(self, ddr3):
        counts = count_transitions(DRMAP, ORG, 1000)
        read = run_cost(counts, ddr3, RequestKind.READ)
        write = run_cost(counts, ddr3, RequestKind.WRITE)
        assert read.cycles == pytest.approx(write.cycles)
        assert read.energy_nj != pytest.approx(write.energy_nj)

    def test_cost_is_linear_in_counts(self, ddr3):
        counts = count_transitions(DRMAP, ORG, 4096)
        single = run_cost(counts, ddr3, RequestKind.READ)
        double = run_cost(counts.scaled(2), ddr3, RequestKind.READ)
        assert double.cycles == pytest.approx(2 * single.cycles)
        assert double.energy_nj == pytest.approx(2 * single.energy_nj)


class TestAccessCost:
    def test_addition(self):
        total = AccessCost(10, 5.0) + AccessCost(1, 0.5)
        assert total.cycles == 11
        assert total.energy_nj == pytest.approx(5.5)

    def test_scaling(self):
        assert AccessCost(10, 5.0).scaled(3).cycles == 30

    def test_zero_identity(self):
        cost = AccessCost(7, 2.0)
        combined = cost + ZERO_COST
        assert combined.cycles == cost.cycles
        assert combined.energy_nj == cost.energy_nj
