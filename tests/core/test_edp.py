"""Tests for the analytical EDP model."""

import pytest

from repro.cnn.models import alexnet
from repro.cnn.scheduling import ReuseScheme
from repro.cnn.tiling import TilingConfig
from repro.core.edp import layer_edp, network_edp
from repro.dram.architecture import DRAMArchitecture
from repro.mapping.catalog import DRMAP, MAPPING_2


@pytest.fixture(scope="module")
def conv2():
    return alexnet()[1]


@pytest.fixture(scope="module")
def tiling():
    return TilingConfig(th=9, tw=9, tj=32, ti=24)


class TestLayerEDP:
    def test_edp_is_energy_times_latency(self, conv2, tiling):
        result = layer_edp(conv2, tiling, ReuseScheme.OFMS_REUSE, DRMAP,
                           DRAMArchitecture.DDR3)
        expected = (result.energy_nj * 1e-9) * (result.latency_ns * 1e-9)
        assert result.edp_js == pytest.approx(expected)

    def test_latency_uses_clock(self, conv2, tiling):
        result = layer_edp(conv2, tiling, ReuseScheme.OFMS_REUSE, DRMAP,
                           DRAMArchitecture.DDR3)
        assert result.latency_ns == pytest.approx(result.cycles * 1.25)

    def test_breakdown_sums_to_total(self, conv2, tiling):
        result = layer_edp(conv2, tiling, ReuseScheme.OFMS_REUSE, DRMAP,
                           DRAMArchitecture.DDR3)
        assert sum(c.energy_nj for c in result.by_type.values()) \
            == pytest.approx(result.energy_nj)
        assert sum(c.cycles for c in result.by_type.values()) \
            == pytest.approx(result.cycles)

    def test_concrete_scheme_passes_through(self, conv2, tiling):
        result = layer_edp(conv2, tiling, ReuseScheme.WGHS_REUSE, DRMAP,
                           DRAMArchitecture.DDR3)
        assert result.resolved_scheme is ReuseScheme.WGHS_REUSE

    def test_adaptive_resolves_to_concrete(self, conv2, tiling):
        result = layer_edp(conv2, tiling, ReuseScheme.ADAPTIVE_REUSE,
                           DRMAP, DRAMArchitecture.DDR3)
        assert result.resolved_scheme is not ReuseScheme.ADAPTIVE_REUSE

    def test_adaptive_never_worse_than_concrete(self, conv2, tiling):
        adaptive = layer_edp(conv2, tiling, ReuseScheme.ADAPTIVE_REUSE,
                             DRMAP, DRAMArchitecture.DDR3)
        for scheme in (ReuseScheme.IFMS_REUSE, ReuseScheme.WGHS_REUSE,
                       ReuseScheme.OFMS_REUSE):
            concrete = layer_edp(conv2, tiling, scheme, DRMAP,
                                 DRAMArchitecture.DDR3)
            # Adaptive minimizes traffic, which correlates with EDP;
            # it must match the best concrete scheme's traffic choice.
            assert adaptive.energy_nj <= concrete.energy_nj * 1.05

    def test_drmap_beats_mapping2_on_ddr3(self, conv2, tiling):
        drmap = layer_edp(conv2, tiling, ReuseScheme.OFMS_REUSE, DRMAP,
                          DRAMArchitecture.DDR3)
        mapping2 = layer_edp(conv2, tiling, ReuseScheme.OFMS_REUSE,
                             MAPPING_2, DRAMArchitecture.DDR3)
        assert drmap.edp_js < mapping2.edp_js

    def test_masa_improves_mapping2(self, conv2, tiling):
        ddr3 = layer_edp(conv2, tiling, ReuseScheme.OFMS_REUSE, MAPPING_2,
                         DRAMArchitecture.DDR3)
        masa = layer_edp(conv2, tiling, ReuseScheme.OFMS_REUSE, MAPPING_2,
                         DRAMArchitecture.SALP_MASA)
        assert masa.edp_js < ddr3.edp_js


class TestNetworkEDP:
    @pytest.fixture(scope="class")
    def small_net(self):
        return alexnet()[:2]

    @pytest.fixture(scope="class")
    def tilings(self, small_net):
        from repro.cnn.tiling import enumerate_tilings
        return {layer.name: enumerate_tilings(layer)[0]
                for layer in small_net}

    def test_totals_are_sums(self, small_net, tilings):
        result = network_edp(small_net, tilings, ReuseScheme.OFMS_REUSE,
                             DRMAP, DRAMArchitecture.DDR3)
        assert result.total_energy_nj == pytest.approx(
            sum(r.energy_nj for r in result.per_layer.values()))
        assert result.total_edp_js == pytest.approx(
            sum(r.edp_js for r in result.per_layer.values()))

    def test_product_edp_exceeds_sum(self, small_net, tilings):
        """E_total * T_total >= sum of per-layer EDPs (Chebyshev)."""
        result = network_edp(small_net, tilings, ReuseScheme.OFMS_REUSE,
                             DRMAP, DRAMArchitecture.DDR3)
        assert result.product_edp_js >= result.total_edp_js

    def test_every_layer_present(self, small_net, tilings):
        result = network_edp(small_net, tilings, ReuseScheme.OFMS_REUSE,
                             DRMAP, DRAMArchitecture.DDR3)
        assert set(result.per_layer) == {l.name for l in small_net}
