"""Tests for report formatting."""

import pytest

from repro.core.report import (
    format_edp,
    format_series,
    format_table,
    improvement_percent,
    series_table,
)


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["long-name", 22]],
            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert lines[2].startswith("---")
        assert len(lines) == 5

    def test_no_title(self):
        text = format_table(["x"], [["1"]])
        assert not text.startswith("\n")
        assert text.splitlines()[0].startswith("x")


class TestImprovement:
    def test_90_percent(self):
        assert improvement_percent(10.0, 1.0) == pytest.approx(90.0)

    def test_no_improvement(self):
        assert improvement_percent(5.0, 5.0) == pytest.approx(0.0)

    def test_regression_is_negative(self):
        assert improvement_percent(5.0, 10.0) == pytest.approx(-100.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            improvement_percent(0.0, 1.0)


class TestSeries:
    def test_format_edp_unit(self):
        assert "J*s" in format_edp(1.5e-3)

    def test_format_series_pairs_names(self):
        text = format_series("DDR3", [1e-3, 2e-3], ["CONV1", "CONV2"])
        assert text.startswith("DDR3:")
        assert "CONV1=" in text and "CONV2=" in text

    def test_series_table_shape(self):
        text = series_table(
            {"Mapping-1": [1e-3], "Mapping-3": [2e-4]},
            column_names=["Total"], title="fig9")
        assert "Mapping-1" in text and "Mapping-3" in text
        assert text.splitlines()[0] == "fig9"
