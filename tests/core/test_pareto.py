"""Tests for pareto-front utilities."""

import pytest

from repro.core.pareto import (
    ObjectivePoint,
    ParetoAccumulator,
    hypervolume_2d,
    pareto_front,
    project,
)


def P(energy, latency, payload=None):
    return ObjectivePoint(energy_nj=energy, latency_ns=latency,
                          payload=payload)


class TestDominance:
    def test_strict_domination(self):
        assert P(1, 1).dominates(P(2, 2))

    def test_partial_domination(self):
        assert P(1, 2).dominates(P(1, 3))
        assert P(1, 2).dominates(P(2, 2))

    def test_no_self_domination(self):
        point = P(1, 1)
        assert not point.dominates(P(1, 1))

    def test_trade_off_no_domination(self):
        assert not P(1, 3).dominates(P(3, 1))
        assert not P(3, 1).dominates(P(1, 3))


class TestParetoFront:
    def test_empty(self):
        assert pareto_front([]) == []

    def test_single_point(self):
        assert pareto_front([P(1, 1)]) == [P(1, 1)]

    def test_dominated_points_removed(self):
        front = pareto_front([P(1, 3), P(2, 2), P(3, 1), P(3, 3)])
        assert P(3, 3) not in front
        assert len(front) == 3

    def test_front_sorted_by_energy(self):
        front = pareto_front([P(3, 1), P(1, 3), P(2, 2)])
        energies = [p.energy_nj for p in front]
        assert energies == sorted(energies)

    def test_front_latency_decreasing(self):
        front = pareto_front([P(3, 1), P(1, 3), P(2, 2), P(2.5, 1.5)])
        latencies = [p.latency_ns for p in front]
        assert latencies == sorted(latencies, reverse=True)

    def test_no_front_member_dominated(self):
        points = [P(e, l) for e in range(1, 6) for l in range(1, 6)]
        front = pareto_front(points)
        for a in front:
            for b in front:
                assert not a.dominates(b)

    def test_duplicate_objectives_collapsed(self):
        front = pareto_front([P(1, 1), P(1, 1)])
        assert len(front) == 1


class TestProjection:
    def test_project_payload_preserved(self):
        items = [{"e": 5.0, "l": 2.0}]
        points = project(items, lambda i: i["e"], lambda i: i["l"])
        assert points[0].payload is items[0]
        assert points[0].energy_nj == 5.0


class TestHypervolume:
    def test_single_point(self):
        volume = hypervolume_2d([P(1, 1)], reference=(2, 2))
        assert volume == pytest.approx(1.0)

    def test_point_outside_reference_ignored(self):
        volume = hypervolume_2d([P(3, 3)], reference=(2, 2))
        assert volume == 0.0

    def test_better_front_has_larger_volume(self):
        good = hypervolume_2d([P(1, 1)], reference=(10, 10))
        poor = hypervolume_2d([P(5, 5)], reference=(10, 10))
        assert good > poor

    def test_two_point_staircase(self):
        volume = hypervolume_2d([P(1, 3), P(3, 1)], reference=(4, 4))
        # (4-1)*(4-3) + (4-3)*(3-1) = 3 + 2.
        assert volume == pytest.approx(5.0)


class TestParetoAccumulator:
    """Streaming accumulator: arrival-order determinism invariants."""

    def test_matches_batch_front(self):
        points = [P(5, 1), P(1, 5), P(3, 3), P(2, 4), P(4, 4), P(6, 6)]
        acc = ParetoAccumulator()
        for order, point in enumerate(points):
            acc.add(point, order=order)
        batch = [(p.energy_nj, p.latency_ns)
                 for p in pareto_front(points)]
        streamed = [(p.energy_nj, p.latency_ns) for p in acc.front()]
        assert streamed == batch

    def test_arrival_order_invariance(self):
        points = list(enumerate(
            [P(5, 1), P(1, 5), P(3, 3), P(3, 3), P(2, 4), P(7, 1)]))
        forward = ParetoAccumulator()
        for order, point in points:
            forward.add(point, order=order)
        backward = ParetoAccumulator()
        for order, point in reversed(points):
            backward.add(point, order=order)
        assert [(p.energy_nj, p.latency_ns) for p in forward.front()] \
            == [(p.energy_nj, p.latency_ns) for p in backward.front()]

    def test_duplicate_vector_lowest_order_wins(self):
        early = P(2, 2, payload="early")
        late = P(2, 2, payload="late")
        acc = ParetoAccumulator()
        acc.add(late, order=9)
        acc.add(early, order=1)
        assert [p.payload for p in acc.front()] == ["early"]
        reordered = ParetoAccumulator()
        reordered.add(early, order=1)
        reordered.add(late, order=9)
        assert [p.payload for p in reordered.front()] == ["early"]

    def test_dominated_point_rejected_and_front_pruned(self):
        acc = ParetoAccumulator()
        assert acc.add(P(3, 3), order=0)
        assert not acc.add(P(4, 4), order=1)
        assert acc.add(P(1, 1), order=2)  # dominates and evicts (3, 3)
        assert len(acc) == 1
        assert [(p.energy_nj, p.latency_ns) for p in acc.front()] \
            == [(1, 1)]
