"""Tests for pareto-front utilities."""

import pytest

from repro.core.pareto import (
    ObjectivePoint,
    hypervolume_2d,
    pareto_front,
    project,
)


def P(energy, latency, payload=None):
    return ObjectivePoint(energy_nj=energy, latency_ns=latency,
                          payload=payload)


class TestDominance:
    def test_strict_domination(self):
        assert P(1, 1).dominates(P(2, 2))

    def test_partial_domination(self):
        assert P(1, 2).dominates(P(1, 3))
        assert P(1, 2).dominates(P(2, 2))

    def test_no_self_domination(self):
        point = P(1, 1)
        assert not point.dominates(P(1, 1))

    def test_trade_off_no_domination(self):
        assert not P(1, 3).dominates(P(3, 1))
        assert not P(3, 1).dominates(P(1, 3))


class TestParetoFront:
    def test_empty(self):
        assert pareto_front([]) == []

    def test_single_point(self):
        assert pareto_front([P(1, 1)]) == [P(1, 1)]

    def test_dominated_points_removed(self):
        front = pareto_front([P(1, 3), P(2, 2), P(3, 1), P(3, 3)])
        assert P(3, 3) not in front
        assert len(front) == 3

    def test_front_sorted_by_energy(self):
        front = pareto_front([P(3, 1), P(1, 3), P(2, 2)])
        energies = [p.energy_nj for p in front]
        assert energies == sorted(energies)

    def test_front_latency_decreasing(self):
        front = pareto_front([P(3, 1), P(1, 3), P(2, 2), P(2.5, 1.5)])
        latencies = [p.latency_ns for p in front]
        assert latencies == sorted(latencies, reverse=True)

    def test_no_front_member_dominated(self):
        points = [P(e, l) for e in range(1, 6) for l in range(1, 6)]
        front = pareto_front(points)
        for a in front:
            for b in front:
                assert not a.dominates(b)

    def test_duplicate_objectives_collapsed(self):
        front = pareto_front([P(1, 1), P(1, 1)])
        assert len(front) == 1


class TestProjection:
    def test_project_payload_preserved(self):
        items = [{"e": 5.0, "l": 2.0}]
        points = project(items, lambda i: i["e"], lambda i: i["l"])
        assert points[0].payload is items[0]
        assert points[0].energy_nj == 5.0


class TestHypervolume:
    def test_single_point(self):
        volume = hypervolume_2d([P(1, 1)], reference=(2, 2))
        assert volume == pytest.approx(1.0)

    def test_point_outside_reference_ignored(self):
        volume = hypervolume_2d([P(3, 3)], reference=(2, 2))
        assert volume == 0.0

    def test_better_front_has_larger_volume(self):
        good = hypervolume_2d([P(1, 1)], reference=(10, 10))
        poor = hypervolume_2d([P(5, 5)], reference=(10, 10))
        assert good > poor

    def test_two_point_staircase(self):
        volume = hypervolume_2d([P(1, 3), P(3, 1)], reference=(4, 4))
        # (4-1)*(4-3) + (4-3)*(3-1) = 3 + 2.
        assert volume == pytest.approx(5.0)
