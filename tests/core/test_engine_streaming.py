"""Streaming paths of the engine: reduced mode and progress, jobs > 1.

These paths (``explore_reduced`` merge determinism under parallel
shard arrival, progress-callback accounting with worker pools) only
had indirect coverage; this module pins them directly.
"""

import pytest

from repro.cnn.models import alexnet, tiny_test_network
from repro.core.engine import (
    ExplorationEngine,
    ExplorationProgress,
)
from repro.dram.architecture import DRAMArchitecture
from repro.mapping.catalog import TABLE1_MAPPINGS


@pytest.fixture(scope="module")
def tiny_layer():
    return tiny_test_network()[0]


@pytest.fixture(scope="module")
def two_conv_layers():
    return [layer for layer in alexnet()
            if layer.name in ("CONV1", "CONV2")]


def _reduced_snapshot(reduced):
    """Comparable view of a ReducedExploration."""
    best = {key: (point.edp_js, point.tiling, point.result)
            for key, point in reduced.best_by_key.items()}
    front = [(p.energy_nj, p.latency_ns) for p in reduced.pareto.front()]
    return reduced.total_points, best, front


class TestReducedMergeDeterminism:
    """jobs=2 shard arrival order must not change the reduction."""

    def test_parallel_reduction_matches_serial(self, two_conv_layers):
        serial = ExplorationEngine(jobs=1).explore_reduced(
            two_conv_layers)
        # An odd chunk size that does not divide the grid, so shards
        # straddle layer and architecture boundaries and complete out
        # of order.
        parallel = ExplorationEngine(jobs=2, chunk_size=157) \
            .explore_reduced(two_conv_layers)
        assert _reduced_snapshot(parallel) == _reduced_snapshot(serial)

    def test_parallel_reduction_best_filters_match(self, two_conv_layers):
        serial = ExplorationEngine(jobs=1).explore_reduced(
            two_conv_layers)
        parallel = ExplorationEngine(jobs=2, chunk_size=61) \
            .explore_reduced(two_conv_layers)
        assert parallel.best() == serial.best()
        for policy in TABLE1_MAPPINGS:
            assert parallel.best(policy=policy) \
                == serial.best(policy=policy)
        for architecture in (DRAMArchitecture.DDR3,
                             DRAMArchitecture.SALP_MASA):
            by_layer_serial = serial.best_per_layer(
                architecture, serial.best().scheme)
            by_layer_parallel = parallel.best_per_layer(
                architecture, serial.best().scheme)
            assert by_layer_parallel == by_layer_serial

    def test_chunk_size_invariance_in_parallel(self, tiny_layer):
        wide = ExplorationEngine(jobs=2, chunk_size=1000) \
            .explore_reduced([tiny_layer])
        narrow = ExplorationEngine(jobs=2, chunk_size=5) \
            .explore_reduced([tiny_layer])
        assert _reduced_snapshot(wide) == _reduced_snapshot(narrow)

    def test_strategy_reduction_parallel_matches_serial(self, tiny_layer):
        serial = ExplorationEngine(jobs=1, strategy="funnel") \
            .explore_reduced([tiny_layer])
        parallel = ExplorationEngine(jobs=2, chunk_size=7,
                                     strategy="funnel") \
            .explore_reduced([tiny_layer])
        assert _reduced_snapshot(parallel) == _reduced_snapshot(serial)


class TestVectorBackendStreaming:
    """The vector backend must leave every streaming invariant intact."""

    def test_parallel_vector_equals_serial_scalar(self, two_conv_layers):
        scalar = ExplorationEngine(jobs=1, eval_model="scalar") \
            .explore_reduced(two_conv_layers)
        vector = ExplorationEngine(jobs=2, chunk_size=157,
                                   eval_model="vector") \
            .explore_reduced(two_conv_layers)
        assert _reduced_snapshot(vector) == _reduced_snapshot(scalar)

    def test_vector_chunk_size_invariance(self, tiny_layer):
        wide = ExplorationEngine(jobs=2, chunk_size=1000,
                                 eval_model="vector") \
            .explore_reduced([tiny_layer])
        narrow = ExplorationEngine(jobs=2, chunk_size=5,
                                   eval_model="vector") \
            .explore_reduced([tiny_layer])
        assert _reduced_snapshot(wide) == _reduced_snapshot(narrow)

    def test_vector_pareto_front_bitwise_equal(self, two_conv_layers):
        scalar = ExplorationEngine(jobs=1, eval_model="scalar") \
            .explore_reduced(two_conv_layers)
        vector = ExplorationEngine(jobs=2, chunk_size=61,
                                   eval_model="vector") \
            .explore_reduced(two_conv_layers)
        scalar_front = scalar.pareto.front()
        vector_front = vector.pareto.front()
        assert len(vector_front) == len(scalar_front)
        for ours, theirs in zip(vector_front, scalar_front):
            assert ours.energy_nj.hex() == theirs.energy_nj.hex()
            assert ours.latency_ns.hex() == theirs.latency_ns.hex()

    def test_vector_progress_accounting_is_exact(self, tiny_layer):
        snapshots = []
        engine = ExplorationEngine(jobs=2, chunk_size=10,
                                   eval_model="vector",
                                   progress=snapshots.append)
        result = engine.explore_network([tiny_layer])
        expected_chunks = -(-result.total_points // 10)
        assert len(snapshots) == expected_chunks
        assert snapshots[-1].completed_points == result.total_points


class TestProgressUnderParallelism:
    """Chunk accounting must be exact with a worker pool."""

    def _explore_with_progress(self, layers, jobs, chunk_size,
                               **engine_kwargs):
        snapshots = []
        engine = ExplorationEngine(
            jobs=jobs, chunk_size=chunk_size,
            progress=snapshots.append, **engine_kwargs)
        result = engine.explore_network(layers)
        return result, snapshots

    def test_callback_count_equals_chunk_count(self, tiny_layer):
        result, snapshots = self._explore_with_progress(
            [tiny_layer], jobs=2, chunk_size=10)
        total = result.total_points
        expected_chunks = -(-total // 10)
        assert len(snapshots) == expected_chunks
        assert all(isinstance(s, ExplorationProgress) for s in snapshots)
        assert snapshots[-1].total_chunks == expected_chunks

    def test_points_accumulate_to_the_grid(self, tiny_layer):
        result, snapshots = self._explore_with_progress(
            [tiny_layer], jobs=2, chunk_size=7)
        completed = [s.completed_points for s in snapshots]
        assert completed == sorted(completed)
        assert completed[-1] == result.total_points
        deltas = [after - before for before, after
                  in zip([0] + completed, completed)]
        # Every chunk is full-sized except possibly the last of the
        # grid — but arrival order is arbitrary, so just check bounds.
        assert all(0 < delta <= 7 for delta in deltas)
        assert sum(deltas) == result.total_points

    def test_fraction_and_best_edp_converge(self, tiny_layer):
        result, snapshots = self._explore_with_progress(
            [tiny_layer], jobs=2, chunk_size=13)
        final = snapshots[-1]
        assert final.fraction == 1.0
        assert final.completed_chunks == final.total_chunks
        assert final.best_edp_js == result.best().edp_js
        # best-so-far is monotonically non-increasing
        bests = [s.best_edp_js for s in snapshots]
        assert all(b2 <= b1 for b1, b2 in zip(bests, bests[1:]))

    def test_progress_counts_selection_for_subset_strategies(
            self, tiny_layer):
        result, snapshots = self._explore_with_progress(
            [tiny_layer], jobs=2, chunk_size=8, strategy="funnel")
        final = snapshots[-1]
        assert final.total_points == result.evaluated_points
        assert final.completed_points == result.evaluated_points
        assert final.fraction == 1.0

    def test_serial_and_parallel_report_the_same_totals(self, tiny_layer):
        _result, serial = self._explore_with_progress(
            [tiny_layer], jobs=1, chunk_size=10)
        _result, parallel = self._explore_with_progress(
            [tiny_layer], jobs=2, chunk_size=10)
        assert len(serial) == len(parallel)
        assert serial[-1].completed_points \
            == parallel[-1].completed_points
        assert serial[-1].total_chunks == parallel[-1].total_chunks
