"""Tests for the sensitivity sweep utilities."""

import pytest

from repro.cnn.layer import ConvLayer
from repro.core.sweep import (
    SweepPoint,
    sweep_batch,
    sweep_buffers,
    sweep_precision,
    sweep_subarrays,
    sweep_table,
)


def small_conv(batch=1, bytes_per_element=1):
    return ConvLayer.conv(
        "S", (16, 16, 16), 32, kernel=3, padding=1, batch=batch,
        bytes_per_element=bytes_per_element)


class TestSweepPoint:
    def test_advantage_ratio(self):
        point = SweepPoint("p", 1, drmap_edp_js=1.0, worst_edp_js=5.0)
        assert point.drmap_advantage == pytest.approx(5.0)


class TestSubarraySweep:
    def test_drmap_never_loses(self):
        points = sweep_subarrays(small_conv(), subarray_counts=(1, 4, 8))
        for point in points:
            assert point.drmap_advantage >= 0.999

    def test_mapping2_penalty_grows_then_masa_absorbs(self):
        """With one subarray per bank, Mapping-2 degenerates to a
        column-major layout (the subarray loop is trivial) and matches
        DRMap; with many subarrays MASA keeps it within a small factor."""
        points = sweep_subarrays(small_conv(), subarray_counts=(1, 8))
        assert points[0].drmap_advantage == pytest.approx(1.0, rel=0.05)
        assert points[1].drmap_advantage > points[0].drmap_advantage


class TestBufferSweep:
    def test_bigger_buffers_never_hurt_drmap(self):
        points = sweep_buffers(small_conv(), sizes_kb=(16, 64))
        assert points[1].drmap_edp_js <= points[0].drmap_edp_js * 1.001


class TestPrecisionSweep:
    def test_wider_data_costs_more(self):
        points = sweep_precision(
            lambda bpe: small_conv(bytes_per_element=bpe),
            bytes_per_element=(1, 4))
        assert points[1].drmap_edp_js > points[0].drmap_edp_js


class TestBatchSweep:
    def test_edp_grows_superlinearly_in_batch(self):
        """Energy and latency both scale ~linearly with batch, so EDP
        grows ~quadratically."""
        points = sweep_batch(
            lambda b: small_conv(batch=b), batches=(1, 4))
        ratio = points[1].drmap_edp_js / points[0].drmap_edp_js
        assert ratio > 4.0


class TestTable:
    def test_rows_shape(self):
        points = [SweepPoint("p", 8, 1.0, 2.0)]
        rows = sweep_table(points)
        assert rows == [["8", "1.000e+00", "2.000e+00", "2.0x"]]
