"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestCharacterize:
    def test_all_architectures(self, capsys):
        code, out = run_cli(capsys, "characterize")
        assert code == 0
        for name in ("DDR3", "SALP-1", "SALP-2", "SALP-MASA"):
            assert name in out
        assert "row-hit" in out

    def test_single_architecture(self, capsys):
        code, out = run_cli(capsys, "characterize", "--arch", "SALP-MASA")
        assert code == 0
        assert "SALP-MASA" in out
        assert "SALP-1" not in out

    def test_unknown_architecture(self, capsys):
        with pytest.raises(SystemExit):
            main(["characterize", "--arch", "DDR9"])


class TestEdp:
    def test_single_layer_all_mappings(self, capsys):
        code, out = run_cli(
            capsys, "edp", "--model", "lenet5", "--layer", "C1")
        assert code == 0
        assert "Mapping-3 (DRMap)" in out
        assert "EDP [J*s]" in out

    def test_single_mapping(self, capsys):
        code, out = run_cli(
            capsys, "edp", "--model", "lenet5", "--layer", "C1",
            "--mapping", "3")
        assert code == 0
        assert "Mapping-3" in out
        assert "Mapping-2" not in out

    def test_unknown_layer(self, capsys):
        with pytest.raises(SystemExit):
            main(["edp", "--model", "lenet5", "--layer", "NOPE"])


class TestDse:
    def test_lenet_dse(self, capsys):
        code, out = run_cli(capsys, "dse", "--model", "lenet5")
        assert code == 0
        assert "TOTAL" in out
        # Algorithm 1 must pick DRMap on every LeNet layer.
        assert "Mapping-3 (DRMap)" in out
        assert "Mapping-2" not in out.replace("Mapping-3", "")


class TestTraffic:
    def test_traffic_table(self, capsys):
        code, out = run_cli(capsys, "traffic", "--model", "lenet5")
        assert code == 0
        for scheme in ("ifms-reuse", "wghs-reuse", "ofms-reuse"):
            assert scheme in out


class TestModels:
    def test_lists_registry(self, capsys):
        code, out = run_cli(capsys, "models")
        assert code == 0
        for name in ("alexnet", "vgg16", "lenet5", "tiny"):
            assert name in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse", "--model", "resnet-9000"])
