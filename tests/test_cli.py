"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestCharacterize:
    def test_all_architectures(self, capsys):
        code, out = run_cli(capsys, "characterize")
        assert code == 0
        for name in ("DDR3", "SALP-1", "SALP-2", "SALP-MASA"):
            assert name in out
        assert "row-hit" in out

    def test_single_architecture(self, capsys):
        code, out = run_cli(capsys, "characterize", "--arch", "SALP-MASA")
        assert code == 0
        assert "SALP-MASA" in out
        assert "SALP-1" not in out

    def test_unknown_architecture_exits_2(self, capsys):
        code = main(["characterize", "--arch", "DDR9"])
        assert code == 2
        err = capsys.readouterr().err
        # The message must name the valid choices.
        assert "DDR9" in err
        assert "SALP-MASA" in err

    def test_single_device(self, capsys):
        code, out = run_cli(
            capsys, "characterize", "--device", "lpddr4-3200")
        assert code == 0
        assert "lpddr4-3200" in out
        # LPDDR4 is commodity-only: no SALP rows.
        assert "SALP" not in out

    def test_all_devices(self, capsys):
        code, out = run_cli(capsys, "characterize", "--device", "all")
        assert code == 0
        for name in ("ddr3-1600-2gb-x8", "tiny", "ddr4-2400",
                     "lpddr4-3200", "hbm2"):
            assert name in out

    def test_all_devices_with_salp_skips_commodity_only(self, capsys):
        code, out = run_cli(capsys, "characterize", "--device", "all",
                            "--arch", "SALP-1")
        assert code == 0
        # SALP-capable devices are characterized...
        for name in ("ddr3-1600-2gb-x8", "tiny", "ddr4-2400"):
            assert name in out
        # ...commodity-only ones are skipped, not fatal.
        assert "lpddr4-3200" not in out
        assert "hbm2" not in out

    def test_unknown_device_exits_2(self, capsys):
        code = main(["characterize", "--device", "ddr9-9999"])
        assert code == 2
        err = capsys.readouterr().err
        assert "ddr9-9999" in err
        assert "ddr3-1600-2gb-x8" in err

    def test_unsupported_architecture_exits_2(self, capsys):
        code = main(["characterize", "--device", "hbm2",
                     "--arch", "SALP-MASA"])
        assert code == 2
        assert "does not support" in capsys.readouterr().err


class TestEdp:
    def test_single_layer_all_mappings(self, capsys):
        code, out = run_cli(
            capsys, "edp", "--model", "lenet5", "--layer", "C1")
        assert code == 0
        assert "Mapping-3 (DRMap)" in out
        assert "EDP [J*s]" in out

    def test_single_mapping(self, capsys):
        code, out = run_cli(
            capsys, "edp", "--model", "lenet5", "--layer", "C1",
            "--mapping", "3")
        assert code == 0
        assert "Mapping-3" in out
        assert "Mapping-2" not in out

    def test_unknown_layer(self, capsys):
        with pytest.raises(SystemExit):
            main(["edp", "--model", "lenet5", "--layer", "NOPE"])


class TestDse:
    def test_lenet_dse(self, capsys):
        code, out = run_cli(capsys, "dse", "--model", "lenet5")
        assert code == 0
        assert "TOTAL" in out
        # Algorithm 1 must pick DRMap on every LeNet layer.
        assert "Mapping-3 (DRMap)" in out
        assert "Mapping-2" not in out.replace("Mapping-3", "")

    def test_explicit_default_device_matches_default(self, capsys):
        code, implicit = run_cli(capsys, "dse", "--model", "lenet5",
                                 "--layer", "C1")
        assert code == 0
        code, explicit = run_cli(capsys, "dse", "--model", "lenet5",
                                 "--layer", "C1",
                                 "--device", "ddr3-1600-2gb-x8")
        assert code == 0
        assert implicit == explicit

    def test_device_capability_enforced(self, capsys):
        code = main(["dse", "--model", "lenet5", "--layer", "C1",
                     "--arch", "SALP-MASA", "--device", "lpddr4-3200"])
        assert code == 2
        assert "does not support" in capsys.readouterr().err

    def test_other_device_runs(self, capsys):
        code, out = run_cli(capsys, "dse", "--model", "lenet5",
                            "--layer", "C1", "--device", "ddr4-2400")
        assert code == 0
        assert "ddr4-2400" in out

    def test_eval_model_outputs_identical(self, capsys):
        outputs = {}
        for eval_model in ("scalar", "vector", "auto"):
            code, out = run_cli(capsys, "dse", "--model", "lenet5",
                                "--layer", "C1",
                                "--eval-model", eval_model)
            assert code == 0
            outputs[eval_model] = out
        assert outputs["scalar"] == outputs["vector"] == outputs["auto"]

    def test_eval_model_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["dse", "--model", "lenet5", "--eval-model", "gpu"])
        assert "--eval-model" in capsys.readouterr().err


class TestTraffic:
    def test_traffic_table(self, capsys):
        code, out = run_cli(capsys, "traffic", "--model", "lenet5")
        assert code == 0
        for scheme in ("ifms-reuse", "wghs-reuse", "ofms-reuse"):
            assert scheme in out

    def test_traffic_with_device_shows_bursts(self, capsys):
        code, out = run_cli(capsys, "traffic", "--model", "lenet5",
                            "--device", "hbm2")
        assert code == 0
        assert "hbm2" in out
        assert "bursts" in out


class TestGraphWorkloads:
    def test_dse_on_bert_encoder(self, capsys):
        code, out = run_cli(capsys, "dse", "--model", "bert-encoder",
                            "--layer", "ATTN_SCORES")
        assert code == 0
        assert "ATTN_SCORES" in out
        assert "TOTAL" in out

    def test_dse_on_mobilenetv2_layer(self, capsys):
        code, out = run_cli(capsys, "dse", "--model", "mobilenetv2",
                            "--layer", "B2_EXPAND")
        assert code == 0
        assert "B2_EXPAND" in out

    def test_dse_on_resnet18_projection(self, capsys):
        code, out = run_cli(capsys, "dse", "--model", "resnet18",
                            "--layer", "LAYER2_B1_PROJ")
        assert code == 0
        assert "LAYER2_B1_PROJ" in out

    def test_traffic_on_transformer(self, capsys):
        code, out = run_cli(capsys, "traffic", "--model",
                            "bert-encoder", "--layer", "FFN1")
        assert code == 0
        assert "FFN1" in out


class TestBatchAndPrecision:
    def test_batch_scales_traffic(self, capsys):
        code, single = run_cli(capsys, "traffic", "--model", "lenet5",
                               "--layer", "C1")
        assert code == 0
        code, batched = run_cli(capsys, "traffic", "--model", "lenet5",
                                "--layer", "C1", "--batch", "4")
        assert code == 0
        assert single != batched

    def test_bytes_per_element_scales_traffic(self, capsys):
        code, int8 = run_cli(capsys, "traffic", "--model", "lenet5",
                             "--layer", "C1")
        assert code == 0
        code, fp32 = run_cli(capsys, "traffic", "--model", "lenet5",
                             "--layer", "C1",
                             "--bytes-per-element", "4")
        assert code == 0
        assert int8 != fp32

    def test_dse_accepts_batch(self, capsys):
        code, out = run_cli(capsys, "dse", "--model", "lenet5",
                            "--layer", "C1", "--batch", "2")
        assert code == 0
        assert "TOTAL" in out

    def test_edp_accepts_precision(self, capsys):
        code, out = run_cli(capsys, "edp", "--model", "lenet5",
                            "--layer", "C1", "--mapping", "3",
                            "--bytes-per-element", "2")
        assert code == 0
        assert "Mapping-3" in out

    def test_default_batch_output_unchanged(self, capsys):
        code, implicit = run_cli(capsys, "dse", "--model", "lenet5",
                                 "--layer", "C1")
        assert code == 0
        code, explicit = run_cli(capsys, "dse", "--model", "lenet5",
                                 "--layer", "C1", "--batch", "1",
                                 "--bytes-per-element", "1")
        assert code == 0
        assert implicit == explicit

    def test_non_positive_values_rejected(self):
        with pytest.raises(SystemExit):
            main(["dse", "--model", "lenet5", "--batch", "0"])
        with pytest.raises(SystemExit):
            main(["traffic", "--model", "lenet5",
                  "--bytes-per-element", "-1"])


class TestModels:
    def test_lists_registry(self, capsys):
        code, out = run_cli(capsys, "models")
        assert code == 0
        for name in ("alexnet", "vgg16", "lenet5", "tiny",
                     "mobilenetv2", "bert-encoder"):
            assert name in out
        assert "skip edges" in out

    def test_detail_shows_graph_and_handoffs(self, capsys):
        code, out = run_cli(capsys, "models", "--detail",
                            "--model", "resnet18")
        assert code == 0
        assert "operator graph" in out
        assert "LAYER1_B1_ADD" in out            # residual add node
        assert "Feature-map hand-offs" in out
        assert "skip" in out                     # residual edge flag

    def test_detail_single_model_filters(self, capsys):
        code, out = run_cli(capsys, "models", "--detail",
                            "--model", "lenet5")
        assert code == 0
        assert "lenet5" in out
        assert "alexnet" not in out

    def test_unknown_model_exits_2(self, capsys):
        code = main(["models", "--model", "resnet-9000"])
        assert code == 2
        assert "resnet-9000" in capsys.readouterr().err


class TestDevices:
    def test_lists_device_registry(self, capsys):
        code, out = run_cli(capsys, "devices")
        assert code == 0
        for name in ("ddr3-1600-2gb-x8", "tiny", "ddr4-2400",
                     "lpddr4-3200", "hbm2"):
            assert name in out
        # Capability sets are part of the listing.
        assert "SALP-MASA" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse", "--model", "resnet-9000"])


class TestSearchStrategies:
    def test_strategies_listing(self, capsys):
        code, out = run_cli(capsys, "strategies")
        assert code == 0
        for name in ("exhaustive", "random", "greedy-refine", "funnel"):
            assert name in out

    def test_explicit_exhaustive_output_byte_identical(self, capsys):
        code, default = run_cli(capsys, "dse", "--model", "lenet5",
                                "--layer", "C1")
        assert code == 0
        code, explicit = run_cli(capsys, "dse", "--model", "lenet5",
                                 "--layer", "C1",
                                 "--strategy", "exhaustive")
        assert code == 0
        assert explicit == default
        assert "strategy" not in default

    def test_funnel_tagged_and_summarized(self, capsys):
        code, out = run_cli(capsys, "dse", "--model", "lenet5",
                            "--strategy", "funnel")
        assert code == 0
        assert "[strategy: funnel]" in out
        assert "evaluated exactly" in out
        assert "scored analytically" in out

    def test_funnel_matches_exhaustive_total(self, capsys):
        """The funnel's min-EDP table equals the exhaustive one."""
        code, full = run_cli(capsys, "dse", "--model", "lenet5")
        assert code == 0
        code, funnel = run_cli(capsys, "dse", "--model", "lenet5",
                               "--strategy", "funnel")
        assert code == 0
        full_rows = [line for line in full.splitlines()
                     if line.startswith(("C", "F", "OUTPUT", "TOTAL"))]
        funnel_rows = [line for line in funnel.splitlines()
                       if line.startswith(("C", "F", "OUTPUT", "TOTAL"))]
        assert funnel_rows == full_rows

    def test_seed_reported_for_random(self, capsys):
        code, out = run_cli(capsys, "dse", "--model", "lenet5",
                            "--layer", "C1", "--strategy", "random",
                            "--seed", "9")
        assert code == 0
        assert "seed 9" in out

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["dse", "--model", "lenet5", "--strategy", "psychic"])

    def test_bad_funnel_topk_rejected(self):
        with pytest.raises(SystemExit):
            main(["dse", "--model", "lenet5", "--strategy", "funnel",
                  "--funnel-topk", "0"])
        with pytest.raises(SystemExit):
            main(["dse", "--model", "lenet5", "--strategy", "funnel",
                  "--funnel-topk", "101"])


class TestDiskCache:
    @staticmethod
    def _entries(stats_out):
        for line in stats_out.splitlines():
            if line.startswith("entries"):
                return int(line.split()[-1])
        raise AssertionError(f"no entries row in:\n{stats_out}")

    @pytest.fixture()
    def cold_memory_cache(self):
        """Empty the process-wide in-memory cache, so the CLI's disk
        store actually sees the traffic (the suite shares one
        process)."""
        from repro.dram.characterize import DEFAULT_CHARACTERIZATION_CACHE

        DEFAULT_CHARACTERIZATION_CACHE.clear()
        yield
        DEFAULT_CHARACTERIZATION_CACHE.clear()
        DEFAULT_CHARACTERIZATION_CACHE.attach_store(None)

    def test_cache_stats_and_clear(self, capsys, tmp_path,
                                   cold_memory_cache):
        cache_dir = str(tmp_path / "store")
        code, out = run_cli(capsys, "cache", "stats",
                            "--cache-dir", cache_dir)
        assert code == 0
        assert cache_dir in out
        assert self._entries(out) == 0
        code, _ = run_cli(capsys, "characterize", "--arch", "DDR3",
                          "--cache-dir", cache_dir)
        assert code == 0
        code, out = run_cli(capsys, "cache", "stats",
                            "--cache-dir", cache_dir)
        assert code == 0
        assert self._entries(out) == 1
        code, out = run_cli(capsys, "cache", "clear",
                            "--cache-dir", cache_dir)
        assert code == 0
        assert "removed 1" in out

    def test_cache_stats_reports_in_memory_caches(self, capsys, tmp_path,
                                                  cold_memory_cache):
        code, out = run_cli(capsys, "cache", "stats",
                            "--cache-dir", str(tmp_path / "store"))
        assert code == 0
        assert "In-memory caches" in out
        assert "characterization" in out
        assert "evaluation" in out
        assert "hit rate" in out

    def test_warm_start_output_identical(self, capsys, tmp_path,
                                         cold_memory_cache):
        from repro.dram.characterize import DEFAULT_CHARACTERIZATION_CACHE

        cache_dir = str(tmp_path / "store")
        code, cold = run_cli(capsys, "characterize", "--arch", "SALP-1",
                             "--cache-dir", cache_dir)
        assert code == 0
        # Drop the in-memory entry: the second run is served from
        # disk, and the table must not change.
        DEFAULT_CHARACTERIZATION_CACHE.clear()
        code, warm = run_cli(capsys, "characterize", "--arch", "SALP-1",
                             "--cache-dir", cache_dir)
        assert code == 0
        assert warm == cold

    def test_no_disk_cache_flag(self, capsys, tmp_path,
                                cold_memory_cache):
        cache_dir = tmp_path / "store"
        code, _ = run_cli(capsys, "dse", "--model", "lenet5",
                          "--layer", "C1", "--cache-dir",
                          str(cache_dir), "--no-disk-cache")
        assert code == 0
        assert not cache_dir.exists()


class TestControllerPolicies:
    def test_policies_listing(self, capsys):
        code, out = run_cli(capsys, "policies")
        assert code == 0
        for name in ("fcfs", "fr-fcfs", "open", "closed", "timeout"):
            assert name in out

    def test_default_flags_output_unchanged(self, capsys):
        code, implicit = run_cli(capsys, "dse", "--model", "lenet5",
                                 "--layer", "C1")
        assert code == 0
        code, explicit = run_cli(capsys, "dse", "--model", "lenet5",
                                 "--layer", "C1", "--scheduler", "fcfs",
                                 "--row-policy", "open")
        assert code == 0
        assert implicit == explicit

    def test_non_default_config_flagged_in_title(self, capsys):
        code, out = run_cli(capsys, "dse", "--model", "lenet5",
                            "--layer", "C1", "--scheduler", "fr-fcfs",
                            "--row-policy", "closed")
        assert code == 0
        assert "[fr-fcfs/closed]" in out

    def test_characterize_accepts_policies(self, capsys):
        code, default = run_cli(capsys, "characterize", "--arch", "DDR3")
        assert code == 0
        code, closed = run_cli(capsys, "characterize", "--arch", "DDR3",
                               "--row-policy", "closed")
        assert code == 0
        assert default != closed

    def test_edp_accepts_policies(self, capsys):
        code, out = run_cli(capsys, "edp", "--model", "lenet5",
                            "--layer", "C1", "--mapping", "3",
                            "--scheduler", "fr-fcfs")
        assert code == 0
        assert "[fr-fcfs/open]" in out

    def test_traffic_flags_do_not_change_bytes(self, capsys):
        code, default = run_cli(capsys, "traffic", "--model", "lenet5")
        assert code == 0
        code, closed = run_cli(capsys, "traffic", "--model", "lenet5",
                               "--row-policy", "closed")
        assert code == 0
        assert default == closed

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            main(["dse", "--model", "lenet5", "--scheduler", "elevator"])

    def test_dse_policy_variants_on_every_device(self, capsys):
        """Acceptance: fr-fcfs/closed DSE runs on every registered
        device profile."""
        from repro.dram.device import device_names

        for name in device_names():
            code, out = run_cli(
                capsys, "dse", "--model", "tiny", "--device", name,
                "--scheduler", "fr-fcfs", "--row-policy", "closed")
            assert code == 0
            assert "TOTAL" in out
            assert "[fr-fcfs/closed]" in out


class TestChannelContention:
    def test_arbiters_listing(self, capsys):
        code, out = run_cli(capsys, "arbiters")
        assert code == 0
        for name in ("round-robin", "fixed-priority", "age-based",
                     "interleave", "block"):
            assert name in out
        assert "default" in out

    def test_default_flags_output_unchanged(self, capsys):
        code, implicit = run_cli(capsys, "characterize", "--arch",
                                 "DDR3")
        assert code == 0
        code, explicit = run_cli(capsys, "characterize", "--arch",
                                 "DDR3", "--requestors", "1",
                                 "--arbiter", "round-robin")
        assert code == 0
        assert implicit == explicit

    def test_characterize_prints_per_requestor_table(self, capsys):
        code, out = run_cli(capsys, "characterize", "--arch", "DDR3",
                            "--device", "tiny",
                            "--requestors", "2")
        assert code == 0
        assert "Per-requestor accounting" in out
        assert "[2req/round-robin]" in out
        assert "r0" in out and "r1" in out
        assert "bus share" in out

    def test_dse_title_flags_contention(self, capsys):
        code, out = run_cli(capsys, "dse", "--model", "lenet5",
                            "--layer", "C1", "--requestors", "2",
                            "--arbiter", "age-based")
        assert code == 0
        assert "[2req/age-based]" in out

    def test_unknown_arbiter_exits_2_and_names_choices(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["characterize", "--arbiter", "lottery"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        for name in ("round-robin", "fixed-priority", "age-based"):
            assert name in err

    def test_non_positive_requestors_exits_2(self, capsys):
        code = main(["characterize", "--requestors", "0"])
        assert code == 2
        assert "requestors" in capsys.readouterr().err
