"""Tests for the Network DAG: construction, topology, lowering."""

import pickle

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    ConvOp,
    EltwiseOp,
    MatmulOp,
    Network,
    PoolOp,
    TensorSpec,
    as_layers,
    chain,
)


def residual_toy(batch=1):
    """input -> CONV1 -> CONV2 -> ADD(conv2, conv1) -> FC."""
    net = Network("toy", batch=batch)
    net.add_input("x", 8, 8, 8)
    net.add(ConvOp("CONV1", "x", "a", 8, kernel=3, padding=1))
    net.add(ConvOp("CONV2", "a", "b", 8, kernel=3, padding=1))
    net.add(EltwiseOp("ADD", "b", "a", "c"))
    net.add(PoolOp("GAP", "c", "p", kernel=8, mode="avg"))
    net.add(MatmulOp("FC", "p", "y", 8, 4))
    return net


class TestConstruction:
    def test_add_returns_output_spec(self):
        net = Network("n")
        net.add_input("x", 4, 8, 8)
        out = net.add(ConvOp("C", "x", "y", 8, kernel=3, padding=1))
        assert out == net.tensor("y")
        assert (out.channels, out.height, out.width) == (8, 8, 8)

    def test_unknown_input_tensor_rejected(self):
        net = Network("n")
        net.add_input("x", 4, 8, 8)
        with pytest.raises(WorkloadError, match="unknown tensor"):
            net.add(ConvOp("C", "nope", "y", 8, kernel=3))

    def test_duplicate_tensor_rejected(self):
        net = Network("n")
        net.add_input("x", 4, 8, 8)
        net.add(ConvOp("C1", "x", "y", 8, kernel=3, padding=1))
        with pytest.raises(WorkloadError, match="already has a producer"):
            net.add(ConvOp("C2", "x", "y", 8, kernel=3, padding=1))

    def test_duplicate_op_name_rejected(self):
        net = Network("n")
        net.add_input("x", 4, 8, 8)
        net.add(ConvOp("C", "x", "y", 8, kernel=3, padding=1))
        with pytest.raises(WorkloadError, match="duplicate operator"):
            net.add(ConvOp("C", "y", "z", 8, kernel=3, padding=1))

    def test_bad_batch_rejected(self):
        with pytest.raises(WorkloadError):
            Network("n", batch=0)

    def test_batch_is_read_only(self):
        # lower() memoizes; a mutable batch would silently stale it.
        net = residual_toy(batch=2)
        assert net.lower()[0].batch == 2
        with pytest.raises(AttributeError):
            net.batch = 8


class TestTopology:
    def test_producers_and_consumers(self):
        net = residual_toy()
        assert net.producer_of("a") == "CONV1"
        assert net.producer_of("x") is None
        assert net.consumers_of("a") == ("CONV2", "ADD")
        assert net.consumers_of("y") == ()

    def test_output_tensors(self):
        net = residual_toy()
        assert [t.name for t in net.output_tensors] == ["y"]

    def test_topological_order_matches_insertion(self):
        net = residual_toy()
        assert net.topological_order() == net.ops

    def test_op_lookup(self):
        net = residual_toy()
        assert net.op("ADD").inputs == ("b", "a")
        with pytest.raises(WorkloadError, match="unknown operator"):
            net.op("NOPE")


class TestLowering:
    def test_traffic_only_ops_are_skipped(self):
        net = residual_toy()
        assert [l.name for l in net.lower()] == ["CONV1", "CONV2", "FC"]

    def test_batch_threaded_into_loop_nests(self):
        net = residual_toy(batch=4)
        assert all(layer.batch == 4 for layer in net.lower())

    def test_lowered_layer_by_name(self):
        net = residual_toy()
        assert net.lowered_layer("CONV1").out_channels == 8
        with pytest.raises(WorkloadError, match="traffic-only"):
            net.lowered_layer("ADD")

    def test_compute_ops(self):
        net = residual_toy()
        assert [op.name for op in net.compute_ops] \
            == ["CONV1", "CONV2", "FC"]

    def test_weight_bytes_and_macs_aggregate(self):
        net = residual_toy()
        layers = net.lower()
        assert net.weight_bytes == sum(l.wghs_bytes for l in layers)
        assert net.macs == sum(l.macs for l in layers)


class TestCoercion:
    def test_as_layers_lowers_networks(self):
        net = residual_toy()
        assert as_layers(net) == net.lower()

    def test_as_layers_passes_through_sequences(self):
        net = residual_toy()
        layers = net.lower()
        assert as_layers(layers) == layers
        assert as_layers(layers[0]) == [layers[0]]

    def test_chain_builder(self):
        net = chain(
            "c",
            TensorSpec("x", 4, 8, 8),
            [ConvOp("C1", "x", "a", 8, kernel=3, padding=1),
             ConvOp("C2", "a", "b", 8, kernel=3, padding=1)],
        )
        assert [l.name for l in net.lower()] == ["C1", "C2"]


class TestPickling:
    def test_network_round_trips_through_pickle(self):
        net = residual_toy(batch=2)
        clone = pickle.loads(pickle.dumps(net))
        assert clone.name == net.name
        assert clone.batch == net.batch
        assert clone.lower() == net.lower()
        assert clone.consumers_of("a") == net.consumers_of("a")
