"""Tests for the operator IR: shape inference and lowering rules."""

import pytest

from repro.cnn.layer import ConvLayer
from repro.errors import WorkloadError
from repro.workloads.ops import (
    ConvOp,
    DepthwiseConvOp,
    EltwiseOp,
    MatmulOp,
    PoolOp,
    TensorSpec,
)


def spec(name="x", channels=8, height=16, width=16, bpe=1):
    return TensorSpec(name=name, channels=channels, height=height,
                      width=width, bytes_per_element=bpe)


class TestTensorSpec:
    def test_volume_and_bytes(self):
        t = spec(channels=3, height=4, width=5, bpe=2)
        assert t.elements == 60
        assert t.bytes() == 120
        assert t.bytes(batch=4) == 480

    def test_rejects_non_positive(self):
        with pytest.raises(WorkloadError):
            spec(channels=0)
        with pytest.raises(WorkloadError):
            spec(height=-1)

    def test_shape_label(self):
        assert spec(channels=3, height=4, width=5).shape == "3x4x5"


class TestConvOp:
    def test_output_spec(self):
        op = ConvOp("C", "x", "y", out_channels=16, kernel=3,
                    stride=2, padding=1)
        out = op.output_spec((spec(height=16, width=16),))
        assert (out.channels, out.height, out.width) == (16, 8, 8)
        assert out.name == "y"

    def test_lowering_matches_convlayer_conv(self):
        op = ConvOp("C", "x", "y", out_channels=16, kernel=3,
                    stride=2, padding=1, groups=2)
        lowered = op.lower((spec(bpe=2),), batch=4)
        expected = ConvLayer.conv(
            "C", (8, 16, 16), 16, kernel=3, stride=2, padding=1,
            groups=2, batch=4, bytes_per_element=2)
        assert lowered == expected

    def test_group_mismatch_rejected(self):
        op = ConvOp("C", "x", "y", out_channels=16, kernel=3, groups=3)
        with pytest.raises(WorkloadError):
            op.output_spec((spec(channels=8),))

    def test_kernel_too_large_rejected(self):
        op = ConvOp("C", "x", "y", out_channels=4, kernel=5)
        with pytest.raises(WorkloadError):
            op.output_spec((spec(height=3, width=3),))


class TestDepthwiseConvOp:
    def test_lowers_to_fully_grouped_conv(self):
        op = DepthwiseConvOp("DW", "x", "y", kernel=3, stride=2,
                             padding=1)
        lowered = op.lower((spec(channels=32, height=14, width=14),),
                           batch=2)
        expected = ConvLayer.conv(
            "DW", (32, 14, 14), 32, kernel=3, stride=2, padding=1,
            groups=32, batch=2)
        assert lowered == expected
        assert lowered.groups == lowered.in_channels

    def test_depth_multiplier(self):
        op = DepthwiseConvOp("DW", "x", "y", kernel=3,
                             depth_multiplier=2)
        out = op.output_spec((spec(channels=8, height=5, width=5),))
        assert out.channels == 16


class TestMatmulOp:
    def test_volume_factoring_enforced(self):
        op = MatmulOp("M", "x", "y", in_features=100, out_features=10)
        with pytest.raises(WorkloadError):
            op.output_spec((spec(channels=8, height=16, width=16),))

    def test_token_batch_folding(self):
        op = MatmulOp("M", "x", "y", in_features=64, out_features=32,
                      tokens=7)
        lowered = op.lower(
            (TensorSpec("x", channels=64, height=1, width=7),), batch=3)
        assert lowered.batch == 21
        assert lowered.in_channels == 64
        assert lowered.out_channels == 32
        assert lowered.is_fully_connected

    def test_grouped_attention_weight_operand(self):
        # Q @ K^T over 4 heads of d_head=8, seq=16.
        q = TensorSpec("q", channels=32, height=1, width=16)
        k = TensorSpec("k", channels=32, height=1, width=16)
        op = MatmulOp("S", "q", "s", in_features=32,
                      out_features=4 * 16, tokens=16, groups=4,
                      weight_input="k")
        assert op.inputs == ("q", "k")
        lowered = op.lower((q, k), batch=1)
        # Lowered weight volume equals the K activation matrix.
        assert lowered.wghs_bytes == k.bytes()

    def test_weight_operand_volume_enforced(self):
        q = TensorSpec("q", channels=32, height=1, width=16)
        bad_k = TensorSpec("k", channels=32, height=1, width=15)
        op = MatmulOp("S", "q", "s", in_features=32,
                      out_features=4 * 16, tokens=16, groups=4,
                      weight_input="k")
        with pytest.raises(WorkloadError):
            op.output_spec((q, bad_k))

    def test_features_must_divide_groups(self):
        with pytest.raises(WorkloadError):
            MatmulOp("M", "x", "y", in_features=10, out_features=8,
                     groups=4)


class TestPoolOp:
    def test_output_spec(self):
        op = PoolOp("P", "x", "y", kernel=3, stride=2)
        out = op.output_spec((spec(height=55, width=55),))
        assert (out.height, out.width) == (27, 27)
        assert out.channels == 8

    def test_padding(self):
        op = PoolOp("P", "x", "y", kernel=3, stride=2, padding=1)
        out = op.output_spec((spec(height=112, width=112),))
        assert (out.height, out.width) == (56, 56)

    def test_stride_defaults_to_kernel(self):
        op = PoolOp("P", "x", "y", kernel=2, mode="avg")
        out = op.output_spec((spec(height=8, width=8),))
        assert (out.height, out.width) == (4, 4)

    def test_traffic_only(self):
        op = PoolOp("P", "x", "y", kernel=2)
        assert op.is_traffic_only
        assert op.lower((spec(),)) is None

    def test_bad_mode_rejected(self):
        with pytest.raises(WorkloadError):
            PoolOp("P", "x", "y", kernel=2, mode="median")


class TestEltwiseOp:
    def test_shape_agreement_enforced(self):
        op = EltwiseOp("A", "x", "y", "z")
        with pytest.raises(WorkloadError):
            op.output_spec((spec(name="x"), spec(name="y", height=8)))

    def test_output_spec(self):
        op = EltwiseOp("A", "x", "y", "z")
        out = op.output_spec((spec(name="x"), spec(name="y")))
        assert (out.channels, out.height, out.width) == (8, 16, 16)
        assert out.name == "z"

    def test_traffic_only_and_distinct_arms(self):
        op = EltwiseOp("A", "x", "y", "z")
        assert op.is_traffic_only
        assert op.lower((spec(name="x"), spec(name="y"))) is None
        with pytest.raises(WorkloadError):
            EltwiseOp("A", "x", "x", "z")
