"""Lowering-equivalence goldens.

Two invariants the refactor must never drift from:

1. ``MatmulOp`` lowers to **byte-identical** traffic and EDP as the
   historical FC 1x1-conv path (``ConvLayer.fully_connected``).
2. The AlexNet full-network DSE records reached through the
   ``List[ConvLayer]`` compatibility shim stay byte-identical — the
   per-layer minima are pinned as literals below, so any change to
   the lowering, the shim, or the grid ordering trips this test.
"""

import pytest

from repro.cnn.layer import ConvLayer
from repro.cnn.models import alexnet
from repro.cnn.scheduling import ALL_SCHEMES, ReuseScheme
from repro.cnn.tiling import enumerate_tilings
from repro.cnn.traffic import layer_traffic
from repro.core.dse import best_mapping_per_layer, explore_network
from repro.core.edp import layer_edp
from repro.dram.architecture import DRAMArchitecture
from repro.mapping.catalog import TABLE1_MAPPINGS
from repro.workloads import MatmulOp, TensorSpec, zoo


class TestMatmulEqualsFullyConnected:
    """Satellite invariant 1: the new op vs the old FC path."""

    CASES = [
        # (in_features, out_features, batch, bytes_per_element)
        (256 * 6 * 6, 4096, 1, 1),   # AlexNet FC6
        (4096, 1000, 1, 1),          # AlexNet FC8
        (120, 84, 4, 2),             # batched fp16 LeNet F6
    ]

    def lowered_pair(self, in_features, out_features, batch, bpe):
        fc = ConvLayer.fully_connected(
            "FC", in_features, out_features, batch=batch,
            bytes_per_element=bpe)
        op = MatmulOp("FC", "x", "y", in_features, out_features)
        spec = TensorSpec("x", channels=in_features, height=1, width=1,
                          bytes_per_element=bpe)
        return fc, op.lower((spec,), batch=batch)

    @pytest.mark.parametrize("case", CASES)
    def test_lowered_layer_identical(self, case):
        fc, lowered = self.lowered_pair(*case)
        assert lowered == fc

    @pytest.mark.parametrize("case", CASES)
    def test_traffic_byte_identical(self, case):
        fc, lowered = self.lowered_pair(*case)
        for tiling in enumerate_tilings(fc):
            for scheme in ALL_SCHEMES:
                if scheme is ReuseScheme.ADAPTIVE_REUSE:
                    continue
                assert layer_traffic(lowered, tiling, scheme) \
                    == layer_traffic(fc, tiling, scheme)

    @pytest.mark.parametrize("case", CASES[:1])
    def test_edp_byte_identical(self, case):
        fc, lowered = self.lowered_pair(*case)
        tiling = enumerate_tilings(fc)[0]
        for architecture in (DRAMArchitecture.DDR3,
                             DRAMArchitecture.SALP_MASA):
            for policy in TABLE1_MAPPINGS:
                old = layer_edp(fc, tiling,
                                ReuseScheme.ADAPTIVE_REUSE, policy,
                                architecture)
                new = layer_edp(lowered, tiling,
                                ReuseScheme.ADAPTIVE_REUSE, policy,
                                architecture)
                assert new == old


#: Pinned Algorithm-1 output: AlexNet on DDR3, adaptive-reuse —
#: (layer, policy, resolved scheme, (Th, Tw, Tj, Ti), EDP).
ALEXNET_DDR3_ADAPTIVE_GOLDEN = [
    ("CONV1", "Mapping-3 (DRMap)", "wghs-reuse", (8, 55, 96, 3),
     "2.164840689e-08"),
    ("CONV2", "Mapping-3 (DRMap)", "ifms-reuse", (27, 27, 32, 48),
     "2.985858371e-08"),
    ("CONV3", "Mapping-3 (DRMap)", "ofms-reuse", (13, 13, 384, 16),
     "9.417516278e-08"),
    ("CONV4", "Mapping-3 (DRMap)", "ofms-reuse", (13, 13, 192, 32),
     "6.137107728e-08"),
    ("CONV5", "Mapping-3 (DRMap)", "ifms-reuse", (13, 13, 32, 192),
     "3.028755785e-08"),
    ("FC6", "Mapping-3 (DRMap)", "ofms-reuse", (1, 1, 4096, 16),
     "1.345265375e-04"),
    ("FC7", "Mapping-3 (DRMap)", "ofms-reuse", (1, 1, 4096, 16),
     "2.657949881e-05"),
    ("FC8", "Mapping-3 (DRMap)", "ofms-reuse", (1, 1, 1000, 64),
     "1.587256313e-06"),
]


class TestAlexNetCompatShimGolden:
    """Satellite invariant 2: full-network DSE through the shim."""

    @pytest.fixture(scope="class")
    def result(self):
        return explore_network(
            alexnet(),
            architectures=(DRAMArchitecture.DDR3,),
            schemes=(ReuseScheme.ADAPTIVE_REUSE,))

    def test_shim_lowers_byte_identically_to_graph(self):
        assert alexnet() == zoo.alexnet().lower()
        assert alexnet(batch=4, bytes_per_element=2) \
            == zoo.alexnet(batch=4, bytes_per_element=2).lower()

    def test_per_layer_minima_pinned(self, result):
        best = best_mapping_per_layer(
            result, DRAMArchitecture.DDR3, ReuseScheme.ADAPTIVE_REUSE)
        assert len(best) == len(ALEXNET_DDR3_ADAPTIVE_GOLDEN)
        for name, policy, scheme, tiling, edp in \
                ALEXNET_DDR3_ADAPTIVE_GOLDEN:
            point = best[name]
            assert point.policy.name == policy
            assert point.result.resolved_scheme.value == scheme
            assert (point.tiling.th, point.tiling.tw,
                    point.tiling.tj, point.tiling.ti) == tiling
            assert f"{point.edp_js:.9e}" == edp

    def test_graph_path_produces_identical_records(self, result):
        graph_result = explore_network(
            zoo.alexnet(),
            architectures=(DRAMArchitecture.DDR3,),
            schemes=(ReuseScheme.ADAPTIVE_REUSE,))
        assert graph_result.points == result.points
