"""Tests for the graph model zoo (geometry is load-bearing)."""

import pytest

from repro.workloads import handoff_summary, zoo


class TestChainModels:
    """The chain models must lower to the historical layer lists."""

    def test_alexnet_lowered_names(self):
        assert [l.name for l in zoo.alexnet().lower()] == [
            "CONV1", "CONV2", "CONV3", "CONV4", "CONV5",
            "FC6", "FC7", "FC8"]

    def test_alexnet_pooling_is_explicit(self):
        net = zoo.alexnet()
        assert [op.name for op in net.ops if op.is_traffic_only] \
            == ["POOL1", "POOL2", "POOL5"]
        # CONV2 consumes the pooled 27x27 map, exactly as the flat
        # list hard-coded it.
        assert net.tensor("p1").shape == "96x27x27"

    def test_vgg16_lowered_geometry(self):
        layers = zoo.vgg16().lower()
        assert len(layers) == 16
        assert layers[0].name == "CONV1_1"
        assert layers[-3].in_channels == 512 * 7 * 7  # FC6
        assert layers[-1].out_channels == 1000

    def test_lenet5_average_pools(self):
        net = zoo.lenet5()
        pools = [op for op in net.ops if op.is_traffic_only]
        assert [p.mode for p in pools] == ["avg", "avg"]
        assert [l.name for l in net.lower()] == [
            "C1", "C3", "C5", "F6", "OUTPUT"]


class TestResNet18:
    @pytest.fixture(scope="class")
    def net(self):
        return zoo.resnet18()

    def test_twentyone_loop_nests(self, net):
        # 1 stem + 16 block convs + 3 projections + 1 FC.
        assert len(net.lower()) == 21

    def test_residual_adds_present(self, net):
        adds = [op for op in net.ops if op.kind == "eltwise"]
        assert len(adds) == 8  # two basic blocks per stage, four stages

    def test_identity_skip_reuses_block_input(self, net):
        # LAYER1_B1 has no projection: its add consumes the pooled
        # stem output directly.
        add = net.op("LAYER1_B1_ADD")
        assert "p1" in add.inputs

    def test_projection_skips_on_downsampling_stages(self, net):
        proj_names = [op.name for op in net.ops
                      if op.name.endswith("_PROJ")]
        assert proj_names == [
            "LAYER2_B1_PROJ", "LAYER3_B1_PROJ", "LAYER4_B1_PROJ"]

    def test_skip_edges_survive_in_handoffs(self, net):
        assert len(handoff_summary(net).skip_edges) == 8


class TestMobileNets:
    def test_v1_depthwise_fully_grouped(self):
        layers = zoo.mobilenet_v1().lower()
        dw = [l for l in layers if l.name.startswith("DW")]
        assert len(dw) == 13
        assert all(l.groups == l.in_channels for l in dw)

    def test_v2_inverted_residual_structure(self):
        net = zoo.mobilenet_v2()
        # 17 bottleneck blocks; stride-1 width-preserving ones get
        # skip edges.
        adds = [op for op in net.ops if op.kind == "eltwise"]
        assert len(adds) == 10
        assert len(handoff_summary(net).skip_edges) == 10
        # The first block has expansion t=1: no EXPAND op.
        assert "B1_EXPAND" not in [op.name for op in net.ops]
        assert net.op("B2_EXPAND").out_channels == 16 * 6

    def test_v2_lowers_end_to_end(self):
        layers = zoo.mobilenet_v2().lower()
        assert layers[0].name == "CONV1"
        assert layers[-2].name == "CONV_LAST"
        assert layers[-1].name == "FC"
        assert layers[-1].in_channels == 1280


class TestBertEncoder:
    @pytest.fixture(scope="class")
    def net(self):
        return zoo.bert_encoder()

    def test_eight_matmuls_lower(self, net):
        assert [l.name for l in net.lower()] == [
            "Q_PROJ", "K_PROJ", "V_PROJ", "ATTN_SCORES",
            "ATTN_CONTEXT", "ATTN_OUT", "FFN1", "FFN2"]

    def test_tokens_fold_into_batch(self, net):
        assert all(layer.batch == 128 for layer in net.lower())

    def test_attention_weight_operands_are_graph_edges(self, net):
        assert net.op("ATTN_SCORES").inputs == ("q", "k")
        assert net.op("ATTN_CONTEXT").inputs == ("scores", "v")

    def test_attention_weight_volume_is_activation_matrix(self, net):
        scores = net.lowered_layer("ATTN_SCORES")
        assert scores.wghs_bytes == net.tensor("k").bytes()
        context = net.lowered_layer("ATTN_CONTEXT")
        assert context.wghs_bytes == net.tensor("v").bytes()

    def test_residual_adds(self, net):
        assert net.op("ATTN_ADD").inputs == ("attn", "tokens")
        assert net.op("FFN_ADD").inputs == ("ffn2", "attn_res")

    def test_parameterization(self):
        small = zoo.bert_encoder(seq_len=8, hidden=64, heads=4,
                                 ffn_hidden=128)
        layers = small.lower()
        assert all(layer.batch == 8 for layer in layers)
        ffn1 = small.lowered_layer("FFN1")
        assert (ffn1.in_channels, ffn1.out_channels) == (64, 128)

    def test_hidden_must_divide_heads(self):
        with pytest.raises(ValueError):
            zoo.bert_encoder(hidden=100, heads=12)
