"""Tests for network-level hand-off and EDP aggregation analysis."""

import pytest

from repro.cnn.scheduling import ReuseScheme
from repro.cnn.tiling import BufferConfig
from repro.core.dse import explore_network, explore_workload
from repro.dram.architecture import DRAMArchitecture
from repro.errors import WorkloadError
from repro.workloads import (
    ConvOp,
    EltwiseOp,
    Network,
    feature_map_handoffs,
    get_workload,
    handoff_summary,
    network_dse_summary,
)


def residual_net(batch=1):
    net = Network("res-toy", batch=batch)
    net.add_input("x", 8, 8, 8)
    net.add(ConvOp("CONV1", "x", "a", 8, kernel=3, padding=1))
    net.add(ConvOp("CONV2", "a", "b", 8, kernel=3, padding=1))
    net.add(EltwiseOp("ADD", "b", "a", "c"))
    net.add(ConvOp("CONV3", "c", "d", 8, kernel=3, padding=1))
    return net


class TestHandoffs:
    def test_edges_exclude_inputs_and_outputs(self):
        handoffs = feature_map_handoffs(residual_net())
        names = [h.tensor.name for h in handoffs]
        assert "x" not in names   # graph input
        assert "d" not in names   # unconsumed output
        assert set(names) == {"a", "b", "c"}

    def test_skip_edge_has_two_consumers(self):
        summary = handoff_summary(residual_net())
        (skip,) = summary.skip_edges
        assert skip.tensor.name == "a"
        assert skip.consumers == ("CONV2", "ADD")
        # One write, two reads.
        assert skip.dram_round_trip_bytes == 3 * skip.tensor_bytes

    def test_residency_against_buffers(self):
        net = residual_net()
        # 8x8x8 = 512 B tensors: resident in generous buffers...
        roomy = handoff_summary(net)
        assert all(h.on_chip_resident for h in roomy.handoffs)
        assert roomy.saved_bytes == roomy.total_handoff_bytes
        # ...DRAM-resident when the buffers are too small.
        tight = handoff_summary(
            net, BufferConfig(ifms_bytes=256, wghs_bytes=256,
                              ofms_bytes=256))
        assert not any(h.on_chip_resident for h in tight.handoffs)
        assert tight.saved_bytes == 0

    def test_batch_scales_footprints(self):
        single = handoff_summary(residual_net(batch=1))
        batched = handoff_summary(residual_net(batch=4))
        assert batched.total_handoff_bytes \
            == 4 * single.total_handoff_bytes

    def test_resnet18_residual_edges_visible(self):
        summary = handoff_summary(get_workload("resnet18"))
        assert len(summary.skip_edges) == 8
        # Early feature maps are far larger than the 64 KB buffers.
        assert summary.total_handoff_bytes > summary.saved_bytes


class TestNetworkDseSummary:
    @pytest.fixture(scope="class")
    def explored(self):
        net = residual_net()
        result = explore_network(
            net, architectures=(DRAMArchitecture.DDR3,),
            schemes=(ReuseScheme.ADAPTIVE_REUSE,))
        return net, result

    def test_per_op_topological_order(self, explored):
        net, result = explored
        summary = network_dse_summary(net, result)
        assert [name for name, _ in summary.per_op] \
            == ["CONV1", "CONV2", "CONV3"]

    def test_totals_are_sums_of_minima(self, explored):
        net, result = explored
        summary = network_dse_summary(net, result)
        expected = sum(result.best(layer_name=name).edp_js
                       for name in ("CONV1", "CONV2", "CONV3"))
        assert summary.total_edp_js == pytest.approx(expected)
        assert summary.total_energy_nj > 0
        assert summary.total_latency_ns > 0

    def test_missing_ops_rejected(self, explored):
        net, result = explored
        other = residual_net()
        other.add(ConvOp("CONV4", "d", "e", 8, kernel=3, padding=1))
        with pytest.raises(WorkloadError, match="no points for op"):
            network_dse_summary(other, result)

    def test_best_points_lookup(self, explored):
        net, result = explored
        summary = network_dse_summary(net, result)
        assert summary.best_points()["CONV1"].layer_name == "CONV1"


class TestExploreWorkload:
    def test_by_name_end_to_end(self):
        net, result, summary = explore_workload(
            "tiny", architecture=DRAMArchitecture.DDR3,
            scheme=ReuseScheme.ADAPTIVE_REUSE)
        assert net.name == "tiny"
        assert [name for name, _ in summary.per_op] \
            == ["TINY_CONV", "TINY_FC"]
        assert summary.total_edp_js > 0
        # The record only holds the requested slice.
        assert all(p.architecture is DRAMArchitecture.DDR3
                   for p in result.points)

    def test_accepts_prebuilt_network(self):
        net = residual_net()
        same, _, summary = explore_workload(
            net, architecture=DRAMArchitecture.DDR3,
            scheme=ReuseScheme.OFMS_REUSE)
        assert same is net
        assert summary.handoffs.network_name == "res-toy"

    def test_conflicting_grid_kwargs_rejected(self):
        from repro.errors import DseError

        with pytest.raises(DseError, match="not both"):
            explore_workload(
                "tiny", architecture=DRAMArchitecture.DDR3,
                architectures=(DRAMArchitecture.SALP_MASA,))
        with pytest.raises(DseError, match="not both"):
            explore_workload(
                "tiny", scheme=ReuseScheme.OFMS_REUSE,
                schemes=(ReuseScheme.IFMS_REUSE,))
