"""Tests for the public workload registry."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    ConvOp,
    Network,
    get_workload,
    register_model,
    register_workload,
    unregister_workload,
    workload_names,
)


def toy_builder(batch=1, bytes_per_element=1):
    net = Network("toy-reg", batch=batch)
    net.add_input("x", 4, 8, 8, bytes_per_element)
    net.add(ConvOp("C", "x", "y", 8, kernel=3, padding=1))
    return net


@pytest.fixture
def registered():
    register_workload("toy-reg", toy_builder)
    try:
        yield "toy-reg"
    finally:
        unregister_workload("toy-reg")


class TestRegistration:
    def test_builtin_zoo_present(self):
        names = workload_names()
        for name in ("alexnet", "vgg16", "lenet5", "resnet18",
                     "mobilenetv1", "mobilenetv2", "bert-encoder",
                     "tiny"):
            assert name in names

    def test_register_and_get(self, registered):
        net = get_workload(registered, batch=3)
        assert net.batch == 3
        assert [op.name for op in net.ops] == ["C"]

    def test_duplicate_rejected_without_replace(self, registered):
        with pytest.raises(WorkloadError, match="already registered"):
            register_workload(registered, toy_builder)
        register_workload(registered, toy_builder, replace=True)

    def test_register_model_alias(self):
        assert register_model is register_workload

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            get_workload("no-such-net")

    def test_unregister_unknown(self):
        with pytest.raises(WorkloadError):
            unregister_workload("no-such-net")

    def test_invalid_registrations(self):
        with pytest.raises(WorkloadError):
            register_workload("", toy_builder)
        with pytest.raises(WorkloadError):
            register_workload("x-bad", "not-callable")


class TestDownstreamViews:
    def test_model_registry_view_is_live(self, registered):
        from repro.cnn.models import MODEL_REGISTRY, model_by_name

        assert registered in MODEL_REGISTRY
        layers = model_by_name(registered, batch=2)
        assert layers[0].name == "C"
        assert layers[0].batch == 2
        # The view exposes lowering callables like the old dict did.
        assert MODEL_REGISTRY[registered]()[0].name == "C"

    def test_model_registry_view_forgets_unregistered(self):
        from repro.cnn.models import MODEL_REGISTRY

        assert "toy-reg" not in MODEL_REGISTRY
        with pytest.raises(KeyError):
            MODEL_REGISTRY["toy-reg"]

    def test_model_registry_mapping_protocol(self, registered):
        from repro.cnn.models import MODEL_REGISTRY

        # Mapping reads stay consistent with __getitem__.
        assert MODEL_REGISTRY.get("no-such-net") is None
        assert MODEL_REGISTRY.get(registered)()[0].name == "C"
        assert registered in list(MODEL_REGISTRY.keys())
        assert len(MODEL_REGISTRY) == len(list(MODEL_REGISTRY))
        assert dict(MODEL_REGISTRY.items())[registered]

    def test_model_registry_rejects_writes_loudly(self):
        from repro.cnn.models import MODEL_REGISTRY

        with pytest.raises(TypeError, match="register_workload"):
            MODEL_REGISTRY["custom"] = toy_builder

    def test_cli_choices_derive_from_registry(self, registered):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["dse", "--model", registered])
        assert args.model == registered

    def test_cli_models_table_lists_registered(self, registered, capsys):
        from repro.cli import main

        assert main(["models"]) == 0
        assert registered in capsys.readouterr().out
