"""Tests for the closed-form Eq. 2/3 transition counts."""

import pytest

from repro.dram.presets import DDR3_1600_2GB_X8, TINY_ORGANIZATION as ORG
from repro.errors import CapacityError
from repro.mapping.catalog import (
    DRMAP,
    MAPPING_1,
    MAPPING_2,
    MAPPING_5,
    TABLE1_MAPPINGS,
)
from repro.mapping.counts import TransitionCounts, count_transitions
from repro.mapping.dims import Dim


class TestBasicProperties:
    def test_empty_run(self):
        counts = count_transitions(DRMAP, ORG, 0)
        assert counts.total == 0
        assert counts.initial == 0

    def test_single_access_is_initial_only(self):
        counts = count_transitions(DRMAP, ORG, 1)
        assert counts.initial == 1
        assert counts.total == 1
        assert sum(counts.by_dim.values()) == 0

    def test_conservation(self):
        for policy in TABLE1_MAPPINGS:
            counts = count_transitions(policy, ORG, 500)
            counts.check_conservation()

    def test_negative_run_rejected(self):
        with pytest.raises(ValueError):
            count_transitions(DRMAP, ORG, -1)

    def test_overflow_rejected(self):
        capacity = DRMAP.capacity(ORG)
        with pytest.raises(CapacityError):
            count_transitions(DRMAP, ORG, capacity + 1)

    def test_offset_overflow_rejected(self):
        capacity = DRMAP.capacity(ORG)
        with pytest.raises(CapacityError):
            count_transitions(DRMAP, ORG, 2, start=capacity - 1)


class TestDRMapCounts:
    """Hand-computed counts for DRMap on the tiny organization
    (8 bursts/row, 4 banks, 4 subarrays, 16 rows/subarray)."""

    def test_within_one_row(self):
        counts = count_transitions(DRMAP, ORG, 8)
        assert counts.dif_columns == 7
        assert counts.dif_banks == 0
        assert counts.initial == 1

    def test_one_full_bank_sweep(self):
        # 32 accesses: 4 banks x 8 columns.
        counts = count_transitions(DRMAP, ORG, 32)
        assert counts.dif_columns == 28   # 7 per bank
        assert counts.dif_banks == 3
        assert counts.dif_subarrays == 0

    def test_one_full_subarray_block(self):
        # 128 accesses: 4 subarrays x 4 banks x 8 columns.
        counts = count_transitions(DRMAP, ORG, 128)
        assert counts.dif_columns == 112
        assert counts.dif_banks == 12
        assert counts.dif_subarrays == 3
        assert counts.dif_rows == 0

    def test_row_wrap(self):
        counts = count_transitions(DRMAP, ORG, 129)
        assert counts.dif_rows == 1

    def test_table2_tile(self):
        """A 64 KB tile on the Table-II device: 8192 accesses."""
        counts = count_transitions(DRMAP, DDR3_1600_2GB_X8, 8192)
        # 128 columns -> 8192/128 - 1 = 63 non-column transitions.
        assert counts.dif_columns == 8192 - 64
        assert counts.dif_banks == 64 - 8
        assert counts.dif_subarrays == 8 - 1
        assert counts.dif_rows == 0


class TestMappingContrasts:
    def test_mapping2_dominated_by_subarray_switches(self):
        """Mapping-2 puts the subarray loop innermost: ~ (SA-1)/SA of
        all accesses are subarray switches (paper Key Observation 2)."""
        counts = count_transitions(MAPPING_2, DDR3_1600_2GB_X8, 8192)
        assert counts.dif_subarrays == pytest.approx(8192 * 7 / 8, rel=0.01)

    def test_mapping5_also_subarray_heavy(self):
        counts = count_transitions(MAPPING_5, DDR3_1600_2GB_X8, 8192)
        assert counts.dif_subarrays == pytest.approx(8192 * 7 / 8, rel=0.01)

    def test_drmap_maximizes_hits(self):
        """DRMap has the most dif_column (hit) accesses of all Table-I
        policies on a row-aligned tile."""
        drmap_hits = count_transitions(
            DRMAP, DDR3_1600_2GB_X8, 8192).dif_columns
        for policy in TABLE1_MAPPINGS:
            hits = count_transitions(
                policy, DDR3_1600_2GB_X8, 8192).dif_columns
            assert hits <= drmap_hits

    def test_mapping1_vs_drmap_swaps_bank_subarray(self):
        """Mapping-1 and DRMap differ only in the bank/subarray
        priority (paper Key Observation 3)."""
        m1 = count_transitions(MAPPING_1, DDR3_1600_2GB_X8, 8192)
        m3 = count_transitions(DRMAP, DDR3_1600_2GB_X8, 8192)
        assert m1.dif_columns == m3.dif_columns
        assert m1.dif_subarrays == m3.dif_banks
        assert m1.dif_banks == m3.dif_subarrays


class TestOffsets:
    def test_aligned_offset_preserves_counts(self):
        """Starting a tile at a row-aligned offset yields identical
        counts for a row-aligned length."""
        base = count_transitions(DRMAP, ORG, 64, start=0)
        shifted = count_transitions(DRMAP, ORG, 64, start=64)
        assert base.by_dim == shifted.by_dim

    def test_misaligned_offset_shifts_wraps(self):
        base = count_transitions(DRMAP, ORG, 8, start=0)
        shifted = count_transitions(DRMAP, ORG, 8, start=4)
        # The shifted run crosses a row boundary mid-run.
        assert base.dif_columns == 7
        assert shifted.dif_columns == 6
        assert shifted.dif_banks == 1


class TestCombinators:
    def test_combined_adds_fields(self):
        a = count_transitions(DRMAP, ORG, 32)
        b = count_transitions(MAPPING_2, ORG, 16)
        merged = a.combined(b)
        assert merged.total == 48
        assert merged.initial == 2
        merged.check_conservation()

    def test_scaled(self):
        counts = count_transitions(DRMAP, ORG, 32)
        tripled = counts.scaled(3)
        assert tripled.total == 96
        assert tripled.dif_columns == 3 * counts.dif_columns
        tripled.check_conservation()

    def test_scaled_rejects_negative(self):
        counts = count_transitions(DRMAP, ORG, 8)
        with pytest.raises(ValueError):
            counts.scaled(-1)

    def test_scaled_zero_is_empty(self):
        counts = count_transitions(DRMAP, ORG, 8).scaled(0)
        assert counts.total == 0

    def test_accessor_properties(self):
        counts = TransitionCounts(
            by_dim={Dim.COLUMN: 5, Dim.BANK: 2, Dim.SUBARRAY: 1,
                    Dim.ROW: 1, Dim.RANK: 0, Dim.CHANNEL: 0},
            initial=1, total=10)
        assert counts.dif_columns == 5
        assert counts.dif_banks == 2
        assert counts.dif_subarrays == 1
        assert counts.dif_rows == 1
        assert counts.dif_ranks == 0
        assert counts.dif_channels == 0
