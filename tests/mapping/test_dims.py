"""Tests for repro.mapping.dims."""

from repro.dram.presets import DDR3_1600_2GB_X8, TINY_ORGANIZATION
from repro.mapping.dims import (
    Dim,
    INTRA_CHIP_DIMS,
    OUTER_DIMS,
    dim_size,
)


class TestDimSizes:
    def test_column_counts_bursts(self):
        assert dim_size(Dim.COLUMN, DDR3_1600_2GB_X8) == 128

    def test_bank_size(self):
        assert dim_size(Dim.BANK, DDR3_1600_2GB_X8) == 8

    def test_subarray_size(self):
        assert dim_size(Dim.SUBARRAY, DDR3_1600_2GB_X8) == 8

    def test_row_is_subarray_local(self):
        assert dim_size(Dim.ROW, DDR3_1600_2GB_X8) == 4096

    def test_rank_channel(self):
        assert dim_size(Dim.RANK, DDR3_1600_2GB_X8) == 1
        assert dim_size(Dim.CHANNEL, DDR3_1600_2GB_X8) == 1

    def test_product_covers_capacity(self):
        for org in (DDR3_1600_2GB_X8, TINY_ORGANIZATION):
            product = 1
            for dim in list(INTRA_CHIP_DIMS) + list(OUTER_DIMS):
                product *= dim_size(dim, org)
            assert product == org.total_bytes // org.bytes_per_burst


class TestConstants:
    def test_intra_chip_dims(self):
        assert set(INTRA_CHIP_DIMS) \
            == {Dim.COLUMN, Dim.BANK, Dim.SUBARRAY, Dim.ROW}

    def test_outer_dims_order(self):
        assert OUTER_DIMS == (Dim.RANK, Dim.CHANNEL)

    def test_str(self):
        assert str(Dim.SUBARRAY) == "subarray"
