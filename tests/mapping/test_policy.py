"""Tests for repro.mapping.policy."""

import pytest

from repro.dram.presets import TINY_ORGANIZATION as ORG
from repro.errors import CapacityError, MappingError
from repro.mapping.dims import Dim
from repro.mapping.policy import MappingPolicy


COL_FIRST = MappingPolicy(
    "col-first", (Dim.COLUMN, Dim.BANK, Dim.SUBARRAY, Dim.ROW))
BANK_FIRST = MappingPolicy(
    "bank-first", (Dim.BANK, Dim.COLUMN, Dim.SUBARRAY, Dim.ROW))


class TestValidation:
    def test_requires_permutation(self):
        with pytest.raises(MappingError):
            MappingPolicy("bad", (Dim.COLUMN, Dim.COLUMN, Dim.BANK,
                                  Dim.ROW))

    def test_requires_all_four_dims(self):
        with pytest.raises(MappingError):
            MappingPolicy("bad", (Dim.COLUMN, Dim.BANK, Dim.ROW))

    def test_rank_not_allowed_in_intra_chip_order(self):
        with pytest.raises(MappingError):
            MappingPolicy("bad", (Dim.COLUMN, Dim.BANK, Dim.SUBARRAY,
                                  Dim.RANK))


class TestStructure:
    def test_full_order_appends_rank_channel(self):
        assert COL_FIRST.full_order[-2:] == (Dim.RANK, Dim.CHANNEL)

    def test_sizes_match_organization(self):
        # TINY: 8 bursts/row, 4 banks, 4 subarrays, 16 rows/subarray.
        assert COL_FIRST.sizes(ORG) == [8, 4, 4, 16, 1, 1]

    def test_strides_are_running_products(self):
        assert COL_FIRST.strides(ORG) == [1, 8, 32, 128, 2048, 2048]

    def test_capacity_is_total_bursts(self):
        expected = ORG.total_bytes // ORG.bytes_per_burst
        assert COL_FIRST.capacity(ORG) == expected


class TestAddressGeneration:
    def test_index_zero_is_origin(self):
        coord = COL_FIRST.coordinate_of(0, ORG)
        assert (coord.bank, coord.subarray, coord.row, coord.column) \
            == (0, 0, 0, 0)

    def test_innermost_varies_fastest(self):
        assert COL_FIRST.coordinate_of(1, ORG).column == 1
        assert BANK_FIRST.coordinate_of(1, ORG).bank == 1

    def test_wrap_carries_to_next_loop(self):
        bursts = ORG.bursts_per_row
        coord = COL_FIRST.coordinate_of(bursts, ORG)
        assert coord.column == 0
        assert coord.bank == 1

    def test_row_is_outermost_intra_chip(self):
        per_row_block = 8 * 4 * 4  # columns x banks x subarrays
        coord = COL_FIRST.coordinate_of(per_row_block, ORG)
        assert coord.row == 1
        assert (coord.column, coord.bank, coord.subarray) == (0, 0, 0)

    def test_coordinates_are_unique(self):
        seen = set()
        for coord in COL_FIRST.iter_coordinates(512, ORG):
            assert coord not in seen
            seen.add(coord)

    def test_coordinates_valid_for_organization(self):
        for coord in COL_FIRST.iter_coordinates(300, ORG):
            coord.validate(ORG)

    def test_round_trip_digits(self):
        for index in (0, 1, 7, 8, 100, 2047):
            digits = COL_FIRST.digits_of(index, ORG)
            rebuilt = 0
            for digit, stride in zip(digits, COL_FIRST.strides(ORG)):
                rebuilt += digit * stride
            assert rebuilt == index

    def test_negative_index_rejected(self):
        with pytest.raises(MappingError):
            COL_FIRST.coordinate_of(-1, ORG)

    def test_overflow_rejected(self):
        with pytest.raises(CapacityError):
            COL_FIRST.coordinate_of(COL_FIRST.capacity(ORG), ORG)

    def test_iterator_honours_start(self):
        direct = COL_FIRST.coordinate_of(37, ORG)
        from_iter = next(COL_FIRST.iter_coordinates(1, ORG, start=37))
        assert direct == from_iter

    def test_describe_mentions_order(self):
        assert "column" in COL_FIRST.describe()
