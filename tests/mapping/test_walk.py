"""Tests for the state-aware walk classification."""

import pytest

from repro.dram.architecture import DRAMArchitecture
from repro.dram.characterize import AccessCondition
from repro.dram.presets import TINY_ORGANIZATION as ORG
from repro.mapping.catalog import DRMAP, MAPPING_2, TABLE1_MAPPINGS
from repro.mapping.walk import classify_walk


class TestBasics:
    def test_counts_sum_to_total(self):
        result = classify_walk(DRMAP, ORG, DRAMArchitecture.DDR3, 200)
        assert sum(result.by_condition.values()) == 200

    def test_first_access_is_a_miss(self):
        result = classify_walk(DRMAP, ORG, DRAMArchitecture.DDR3, 1)
        assert result.count(AccessCondition.ROW_MISS) == 1

    def test_hit_rate_within_a_row(self):
        bursts = ORG.bursts_per_row
        result = classify_walk(
            DRMAP, ORG, DRAMArchitecture.DDR3, bursts)
        assert result.count(AccessCondition.ROW_HIT) == bursts - 1
        assert result.hit_rate == pytest.approx((bursts - 1) / bursts)

    def test_empty_walk(self):
        result = classify_walk(DRMAP, ORG, DRAMArchitecture.DDR3, 0)
        assert result.hit_rate == 0.0


class TestArchitectureSensitivity:
    def test_mapping2_ddr3_sees_conflicts_not_hits(self):
        """The analytical model's known optimism: under Mapping-2 on
        DDR3, wrapping back to subarray 0 after a sweep is *not* a hit
        (the bank's row buffer moved on)."""
        # One full sweep of 4 subarrays plus the wrap access.
        result = classify_walk(
            MAPPING_2, ORG, DRAMArchitecture.DDR3, ORG.subarrays_per_bank + 1)
        assert result.count(AccessCondition.ROW_HIT) == 0

    def test_mapping2_masa_wrap_is_a_hit(self):
        """Under MASA the local row buffers survive the sweep."""
        result = classify_walk(
            MAPPING_2, ORG, DRAMArchitecture.SALP_MASA,
            ORG.subarrays_per_bank + 1)
        assert result.count(AccessCondition.ROW_HIT) == 1

    def test_masa_hit_rate_dominates_ddr3_for_mapping2(self):
        ddr3 = classify_walk(MAPPING_2, ORG, DRAMArchitecture.DDR3, 256)
        masa = classify_walk(
            MAPPING_2, ORG, DRAMArchitecture.SALP_MASA, 256)
        assert masa.hit_rate > ddr3.hit_rate

    @pytest.mark.parametrize("policy", TABLE1_MAPPINGS,
                             ids=[p.name for p in TABLE1_MAPPINGS])
    def test_drmap_hit_rate_is_maximal(self, policy):
        """DRMap achieves the highest state-aware hit rate on DDR3."""
        drmap = classify_walk(DRMAP, ORG, DRAMArchitecture.DDR3, 512)
        other = classify_walk(policy, ORG, DRAMArchitecture.DDR3, 512)
        assert other.hit_rate <= drmap.hit_rate + 1e-12

    def test_bank_changes_classified_as_bank_parallel(self):
        from repro.mapping.dims import Dim
        from repro.mapping.policy import MappingPolicy
        bank_inner = MappingPolicy(
            "bank-inner", (Dim.BANK, Dim.COLUMN, Dim.SUBARRAY, Dim.ROW))
        result = classify_walk(
            bank_inner, ORG, DRAMArchitecture.DDR3, ORG.banks_per_chip)
        # First access is a miss; the rest are misses in *other* banks,
        # i.e. overlapped bank-parallel activations.
        assert result.count(AccessCondition.BANK_PARALLEL) \
            == ORG.banks_per_chip - 1

    def test_masa_budget_eviction_causes_reactivation(self):
        """With a subarray budget below the sweep width, MASA revisits
        are no longer hits."""
        from repro.dram import architecture as arch_mod
        behavior = arch_mod.behavior_of(DRAMArchitecture.SALP_MASA)
        assert behavior.max_activated_subarrays >= ORG.subarrays_per_bank
        # (Budget-limited behaviour is exercised through the controller
        # tests; the walk uses the same budget rule.)
