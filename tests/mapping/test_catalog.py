"""Tests for the Table-I mapping catalog."""

import pytest

from repro.mapping.catalog import (
    DEFAULT_MAPPING,
    DRMAP,
    MAPPING_3,
    MAPPINGS_BY_INDEX,
    TABLE1_MAPPINGS,
    mapping_by_index,
)
from repro.mapping.dims import Dim


class TestTable1:
    """The loop orders must match Table I exactly (inner -> outer)."""

    EXPECTED = {
        1: (Dim.COLUMN, Dim.SUBARRAY, Dim.BANK, Dim.ROW),
        2: (Dim.SUBARRAY, Dim.COLUMN, Dim.BANK, Dim.ROW),
        3: (Dim.COLUMN, Dim.BANK, Dim.SUBARRAY, Dim.ROW),
        4: (Dim.BANK, Dim.COLUMN, Dim.SUBARRAY, Dim.ROW),
        5: (Dim.SUBARRAY, Dim.BANK, Dim.COLUMN, Dim.ROW),
        6: (Dim.BANK, Dim.SUBARRAY, Dim.COLUMN, Dim.ROW),
    }

    @pytest.mark.parametrize("index", range(1, 7))
    def test_loop_order(self, index):
        assert mapping_by_index(index).loop_order == self.EXPECTED[index]

    def test_six_policies(self):
        assert len(TABLE1_MAPPINGS) == 6
        assert len(MAPPINGS_BY_INDEX) == 6

    def test_all_have_row_outermost(self):
        """The paper narrows the space to row-outermost policies."""
        for policy in TABLE1_MAPPINGS:
            assert policy.loop_order[-1] is Dim.ROW

    def test_all_distinct(self):
        orders = {policy.loop_order for policy in TABLE1_MAPPINGS}
        assert len(orders) == 6

    def test_unknown_index_rejected(self):
        with pytest.raises(KeyError):
            mapping_by_index(7)
        with pytest.raises(KeyError):
            mapping_by_index(0)


class TestDRMap:
    def test_drmap_is_mapping_3(self):
        assert DRMAP is MAPPING_3

    def test_drmap_priority_order(self):
        """DRMap: row-buffer hits first, then bank-, then subarray-level
        parallelism, rows last (paper Section III-A)."""
        assert DRMAP.loop_order == (
            Dim.COLUMN, Dim.BANK, Dim.SUBARRAY, Dim.ROW)

    def test_drmap_name_mentions_drmap(self):
        assert "DRMap" in DRMAP.name


class TestDefaultMapping:
    def test_default_is_subarray_oblivious(self):
        """The commodity default interleaves columns then banks and
        leaves subarray selection to the row address."""
        assert DEFAULT_MAPPING.loop_order[0] is Dim.COLUMN
        assert DEFAULT_MAPPING.loop_order[1] is Dim.BANK
        assert DEFAULT_MAPPING.loop_order.index(Dim.ROW) \
            < DEFAULT_MAPPING.loop_order.index(Dim.SUBARRAY)

    def test_default_not_in_table1(self):
        assert DEFAULT_MAPPING not in TABLE1_MAPPINGS
