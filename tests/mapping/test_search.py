"""Tests for the exhaustive mapping-policy search."""

import pytest

from repro.dram.architecture import DRAMArchitecture
from repro.mapping.catalog import DRMAP, TABLE1_MAPPINGS
from repro.mapping.dims import Dim
from repro.mapping.search import (
    all_permutation_policies,
    best_policy_for,
    narrowing_is_sound,
    rank_policies,
    row_outermost_policies,
    score_policy,
)

RUN = 8192  # one 64 KB tile


class TestEnumeration:
    def test_24_permutations(self):
        policies = all_permutation_policies()
        assert len(policies) == 24
        assert len({p.loop_order for p in policies}) == 24

    def test_six_row_outermost(self):
        family = row_outermost_policies()
        assert len(family) == 6
        assert all(p.loop_order[-1] is Dim.ROW for p in family)

    def test_row_outermost_matches_table1(self):
        family = {p.loop_order for p in row_outermost_policies()}
        table1 = {p.loop_order for p in TABLE1_MAPPINGS}
        assert family == table1


class TestScoring:
    def test_score_positive(self):
        scored = score_policy(DRMAP, RUN, DRAMArchitecture.DDR3)
        assert scored.cycles > 0
        assert scored.energy_nj > 0
        assert scored.edp_score == pytest.approx(
            scored.cycles * scored.energy_nj)

    def test_ranking_is_sorted(self):
        ranked = rank_policies(RUN, DRAMArchitecture.DDR3)
        scores = [s.edp_score for s in ranked]
        assert scores == sorted(scores)

    def test_drmap_order_is_global_optimum_on_ddr3(self):
        """Among all 24 permutations, DRMap's loop order wins."""
        best = best_policy_for(RUN, DRAMArchitecture.DDR3)
        assert best.policy.loop_order == DRMAP.loop_order

    @pytest.mark.parametrize("arch", list(DRAMArchitecture),
                             ids=[a.value for a in DRAMArchitecture])
    def test_global_best_is_row_outermost(self, arch):
        best = best_policy_for(RUN, arch)
        assert best.policy.loop_order[-1] is Dim.ROW


class TestNarrowing:
    @pytest.mark.parametrize("arch", list(DRAMArchitecture),
                             ids=[a.value for a in DRAMArchitecture])
    def test_table1_narrowing_sound_for_tiles(self, arch):
        """For tile-sized runs the global optimum over all 24
        permutations lies in the row-outermost (Table-I) family -- the
        paper's step-2 narrowing cannot miss the optimum."""
        assert narrowing_is_sound(RUN, arch)

    def test_narrowing_sound_for_sub_row_runs(self):
        """Runs inside one row never wrap any loop, so all column-inner
        permutations tie; the check must still hold (non-strictly)."""
        assert narrowing_is_sound(64, DRAMArchitecture.DDR3)

    def test_some_discarded_permutation_beats_mapping5(self):
        """The narrowing protects the minimum, not every member: the
        discarded column/bank/row/subarray order beats Mapping-5."""
        from repro.mapping.catalog import MAPPING_5
        ranked = rank_policies(RUN, DRAMArchitecture.DDR3)
        scores = {s.policy.name: s.edp_score for s in ranked}
        assert scores["perm-column/bank/row/subarray"] \
            < scores["perm-" + "/".join(
                d.value for d in MAPPING_5.loop_order)]
