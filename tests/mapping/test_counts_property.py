"""Property-based validation of the closed-form counts.

The closed form of :func:`repro.mapping.counts.count_transitions` must
agree exactly with the exhaustive walk of
:func:`repro.mapping.walk.count_transitions_by_walk` for every policy,
run length and start offset.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.dram.presets import TINY_ORGANIZATION as ORG
from repro.dram.spec import DRAMOrganization
from repro.mapping.catalog import TABLE1_MAPPINGS
from repro.mapping.counts import count_transitions
from repro.mapping.dims import Dim
from repro.mapping.policy import MappingPolicy
from repro.mapping.walk import count_transitions_by_walk

CAPACITY = TABLE1_MAPPINGS[0].capacity(ORG)

policy_indices = st.integers(min_value=0, max_value=5)
run_lengths = st.integers(min_value=0, max_value=300)
starts = st.integers(min_value=0, max_value=CAPACITY - 301)


@given(policy=policy_indices, n=run_lengths, start=starts)
@settings(max_examples=150, deadline=None)
def test_closed_form_matches_walk(policy, n, start):
    chosen = TABLE1_MAPPINGS[policy]
    closed = count_transitions(chosen, ORG, n, start=start)
    walked = count_transitions_by_walk(chosen, ORG, n, start=start)
    assert closed.by_dim == walked.by_dim
    assert closed.initial == walked.initial
    assert closed.total == walked.total


@given(policy=policy_indices, n=st.integers(min_value=1, max_value=300),
       start=starts)
@settings(max_examples=100, deadline=None)
def test_conservation_property(policy, n, start):
    counts = count_transitions(TABLE1_MAPPINGS[policy], ORG, n, start=start)
    assert sum(counts.by_dim.values()) + counts.initial == counts.total


@st.composite
def random_organizations(draw):
    return DRAMOrganization(
        banks_per_chip=draw(st.sampled_from([1, 2, 4])),
        subarrays_per_bank=draw(st.sampled_from([1, 2, 4])),
        rows_per_bank=draw(st.sampled_from([4, 8, 16])),
        columns_per_row=draw(st.sampled_from([8, 16])),
        burst_length=8,
        ranks_per_channel=draw(st.sampled_from([1, 2])),
        channels=draw(st.sampled_from([1, 2])),
    )


@st.composite
def random_policies(draw):
    dims = list(draw(st.permutations(
        [Dim.COLUMN, Dim.BANK, Dim.SUBARRAY, Dim.ROW])))
    return MappingPolicy("random", tuple(dims))


@given(org=random_organizations(), policy=random_policies(),
       n=st.integers(min_value=0, max_value=120))
@settings(max_examples=100, deadline=None)
def test_closed_form_matches_walk_on_random_geometry(org, policy, n):
    if org.rows_per_bank % org.subarrays_per_bank:
        return  # invalid geometry is rejected at construction elsewhere
    n = min(n, policy.capacity(org))
    closed = count_transitions(policy, org, n)
    walked = count_transitions_by_walk(policy, org, n)
    assert closed.by_dim == walked.by_dim


def test_exhaustive_small_grid():
    """Brute-force agreement over a dense grid of (policy, n, start)."""
    for policy, n, start in itertools.product(
            TABLE1_MAPPINGS, (0, 1, 2, 7, 8, 9, 31, 32, 33, 128),
            (0, 1, 8, 127)):
        closed = count_transitions(policy, ORG, n, start=start)
        walked = count_transitions_by_walk(policy, ORG, n, start=start)
        assert closed.by_dim == walked.by_dim, (policy.name, n, start)
