"""Shared fixtures and hypothesis profiles for the repro test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

# ----------------------------------------------------------------------
# Hypothesis profiles
# ----------------------------------------------------------------------
# ``ci`` is fully derandomized: the same examples run on every commit,
# so a red CI bisects to the code change, never to the seed.  ``dev``
# (the default) keeps random exploration for local runs.  Select with
# HYPOTHESIS_PROFILE=ci (the GitHub workflow does).
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.cnn.models import alexnet, tiny_test_network  # noqa: E402
from repro.dram.store import CACHE_DIR_ENV  # noqa: E402


@pytest.fixture(scope="session", autouse=True)
def _hermetic_disk_cache(tmp_path_factory):
    """Point the on-disk characterization store at a throwaway dir.

    CLI commands attach the store by default; without this the test
    suite would read and write the operator's real ``~/.cache/repro``.
    """
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(
        tmp_path_factory.mktemp("characterization-store"))
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous
from repro.dram.architecture import ALL_ARCHITECTURES, DRAMArchitecture
from repro.dram.characterize import characterize_preset
from repro.dram.presets import DDR3_1600_2GB_X8, TINY_ORGANIZATION
from repro.dram.simulator import DRAMSimulator
from repro.dram.timing import DDR3_1600_TIMINGS


@pytest.fixture(scope="session")
def table2_org():
    """The paper's Table-II DRAM organization."""
    return DDR3_1600_2GB_X8


@pytest.fixture(scope="session")
def tiny_org():
    """A miniature organization for exhaustive walks."""
    return TINY_ORGANIZATION


@pytest.fixture(scope="session")
def timings():
    """DDR3-1600 timing parameters."""
    return DDR3_1600_TIMINGS


@pytest.fixture(params=ALL_ARCHITECTURES,
                ids=[a.value for a in ALL_ARCHITECTURES])
def architecture(request):
    """Parametrized over all four DRAM architectures."""
    return request.param


@pytest.fixture()
def ddr3_sim(table2_org):
    """A fresh DDR3 simulator on the Table-II organization."""
    return DRAMSimulator(table2_org, architecture=DRAMArchitecture.DDR3)


@pytest.fixture()
def masa_sim(table2_org):
    """A fresh SALP-MASA simulator on the Table-II organization."""
    return DRAMSimulator(
        table2_org, architecture=DRAMArchitecture.SALP_MASA)


@pytest.fixture(scope="session")
def characterizations():
    """Fig.-1 characterization of all four architectures (cached)."""
    return {arch: characterize_preset(arch) for arch in ALL_ARCHITECTURES}


@pytest.fixture(scope="session")
def alexnet_layers():
    """The paper's AlexNet workload."""
    return alexnet()


@pytest.fixture(scope="session")
def tiny_layers():
    """A miniature network for trace-level tests."""
    return tiny_test_network()
