"""Tests for the on-chip buffer model."""

import pytest

from repro.accelerator.buffers import BufferSet, OnChipBuffer
from repro.cnn.models import alexnet
from repro.cnn.tiling import (
    BufferConfig,
    TABLE2_BUFFERS,
    TilingConfig,
    enumerate_tilings,
)
from repro.errors import CapacityError, ConfigurationError


class TestOnChipBuffer:
    def test_fill_within_capacity(self):
        buffer = OnChipBuffer("iB", 1024)
        buffer.fill(512)
        assert buffer.occupied_bytes == 512
        assert buffer.free_bytes == 512

    def test_fill_replaces_contents(self):
        buffer = OnChipBuffer("iB", 1024)
        buffer.fill(512)
        buffer.fill(100)
        assert buffer.occupied_bytes == 100

    def test_overflow_rejected(self):
        buffer = OnChipBuffer("iB", 1024)
        with pytest.raises(CapacityError):
            buffer.fill(1025)

    def test_peak_tracks_maximum(self):
        buffer = OnChipBuffer("iB", 1024)
        buffer.fill(800)
        buffer.fill(100)
        assert buffer.peak_bytes == 800
        assert buffer.utilization == pytest.approx(800 / 1024)

    def test_fill_count(self):
        buffer = OnChipBuffer("iB", 1024)
        buffer.fill(10)
        buffer.fill(10)
        assert buffer.fills == 2

    def test_drain(self):
        buffer = OnChipBuffer("iB", 1024)
        buffer.fill(10)
        buffer.drain()
        assert buffer.occupied_bytes == 0

    def test_rejects_negative_fill(self):
        with pytest.raises(ConfigurationError):
            OnChipBuffer("iB", 1024).fill(-1)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            OnChipBuffer("iB", 0)


class TestBufferSet:
    def test_from_config_names(self):
        buffers = BufferSet.from_config(TABLE2_BUFFERS)
        assert buffers.ifms.name == "iB"
        assert buffers.wghs.name == "wB"
        assert buffers.ofms.name == "oB"

    def test_load_tile_set_enforces_capacity(self):
        layer = alexnet()[1]
        buffers = BufferSet.from_config(
            BufferConfig(ifms_bytes=16, wghs_bytes=64 * 1024,
                         ofms_bytes=64 * 1024))
        tiling = TilingConfig(th=4, tw=4, tj=16, ti=16)
        with pytest.raises(CapacityError):
            buffers.load_tile_set(layer, tiling)

    def test_dse_tilings_always_load(self):
        """Every tiling the DSE admits must load without overflow."""
        layer = alexnet()[1]
        buffers = BufferSet.from_config(TABLE2_BUFFERS)
        for tiling in enumerate_tilings(layer):
            buffers.load_tile_set(layer, tiling)

    def test_utilization_report(self):
        layer = alexnet()[1]
        buffers = BufferSet.from_config(TABLE2_BUFFERS)
        buffers.load_tile_set(layer, TilingConfig(th=4, tw=4, tj=16, ti=16))
        report = buffers.utilization_report()
        assert set(report) == {"ifms", "wghs", "ofms"}
        assert all(0 < v <= 1 for v in report.values())
