"""Tests for the Table-II accelerator configuration."""

import pytest

from repro.accelerator.config import AcceleratorConfig, TABLE2_ACCELERATOR
from repro.dram.architecture import DRAMArchitecture
from repro.errors import ConfigurationError


class TestTable2Defaults:
    def test_mac_array_8x8(self):
        assert TABLE2_ACCELERATOR.mac_rows == 8
        assert TABLE2_ACCELERATOR.mac_cols == 8
        assert TABLE2_ACCELERATOR.num_macs == 64

    def test_buffers_64kb_each(self):
        buffers = TABLE2_ACCELERATOR.buffers
        assert buffers.ifms_bytes == 64 * 1024
        assert buffers.wghs_bytes == 64 * 1024
        assert buffers.ofms_bytes == 64 * 1024

    def test_default_dram_ddr3(self):
        assert TABLE2_ACCELERATOR.dram_architecture \
            is DRAMArchitecture.DDR3

    def test_dram_organization_is_2gb(self):
        assert TABLE2_ACCELERATOR.dram_organization.chip_megabits == 2048

    def test_peak_throughput(self):
        assert TABLE2_ACCELERATOR.peak_macs_per_second \
            == pytest.approx(64 * 0.8e9)


class TestValidation:
    def test_rejects_zero_macs(self):
        with pytest.raises(ConfigurationError):
            AcceleratorConfig(mac_rows=0)

    def test_rejects_zero_clock(self):
        with pytest.raises(ConfigurationError):
            AcceleratorConfig(clock_ghz=0.0)

    def test_alternate_dram(self):
        config = AcceleratorConfig(
            dram_architecture=DRAMArchitecture.SALP_MASA)
        assert config.dram_architecture is DRAMArchitecture.SALP_MASA
