"""Tests for the MAC-array compute model."""

import pytest

from repro.accelerator.compute import (
    compute_cycles,
    is_memory_bound,
)
from repro.accelerator.config import AcceleratorConfig, TABLE2_ACCELERATOR
from repro.cnn.layer import ConvLayer
from repro.cnn.models import alexnet


class TestComputeCycles:
    def test_perfectly_mapped_layer(self):
        """8 input x 8 output channels saturate the 8x8 array."""
        layer = ConvLayer.conv("L", (8, 16, 16), 8, kernel=3, padding=1)
        estimate = compute_cycles(layer)
        assert estimate.cycles == 16 * 16 * 3 * 3
        assert estimate.utilization(64) == pytest.approx(1.0)

    def test_underutilized_layer(self):
        """3 input channels leave most of the array idle."""
        layer = ConvLayer.conv("L", (3, 16, 16), 8, kernel=3, padding=1)
        estimate = compute_cycles(layer)
        assert estimate.utilization(64) < 0.5

    def test_cycles_scale_with_channels(self):
        small = ConvLayer.conv("L", (8, 16, 16), 8, kernel=3, padding=1)
        large = ConvLayer.conv("L", (16, 16, 16), 8, kernel=3, padding=1)
        assert compute_cycles(large).cycles \
            == 2 * compute_cycles(small).cycles

    def test_latency_uses_clock(self):
        layer = alexnet()[0]
        fast = compute_cycles(layer, AcceleratorConfig(clock_ghz=1.6))
        slow = compute_cycles(layer, AcceleratorConfig(clock_ghz=0.8))
        assert fast.latency_ns == pytest.approx(slow.latency_ns / 2)

    def test_grouped_layers_scale(self):
        grouped = alexnet()[1]  # CONV2, groups=2
        estimate = compute_cycles(grouped)
        assert estimate.cycles > 0
        assert estimate.macs == grouped.macs


class TestMemoryBound:
    def test_fc_layers_are_memory_bound(self):
        """FC6 moves 37 MB of weights for 37 M MACs: memory-bound for
        any plausible DRAM latency."""
        fc6 = alexnet()[5]
        estimate = compute_cycles(fc6)
        dram_ns = estimate.latency_ns * 10
        assert is_memory_bound(fc6, dram_ns)

    def test_compute_bound_case(self):
        layer = alexnet()[2]
        assert not is_memory_bound(layer, dram_latency_ns=1.0)
