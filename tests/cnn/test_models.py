"""Tests for the model zoo (AlexNet geometry is load-bearing)."""

import pytest

from repro.cnn.models import (
    MODEL_REGISTRY,
    alexnet,
    lenet5,
    model_by_name,
    tiny_test_network,
    vgg16,
)


class TestAlexNet:
    """Layer shapes must match Krizhevsky et al. exactly."""

    @pytest.fixture(scope="class")
    def net(self):
        return alexnet()

    def test_eight_layers(self, net):
        assert [l.name for l in net] == [
            "CONV1", "CONV2", "CONV3", "CONV4", "CONV5",
            "FC6", "FC7", "FC8"]

    def test_conv1_shape(self, net):
        conv1 = net[0]
        assert (conv1.out_channels, conv1.out_height, conv1.out_width) \
            == (96, 55, 55)
        assert conv1.stride == 4

    def test_conv2_grouped(self, net):
        conv2 = net[1]
        assert conv2.groups == 2
        assert (conv2.out_channels, conv2.out_height) == (256, 27)

    def test_conv3_ungrouped(self, net):
        assert net[2].groups == 1
        assert net[2].out_channels == 384

    def test_conv5_output_feeds_fc6(self, net):
        conv5, fc6 = net[4], net[5]
        assert conv5.out_channels == 256
        # After the 3x3/2 pool: 13 -> 6; FC6 input is 256*6*6 = 9216.
        assert fc6.in_channels == 9216

    def test_fc_sizes(self, net):
        assert net[5].out_channels == 4096
        assert net[6].out_channels == 4096
        assert net[7].out_channels == 1000

    def test_weight_volume_about_60m_params(self, net):
        total = sum(l.wghs_bytes for l in net)
        # ~61 M int8 parameters (conv ~2.3 M + fc ~58.6 M).
        assert 55e6 < total < 65e6

    def test_fc_layers_dominate_weights(self, net):
        conv_weights = sum(l.wghs_bytes for l in net[:5])
        fc_weights = sum(l.wghs_bytes for l in net[5:])
        assert fc_weights > 10 * conv_weights

    def test_batch_parameter(self):
        batched = alexnet(batch=4)
        assert all(l.batch == 4 for l in batched)


class TestOtherModels:
    def test_vgg16_layer_count(self):
        assert len(vgg16()) == 16

    def test_vgg16_weight_volume(self):
        total = sum(l.wghs_bytes for l in vgg16())
        assert 130e6 < total < 145e6  # ~138 M parameters

    def test_lenet5_is_small(self):
        total = sum(l.total_bytes for l in lenet5())
        assert total < 1_000_000

    def test_tiny_network_fits_trace_simulation(self):
        total = sum(l.total_bytes for l in tiny_test_network())
        assert total < 20_000


class TestRegistry:
    def test_all_registered(self):
        assert set(MODEL_REGISTRY) == {
            "alexnet", "vgg16", "lenet5", "resnet18", "mobilenetv1",
            "mobilenetv2", "bert-encoder", "tiny"}

    def test_lookup_by_name(self):
        layers = model_by_name("alexnet")
        assert layers[0].name == "CONV1"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            model_by_name("resnet-9000")
