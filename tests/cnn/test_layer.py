"""Tests for repro.cnn.layer."""

import pytest

from repro.cnn.layer import ConvLayer
from repro.errors import ConfigurationError


class TestConstruction:
    def test_conv_output_shape(self):
        layer = ConvLayer.conv("L", (3, 227, 227), 96, kernel=11, stride=4)
        assert (layer.out_height, layer.out_width) == (55, 55)
        assert layer.out_channels == 96

    def test_conv_with_padding(self):
        layer = ConvLayer.conv("L", (96, 27, 27), 256, kernel=5, padding=2)
        assert (layer.out_height, layer.out_width) == (27, 27)

    def test_fully_connected(self):
        layer = ConvLayer.fully_connected("FC", 9216, 4096)
        assert layer.is_fully_connected
        assert layer.in_channels == 9216
        assert layer.out_channels == 4096

    def test_conv_is_not_fully_connected(self):
        layer = ConvLayer.conv("L", (3, 8, 8), 4, kernel=3)
        assert not layer.is_fully_connected

    def test_rejects_bad_groups(self):
        with pytest.raises(ConfigurationError):
            ConvLayer.conv("L", (3, 8, 8), 4, kernel=3, groups=2)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            ConvLayer.fully_connected("FC", 0, 10)


class TestVolumes:
    def test_ifms_bytes(self):
        layer = ConvLayer.conv("L", (3, 227, 227), 96, kernel=11, stride=4)
        assert layer.ifms_bytes == 3 * 227 * 227

    def test_wghs_bytes_ungrouped(self):
        layer = ConvLayer.conv("L", (3, 227, 227), 96, kernel=11, stride=4)
        assert layer.wghs_bytes == 96 * 3 * 11 * 11

    def test_wghs_bytes_grouped(self):
        """Grouped kernels only span their group's input channels."""
        layer = ConvLayer.conv("L", (96, 27, 27), 256, kernel=5,
                               padding=2, groups=2)
        assert layer.wghs_bytes == 256 * 48 * 5 * 5

    def test_ofms_bytes(self):
        layer = ConvLayer.conv("L", (3, 227, 227), 96, kernel=11, stride=4)
        assert layer.ofms_bytes == 96 * 55 * 55

    def test_bytes_per_element_scales_volumes(self):
        int8 = ConvLayer.fully_connected("FC", 100, 10)
        fp16 = ConvLayer.fully_connected("FC", 100, 10, bytes_per_element=2)
        assert fp16.wghs_bytes == 2 * int8.wghs_bytes
        assert fp16.ifms_bytes == 2 * int8.ifms_bytes

    def test_batch_scales_activations_not_weights(self):
        single = ConvLayer.conv("L", (3, 32, 32), 8, kernel=3)
        batched = ConvLayer.conv("L", (3, 32, 32), 8, kernel=3, batch=4)
        assert batched.ifms_bytes == 4 * single.ifms_bytes
        assert batched.ofms_bytes == 4 * single.ofms_bytes
        assert batched.wghs_bytes == single.wghs_bytes

    def test_total_bytes(self):
        layer = ConvLayer.fully_connected("FC", 100, 10)
        assert layer.total_bytes \
            == layer.ifms_bytes + layer.wghs_bytes + layer.ofms_bytes


class TestMacs:
    def test_fc_macs(self):
        layer = ConvLayer.fully_connected("FC", 100, 10)
        assert layer.macs == 1000

    def test_conv_macs(self):
        layer = ConvLayer.conv("L", (3, 227, 227), 96, kernel=11, stride=4)
        assert layer.macs == 55 * 55 * 96 * 3 * 11 * 11

    def test_grouped_macs_halved(self):
        full = ConvLayer.conv("L", (96, 27, 27), 256, kernel=5, padding=2)
        grouped = ConvLayer.conv("L", (96, 27, 27), 256, kernel=5,
                                 padding=2, groups=2)
        assert grouped.macs == full.macs // 2


class TestDescribe:
    def test_conv_describe(self):
        layer = ConvLayer.conv("CONV2", (96, 27, 27), 256, kernel=5,
                               padding=2, groups=2)
        text = layer.describe()
        assert "CONV2" in text and "groups=2" in text

    def test_fc_describe(self):
        text = ConvLayer.fully_connected("FC6", 9216, 4096).describe()
        assert "FC" in text and "9216" in text
