"""Tests for layer partitioning."""

import pytest

from repro.cnn.layer import ConvLayer
from repro.cnn.models import alexnet
from repro.cnn.tiling import (
    BufferConfig,
    TABLE2_BUFFERS,
    TilingConfig,
    enumerate_tilings,
)
from repro.errors import ConfigurationError, DseError


@pytest.fixture(scope="module")
def conv2():
    return alexnet()[1]


class TestBufferConfig:
    def test_table2_defaults(self):
        assert TABLE2_BUFFERS.ifms_bytes == 64 * 1024
        assert TABLE2_BUFFERS.wghs_bytes == 64 * 1024
        assert TABLE2_BUFFERS.ofms_bytes == 64 * 1024

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            BufferConfig(ifms_bytes=0)


class TestTileSizes:
    def test_ifms_tile_includes_halo(self, conv2):
        tiling = TilingConfig(th=4, tw=4, tj=16, ti=16)
        # (4-1)*1 + 5 = 8 input rows/cols per 4 output rows/cols.
        assert tiling.ifms_tile_bytes(conv2) == 16 * 8 * 8

    def test_wghs_tile(self, conv2):
        tiling = TilingConfig(th=4, tw=4, tj=16, ti=16)
        assert tiling.wghs_tile_bytes(conv2) == 16 * 16 * 5 * 5

    def test_ofms_tile(self, conv2):
        tiling = TilingConfig(th=4, tw=4, tj=16, ti=16)
        assert tiling.ofms_tile_bytes(conv2) == 4 * 4 * 16

    def test_stride_scales_halo(self):
        layer = ConvLayer.conv("L", (3, 227, 227), 96, kernel=11, stride=4)
        tiling = TilingConfig(th=8, tw=8, tj=8, ti=3)
        # (8-1)*4 + 11 = 39 input rows per 8 output rows.
        assert tiling.ifms_tile_bytes(layer) == 3 * 39 * 39

    def test_fc_tiles_are_vectors(self):
        layer = ConvLayer.fully_connected("FC", 4096, 1000)
        tiling = TilingConfig(th=1, tw=1, tj=100, ti=512)
        assert tiling.ifms_tile_bytes(layer) == 512
        assert tiling.wghs_tile_bytes(layer) == 512 * 100
        assert tiling.ofms_tile_bytes(layer) == 100


class TestValidation:
    def test_rejects_zero_step(self):
        with pytest.raises(ConfigurationError):
            TilingConfig(th=0, tw=1, tj=1, ti=1)

    def test_rejects_step_beyond_bound(self, conv2):
        tiling = TilingConfig(th=28, tw=1, tj=1, ti=1)
        with pytest.raises(ConfigurationError):
            tiling.validate(conv2)

    def test_tj_bounded_per_group(self, conv2):
        # CONV2 has 256 output channels but only 128 per group.
        tiling = TilingConfig(th=1, tw=1, tj=129, ti=1)
        with pytest.raises(ConfigurationError):
            tiling.validate(conv2)

    def test_fits_checks_all_three_buffers(self, conv2):
        small = BufferConfig(ifms_bytes=100, wghs_bytes=64 * 1024,
                             ofms_bytes=64 * 1024)
        tiling = TilingConfig(th=4, tw=4, tj=16, ti=16)
        assert tiling.fits(conv2, TABLE2_BUFFERS)
        assert not tiling.fits(conv2, small)


class TestTripCounts:
    def test_exact_division(self, conv2):
        tiling = TilingConfig(th=27, tw=27, tj=128, ti=48)
        assert tiling.trip_counts(conv2) == (1, 1, 1, 1)

    def test_ceiling_division(self, conv2):
        tiling = TilingConfig(th=10, tw=10, tj=100, ti=30)
        assert tiling.trip_counts(conv2) == (3, 3, 2, 2)

    def test_tiles_per_group(self, conv2):
        tiling = TilingConfig(th=10, tw=10, tj=100, ti=30)
        assert tiling.tiles_per_group(conv2) == 3 * 3 * 2 * 2


class TestEnumeration:
    def test_all_candidates_fit(self, conv2):
        for tiling in enumerate_tilings(conv2):
            assert tiling.fits(conv2, TABLE2_BUFFERS)

    def test_maximal_pruning_reduces_count(self, conv2):
        pruned = enumerate_tilings(conv2, only_maximal=True)
        full = enumerate_tilings(conv2, only_maximal=False)
        assert 0 < len(pruned) < len(full)

    def test_maximal_tilings_cannot_grow(self, conv2):
        """No maximal tiling can double any step and still fit."""
        for tiling in enumerate_tilings(conv2, only_maximal=True):
            for field_name in ("th", "tw", "tj", "ti"):
                grown = TilingConfig(**{
                    "th": tiling.th, "tw": tiling.tw,
                    "tj": tiling.tj, "ti": tiling.ti,
                    field_name: min(
                        2 * getattr(tiling, field_name),
                        {"th": conv2.out_height,
                         "tw": conv2.out_width,
                         "tj": conv2.out_channels_per_group,
                         "ti": conv2.in_channels_per_group}[field_name]),
                })
                if grown != tiling:
                    assert not grown.fits(conv2, TABLE2_BUFFERS)

    def test_limit_caps_results(self, conv2):
        assert len(enumerate_tilings(conv2, limit=3)) == 3

    def test_every_alexnet_layer_has_candidates(self):
        for layer in alexnet():
            assert enumerate_tilings(layer)

    def test_impossible_buffers_raise(self, conv2):
        nano = BufferConfig(ifms_bytes=1, wghs_bytes=1, ofms_bytes=1)
        with pytest.raises(DseError):
            enumerate_tilings(conv2, buffers=nano)
