"""Tests for the extended model zoo (ResNet-18, MobileNetV1)."""

import pytest

from repro.cnn.models import mobilenet_v1, model_by_name, resnet18_convs


class TestResNet18:
    @pytest.fixture(scope="class")
    def net(self):
        return resnet18_convs()

    def test_stem_shape(self, net):
        stem = net[0]
        assert (stem.out_channels, stem.out_height) == (64, 112)

    def test_parameter_count(self, net):
        total = sum(l.wghs_bytes for l in net)
        # ResNet-18 has ~11.2 M conv+fc parameters.
        assert 10.5e6 < total < 12.5e6

    def test_projection_shortcuts_present(self, net):
        names = [l.name for l in net]
        assert "LAYER2_B1_PROJ" in names
        assert "LAYER4_B1_PROJ" in names
        # LAYER1 keeps 64 channels at stride 1: no projection.
        assert "LAYER1_B1_PROJ" not in names

    def test_stage_output_chain(self, net):
        by_name = {l.name: l for l in net}
        assert by_name["LAYER4_B2_CONV2"].out_height == 7
        assert by_name["FC"].in_channels == 512


class TestMobileNetV1:
    @pytest.fixture(scope="class")
    def net(self):
        return mobilenet_v1()

    def test_depthwise_layers_fully_grouped(self, net):
        depthwise = [l for l in net if l.name.startswith("DW")]
        assert len(depthwise) == 13
        for layer in depthwise:
            assert layer.groups == layer.in_channels
            assert layer.in_channels_per_group == 1

    def test_pointwise_layers_are_1x1(self, net):
        pointwise = [l for l in net if l.name.startswith("PW")]
        assert len(pointwise) == 13
        for layer in pointwise:
            assert layer.kernel_height == 1
            assert layer.groups == 1

    def test_parameter_count(self, net):
        total = sum(l.wghs_bytes for l in net)
        # MobileNetV1 has ~4.2 M parameters.
        assert 3.8e6 < total < 4.6e6

    def test_depthwise_weights_tiny_vs_pointwise(self, net):
        by_name = {l.name: l for l in net}
        assert by_name["DW6"].wghs_bytes * 10 \
            < by_name["PW6"].wghs_bytes

    def test_final_spatial_size(self, net):
        by_name = {l.name: l for l in net}
        assert by_name["PW13"].out_height == 7
        assert by_name["FC"].in_channels == 1024


class TestRegistryExtension:
    def test_new_models_registered(self):
        assert model_by_name("resnet18")
        assert model_by_name("mobilenetv1")

    def test_dse_runs_on_depthwise_layer(self):
        """The full pipeline must handle groups == channels."""
        from repro.core.dse import explore_layer
        from repro.cnn.scheduling import ReuseScheme
        from repro.dram.architecture import DRAMArchitecture
        from repro.mapping.catalog import DRMAP

        depthwise = next(l for l in mobilenet_v1()
                         if l.name == "DW6")
        result = explore_layer(
            depthwise,
            architectures=(DRAMArchitecture.DDR3,),
            schemes=(ReuseScheme.ADAPTIVE_REUSE,),
        )
        # Depthwise tiles are sub-row, so the column-inner mappings tie
        # exactly; DRMap must match the global optimum.
        best = result.best()
        drmap = result.best(policy=DRMAP)
        assert drmap.edp_js <= best.edp_js * (1 + 1e-9)
