"""Tests for the scheduling schemes."""

import pytest

from repro.cnn.scheduling import (
    ALL_SCHEMES,
    CONCRETE_SCHEMES,
    DEPENDENCIES,
    LoopVar,
    ReuseScheme,
    loop_order,
)


class TestLoopOrders:
    def test_ofms_reuse_is_output_stationary(self):
        """ofms-reuse keeps partial sums on chip: i innermost."""
        assert loop_order(ReuseScheme.OFMS_REUSE)[-1] is LoopVar.I

    def test_ifms_reuse_keeps_ifms_resident(self):
        """ifms-reuse sweeps j under a fixed (h, w, i) ifms tile."""
        assert loop_order(ReuseScheme.IFMS_REUSE)[-1] is LoopVar.J

    def test_wghs_reuse_keeps_weights_resident(self):
        """wghs-reuse streams spatial positions under fixed (j, i)."""
        order = loop_order(ReuseScheme.WGHS_REUSE)
        assert set(order[-2:]) == {LoopVar.H, LoopVar.W}

    def test_each_order_is_a_permutation(self):
        for scheme in CONCRETE_SCHEMES:
            assert sorted(loop_order(scheme), key=lambda v: v.value) \
                == sorted(LoopVar, key=lambda v: v.value)

    def test_adaptive_has_no_fixed_order(self):
        with pytest.raises(ValueError):
            loop_order(ReuseScheme.ADAPTIVE_REUSE)


class TestDependencies:
    def test_ifms_independent_of_j(self):
        assert LoopVar.J not in DEPENDENCIES["ifms"]

    def test_wghs_independent_of_spatial(self):
        assert LoopVar.H not in DEPENDENCIES["wghs"]
        assert LoopVar.W not in DEPENDENCIES["wghs"]

    def test_ofms_independent_of_i(self):
        assert LoopVar.I not in DEPENDENCIES["ofms"]

    def test_every_loop_feeds_some_type(self):
        covered = set()
        for deps in DEPENDENCIES.values():
            covered |= deps
        assert covered == set(LoopVar)


class TestEnumerations:
    def test_four_schemes(self):
        assert len(ALL_SCHEMES) == 4
        assert ReuseScheme.ADAPTIVE_REUSE in ALL_SCHEMES

    def test_concrete_excludes_adaptive(self):
        assert ReuseScheme.ADAPTIVE_REUSE not in CONCRETE_SCHEMES
        assert len(CONCRETE_SCHEMES) == 3

    def test_string_forms(self):
        assert str(ReuseScheme.IFMS_REUSE) == "ifms-reuse"
        assert str(LoopVar.I) == "i"
