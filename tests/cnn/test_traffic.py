"""Tests for the DRAM traffic model (SmartShuttle-style reuse analysis)."""

import pytest

from repro.cnn.layer import ConvLayer
from repro.cnn.models import alexnet
from repro.cnn.scheduling import CONCRETE_SCHEMES, ReuseScheme
from repro.cnn.tiling import TilingConfig
from repro.cnn.traffic import best_concrete_scheme, layer_traffic


@pytest.fixture(scope="module")
def conv2():
    return alexnet()[1]


@pytest.fixture(scope="module")
def tiling():
    return TilingConfig(th=9, tw=9, tj=32, ti=24)


class TestReuseGuarantees:
    """Each scheme must fetch its prioritized data type exactly once."""

    def test_ifms_reuse_loads_ifms_once(self, conv2, tiling):
        traffic = layer_traffic(conv2, tiling, ReuseScheme.IFMS_REUSE)
        n_h, n_w, n_j, n_i = tiling.trip_counts(conv2)
        distinct_ifms_tiles = n_h * n_w * n_i * conv2.groups
        assert traffic.ifms.read_tiles == distinct_ifms_tiles

    def test_wghs_reuse_loads_wghs_once(self, conv2, tiling):
        traffic = layer_traffic(conv2, tiling, ReuseScheme.WGHS_REUSE)
        n_h, n_w, n_j, n_i = tiling.trip_counts(conv2)
        distinct_wghs_tiles = n_j * n_i * conv2.groups
        assert traffic.wghs.read_tiles == distinct_wghs_tiles

    def test_ofms_reuse_writes_ofms_once_reads_never(self, conv2, tiling):
        traffic = layer_traffic(conv2, tiling, ReuseScheme.OFMS_REUSE)
        n_h, n_w, n_j, n_i = tiling.trip_counts(conv2)
        distinct_ofms_tiles = n_h * n_w * n_j * conv2.groups
        assert traffic.ofms.write_tiles == distinct_ofms_tiles
        assert traffic.ofms.read_tiles == 0


class TestRefetchFactors:
    def test_ifms_reuse_refetches_wghs_spatially(self, conv2, tiling):
        """Under ifms-reuse, weights stream once per spatial tile."""
        traffic = layer_traffic(conv2, tiling, ReuseScheme.IFMS_REUSE)
        n_h, n_w, n_j, n_i = tiling.trip_counts(conv2)
        assert traffic.wghs.read_tiles \
            == n_h * n_w * n_j * n_i * conv2.groups

    def test_ifms_reuse_psum_traffic(self, conv2, tiling):
        """With the i loop outside j, partial sums bounce through DRAM."""
        traffic = layer_traffic(conv2, tiling, ReuseScheme.IFMS_REUSE)
        n_h, n_w, n_j, n_i = tiling.trip_counts(conv2)
        distinct = n_h * n_w * n_j * conv2.groups
        assert traffic.ofms.write_tiles == distinct * n_i
        assert traffic.ofms.read_tiles == distinct * (n_i - 1)

    def test_wghs_reuse_refetches_ifms_per_j(self, conv2, tiling):
        traffic = layer_traffic(conv2, tiling, ReuseScheme.WGHS_REUSE)
        n_h, n_w, n_j, n_i = tiling.trip_counts(conv2)
        assert traffic.ifms.read_tiles \
            == n_j * n_i * n_h * n_w * conv2.groups

    def test_ofms_reuse_refetches_ifms_per_j(self, conv2, tiling):
        traffic = layer_traffic(conv2, tiling, ReuseScheme.OFMS_REUSE)
        n_h, n_w, n_j, n_i = tiling.trip_counts(conv2)
        assert traffic.ifms.read_tiles \
            == n_h * n_w * n_j * n_i * conv2.groups


class TestByteAccounting:
    def test_total_is_sum_of_types(self, conv2, tiling):
        traffic = layer_traffic(conv2, tiling, ReuseScheme.OFMS_REUSE)
        assert traffic.total_bytes == (
            traffic.ifms.total_bytes + traffic.wghs.total_bytes
            + traffic.ofms.total_bytes)

    def test_read_write_split(self, conv2, tiling):
        traffic = layer_traffic(conv2, tiling, ReuseScheme.IFMS_REUSE)
        assert traffic.ifms.write_bytes == 0
        assert traffic.wghs.write_bytes == 0
        assert traffic.ofms.write_bytes > 0

    def test_traffic_at_least_data_volume(self, conv2, tiling):
        """Every scheme moves at least each data volume once."""
        for scheme in CONCRETE_SCHEMES:
            traffic = layer_traffic(conv2, tiling, scheme)
            assert traffic.ifms.read_bytes >= conv2.ifms_bytes
            assert traffic.wghs.read_bytes >= conv2.wghs_bytes
            assert traffic.ofms.write_bytes >= conv2.ofms_bytes

    def test_single_tile_layer_moves_each_volume_once(self):
        """When the whole layer fits in one tile, every scheme agrees."""
        layer = ConvLayer.conv("L", (4, 8, 8), 8, kernel=3, padding=1)
        tiling = TilingConfig(th=8, tw=8, tj=8, ti=4)
        volumes = set()
        for scheme in CONCRETE_SCHEMES:
            traffic = layer_traffic(layer, tiling, scheme)
            assert traffic.ifms.read_tiles == 1
            assert traffic.wghs.read_tiles == 1
            assert traffic.ofms.write_tiles == 1
            assert traffic.ofms.read_tiles == 0
            volumes.add(traffic.total_bytes)
        assert len(volumes) == 1

    def test_by_type_accessor(self, conv2, tiling):
        traffic = layer_traffic(conv2, tiling, ReuseScheme.OFMS_REUSE)
        assert set(traffic.by_type()) == {"ifms", "wghs", "ofms"}


class TestAdaptiveSelection:
    def test_best_scheme_minimizes_bytes(self, conv2, tiling):
        best, best_traffic = best_concrete_scheme(conv2, tiling)
        for scheme in CONCRETE_SCHEMES:
            assert best_traffic.total_bytes \
                <= layer_traffic(conv2, tiling, scheme).total_bytes

    def test_fc_layers_prefer_weight_reuse_avoidance(self):
        """FC weights dwarf activations; the best scheme never
        refetches them."""
        layer = ConvLayer.fully_connected("FC6", 9216, 4096)
        # Evenly-dividing tiling so tile counts match volumes exactly.
        tiling = TilingConfig(th=1, tw=1, tj=512, ti=1024)
        best, traffic = best_concrete_scheme(layer, tiling)
        assert traffic.wghs.read_bytes == layer.wghs_bytes

    def test_batch_scales_traffic(self, conv2):
        tiling = TilingConfig(th=9, tw=9, tj=32, ti=24)
        single = layer_traffic(conv2, tiling, ReuseScheme.OFMS_REUSE)
        from repro.cnn.models import alexnet as make
        batched_layer = make(batch=2)[1]
        batched = layer_traffic(batched_layer, tiling,
                                ReuseScheme.OFMS_REUSE)
        assert batched.total_bytes == 2 * single.total_bytes
