"""Tests for request-trace generation."""

import pytest

from repro.cnn.layer import ConvLayer
from repro.cnn.scheduling import CONCRETE_SCHEMES, ReuseScheme
from repro.cnn.tiling import TilingConfig
from repro.cnn.trace import (
    build_layout,
    generate_layer_trace,
    trace_summary,
)
from repro.cnn.traffic import layer_traffic
from repro.dram.presets import TINY_ORGANIZATION as ORG
from repro.mapping.catalog import DRMAP


@pytest.fixture(scope="module")
def layer():
    return ConvLayer.conv("T", (4, 8, 8), 8, kernel=3, padding=1)


@pytest.fixture(scope="module")
def tiling():
    return TilingConfig(th=4, tw=4, tj=4, ti=2)


class TestLayout:
    def test_regions_do_not_overlap(self, layer, tiling):
        layouts = build_layout(layer, tiling, ORG)
        assert layouts["ifms"].end <= layouts["wghs"].base
        assert layouts["wghs"].end <= layouts["ofms"].base

    def test_regions_row_aligned(self, layer, tiling):
        layouts = build_layout(layer, tiling, ORG)
        for layout in layouts.values():
            assert layout.base % ORG.bursts_per_row == 0

    def test_tile_start_indexing(self, layer, tiling):
        layout = build_layout(layer, tiling, ORG)["wghs"]
        assert layout.tile_start(1) \
            == layout.base + layout.tile_accesses

    def test_tile_start_bounds(self, layer, tiling):
        layout = build_layout(layer, tiling, ORG)["ifms"]
        with pytest.raises(IndexError):
            layout.tile_start(layout.num_tiles)


class TestTraceMatchesTrafficModel:
    """The generated trace must realize exactly the analytical traffic."""

    @pytest.mark.parametrize("scheme", CONCRETE_SCHEMES,
                             ids=[s.value for s in CONCRETE_SCHEMES])
    def test_burst_counts_match(self, layer, tiling, scheme):
        traffic = layer_traffic(layer, tiling, scheme)
        trace = generate_layer_trace(layer, tiling, scheme, DRMAP, ORG)
        summary = trace_summary(trace)

        def bursts(type_traffic, tiles):
            per_tile = ORG.accesses_for_bytes(type_traffic.tile_bytes)
            return per_tile * tiles

        assert summary.get("ifms_reads", 0) \
            == bursts(traffic.ifms, traffic.ifms.read_tiles)
        assert summary.get("wghs_reads", 0) \
            == bursts(traffic.wghs, traffic.wghs.read_tiles)
        assert summary.get("ofms_writes", 0) \
            == bursts(traffic.ofms, traffic.ofms.write_tiles)
        assert summary.get("ofms_reads", 0) \
            == bursts(traffic.ofms, traffic.ofms.read_tiles)

    def test_all_coordinates_valid(self, layer, tiling):
        trace = generate_layer_trace(
            layer, tiling, ReuseScheme.OFMS_REUSE, DRMAP, ORG)
        for request in trace:
            request.coordinate.validate(ORG)

    def test_truncation(self, layer, tiling):
        trace = generate_layer_trace(
            layer, tiling, ReuseScheme.OFMS_REUSE, DRMAP, ORG,
            max_requests=10)
        assert len(trace) == 10

    def test_deterministic(self, layer, tiling):
        first = generate_layer_trace(
            layer, tiling, ReuseScheme.IFMS_REUSE, DRMAP, ORG)
        second = generate_layer_trace(
            layer, tiling, ReuseScheme.IFMS_REUSE, DRMAP, ORG)
        assert first == second

    def test_final_ofms_flush_present(self, layer, tiling):
        trace = generate_layer_trace(
            layer, tiling, ReuseScheme.OFMS_REUSE, DRMAP, ORG)
        # The last requests must be the write-back of the final tile.
        assert trace[-1].tag == "ofms"
        from repro.dram.commands import RequestKind
        assert trace[-1].kind is RequestKind.WRITE
