"""End-to-end checks of the paper's headline claims on AlexNet.

These tests run the full pipeline (characterization -> traffic ->
Eq. 2/3 -> DSE) on representative AlexNet layers and assert the
*shape* of the published results:

* Key Observation 1 — DRMap (Mapping-3) achieves the lowest EDP across
  layers, architectures and scheduling schemes.
* Key Observation 2 — Mappings 2 and 5 are the worst.
* Key Observation 3 — Mappings 1 and 3 are comparable.
* Key results — DRMap's EDP improvement over the worst mapping is
  large on DDR3 (paper: up to 96%) and smaller on SALP-MASA (paper:
  up to 80%), decreasing monotonically along the SALP ladder.
* Key Observation 4 / Section V-B — SALP architectures improve EDP
  over DDR3, dramatically for subarray-heavy mappings.
"""

import pytest

from repro.cnn.models import alexnet
from repro.cnn.scheduling import ALL_SCHEMES, ReuseScheme
from repro.core.dse import explore_layer
from repro.core.report import improvement_percent
from repro.dram.architecture import ALL_ARCHITECTURES, DRAMArchitecture
from repro.mapping.catalog import (
    DRMAP,
    MAPPING_1,
    MAPPING_2,
    MAPPING_5,
    TABLE1_MAPPINGS,
)

#: Representative layers: an early conv, a grouped conv, and an FC.
LAYER_INDICES = (0, 1, 6)


@pytest.fixture(scope="module")
def dse_results():
    layers = alexnet()
    return {
        layers[i].name: explore_layer(layers[i])
        for i in LAYER_INDICES
    }


class TestKeyObservation1:
    def test_drmap_lowest_edp_everywhere(self, dse_results):
        for layer_name, result in dse_results.items():
            for architecture in ALL_ARCHITECTURES:
                for scheme in ALL_SCHEMES:
                    best = result.best(
                        architecture=architecture, scheme=scheme)
                    assert best.policy == DRMAP, (
                        f"{layer_name}/{architecture}/{scheme}: "
                        f"{best.policy.name} beat DRMap")


class TestKeyObservation2:
    def test_mappings_2_and_5_worst_on_ddr3(self, dse_results):
        for layer_name, result in dse_results.items():
            for scheme in ALL_SCHEMES:
                edps = {
                    policy.name: result.best(
                        architecture=DRAMArchitecture.DDR3,
                        scheme=scheme, policy=policy).edp_js
                    for policy in TABLE1_MAPPINGS
                }
                worst_two = sorted(edps, key=edps.get)[-2:]
                assert set(worst_two) \
                    == {MAPPING_2.name, MAPPING_5.name}, (
                        f"{layer_name}/{scheme}: worst two were "
                        f"{worst_two}")


class TestKeyObservation3:
    def test_mapping1_comparable_to_drmap(self, dse_results):
        """Mapping-1 and DRMap differ only in bank/subarray priority;
        their EDPs are within a small factor everywhere."""
        for result in dse_results.values():
            for architecture in ALL_ARCHITECTURES:
                drmap = result.best(
                    architecture=architecture,
                    scheme=ReuseScheme.ADAPTIVE_REUSE,
                    policy=DRMAP).edp_js
                mapping1 = result.best(
                    architecture=architecture,
                    scheme=ReuseScheme.ADAPTIVE_REUSE,
                    policy=MAPPING_1).edp_js
                assert mapping1 <= drmap * 1.30
                assert drmap <= mapping1


class TestKeyResults:
    """'DRMap improves EDP up to 96% (DDR3), 94% (SALP-1), 91%
    (SALP-2), 80% (MASA) compared to other mapping policies.'"""

    def max_improvement(self, dse_results, architecture):
        best = 0.0
        for result in dse_results.values():
            for scheme in ALL_SCHEMES:
                drmap = result.best(
                    architecture=architecture, scheme=scheme,
                    policy=DRMAP).edp_js
                for policy in TABLE1_MAPPINGS:
                    if policy == DRMAP:
                        continue
                    other = result.best(
                        architecture=architecture, scheme=scheme,
                        policy=policy).edp_js
                    best = max(best,
                               improvement_percent(other, drmap))
        return best

    def test_ddr3_improvement_large(self, dse_results):
        assert self.max_improvement(
            dse_results, DRAMArchitecture.DDR3) > 85.0

    def test_masa_improvement_smaller_but_real(self, dse_results):
        improvement = self.max_improvement(
            dse_results, DRAMArchitecture.SALP_MASA)
        assert 30.0 < improvement < self.max_improvement(
            dse_results, DRAMArchitecture.DDR3)

    def test_improvement_decreases_along_salp_ladder(self, dse_results):
        values = [self.max_improvement(dse_results, arch)
                  for arch in ALL_ARCHITECTURES]
        assert values[0] >= values[1] >= values[2] >= values[3]


class TestKeyObservation4:
    """SALP vs DDR3 improvements per mapping (adaptive-reuse)."""

    def improvement(self, result, policy, architecture):
        ddr3 = result.best(
            architecture=DRAMArchitecture.DDR3,
            scheme=ReuseScheme.ADAPTIVE_REUSE, policy=policy).edp_js
        salp = result.best(
            architecture=architecture,
            scheme=ReuseScheme.ADAPTIVE_REUSE, policy=policy).edp_js
        return improvement_percent(ddr3, salp)

    def test_salp_never_hurts(self, dse_results):
        for result in dse_results.values():
            for policy in TABLE1_MAPPINGS:
                for architecture in (DRAMArchitecture.SALP_1,
                                     DRAMArchitecture.SALP_2,
                                     DRAMArchitecture.SALP_MASA):
                    assert self.improvement(
                        result, policy, architecture) >= -1.0

    def test_subarray_heavy_mappings_gain_most_from_masa(
            self, dse_results):
        """Paper: Mapping-2/5 gain ~81% from MASA while Mapping-3
        gains ~1% (its data rarely crosses subarrays)."""
        for result in dse_results.values():
            gain_mapping2 = self.improvement(
                result, MAPPING_2, DRAMArchitecture.SALP_MASA)
            gain_drmap = self.improvement(
                result, DRMAP, DRAMArchitecture.SALP_MASA)
            assert gain_mapping2 > 50.0
            assert gain_drmap < 20.0

    def test_drmap_gains_small_everywhere(self, dse_results):
        """DRMap's SALP gains are small (0.6-3.9% in the paper): it
        already avoids subarray conflicts by construction."""
        for result in dse_results.values():
            for architecture in (DRAMArchitecture.SALP_1,
                                 DRAMArchitecture.SALP_2):
                assert self.improvement(
                    result, DRMAP, architecture) < 15.0
