"""Tests for the top-level convenience API."""

import pytest

import repro
from repro import quick_layer_edp
from repro.cnn import TilingConfig, alexnet
from repro.dram import DRAMArchitecture
from repro.mapping import DRMAP, MAPPING_2


class TestQuickLayerEDP:
    def test_default_call(self):
        layer = alexnet()[0]
        result = quick_layer_edp(layer, DRMAP)
        assert result.edp_js > 0
        assert result.layer_name == "CONV1"

    def test_explicit_tiling(self):
        layer = alexnet()[2]
        tiling = TilingConfig(th=13, tw=13, tj=8, ti=8)
        result = quick_layer_edp(
            layer, DRMAP, DRAMArchitecture.SALP_1, tiling=tiling)
        assert result.edp_js > 0

    def test_drmap_beats_mapping2(self):
        layer = alexnet()[1]
        drmap = quick_layer_edp(layer, DRMAP)
        mapping2 = quick_layer_edp(layer, MAPPING_2)
        assert drmap.edp_js < mapping2.edp_js

    def test_version_exposed(self):
        assert repro.__version__


class TestPublicExports:
    def test_errors_reachable_from_root(self):
        assert issubclass(repro.MappingError, repro.ReproError)

    def test_key_types_reachable(self):
        assert repro.ConvLayer is not None
        assert repro.DRAMArchitecture is not None
        assert repro.TilingConfig is not None

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
