"""Cross-validation: analytical EDP model vs cycle-level simulation.

The analytical model (Eq. 2/3 with Fig.-1 marginal costs) must agree
with replaying the actual request trace on the cycle-level simulator —
to within the modelling error the paper accepts (the analytical model
ignores cross-tile row-buffer state and intra-run scheduling slack).
"""

import pytest

from repro.cnn.layer import ConvLayer
from repro.cnn.scheduling import ReuseScheme
from repro.cnn.tiling import TilingConfig
from repro.cnn.trace import generate_layer_trace
from repro.core.edp import layer_edp
from repro.dram.architecture import DRAMArchitecture
from repro.dram.characterize import characterize
from repro.dram.presets import DDR3_1600_2GB_X8 as ORG
from repro.dram.simulator import DRAMSimulator
from repro.mapping.catalog import DRMAP, MAPPING_2, TABLE1_MAPPINGS


@pytest.fixture(scope="module")
def layer():
    return ConvLayer.conv("V", (16, 12, 12), 16, kernel=3, padding=1)


@pytest.fixture(scope="module")
def tiling():
    return TilingConfig(th=6, tw=6, tj=8, ti=8)


def simulate(layer, tiling, policy, architecture,
             scheme=ReuseScheme.OFMS_REUSE):
    simulator = DRAMSimulator.from_preset(architecture)
    trace = generate_layer_trace(layer, tiling, scheme, policy, ORG)
    return simulator.run(trace)


def analytical(layer, tiling, policy, architecture,
               scheme=ReuseScheme.OFMS_REUSE):
    return layer_edp(layer, tiling, scheme, policy, architecture,
                     characterization=characterize(architecture))


class TestAgreement:
    @pytest.mark.parametrize(
        "arch", [DRAMArchitecture.DDR3, DRAMArchitecture.SALP_MASA],
        ids=["DDR3", "MASA"])
    def test_drmap_cycles_within_model_error(self, layer, tiling, arch):
        simulated = simulate(layer, tiling, DRMAP, arch)
        modelled = analytical(layer, tiling, DRMAP, arch)
        assert modelled.cycles == pytest.approx(
            simulated.total_cycles, rel=0.40)

    @pytest.mark.parametrize(
        "arch", [DRAMArchitecture.DDR3, DRAMArchitecture.SALP_MASA],
        ids=["DDR3", "MASA"])
    def test_drmap_energy_within_model_error(self, layer, tiling, arch):
        simulated = simulate(layer, tiling, DRMAP, arch)
        modelled = analytical(layer, tiling, DRMAP, arch)
        assert modelled.energy_nj == pytest.approx(
            simulated.total_energy_nj, rel=0.40)

    def test_model_preserves_mapping_ranking_ddr3(self, layer, tiling):
        """What the DSE actually needs: the analytical model must rank
        mappings the same way the cycle simulator does."""
        sim_edp = {}
        model_edp = {}
        for policy in (DRMAP, MAPPING_2):
            result = simulate(layer, tiling, policy,
                              DRAMArchitecture.DDR3)
            sim_edp[policy.name] = (result.total_energy_nj
                                    * result.total_ns)
            model_edp[policy.name] = analytical(
                layer, tiling, policy, DRAMArchitecture.DDR3).edp_js
        assert (sim_edp[DRMAP.name] < sim_edp[MAPPING_2.name]) == \
            (model_edp[DRMAP.name] < model_edp[MAPPING_2.name])

    def test_full_ranking_correlates(self, layer, tiling):
        """Spearman-style check across all six Table-I mappings."""
        sim_scores = []
        model_scores = []
        for policy in TABLE1_MAPPINGS:
            result = simulate(layer, tiling, policy,
                              DRAMArchitecture.DDR3)
            sim_scores.append(result.total_energy_nj * result.total_ns)
            model_scores.append(analytical(
                layer, tiling, policy, DRAMArchitecture.DDR3).edp_js)

        # The model's chosen mapping must be near-optimal under the
        # simulator.  With sub-row tiles the model ties Mapping-1 and
        # Mapping-3 exactly (both are pure column streams per tile),
        # while the simulator separates them by ~15% through cross-tile
        # placement (consecutive tiles land in different subarrays
        # under Mapping-1 but different banks under Mapping-3) -- an
        # effect the paper's per-tile Eq. 2/3 model also ignores.
        model_best = min(range(6), key=lambda i: model_scores[i])
        sim_best = min(sim_scores)
        assert sim_scores[model_best] <= sim_best * 1.20

        # Both agree that Mappings 2 and 5 (indices 1 and 4) are the
        # two worst policies.
        sim_worst_two = set(sorted(range(6),
                                   key=lambda i: sim_scores[i])[-2:])
        model_worst_two = set(sorted(range(6),
                                     key=lambda i: model_scores[i])[-2:])
        assert sim_worst_two == model_worst_two == {1, 4}

    def test_masa_beats_ddr3_in_simulation_for_mapping2(
            self, layer, tiling):
        ddr3 = simulate(layer, tiling, MAPPING_2, DRAMArchitecture.DDR3)
        masa = simulate(layer, tiling, MAPPING_2,
                        DRAMArchitecture.SALP_MASA)
        assert masa.total_cycles < ddr3.total_cycles
        assert masa.total_energy_nj < ddr3.total_energy_nj
