"""Tests for the spec-driven device-profile registry."""

import pytest

from repro.dram.architecture import ALL_ARCHITECTURES, DRAMArchitecture
from repro.dram.device import (
    DDR3_1600_2GB_X8_DEVICE,
    DDR4_2400_DEVICE,
    DEFAULT_DEVICE_NAME,
    DEVICE_REGISTRY,
    DeviceProfile,
    DeviceRegistry,
    HBM2_DEVICE,
    LPDDR4_3200_DEVICE,
    TINY_DEVICE,
    default_device,
    device_names,
    get_device,
    resolve_device,
)
from repro.dram.power import DDR3_1600_2GB_X8_CURRENTS
from repro.dram.presets import DDR3_1600_2GB_X8, TINY_ORGANIZATION
from repro.dram.timing import DDR3_1600_TIMINGS
from repro.errors import ConfigurationError


class TestBuiltinProfiles:
    def test_registry_has_all_builtins(self):
        assert set(device_names()) >= {
            "ddr3-1600-2gb-x8", "tiny", "ddr4-2400", "lpddr4-3200",
            "hbm2"}

    def test_default_is_the_papers_device(self):
        assert default_device() is DDR3_1600_2GB_X8_DEVICE
        assert default_device().name == DEFAULT_DEVICE_NAME

    def test_paper_device_shares_the_legacy_constants(self):
        """Deprecated constant imports and the registry must resolve to
        the *same objects*, so behaviour is byte-identical either way."""
        profile = get_device("ddr3-1600-2gb-x8")
        assert profile.organization is DDR3_1600_2GB_X8
        assert profile.timings is DDR3_1600_TIMINGS
        assert profile.currents is DDR3_1600_2GB_X8_CURRENTS

    def test_tiny_profile_is_fast_geometry(self):
        assert TINY_DEVICE.organization is TINY_ORGANIZATION
        assert TINY_DEVICE.capacity_bytes \
            < DDR3_1600_2GB_X8_DEVICE.capacity_bytes

    def test_data_rates(self):
        assert DDR3_1600_2GB_X8_DEVICE.data_rate_mts == 1600
        assert DDR4_2400_DEVICE.data_rate_mts == 2400
        assert LPDDR4_3200_DEVICE.data_rate_mts == 3200
        assert HBM2_DEVICE.data_rate_mts == 2000

    def test_ddr4_geometry(self):
        org = DDR4_2400_DEVICE.organization
        assert org.banks_per_chip == 16
        assert org.chip_megabits == 4096
        assert org.device_width_bits == 8

    def test_lpddr4_geometry(self):
        org = LPDDR4_3200_DEVICE.organization
        assert org.device_width_bits == 16
        assert org.burst_length == 16
        assert org.chip_megabits == 8192

    def test_hbm2_wide_interface(self):
        org = HBM2_DEVICE.organization
        assert org.channels == 8
        assert org.device_width_bits == 128
        # 2 KB row buffer per channel, the HBM2 figure.
        assert org.row_bytes == 2048
        # One burst moves far more data than on a x8 DIMM device.
        assert org.bytes_per_burst \
            > DDR3_1600_2GB_X8_DEVICE.organization.bytes_per_burst

    def test_capability_sets(self):
        assert DDR3_1600_2GB_X8_DEVICE.supported_architectures \
            == ALL_ARCHITECTURES
        for profile in (LPDDR4_3200_DEVICE, HBM2_DEVICE):
            assert profile.supported_architectures \
                == (DRAMArchitecture.DDR3,)

    def test_every_profile_supports_commodity(self):
        for profile in DEVICE_REGISTRY:
            assert profile.supports(DRAMArchitecture.DDR3)


class TestDeviceProfileValidation:
    def test_capability_check_raises_with_supported_list(self):
        with pytest.raises(ConfigurationError, match="supported: DDR3"):
            LPDDR4_3200_DEVICE.require_architecture(
                DRAMArchitecture.SALP_1)

    def test_empty_capability_set_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            DeviceProfile(
                name="broken",
                organization=TINY_ORGANIZATION,
                timings=DDR3_1600_TIMINGS,
                currents=DDR3_1600_2GB_X8_CURRENTS,
                supported_architectures=(),
            )

    def test_commodity_baseline_is_mandatory(self):
        with pytest.raises(ConfigurationError, match="commodity"):
            DeviceProfile(
                name="salp-only",
                organization=TINY_ORGANIZATION,
                timings=DDR3_1600_TIMINGS,
                currents=DDR3_1600_2GB_X8_CURRENTS,
                supported_architectures=(DRAMArchitecture.SALP_1,),
            )

    def test_duplicate_architecture_rejected(self):
        with pytest.raises(ConfigurationError, match="twice"):
            DeviceProfile(
                name="dup",
                organization=TINY_ORGANIZATION,
                timings=DDR3_1600_TIMINGS,
                currents=DDR3_1600_2GB_X8_CURRENTS,
                supported_architectures=(
                    DRAMArchitecture.DDR3, DRAMArchitecture.DDR3),
            )

    def test_blank_name_rejected(self):
        with pytest.raises(ConfigurationError, match="slug"):
            DeviceProfile(
                name="has space",
                organization=TINY_ORGANIZATION,
                timings=DDR3_1600_TIMINGS,
                currents=DDR3_1600_2GB_X8_CURRENTS,
            )

    def test_reserved_name_all_rejected(self):
        """'all' is the CLI's every-device sentinel: a profile named
        'all' would be unreachable from --device."""
        with pytest.raises(ConfigurationError, match="reserved"):
            DeviceProfile(
                name="all",
                organization=TINY_ORGANIZATION,
                timings=DDR3_1600_TIMINGS,
                currents=DDR3_1600_2GB_X8_CURRENTS,
            )

    def test_with_organization_keeps_speed_grade(self):
        derived = DDR3_1600_2GB_X8_DEVICE.with_organization(
            DDR3_1600_2GB_X8.with_subarrays(16))
        assert derived.timings is DDR3_1600_TIMINGS
        assert derived.organization.subarrays_per_bank == 16
        assert derived != DDR3_1600_2GB_X8_DEVICE

    def test_with_same_organization_is_identity(self):
        assert DDR3_1600_2GB_X8_DEVICE.with_organization(
            DDR3_1600_2GB_X8) is DDR3_1600_2GB_X8_DEVICE


class TestDeviceRegistry:
    def test_unknown_name_names_the_choices(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_device("ddr9")
        message = str(excinfo.value)
        assert "ddr9" in message
        assert "ddr3-1600-2gb-x8" in message

    def test_duplicate_registration_rejected(self):
        registry = DeviceRegistry()
        registry.register(TINY_DEVICE)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register(TINY_DEVICE)

    def test_replace_existing(self):
        registry = DeviceRegistry()
        registry.register(TINY_DEVICE)
        replacement = TINY_DEVICE.with_organization(
            TINY_ORGANIZATION.with_subarrays(2))
        registry.register(replacement, replace_existing=True)
        assert registry.get("tiny") is replacement

    def test_iteration_order_is_registration_order(self):
        registry = DeviceRegistry()
        registry.register(HBM2_DEVICE)
        registry.register(TINY_DEVICE)
        assert registry.names() == ("hbm2", "tiny")
        assert [p.name for p in registry] == ["hbm2", "tiny"]
        assert len(registry) == 2
        assert "hbm2" in registry

    def test_resolve_device_defaults(self):
        assert resolve_device() is default_device()
        custom = TINY_ORGANIZATION.with_subarrays(2)
        derived = resolve_device(organization=custom)
        assert derived.organization is custom
        assert derived.timings is DDR3_1600_TIMINGS
