"""Tests for repro.dram.address."""

import pytest

from repro.dram.address import Coordinate
from repro.errors import ConfigurationError


class TestConstruction:
    def test_defaults_are_origin(self):
        coord = Coordinate()
        assert (coord.channel, coord.rank, coord.bank, coord.subarray,
                coord.row, coord.column) == (0, 0, 0, 0, 0, 0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Coordinate(bank=-1)

    def test_rejects_non_integer(self):
        with pytest.raises(ConfigurationError):
            Coordinate(row=1.5)

    def test_frozen(self):
        coord = Coordinate()
        with pytest.raises(Exception):
            coord.bank = 3


class TestValidation:
    def test_in_range_passes(self, table2_org):
        Coordinate(bank=7, subarray=7, row=4095, column=127) \
            .validate(table2_org)

    def test_bank_out_of_range(self, table2_org):
        with pytest.raises(ConfigurationError):
            Coordinate(bank=8).validate(table2_org)

    def test_column_counts_bursts_not_addresses(self, table2_org):
        # 1024 column addresses but only 128 burst slots.
        with pytest.raises(ConfigurationError):
            Coordinate(column=128).validate(table2_org)

    def test_row_is_subarray_local(self, table2_org):
        # Rows are indexed within a subarray (4096), not the bank.
        with pytest.raises(ConfigurationError):
            Coordinate(row=4096).validate(table2_org)


class TestKeys:
    def test_bank_key_ignores_row_column(self):
        a = Coordinate(bank=2, row=5, column=7)
        b = Coordinate(bank=2, row=9, column=1)
        assert a.bank_key == b.bank_key

    def test_subarray_key_distinguishes_subarrays(self):
        a = Coordinate(bank=2, subarray=0)
        b = Coordinate(bank=2, subarray=1)
        assert a.subarray_key != b.subarray_key

    def test_bank_row_pairs_subarray_and_row(self):
        coord = Coordinate(subarray=3, row=17)
        assert coord.bank_row == (3, 17)


class TestReplace:
    def test_replace_single_field(self):
        coord = Coordinate(bank=1, row=2, column=3)
        moved = coord.replace(column=9)
        assert moved.column == 9
        assert moved.bank == 1 and moved.row == 2

    def test_replace_returns_new_object(self):
        coord = Coordinate()
        assert coord.replace(bank=1) is not coord

    def test_ordering_is_lexicographic(self):
        assert Coordinate(bank=0, row=5) < Coordinate(bank=1, row=0)

    def test_str_mentions_all_levels(self):
        text = str(Coordinate(channel=1, rank=0, bank=2, subarray=3,
                              row=4, column=5))
        for fragment in ("ch1", "ra0", "ba2", "sa3", "ro4", "co5"):
            assert fragment in text
