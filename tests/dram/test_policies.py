"""Unit tests for the pluggable memory-controller policies."""

import pickle

import pytest

from repro.dram.address import Coordinate
from repro.dram.architecture import DRAMArchitecture
from repro.dram.characterize import CharacterizationCache, characterize
from repro.dram.commands import CommandKind, Request
from repro.dram.controller import MemoryController
from repro.dram.device import TINY_DEVICE
from repro.dram.policies import (
    DEFAULT_CONTROLLER_CONFIG,
    ControllerConfig,
    RowPolicyKind,
    SchedulerKind,
    all_controller_configs,
    controller_config,
    get_row_policy,
    get_scheduler,
    resolve_controller,
    row_policy_names,
    scheduler_names,
)
from repro.dram.presets import TINY_ORGANIZATION as ORG
from repro.dram.simulator import DRAMSimulator
from repro.dram.timing import DDR3_1600_TIMINGS as T
from repro.errors import ConfigurationError


def read(bank=0, subarray=0, row=0, column=0):
    return Request.read(Coordinate(
        bank=bank, subarray=subarray, row=row, column=column))


class TestControllerConfig:
    def test_default_is_the_papers_controller(self):
        config = ControllerConfig()
        assert config.scheduler is SchedulerKind.FCFS
        assert config.row_policy is RowPolicyKind.OPEN
        assert config.is_default
        assert config == DEFAULT_CONTROLLER_CONFIG

    def test_label_and_describe(self):
        config = controller_config("fr-fcfs", "timeout",
                                   reorder_window=4, timeout_cycles=99)
        assert config.label == "fr-fcfs/timeout"
        assert "window=4" in config.describe()
        assert "timeout=99cy" in config.describe()
        assert not config.is_default

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="reorder_window"):
            ControllerConfig(reorder_window=0)
        with pytest.raises(ConfigurationError, match="timeout_cycles"):
            ControllerConfig(timeout_cycles=-1)
        with pytest.raises(ConfigurationError, match="scheduler"):
            ControllerConfig(scheduler="fcfs")  # name, not enum
        with pytest.raises(ConfigurationError, match="row_policy"):
            ControllerConfig(row_policy="open")

    def test_hashable_and_picklable(self):
        config = controller_config("fr-fcfs", "closed")
        assert {config: 1}[pickle.loads(pickle.dumps(config))] == 1
        assert pickle.loads(pickle.dumps(config)) == config

    def test_inactive_knobs_are_canonicalized(self):
        """A knob its policies never read must not differentiate
        configs: otherwise behaviourally identical configs would split
        the characterization cache and mislabel the default."""
        assert ControllerConfig(timeout_cycles=7) \
            == DEFAULT_CONTROLLER_CONFIG
        assert ControllerConfig(reorder_window=3).is_default
        fr = controller_config("fr-fcfs", reorder_window=3)
        assert fr.reorder_window == 3          # active: kept
        assert controller_config(
            "fr-fcfs", "timeout", timeout_cycles=9).timeout_cycles == 9
        # Invalid values are rejected even when inactive.
        with pytest.raises(ConfigurationError, match="reorder_window"):
            ControllerConfig(reorder_window=0)

    def test_resolve(self):
        assert resolve_controller(None) is DEFAULT_CONTROLLER_CONFIG
        config = controller_config("fr-fcfs")
        assert resolve_controller(config) is config
        with pytest.raises(ConfigurationError, match="ControllerConfig"):
            resolve_controller("fcfs")


class TestRegistry:
    def test_names(self):
        assert scheduler_names() == ("fcfs", "fr-fcfs")
        assert row_policy_names() == ("open", "closed", "timeout")

    def test_lookup_by_name_and_kind(self):
        assert get_scheduler("fr-fcfs").kind is SchedulerKind.FR_FCFS
        assert get_scheduler(SchedulerKind.FCFS).kind is SchedulerKind.FCFS
        assert get_row_policy("closed").kind is RowPolicyKind.CLOSED
        assert get_row_policy(RowPolicyKind.TIMEOUT).kind \
            is RowPolicyKind.TIMEOUT

    def test_unknown_names_list_choices(self):
        with pytest.raises(ConfigurationError, match="fcfs, fr-fcfs"):
            get_scheduler("elevator")
        with pytest.raises(ConfigurationError, match="open, closed"):
            get_row_policy("ajar")
        with pytest.raises(ConfigurationError, match="scheduler"):
            controller_config(scheduler="nope")

    def test_all_controller_configs(self):
        configs = all_controller_configs()
        assert len(configs) == 6
        assert configs[0] == DEFAULT_CONTROLLER_CONFIG
        assert len(set(configs)) == 6


class TestDefaultEquivalence:
    """config=None must be byte-identical to the explicit default."""

    def test_command_traces_identical(self, architecture):
        stream = [read(bank=b % 2, subarray=b % 4, row=b % 3, column=0)
                  for b in range(24)]
        implicit = MemoryController(ORG, T, architecture).run(stream)
        explicit = MemoryController(
            ORG, T, architecture,
            config=DEFAULT_CONTROLLER_CONFIG).run(stream)
        assert implicit.commands == explicit.commands
        assert implicit.serviced == explicit.serviced
        assert implicit.total_cycles == explicit.total_cycles


class TestFrFcfs:
    def test_hits_jump_the_queue(self):
        # row 0 open, then a conflicting row-1 request arrives before
        # another row-0 request: FR-FCFS serves the hit first.
        stream = [read(row=0, column=0), read(row=1, column=0),
                  read(row=0, column=1)]
        fcfs = MemoryController(ORG, T).run(stream)
        frfcfs = MemoryController(
            ORG, T, config=controller_config("fr-fcfs")).run(stream)
        assert fcfs.row_hits == 0
        assert frfcfs.row_hits == 1
        # The reordered service: row-0, row-0, row-1.
        serviced_rows = [s.request.coordinate.row
                         for s in frfcfs.serviced]
        assert serviced_rows == [0, 0, 1]
        assert frfcfs.total_cycles < fcfs.total_cycles

    def test_order_preserved_among_non_hits(self):
        stream = [read(row=r, column=0) for r in (0, 1, 2, 3)]
        frfcfs = MemoryController(
            ORG, T, config=controller_config("fr-fcfs")).run(stream)
        serviced_rows = [s.request.coordinate.row
                        for s in frfcfs.serviced]
        assert serviced_rows == [0, 1, 2, 3]

    def test_window_bounds_reordering(self):
        # The ready hit sits outside a window of 2: no reordering.
        stream = [read(row=0, column=0), read(row=1, column=0),
                  read(row=2, column=0), read(row=0, column=1)]
        narrow = MemoryController(
            ORG, T,
            config=controller_config("fr-fcfs", reorder_window=2))
        trace = narrow.run(stream)
        serviced_rows = [s.request.coordinate.row
                        for s in trace.serviced]
        assert serviced_rows == [0, 1, 2, 0]


class TestClosedRow:
    def test_every_access_precharges(self):
        stream = [read(row=0, column=c) for c in range(6)]
        trace = MemoryController(
            ORG, T, config=controller_config(row_policy="closed")
        ).run(stream)
        assert trace.num_precharges == len(stream)
        assert trace.num_activations == len(stream)
        assert trace.row_hits == 0
        # All re-accesses are misses, never conflicts.
        assert trace.row_misses == len(stream)

    def test_conflict_stream_total_matches_open(self):
        stream = [read(row=i % 2, column=i // 2) for i in range(12)]
        open_trace = MemoryController(ORG, T).run(stream)
        closed_trace = MemoryController(
            ORG, T, config=controller_config(row_policy="closed")
        ).run(stream)
        assert closed_trace.total_cycles == open_trace.total_cycles


class TestTimeout:
    def make_gap_stream(self):
        """bank-0 access, long bank-1 activity, bank-0 again."""
        stream = [read(bank=0, row=0, column=0)]
        stream += [read(bank=1, row=i % 2, column=i // 2)
                   for i in range(16)]
        stream += [read(bank=0, row=0, column=1)]
        return stream

    def test_short_timeout_expires_the_row(self):
        stream = self.make_gap_stream()
        trace = MemoryController(
            ORG, T,
            config=controller_config(row_policy="timeout",
                                     timeout_cycles=50)).run(stream)
        last = trace.serviced[-1]
        assert last.row_miss  # the row expired during the bank-1 burst
        bank0_pre = [c for c in trace.commands
                     if c.kind is CommandKind.PRE
                     and c.coordinate.bank == 0]
        assert len(bank0_pre) == 1

    def test_long_timeout_behaves_like_open(self):
        stream = self.make_gap_stream()
        open_trace = MemoryController(ORG, T).run(stream)
        lazy = MemoryController(
            ORG, T,
            config=controller_config(row_policy="timeout",
                                     timeout_cycles=10 ** 6)).run(stream)
        assert lazy.serviced[-1].row_hit
        assert lazy.commands == open_trace.commands
        assert lazy.total_cycles == open_trace.total_cycles


class TestCharacterizationThreading:
    def test_controller_is_part_of_the_cache_key(self):
        cache = CharacterizationCache()
        default = cache.get(DRAMArchitecture.DDR3, device=TINY_DEVICE)
        closed = cache.get(
            DRAMArchitecture.DDR3, device=TINY_DEVICE,
            controller=controller_config(row_policy="closed"))
        assert default is not closed
        assert len(cache) == 2
        again = cache.get(
            DRAMArchitecture.DDR3, device=TINY_DEVICE,
            controller=controller_config(row_policy="closed"))
        assert again is closed

    def test_result_records_controller(self):
        config = controller_config("fr-fcfs", "closed")
        result = characterize(
            DRAMArchitecture.DDR3, device=TINY_DEVICE, controller=config)
        assert result.controller == config
        default = characterize(DRAMArchitecture.DDR3, device=TINY_DEVICE)
        assert default.controller == DEFAULT_CONTROLLER_CONFIG

    def test_prebuilt_simulator_config_wins(self):
        config = controller_config(row_policy="closed")
        simulator = DRAMSimulator(
            TINY_DEVICE.organization, controller=config)
        result = characterize(DRAMArchitecture.DDR3, simulator=simulator)
        assert result.controller == config

    def test_disagreeing_controller_rejected(self):
        simulator = DRAMSimulator(TINY_DEVICE.organization)
        with pytest.raises(ConfigurationError, match="disagrees"):
            characterize(
                DRAMArchitecture.DDR3, simulator=simulator,
                controller=controller_config(row_policy="closed"))

    def test_closed_row_hit_costs_more(self):
        """Closed-row forfeits row locality: hits become act+access."""
        from repro.dram.characterize import AccessCondition

        open_result = characterize(
            DRAMArchitecture.DDR3, device=TINY_DEVICE)
        closed_result = characterize(
            DRAMArchitecture.DDR3, device=TINY_DEVICE,
            controller=controller_config(row_policy="closed"))
        assert closed_result.cost(AccessCondition.ROW_HIT).cycles \
            > open_result.cost(AccessCondition.ROW_HIT).cycles
        # ...but conflicts cost no more than under open-row.
        assert closed_result.cost(AccessCondition.ROW_CONFLICT).cycles \
            <= open_result.cost(AccessCondition.ROW_CONFLICT).cycles

    def test_simulator_from_profile_accepts_controller(self):
        config = controller_config("fr-fcfs")
        simulator = DRAMSimulator.from_profile(
            "tiny", DRAMArchitecture.DDR3, controller=config)
        assert simulator.controller is config
