"""Property-based tests: controller legality on random request streams.

For any request stream and any architecture, the scheduled command
trace must satisfy the structural DRAM rules: no column command to a
closed or wrong row, no double activation, tRCD/tRP/tRAS/tRRD spacing,
unique command-bus slots, non-overlapping data bursts, and FCFS data
ordering.
"""

from hypothesis import given, settings, strategies as st

from repro.dram.address import Coordinate
from repro.dram.architecture import ALL_ARCHITECTURES, behavior_of
from repro.dram.commands import CommandKind, Request, RequestKind
from repro.dram.controller import MemoryController
from repro.dram.presets import TINY_ORGANIZATION as ORG
from repro.dram.timing import DDR3_1600_TIMINGS as T

coordinates = st.builds(
    Coordinate,
    bank=st.integers(0, ORG.banks_per_chip - 1),
    subarray=st.integers(0, ORG.subarrays_per_bank - 1),
    row=st.integers(0, 3),
    column=st.integers(0, ORG.bursts_per_row - 1),
)
requests = st.builds(
    Request,
    kind=st.sampled_from([RequestKind.READ, RequestKind.WRITE]),
    coordinate=coordinates,
)
streams = st.lists(requests, min_size=1, max_size=40)
architectures = st.sampled_from(ALL_ARCHITECTURES)


@given(stream=streams, architecture=architectures)
@settings(max_examples=150, deadline=None)
def test_trace_is_structurally_legal(stream, architecture):
    controller = MemoryController(ORG, T, architecture)
    trace = controller.run(stream)

    open_rows = {}
    last_act = {}
    last_pre = {}
    for command in sorted(trace.commands, key=lambda c: c.cycle):
        key = command.coordinate.subarray_key
        if command.kind is CommandKind.ACT:
            assert key not in open_rows
            if key in last_pre:
                # tRP after this subarray's own precharge.
                assert command.cycle >= last_pre[key] + T.tRP
            open_rows[key] = command.coordinate.row
            last_act[key] = command.cycle
        elif command.kind is CommandKind.PRE:
            assert key in open_rows
            assert command.cycle >= last_act[key] + T.tRAS
            del open_rows[key]
            last_pre[key] = command.cycle
        elif command.kind.is_column:
            assert open_rows.get(key) == command.coordinate.row
            assert command.cycle >= last_act[key] + T.tRCD


@given(stream=streams, architecture=architectures)
@settings(max_examples=100, deadline=None)
def test_command_bus_never_double_booked(stream, architecture):
    trace = MemoryController(ORG, T, architecture).run(stream)
    cycles = [c.cycle for c in trace.commands]
    assert len(cycles) == len(set(cycles))


@given(stream=streams, architecture=architectures)
@settings(max_examples=100, deadline=None)
def test_data_bursts_ordered_and_disjoint(stream, architecture):
    trace = MemoryController(ORG, T, architecture).run(stream)
    ends = [s.data_cycle for s in trace.serviced]
    # FCFS: data completes in request order.
    assert ends == sorted(ends)
    gaps = [b - a for a, b in zip(ends, ends[1:])]
    assert all(gap >= T.tBL for gap in gaps)


@given(stream=streams, architecture=architectures)
@settings(max_examples=100, deadline=None)
def test_every_request_serviced_with_one_outcome(stream, architecture):
    trace = MemoryController(ORG, T, architecture).run(stream)
    assert len(trace.serviced) == len(stream)
    assert trace.row_hits + trace.row_misses + trace.row_conflicts \
        == len(stream)


@given(stream=streams, architecture=architectures)
@settings(max_examples=60, deadline=None)
def test_activation_budget_respected(stream, architecture):
    """No architecture ever exceeds its activated-subarray budget."""
    controller = MemoryController(ORG, T, architecture)
    trace = controller.run(stream)
    behavior = behavior_of(architecture)
    budget = (min(behavior.max_activated_subarrays,
                  ORG.subarrays_per_bank)
              if behavior.multiple_activated_subarrays else 1)
    open_per_bank = {}
    for command in sorted(trace.commands, key=lambda c: c.cycle):
        bank_key = command.coordinate.bank_key
        per_bank = open_per_bank.setdefault(bank_key, set())
        if command.kind is CommandKind.ACT:
            per_bank.add(command.coordinate.subarray)
            assert len(per_bank) <= budget
        elif command.kind is CommandKind.PRE:
            per_bank.discard(command.coordinate.subarray)
