"""Differential invariants across controller policies and architectures.

Each test pins a relationship between two configurations on the *same*
request stream.  The bounds are exactly as strong as the model
guarantees:

* FR-FCFS can never *lose* row hits — its only reordering is a ready
  hit overtaking older non-hits — and on single-bank streams (where no
  cross-bank command interleaving can shift) it is never slower than
  FCFS.  On multi-bank streams individual schedules may differ by a
  few cycles either way, so the cycle claim is aggregate: over a
  seeded corpus FR-FCFS wins clearly.
* Closed-row and open-row issue identical column schedules on
  conflict-only streams: the same PRE/ACT pairs happen either eagerly
  (closed) or on demand (open) at the same earliest-legal cycles.
* The SALP-1/2 relaxations only ever remove bank-level wait cycles,
  so under the open-row policy they can never be slower than commodity
  DDR3 beyond shared-command-bus serialization slack: a command that
  becomes eligible earlier may land on a bus cycle another bank's
  command would have used, slipping that command by one cycle (a
  classic scheduling anomaly — locally faster, globally bounded-worse).
  Each collision costs one cycle and the trace's command count bounds
  the number of collisions.  MASA
  additionally pays the subarray-select re-designation on column
  commands to non-MRU subarrays, bounded by ``subarray_select_cycles``
  per access — under closed-row (which erases the row locality MASA
  monetizes) that overhead is all that remains, so the DDR3 bound
  carries a per-access allowance.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.dram.address import Coordinate
from repro.dram.architecture import (
    ALL_ARCHITECTURES,
    DRAMArchitecture,
    behavior_of,
)
from repro.dram.commands import CommandKind, Request, RequestKind
from repro.dram.controller import MemoryController
from repro.dram.policies import (
    ControllerConfig,
    RowPolicyKind,
    SchedulerKind,
    controller_config,
)
from repro.dram.presets import TINY_ORGANIZATION as ORG
from repro.dram.timing import DDR3_1600_TIMINGS as T

architectures = st.sampled_from(ALL_ARCHITECTURES)
row_policies = st.sampled_from(list(RowPolicyKind))
schedulers = st.sampled_from(list(SchedulerKind))
windows = st.sampled_from([2, 4, 16])
timeouts = st.sampled_from([25, 100, 100000])

general_requests = st.builds(
    Request,
    kind=st.sampled_from([RequestKind.READ, RequestKind.WRITE]),
    coordinate=st.builds(
        Coordinate,
        bank=st.integers(0, ORG.banks_per_chip - 1),
        subarray=st.integers(0, ORG.subarrays_per_bank - 1),
        row=st.integers(0, 3),
        column=st.integers(0, ORG.bursts_per_row - 1),
    ),
)
general_streams = st.lists(general_requests, min_size=1, max_size=40)

single_bank_requests = st.builds(
    Request,
    kind=st.sampled_from([RequestKind.READ, RequestKind.WRITE]),
    coordinate=st.builds(
        Coordinate,
        row=st.integers(0, 3),
        column=st.integers(0, ORG.bursts_per_row - 1),
    ),
)
single_bank_streams = st.lists(
    single_bank_requests, min_size=1, max_size=40)


def run(stream, architecture, config):
    return MemoryController(ORG, T, architecture, config=config
                            ).run(stream)


# ----------------------------------------------------------------------
# FR-FCFS vs FCFS
# ----------------------------------------------------------------------

@given(stream=general_streams, architecture=architectures,
       row_policy=row_policies, window=windows, timeout=timeouts)
@settings(max_examples=150, deadline=None)
def test_fr_fcfs_never_loses_row_hits(
        stream, architecture, row_policy, window, timeout):
    fcfs = run(stream, architecture, ControllerConfig(
        row_policy=row_policy, timeout_cycles=timeout))
    fr = run(stream, architecture, ControllerConfig(
        scheduler=SchedulerKind.FR_FCFS, row_policy=row_policy,
        reorder_window=window, timeout_cycles=timeout))
    assert fr.row_hits >= fcfs.row_hits


@given(stream=single_bank_streams, architecture=architectures,
       row_policy=row_policies, window=windows, timeout=timeouts)
@settings(max_examples=150, deadline=None)
def test_fr_fcfs_never_slower_on_single_bank_streams(
        stream, architecture, row_policy, window, timeout):
    """With one bank there is no cross-bank interleaving to perturb:
    hit-first reordering can only remove row switches."""
    fcfs = run(stream, architecture, ControllerConfig(
        row_policy=row_policy, timeout_cycles=timeout))
    fr = run(stream, architecture, ControllerConfig(
        scheduler=SchedulerKind.FR_FCFS, row_policy=row_policy,
        reorder_window=window, timeout_cycles=timeout))
    assert fr.total_cycles <= fcfs.total_cycles


def test_fr_fcfs_wins_in_aggregate():
    """Over a seeded corpus of general multi-bank streams, FR-FCFS
    spends clearly fewer total cycles than FCFS (its per-stream cycle
    count may wobble a few cycles either way; the win is aggregate)."""
    rng = random.Random(2026)
    total_fcfs = 0
    total_fr = 0
    for _ in range(120):
        stream = [
            Request(
                rng.choice([RequestKind.READ, RequestKind.WRITE]),
                Coordinate(
                    bank=rng.randrange(ORG.banks_per_chip),
                    subarray=rng.randrange(ORG.subarrays_per_bank),
                    row=rng.randrange(4),
                    column=rng.randrange(ORG.bursts_per_row)))
            for _ in range(rng.randrange(5, 60))
        ]
        architecture = rng.choice(ALL_ARCHITECTURES)
        total_fcfs += run(
            stream, architecture, ControllerConfig()).total_cycles
        total_fr += run(
            stream, architecture,
            ControllerConfig(scheduler=SchedulerKind.FR_FCFS)
        ).total_cycles
    assert total_fr < total_fcfs * 0.95


# ----------------------------------------------------------------------
# Closed-row vs open-row
# ----------------------------------------------------------------------

def _make_conflict_only(rows):
    """Adjust a row sequence so consecutive entries always differ."""
    out = []
    for row in rows:
        if out and row == out[-1]:
            row = (row + 1) % 4
        out.append(row)
    return out


conflict_rows = st.lists(
    st.integers(0, 3), min_size=1, max_size=30).map(_make_conflict_only)


@given(rows=conflict_rows, architecture=architectures,
       kind=st.sampled_from([RequestKind.READ, RequestKind.WRITE]))
@settings(max_examples=150, deadline=None)
def test_closed_row_equals_open_row_on_conflict_only_streams(
        rows, architecture, kind):
    """When every access targets a different row than its predecessor,
    open-row pays the precharge on demand and closed-row pays it
    eagerly — at exactly the same earliest-legal cycles, so the column
    schedule and the total are identical."""
    stream = [
        Request(kind, Coordinate(
            row=row, column=index % ORG.bursts_per_row))
        for index, row in enumerate(rows)
    ]
    # Guard: the strategy must produce conflict-only streams.
    assert all(a.coordinate.row != b.coordinate.row
               for a, b in zip(stream, stream[1:]))
    open_trace = run(stream, architecture, ControllerConfig())
    closed_trace = run(
        stream, architecture, controller_config(row_policy="closed"))
    assert closed_trace.total_cycles == open_trace.total_cycles
    # The data-moving schedule is identical command for command.
    columns = lambda trace: [  # noqa: E731
        (c.cycle, c.kind, c.coordinate)
        for c in trace.commands if c.kind.is_column]
    assert columns(closed_trace) == columns(open_trace)
    # Every request paid an activation in both worlds.
    assert closed_trace.num_activations == open_trace.num_activations


# ----------------------------------------------------------------------
# SALP vs commodity DDR3
# ----------------------------------------------------------------------

@given(stream=general_streams, scheduler=schedulers,
       architecture=st.sampled_from(
           [DRAMArchitecture.SALP_1, DRAMArchitecture.SALP_2]))
@settings(max_examples=150, deadline=None)
def test_salp12_never_slower_than_ddr3_under_open_row(
        stream, scheduler, architecture):
    """SALP-1/2 only relax waits (tRP and tWR become subarray-local):
    under the open-row policy they can never add bank-level latency.
    They can, however, move a command onto a shared-command-bus cycle
    that another bank's command would have used, slipping it by one
    cycle; each such collision costs one cycle, and the number of
    collisions is bounded by the number of commands in the trace."""
    config = ControllerConfig(scheduler=scheduler)
    base = run(stream, DRAMArchitecture.DDR3, config)
    salp = run(stream, architecture, config)
    bus_slack = len(salp.commands)
    assert salp.total_cycles <= base.total_cycles + bus_slack


@given(stream=general_streams, scheduler=schedulers)
@settings(max_examples=150, deadline=None)
def test_masa_bounded_by_ddr3_plus_select_overhead(
        stream, scheduler):
    """MASA adds the subarray-select re-designation (a few cycles per
    column command to a non-MRU subarray) on top of its relaxations;
    that is the only way it can ever trail DDR3, so DDR3's total plus
    the per-access allowance is a hard ceiling."""
    config = ControllerConfig(scheduler=scheduler)
    base = run(stream, DRAMArchitecture.DDR3, config)
    masa = run(stream, DRAMArchitecture.SALP_MASA, config)
    select = behavior_of(
        DRAMArchitecture.SALP_MASA).subarray_select_cycles
    assert masa.total_cycles <= base.total_cycles + select * len(stream)


@given(stream=general_streams, scheduler=schedulers,
       row_policy=row_policies)
@settings(max_examples=100, deadline=None)
def test_salp_never_loses_row_hits(stream, scheduler, row_policy):
    """More subarray-level parallelism can only preserve or add row
    hits, whatever the controller policy."""
    config = ControllerConfig(
        scheduler=scheduler, row_policy=row_policy)
    base = run(stream, DRAMArchitecture.DDR3, config)
    masa = run(stream, DRAMArchitecture.SALP_MASA, config)
    assert masa.row_hits >= base.row_hits
