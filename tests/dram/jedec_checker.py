"""Independent JEDEC replay checker and shared hypothesis strategies.

This module is the single home of the from-scratch
:class:`TraceChecker` (it shares no state-machine code with the
controller) and of the request-stream strategies the property suites
draw from.  Both the bare-controller properties
(``test_controller_properties.py``) and the contention front-end
properties (``test_contention_properties.py``) import from here, so
the two suites verify against the same rules.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from hypothesis import strategies as st

from repro.dram.address import Coordinate
from repro.dram.architecture import (
    ALL_ARCHITECTURES,
    DRAMArchitecture,
    behavior_of,
)
from repro.dram.commands import Command, CommandKind, Request, RequestKind
from repro.dram.policies import (
    ControllerConfig,
    RowPolicyKind,
    SchedulerKind,
)
from repro.dram.presets import TINY_ORGANIZATION as ORG
from repro.dram.spec import DRAMOrganization
from repro.dram.timing import DDR3_1600_TIMINGS as T, TimingParameters
from repro.dram.trace_io import read_command_trace, write_command_trace

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

coordinates = st.builds(
    Coordinate,
    bank=st.integers(0, ORG.banks_per_chip - 1),
    subarray=st.integers(0, ORG.subarrays_per_bank - 1),
    row=st.integers(0, 3),
    column=st.integers(0, ORG.bursts_per_row - 1),
)
requests = st.builds(
    Request,
    kind=st.sampled_from([RequestKind.READ, RequestKind.WRITE]),
    coordinate=coordinates,
)
streams = st.lists(requests, min_size=1, max_size=40)
architectures = st.sampled_from(ALL_ARCHITECTURES)
controller_configs = st.builds(
    ControllerConfig,
    scheduler=st.sampled_from(list(SchedulerKind)),
    row_policy=st.sampled_from(list(RowPolicyKind)),
    reorder_window=st.sampled_from([1, 2, 4, 16]),
    timeout_cycles=st.sampled_from([25, 100, 100000]),
)


# ----------------------------------------------------------------------
# Independent trace checker
# ----------------------------------------------------------------------

class TraceChecker:
    """From-scratch replay of a command trace against the JEDEC rules.

    Shares no state-machine code with the controller: it re-derives
    bank/subarray/rank state purely from the (cycle-sorted) command
    stream and asserts every inter-command constraint the model
    claims to honour, with the SALP relaxations of the architecture
    applied where — and only where — they are defined.
    """

    def __init__(self, organization: DRAMOrganization,
                 timings: TimingParameters,
                 architecture: DRAMArchitecture) -> None:
        self.org = organization
        self.t = timings
        self.behavior = behavior_of(architecture)
        if self.behavior.multiple_activated_subarrays:
            self.budget = min(self.behavior.max_activated_subarrays,
                              organization.subarrays_per_bank)
        else:
            self.budget = 1
        # Per-subarray state, keyed (channel, rank, bank, subarray).
        self.open_row: Dict[Tuple, int] = {}
        self.act_at: Dict[Tuple, int] = {}
        self.pre_at: Dict[Tuple, int] = {}
        self.last_read: Dict[Tuple, int] = {}
        self.last_write_end: Dict[Tuple, int] = {}
        # Per-bank state, keyed (channel, rank, bank).
        self.bank_pre_at: Dict[Tuple, int] = {}
        # Per-rank state, keyed (channel, rank).
        self.cmd_cycles: Dict[Tuple, Set[int]] = {}
        self.acts: Dict[Tuple, List[int]] = {}
        self.last_col: Dict[Tuple, int] = {}
        self.data_end: Dict[Tuple, int] = {}

    def check(self, commands: List[Command]) -> None:
        for command in sorted(commands, key=lambda c: c.cycle):
            coord = command.coordinate
            rank_key = (coord.channel, coord.rank)
            bank_key = rank_key + (coord.bank,)
            sub_key = bank_key + (coord.subarray,)
            self._check_command_bus(rank_key, command)
            if command.kind is CommandKind.ACT:
                self._check_act(rank_key, bank_key, sub_key, command)
            elif command.kind is CommandKind.PRE:
                self._check_pre(bank_key, sub_key, command)
            elif command.kind.is_column:
                self._check_column(rank_key, sub_key, command)
            else:  # pragma: no cover - REF never emitted here
                raise AssertionError(f"unexpected {command.kind}")

    # -- per-kind rules ------------------------------------------------

    def _check_command_bus(self, rank_key, command) -> None:
        occupied = self.cmd_cycles.setdefault(rank_key, set())
        assert command.cycle not in occupied, (
            f"command bus double-booked at {command.cycle}")
        occupied.add(command.cycle)

    def _check_act(self, rank_key, bank_key, sub_key, command) -> None:
        cycle = command.cycle
        assert sub_key not in self.open_row, (
            f"ACT@{cycle} to already-open subarray {sub_key}")
        # tRP: subarray-local always; bank-global without SALP.
        if sub_key in self.pre_at:
            assert cycle >= self.pre_at[sub_key] + self.t.tRP, (
                f"ACT@{cycle} violates subarray tRP")
        if not self.behavior.overlap_precharge_with_activation \
                and bank_key in self.bank_pre_at:
            assert cycle >= self.bank_pre_at[bank_key] + self.t.tRP, (
                f"ACT@{cycle} violates bank-level tRP")
        # Rank-wide activation pacing.
        acts = self.acts.setdefault(rank_key, [])
        if acts:
            assert cycle >= acts[-1] + self.t.tRRD, (
                f"ACT@{cycle} violates tRRD")
        if len(acts) >= 4:
            assert cycle >= acts[-4] + self.t.tFAW, (
                f"ACT@{cycle} violates tFAW")
        acts.append(cycle)
        # Activated-subarray budget.
        open_in_bank = sum(
            1 for key in self.open_row if key[:3] == bank_key)
        assert open_in_bank < self.budget, (
            f"ACT@{cycle} exceeds the activated-subarray budget "
            f"({self.budget})")
        self.open_row[sub_key] = command.coordinate.row
        self.act_at[sub_key] = cycle

    def _check_pre(self, bank_key, sub_key, command) -> None:
        cycle = command.cycle
        assert sub_key in self.open_row, (
            f"PRE@{cycle} to closed subarray {sub_key}")
        assert cycle >= self.act_at[sub_key] + self.t.tRAS, (
            f"PRE@{cycle} violates tRAS")
        if sub_key in self.last_read:
            assert cycle >= self.last_read[sub_key] + self.t.tRTP, (
                f"PRE@{cycle} violates tRTP")
        if sub_key in self.last_write_end:
            if self.behavior.overlap_write_recovery:
                # SALP-2/MASA may hide tWR behind another subarray's
                # activation, but never precede the write data itself.
                bound = self.last_write_end[sub_key]
            else:
                bound = self.last_write_end[sub_key] + self.t.tWR
            assert cycle >= bound, f"PRE@{cycle} violates tWR"
        del self.open_row[sub_key]
        self.pre_at[sub_key] = cycle
        self.bank_pre_at[bank_key] = max(
            self.bank_pre_at.get(bank_key, 0), cycle)

    def _check_column(self, rank_key, sub_key, command) -> None:
        cycle = command.cycle
        assert self.open_row.get(sub_key) == command.coordinate.row, (
            f"{command.kind}@{cycle} to closed or wrong row")
        assert cycle >= self.act_at[sub_key] + self.t.tRCD, (
            f"{command.kind}@{cycle} violates tRCD")
        if rank_key in self.last_col:
            assert cycle >= self.last_col[rank_key] + self.t.tCCD, (
                f"{command.kind}@{cycle} violates tCCD")
        self.last_col[rank_key] = cycle
        cas = (self.t.tCL if command.kind is CommandKind.RD
               else self.t.tCWL)
        start = cycle + cas
        assert start >= self.data_end.get(rank_key, 0), (
            f"{command.kind}@{cycle} overlaps the previous data burst")
        self.data_end[rank_key] = start + self.t.tBL
        if command.kind is CommandKind.RD:
            self.last_read[sub_key] = cycle
        else:
            self.last_write_end[sub_key] = start + self.t.tBL


def roundtrip_and_check(commands, architecture, tmp_path,
                        organization: DRAMOrganization = ORG,
                        timings: TimingParameters = T):
    """Round-trip commands through trace_io, replay the checker.

    The checker consumes what an external tool would read, not
    in-memory objects; returns the replayed command list.
    """
    path = tmp_path / "commands.trace"
    write_command_trace(path, commands)
    replayed = read_command_trace(path)
    assert replayed == list(commands), "command trace round-trip lossy"
    TraceChecker(organization, timings, architecture).check(replayed)
    return replayed
