"""Property-based invariants for the multi-requestor front end.

Random request streams x all architectures x random controller and
contention configurations must satisfy:

* the N=1 crossbar is the *identity* front end — command-for-command
  and service-timing identical to the bare controller;
* contended command traces still respect every JEDEC timing rule,
  verified by round-tripping through :mod:`repro.dram.trace_io` and
  replaying the independent checker of :mod:`jedec_checker`;
* arbiter fairness — round-robin never makes a backlogged requestor
  wait N-1 grants or more without winning, age-based waits are
  bounded by ``age_limit + N - 1``, fixed-priority lets requestor 0
  monopolize the channel;
* the per-requestor projection of a contended run preserves each
  input stream's FIFO order under the FCFS controller.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from jedec_checker import (
    ORG,
    T,
    architectures,
    controller_configs,
    roundtrip_and_check,
    streams,
)
from repro.dram.contention import contention_config, requestor_tag
from repro.dram.controller import MemoryController
from repro.dram.crossbar import Crossbar

contention_configs = st.builds(
    contention_config,
    requestors=st.integers(2, 4),
    arbiter=st.sampled_from(
        ["round-robin", "fixed-priority", "age-based"]),
    assignment=st.sampled_from(["interleave", "block"]),
    in_flight_limit=st.sampled_from([1, 2, 8]),
    age_limit=st.sampled_from([1, 4, 16]),
)


def _service_signature(trace):
    """Timing/identity of each completion, ignoring the crossbar tag."""
    return [(s.request.kind, s.request.coordinate, s.issue_cycle,
             s.data_cycle, s.row_hit, s.row_miss, s.row_conflict)
            for s in trace.serviced]


# ----------------------------------------------------------------------
# N=1 identity
# ----------------------------------------------------------------------

@given(stream=streams, architecture=architectures,
       config=controller_configs)
@settings(max_examples=100, deadline=None)
def test_n1_crossbar_is_identity_front_end(
        stream, architecture, config):
    """The default contention config must never perturb a schedule."""
    bare = MemoryController(ORG, T, architecture, config=config
                            ).run(stream)
    crossbar = Crossbar(
        MemoryController(ORG, T, architecture, config=config))
    contended = crossbar.run_merged(stream)
    assert contended.commands == bare.commands
    assert _service_signature(contended) == _service_signature(bare)
    assert len(crossbar.grant_log) == len(stream)
    assert all(g.requestor == 0 and g.waited == 0
               for g in crossbar.grant_log)


# ----------------------------------------------------------------------
# Contended traces stay JEDEC-legal
# ----------------------------------------------------------------------

@given(stream=streams, architecture=architectures,
       config=controller_configs, channel=contention_configs)
@settings(max_examples=150, deadline=None,
          # The tmp_path file is overwritten per example, so reusing
          # the fixture across examples is sound.
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_contended_trace_respects_all_timing_invariants(
        stream, architecture, config, channel, tmp_path):
    crossbar = Crossbar(
        MemoryController(ORG, T, architecture, config=config), channel)
    trace = crossbar.run_merged(stream)
    assert len(trace.serviced) == len(stream)
    roundtrip_and_check(trace.commands, architecture, tmp_path)


# ----------------------------------------------------------------------
# Arbiter fairness
# ----------------------------------------------------------------------

@given(stream=streams, architecture=architectures,
       requestors=st.integers(2, 4))
@settings(max_examples=100, deadline=None)
def test_round_robin_is_starvation_free(
        stream, architecture, requestors):
    """A backlogged requestor wins within N-1 grants."""
    channel = contention_config(requestors=requestors)
    crossbar = Crossbar(
        MemoryController(ORG, T, architecture), channel)
    crossbar.run_merged(stream)
    assert crossbar.grant_log
    assert max(g.waited for g in crossbar.grant_log) \
        <= requestors - 1


@given(stream=streams, architecture=architectures,
       requestors=st.integers(2, 4),
       age_limit=st.sampled_from([1, 2, 8]))
@settings(max_examples=100, deadline=None)
def test_age_based_wait_is_bounded(
        stream, architecture, requestors, age_limit):
    """The age escape bounds every wait by age_limit + N - 1."""
    channel = contention_config(
        requestors=requestors, arbiter="age-based",
        age_limit=age_limit)
    crossbar = Crossbar(
        MemoryController(ORG, T, architecture), channel)
    crossbar.run_merged(stream)
    assert max(g.waited for g in crossbar.grant_log) \
        <= age_limit + requestors - 1


@given(stream=streams, architecture=architectures)
@settings(max_examples=60, deadline=None)
def test_fixed_priority_lets_requestor_zero_monopolize(
        stream, architecture):
    """Under FCFS (nothing in flight at arbitration time) requestor 0
    drains completely before requestor 1 is ever granted."""
    channel = contention_config(
        requestors=2, arbiter="fixed-priority")
    crossbar = Crossbar(
        MemoryController(ORG, T, architecture), channel)
    crossbar.run_merged(stream)
    grants = [g.requestor for g in crossbar.grant_log]
    first_of_r0 = len([g for g in grants if g == 0])
    assert grants == [0] * first_of_r0 + [1] * (len(grants)
                                                - first_of_r0)


# ----------------------------------------------------------------------
# Per-requestor projection
# ----------------------------------------------------------------------

@given(stream=streams, architecture=architectures,
       channel=contention_configs)
@settings(max_examples=100, deadline=None)
def test_projection_preserves_per_stream_fifo_order(
        stream, architecture, channel):
    """Under the FCFS controller each requestor's completions appear
    in its own input-stream order (contention interleaves streams,
    it never reorders within one)."""
    from repro.dram.contention import split_stream

    per_requestor = split_stream(stream, channel)
    crossbar = Crossbar(
        MemoryController(ORG, T, architecture), channel)
    trace = crossbar.run(per_requestor)
    for index, expected in enumerate(per_requestor):
        tag = requestor_tag(index)
        projected = [s.request for s in trace.serviced
                     if s.request.tag == tag]
        assert [r.coordinate for r in projected] \
            == [r.coordinate for r in expected]
        assert [r.kind for r in projected] \
            == [r.kind for r in expected]
