"""Differential suite: the batch kernel vs. the object simulator.

The vectorized kernel (:mod:`repro.dram.kernel`) is a *golden-pinned*
fast path: wherever it is eligible — the default FCFS/open-row
controller, refresh off, an uncontended channel — its
:class:`CharacterizationResult` must equal the simulator's **exactly**
(``==`` on every float, not approximately).  The simulator remains the
source of truth; these tests are the pin.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.architecture import DRAMArchitecture
from repro.dram.characterize import (
    CharacterizationCache,
    characterize,
)
from repro.dram.contention import contention_config
from repro.dram.device import DEVICE_REGISTRY, TINY_DEVICE, get_device
from repro.dram.kernel import (
    KernelCharacterizer,
    characterize_batch,
    kernel_ineligibility,
    kernel_supported,
)
from repro.dram.policies import controller_config
from repro.dram.simulator import DRAMSimulator
from repro.dram.store import CharacterizationStore
from repro.errors import ConfigurationError

ALL_TRIPLES = [
    (device, architecture)
    for device in DEVICE_REGISTRY
    for architecture in device.supported_architectures
]


def assert_exactly_equal(kernel_result, simulator_result):
    """Bit-for-bit equality of two characterization results."""
    assert kernel_result.architecture == simulator_result.architecture
    assert kernel_result.device_name == simulator_result.device_name
    assert kernel_result.tck_ns == simulator_result.tck_ns
    assert kernel_result.controller == simulator_result.controller
    assert kernel_result.contention == simulator_result.contention
    assert kernel_result.requestor_stats \
        == simulator_result.requestor_stats
    assert set(kernel_result.costs) == set(simulator_result.costs)
    for condition, expected in simulator_result.costs.items():
        actual = kernel_result.costs[condition]
        # Exact float equality is deliberate: the kernel replicates
        # the simulator's arithmetic (same operations, same order),
        # not just its values to within a tolerance.
        assert actual.cycles == expected.cycles, condition
        assert actual.read_energy_nj == expected.read_energy_nj, \
            condition
        assert actual.write_energy_nj == expected.write_energy_nj, \
            condition


class TestExactEquality:
    """Kernel == simulator on every preset x architecture."""

    @pytest.mark.parametrize(
        "device, architecture", ALL_TRIPLES,
        ids=[f"{d.name}-{a.value}" for d, a in ALL_TRIPLES])
    def test_every_preset_and_architecture(self, device, architecture):
        kernel = characterize(
            architecture, device=device, model="kernel")
        simulator = characterize(
            architecture, device=device, model="simulator")
        assert_exactly_equal(kernel, simulator)

    def test_auto_uses_the_kernel_values(self):
        auto = characterize(DRAMArchitecture.SALP_MASA,
                            device=TINY_DEVICE)
        kernel = characterize(DRAMArchitecture.SALP_MASA,
                              device=TINY_DEVICE, model="kernel")
        assert_exactly_equal(auto, kernel)

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.data(),
        short=st.integers(min_value=1, max_value=40),
        gap=st.integers(min_value=1, max_value=120),
    )
    def test_arbitrary_stream_lengths(self, data, short, gap):
        """Equality is structural, not tuned to the 64/320 default."""
        device = data.draw(st.sampled_from(list(DEVICE_REGISTRY)))
        architecture = data.draw(
            st.sampled_from(list(device.supported_architectures)))
        long = short + gap
        kernel = characterize(
            architecture, device=device, model="kernel",
            short_count=short, long_count=long)
        simulator = characterize(
            architecture, device=device, model="simulator",
            short_count=short, long_count=long)
        assert_exactly_equal(kernel, simulator)

    def test_masa_lru_eviction_path(self):
        """A 16-subarray geometry exceeds MASA's 8-row budget.

        The default presets never evict (<= 8 subarrays per bank), so
        force the eviction branch of the kernel's MASA walk through a
        widened geometry.
        """
        base = get_device("ddr3-1600-2gb-x8")
        organization = dataclasses.replace(
            base.organization, subarrays_per_bank=16)
        wide = dataclasses.replace(
            base, name="ddr3-16sub", organization=organization)
        kernel = characterize(
            DRAMArchitecture.SALP_MASA, device=wide, model="kernel")
        simulator = characterize(
            DRAMArchitecture.SALP_MASA, device=wide, model="simulator")
        assert_exactly_equal(kernel, simulator)


class TestBatch:
    def test_batch_equals_per_triple_calls(self):
        items = [
            (device, architecture)
            for device, architecture in ALL_TRIPLES
        ]
        batch = characterize_batch(items)
        assert len(batch) == len(items)
        for (profile, architecture, config, channel), result \
                in batch.items():
            single = characterize(
                architecture, device=profile, controller=config,
                contention=channel, model="kernel")
            assert_exactly_equal(result, single)

    def test_device_names_accepted(self):
        batch = characterize_batch(
            [("tiny", DRAMArchitecture.DDR3)])
        (result,) = batch.values()
        assert result.device_name == "tiny"

    def test_ineligible_item_falls_back_to_the_simulator(self):
        config = controller_config(scheduler="fr-fcfs")
        batch = characterize_batch(
            [(TINY_DEVICE, DRAMArchitecture.DDR3, config)])
        (result,) = batch.values()
        simulator = characterize(
            DRAMArchitecture.DDR3, device=TINY_DEVICE,
            controller=config, model="simulator")
        assert_exactly_equal(result, simulator)


class TestEligibility:
    """Forcing the kernel on unsupported configurations must raise."""

    @pytest.mark.parametrize("config", [
        controller_config(scheduler="fr-fcfs"),
        controller_config(row_policy="closed"),
        controller_config(row_policy="timeout", timeout_cycles=50),
    ], ids=["fr-fcfs", "closed", "timeout"])
    def test_non_default_controller_raises(self, config):
        assert kernel_ineligibility(config) is not None
        assert not kernel_supported(config)
        with pytest.raises(ConfigurationError, match="kernel"):
            characterize(DRAMArchitecture.DDR3, device=TINY_DEVICE,
                         controller=config, model="kernel")

    def test_contended_channel_raises(self):
        channel = contention_config(requestors=2)
        assert kernel_ineligibility(contention=channel) is not None
        with pytest.raises(ConfigurationError, match="kernel"):
            characterize(DRAMArchitecture.DDR3, device=TINY_DEVICE,
                         contention=channel, model="kernel")

    def test_refresh_enabled_raises(self):
        simulator = DRAMSimulator.from_profile(
            TINY_DEVICE, DRAMArchitecture.DDR3, refresh_enabled=True)
        assert kernel_ineligibility(
            refresh_enabled=True) is not None
        with pytest.raises(ConfigurationError, match="kernel"):
            characterize(DRAMArchitecture.DDR3, simulator=simulator,
                         device=TINY_DEVICE, model="kernel")

    def test_auto_falls_back_and_matches_the_simulator(self):
        config = controller_config(scheduler="fr-fcfs")
        auto = characterize(DRAMArchitecture.SALP_1, device=TINY_DEVICE,
                            controller=config, model="auto")
        simulator = characterize(
            DRAMArchitecture.SALP_1, device=TINY_DEVICE,
            controller=config, model="simulator")
        assert_exactly_equal(auto, simulator)

    def test_unknown_model_raises(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            characterize(DRAMArchitecture.DDR3, device=TINY_DEVICE,
                         model="exact")

    def test_direct_construction_rejects_ineligible_config(self):
        with pytest.raises(ConfigurationError):
            KernelCharacterizer(
                TINY_DEVICE.organization, TINY_DEVICE.timings,
                DRAMSimulator.from_profile(TINY_DEVICE).energy_model,
                controller=controller_config(scheduler="fr-fcfs"))


class TestCacheNoFork:
    """The backend is not part of the cache key or the store spec."""

    def test_memo_entry_is_shared_across_backends(self):
        cache = CharacterizationCache()
        first = cache.get(DRAMArchitecture.DDR3, device=TINY_DEVICE,
                          model="kernel")
        second = cache.get(DRAMArchitecture.DDR3, device=TINY_DEVICE,
                           model="simulator")
        assert first is second
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_store_entry_is_shared_across_backends(self, tmp_path):
        store = CharacterizationStore(tmp_path / "store")
        writer = CharacterizationCache(store=store)
        writer.get(DRAMArchitecture.DDR3, device=TINY_DEVICE,
                   model="kernel")
        reader = CharacterizationCache(store=store)
        served = reader.get(DRAMArchitecture.DDR3, device=TINY_DEVICE,
                            model="simulator")
        assert store.hits == 1
        simulator = characterize(
            DRAMArchitecture.DDR3, device=TINY_DEVICE,
            model="simulator")
        assert_exactly_equal(served, simulator)

    def test_get_many_equals_per_get(self):
        architectures = tuple(TINY_DEVICE.supported_architectures)
        batched = CharacterizationCache().get_many(
            architectures, device=TINY_DEVICE)
        single_cache = CharacterizationCache()
        for architecture in architectures:
            expected = single_cache.get(architecture,
                                        device=TINY_DEVICE)
            assert_exactly_equal(batched[architecture], expected)

    def test_get_many_counts_like_per_get(self, tmp_path):
        store = CharacterizationStore(tmp_path / "store")
        cache = CharacterizationCache(store=store)
        architectures = tuple(TINY_DEVICE.supported_architectures)
        cache.get_many(architectures, device=TINY_DEVICE)
        assert cache.stats.misses == len(architectures)
        assert cache.stats.hits == 0
        # One store probe and one write per miss, exactly like get().
        assert store.misses == len(architectures)
        cache.get_many(architectures, device=TINY_DEVICE)
        assert cache.stats.hits == len(architectures)
        assert store.misses == len(architectures)

    def test_get_many_serves_stored_entries(self, tmp_path):
        store = CharacterizationStore(tmp_path / "store")
        writer = CharacterizationCache(store=store)
        architectures = tuple(TINY_DEVICE.supported_architectures)
        expected = writer.get_many(architectures, device=TINY_DEVICE)
        reader = CharacterizationCache(store=store)
        served = reader.get_many(architectures, device=TINY_DEVICE)
        for architecture in architectures:
            assert_exactly_equal(served[architecture],
                                 expected[architecture])
        assert store.hits == len(architectures)
