"""Tests for the Fig.-1 characterization (the paper's key observations)."""

import pytest

from repro.dram.architecture import DRAMArchitecture
from repro.dram.characterize import (
    ALL_CONDITIONS,
    AccessCondition,
    characterize_all,
    characterize_preset,
)
from repro.dram.commands import RequestKind


@pytest.fixture(scope="module")
def figures():
    return characterize_all()


class TestStructure:
    def test_all_conditions_present(self, figures, architecture):
        result = figures[architecture]
        for condition in ALL_CONDITIONS:
            assert condition in result.costs

    def test_rows_report_all_conditions(self, figures):
        rows = figures[DRAMArchitecture.DDR3].rows()
        assert len(rows) == len(ALL_CONDITIONS)

    def test_costs_positive(self, figures, architecture):
        for condition in ALL_CONDITIONS:
            cost = figures[architecture].cost(condition)
            assert cost.cycles > 0
            assert cost.read_energy_nj > 0
            assert cost.write_energy_nj > 0

    def test_energy_kind_dispatch(self, figures):
        cost = figures[DRAMArchitecture.DDR3].cost(AccessCondition.ROW_HIT)
        assert cost.energy_nj(RequestKind.READ) == cost.read_energy_nj
        assert cost.energy_nj(RequestKind.WRITE) == cost.write_energy_nj

    def test_cached_preset(self):
        first = characterize_preset(DRAMArchitecture.DDR3)
        second = characterize_preset(DRAMArchitecture.DDR3)
        assert first is second


class TestFig1LatencyShape:
    """The latency ordering of Fig. 1 must hold."""

    def test_hit_cheapest(self, figures, architecture):
        costs = figures[architecture].costs
        hit = costs[AccessCondition.ROW_HIT].cycles
        for condition in ALL_CONDITIONS:
            assert costs[condition].cycles >= hit

    def test_conflict_most_expensive(self, figures, architecture):
        costs = figures[architecture].costs
        conflict = costs[AccessCondition.ROW_CONFLICT].cycles
        for condition in ALL_CONDITIONS:
            assert costs[condition].cycles <= conflict

    def test_miss_between_hit_and_conflict(self, figures, architecture):
        costs = figures[architecture].costs
        assert costs[AccessCondition.ROW_HIT].cycles \
            < costs[AccessCondition.ROW_MISS].cycles \
            < costs[AccessCondition.ROW_CONFLICT].cycles

    def test_bank_parallelism_cheap(self, figures, architecture):
        costs = figures[architecture].costs
        assert costs[AccessCondition.BANK_PARALLEL].cycles \
            < costs[AccessCondition.ROW_MISS].cycles

    def test_ddr3_subarray_equals_conflict(self, figures):
        """Commodity DDR3 cannot exploit subarrays (Section II-B)."""
        costs = figures[DRAMArchitecture.DDR3].costs
        assert costs[AccessCondition.SUBARRAY_PARALLEL].cycles \
            == pytest.approx(costs[AccessCondition.ROW_CONFLICT].cycles)


class TestFig1SalpShape:
    """SALP architectures progressively cheapen subarray switches."""

    def test_salp_ordering(self, figures):
        def sa_cycles(arch):
            return figures[arch].cost(
                AccessCondition.SUBARRAY_PARALLEL).cycles

        assert sa_cycles(DRAMArchitecture.DDR3) \
            > sa_cycles(DRAMArchitecture.SALP_1) \
            >= sa_cycles(DRAMArchitecture.SALP_2) \
            > sa_cycles(DRAMArchitecture.SALP_MASA)

    def test_salp2_write_benefit(self, figures):
        """SALP-2 overlaps write recovery: write switches get cheaper."""
        salp1 = figures[DRAMArchitecture.SALP_1].cost(
            AccessCondition.SUBARRAY_PARALLEL)
        salp2 = figures[DRAMArchitecture.SALP_2].cost(
            AccessCondition.SUBARRAY_PARALLEL)
        assert salp2.write_energy_nj < salp1.write_energy_nj

    def test_masa_subarray_near_hit(self, figures):
        costs = figures[DRAMArchitecture.SALP_MASA].costs
        hit = costs[AccessCondition.ROW_HIT].cycles
        subarray = costs[AccessCondition.SUBARRAY_PARALLEL].cycles
        assert subarray <= hit * 2

    def test_other_conditions_architecture_independent(self, figures):
        """Hits, misses, conflicts and bank parallelism cost the same
        everywhere -- SALP only changes subarray interactions."""
        reference = figures[DRAMArchitecture.DDR3]
        for arch in (DRAMArchitecture.SALP_1, DRAMArchitecture.SALP_2,
                     DRAMArchitecture.SALP_MASA):
            for condition in (AccessCondition.ROW_HIT,
                              AccessCondition.ROW_MISS,
                              AccessCondition.ROW_CONFLICT,
                              AccessCondition.BANK_PARALLEL):
                assert figures[arch].cost(condition).cycles \
                    == pytest.approx(reference.cost(condition).cycles)


class TestFig1EnergyShape:
    def test_energy_tracks_latency_ordering(self, figures, architecture):
        costs = figures[architecture].costs
        assert costs[AccessCondition.ROW_HIT].read_energy_nj \
            < costs[AccessCondition.ROW_MISS].read_energy_nj \
            < costs[AccessCondition.ROW_CONFLICT].read_energy_nj

    def test_energy_in_nanojoule_range(self, figures, architecture):
        """Fig. 1's energy axis spans roughly 0-12 nJ per access."""
        for condition in ALL_CONDITIONS:
            energy = figures[architecture].cost(condition).read_energy_nj
            assert 0.1 < energy < 20.0
