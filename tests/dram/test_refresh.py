"""Tests for DRAM refresh modelling."""

import pytest

from repro.dram.address import Coordinate
from repro.dram.architecture import DRAMArchitecture
from repro.dram.commands import CommandKind, Request
from repro.dram.controller import MemoryController
from repro.dram.presets import DDR3_1600_2GB_X8 as ORG
from repro.dram.timing import DDR3_1600_TIMINGS as T


def long_conflict_stream(count):
    """A stream slow enough to span several tREFI windows."""
    return [Request.read(Coordinate(bank=0, subarray=0, row=i % 2,
                                    column=(i // 2) % 128))
            for i in range(count)]


def run(refresh_enabled, count=400):
    controller = MemoryController(
        ORG, T, DRAMArchitecture.DDR3, refresh_enabled=refresh_enabled)
    return controller.run(long_conflict_stream(count))


class TestRefreshDisabledByDefault:
    def test_no_ref_commands(self):
        controller = MemoryController(ORG, T, DRAMArchitecture.DDR3)
        trace = controller.run(long_conflict_stream(400))
        assert not any(c.kind is CommandKind.REF for c in trace.commands)


class TestRefreshEnabled:
    def test_ref_commands_appear(self):
        trace = run(refresh_enabled=True)
        refs = [c for c in trace.commands if c.kind is CommandKind.REF]
        assert refs, "a multi-tREFI trace must contain refreshes"

    def test_refresh_rate_matches_trefi(self):
        trace = run(refresh_enabled=True)
        refs = sum(1 for c in trace.commands
                   if c.kind is CommandKind.REF)
        expected = trace.total_cycles // T.tREFI
        assert abs(refs - expected) <= 1

    def test_refresh_costs_cycles(self):
        with_refresh = run(refresh_enabled=True)
        without = run(refresh_enabled=False)
        assert with_refresh.total_cycles > without.total_cycles

    def test_refresh_overhead_is_bounded(self):
        """Refresh steals roughly tRFC/tREFI (~2%) of the time."""
        with_refresh = run(refresh_enabled=True)
        without = run(refresh_enabled=False)
        overhead = (with_refresh.total_cycles - without.total_cycles) \
            / without.total_cycles
        assert overhead < 0.10

    def test_rows_closed_after_refresh(self):
        """The first access after a refresh must re-activate its row."""
        trace = run(refresh_enabled=True)
        refs = [c.cycle for c in trace.commands
                if c.kind is CommandKind.REF]
        acts = [c.cycle for c in trace.commands
                if c.kind is CommandKind.ACT]
        first_ref = refs[0]
        # Some activation happens after the refresh completes.
        assert any(cycle >= first_ref + T.tRFC for cycle in acts)

    def test_reset_restores_refresh_deadline(self):
        controller = MemoryController(
            ORG, T, DRAMArchitecture.DDR3, refresh_enabled=True)
        controller.run(long_conflict_stream(400))
        controller.reset()
        trace = controller.run(long_conflict_stream(10))
        assert not any(c.kind is CommandKind.REF for c in trace.commands)

    def test_refresh_energy_accounted(self):
        from repro.dram.energy import EnergyAccountant
        from repro.dram.power import EnergyModel
        model = EnergyModel(ORG, T)
        accountant = EnergyAccountant(model, include_background=False)
        with_refresh = accountant.account(run(refresh_enabled=True))
        assert with_refresh.refresh_nj > 0
