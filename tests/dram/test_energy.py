"""Tests for trace energy accounting."""

import pytest

from repro.dram.address import Coordinate
from repro.dram.commands import Command, CommandKind, CommandTrace
from repro.dram.energy import EnergyAccountant
from repro.dram.power import EnergyModel
from repro.dram.presets import DDR3_1600_2GB_X8
from repro.dram.timing import DDR3_1600_TIMINGS


ORIGIN = Coordinate()


@pytest.fixture()
def model():
    return EnergyModel(DDR3_1600_2GB_X8, DDR3_1600_TIMINGS)


def trace_of(commands, total_cycles=100):
    return CommandTrace(
        commands=commands, serviced=[], total_cycles=total_cycles)


class TestAccounting:
    def test_empty_trace_background_only(self, model):
        accountant = EnergyAccountant(model)
        energy = accountant.account(trace_of([], total_cycles=50))
        assert energy.dynamic_nj == 0
        assert energy.background_nj > 0

    def test_each_command_charged(self, model):
        commands = [
            Command(CommandKind.ACT, 0, ORIGIN),
            Command(CommandKind.RD, 11, ORIGIN),
            Command(CommandKind.PRE, 40, ORIGIN),
            Command(CommandKind.WR, 60, ORIGIN),
        ]
        energy = EnergyAccountant(model).account(trace_of(commands))
        assert energy.activation_nj == pytest.approx(model.activation_nj())
        assert energy.read_nj == pytest.approx(model.read_burst_nj())
        assert energy.precharge_nj == pytest.approx(model.precharge_nj())
        assert energy.write_nj == pytest.approx(model.write_burst_nj())

    def test_total_is_sum_of_parts(self, model):
        commands = [Command(CommandKind.ACT, 0, ORIGIN),
                    Command(CommandKind.RD, 11, ORIGIN)]
        energy = EnergyAccountant(model).account(trace_of(commands))
        assert energy.total_nj == pytest.approx(
            energy.activation_nj + energy.precharge_nj + energy.read_nj
            + energy.write_nj + energy.refresh_nj + energy.background_nj)

    def test_masa_concurrent_subarrays_increase_activation(self, model):
        plain = trace_of([Command(CommandKind.ACT, 0, ORIGIN)])
        loaded = trace_of([Command(CommandKind.ACT, 0, ORIGIN,
                                   concurrent_subarrays=7)])
        accountant = EnergyAccountant(model, include_background=False)
        assert accountant.account(loaded).total_nj \
            > accountant.account(plain).total_nj

    def test_refresh_command_charged(self, model):
        energy = EnergyAccountant(model).account(
            trace_of([Command(CommandKind.REF, 0, ORIGIN)]))
        assert energy.refresh_nj == pytest.approx(model.refresh_nj())

    def test_background_disabled(self, model):
        accountant = EnergyAccountant(model, include_background=False)
        energy = accountant.account(trace_of([], total_cycles=1000))
        assert energy.total_nj == 0

    def test_background_scales_with_cycles(self, model):
        accountant = EnergyAccountant(model)
        short = accountant.account(trace_of([], total_cycles=100))
        long = accountant.account(trace_of([], total_cycles=300))
        assert long.background_nj == pytest.approx(3 * short.background_nj)
