"""Tests for the architecture behaviour flags."""

from repro.dram.architecture import (
    ALL_ARCHITECTURES,
    SALP_ARCHITECTURES,
    DRAMArchitecture,
    behavior_of,
)


class TestBehaviorFlags:
    def test_ddr3_has_no_salp_features(self):
        behavior = behavior_of(DRAMArchitecture.DDR3)
        assert not behavior.overlap_precharge_with_activation
        assert not behavior.overlap_write_recovery
        assert not behavior.multiple_activated_subarrays

    def test_salp1_overlaps_precharge_only(self):
        behavior = behavior_of(DRAMArchitecture.SALP_1)
        assert behavior.overlap_precharge_with_activation
        assert not behavior.overlap_write_recovery
        assert not behavior.multiple_activated_subarrays

    def test_salp2_adds_write_recovery(self):
        behavior = behavior_of(DRAMArchitecture.SALP_2)
        assert behavior.overlap_precharge_with_activation
        assert behavior.overlap_write_recovery
        assert not behavior.multiple_activated_subarrays

    def test_masa_adds_multiple_activation(self):
        behavior = behavior_of(DRAMArchitecture.SALP_MASA)
        assert behavior.multiple_activated_subarrays
        assert behavior.overlap_precharge_with_activation
        assert behavior.overlap_write_recovery

    def test_features_monotonically_increase(self):
        """Each SALP level is a superset of the previous (Section II-C)."""
        order = (DRAMArchitecture.DDR3, DRAMArchitecture.SALP_1,
                 DRAMArchitecture.SALP_2, DRAMArchitecture.SALP_MASA)
        counts = []
        for arch in order:
            behavior = behavior_of(arch)
            counts.append(sum([
                behavior.overlap_precharge_with_activation,
                behavior.overlap_write_recovery,
                behavior.multiple_activated_subarrays,
            ]))
        assert counts == sorted(counts)


class TestEnumerations:
    def test_all_architectures_order(self):
        assert ALL_ARCHITECTURES[0] is DRAMArchitecture.DDR3
        assert ALL_ARCHITECTURES[-1] is DRAMArchitecture.SALP_MASA
        assert len(ALL_ARCHITECTURES) == 4

    def test_salp_excludes_ddr3(self):
        assert DRAMArchitecture.DDR3 not in SALP_ARCHITECTURES
        assert len(SALP_ARCHITECTURES) == 3

    def test_string_form(self):
        assert str(DRAMArchitecture.SALP_MASA) == "SALP-MASA"
