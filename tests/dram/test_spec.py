"""Tests for repro.dram.spec."""

import pytest

from repro.dram.spec import DRAMOrganization
from repro.errors import ConfigurationError


class TestTable2Geometry:
    """The paper's 2 Gb x8 device must decompose correctly."""

    def test_chip_density_is_2gb(self, table2_org):
        assert table2_org.chip_megabits == 2048

    def test_row_holds_1kb(self, table2_org):
        assert table2_org.row_bytes == 1024

    def test_bursts_per_row(self, table2_org):
        # 1024 column addresses / BL8 = 128 burst slots.
        assert table2_org.bursts_per_row == 128

    def test_bytes_per_burst(self, table2_org):
        # x8 device, BL8, one chip per rank -> 8 bytes per access.
        assert table2_org.bytes_per_burst == 8

    def test_rows_per_subarray(self, table2_org):
        assert table2_org.rows_per_subarray == 32768 // 8

    def test_total_capacity_256mb(self, table2_org):
        assert table2_org.total_bytes == 256 * 1024 * 1024

    def test_subarray_bytes(self, table2_org):
        assert table2_org.subarray_bytes \
            == table2_org.bank_bytes // table2_org.subarrays_per_bank


class TestAccessCounting:
    def test_zero_bytes_zero_accesses(self, table2_org):
        assert table2_org.accesses_for_bytes(0) == 0

    def test_partial_burst_rounds_up(self, table2_org):
        assert table2_org.accesses_for_bytes(1) == 1
        assert table2_org.accesses_for_bytes(9) == 2

    def test_exact_bursts(self, table2_org):
        assert table2_org.accesses_for_bytes(64 * 1024) == 8192

    def test_negative_bytes_rejected(self, table2_org):
        with pytest.raises(ConfigurationError):
            table2_org.accesses_for_bytes(-1)


class TestValidation:
    def test_rows_must_divide_subarrays(self):
        with pytest.raises(ConfigurationError):
            DRAMOrganization(rows_per_bank=100, subarrays_per_bank=8)

    def test_columns_must_be_burst_multiple(self):
        with pytest.raises(ConfigurationError):
            DRAMOrganization(columns_per_row=1004, burst_length=8)

    def test_rejects_zero_banks(self):
        with pytest.raises(ConfigurationError):
            DRAMOrganization(banks_per_chip=0)

    def test_rejects_non_integer(self):
        with pytest.raises(ConfigurationError):
            DRAMOrganization(banks_per_chip=8.0)

    def test_rejects_odd_device_width(self):
        with pytest.raises(ConfigurationError):
            DRAMOrganization(device_width_bits=7)


class TestHelpers:
    def test_with_subarrays(self, table2_org):
        single = table2_org.with_subarrays(1)
        assert single.subarrays_per_bank == 1
        assert single.rows_per_subarray == table2_org.rows_per_bank
        # The original is unchanged (frozen dataclass).
        assert table2_org.subarrays_per_bank == 8

    def test_describe_mentions_geometry(self, table2_org):
        text = table2_org.describe()
        assert "8 banks" in text
        assert "8 subarrays/bank" in text

    def test_multi_chip_rank_scales_burst_bytes(self):
        wide = DRAMOrganization(chips_per_rank=8)
        assert wide.bytes_per_burst == 64
