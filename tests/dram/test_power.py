"""Tests for repro.dram.power."""

import pytest

from repro.dram.power import (
    CurrentParameters,
    DDR3_1600_2GB_X8_CURRENTS,
    EnergyModel,
)
from repro.dram.presets import DDR3_1600_2GB_X8
from repro.dram.timing import DDR3_1600_TIMINGS
from repro.errors import ConfigurationError


@pytest.fixture()
def model():
    return EnergyModel(DDR3_1600_2GB_X8, DDR3_1600_TIMINGS)


class TestCurrentValidation:
    def test_defaults_valid(self):
        assert DDR3_1600_2GB_X8_CURRENTS.vdd == pytest.approx(1.5)

    def test_rejects_negative_current(self):
        with pytest.raises(ConfigurationError):
            CurrentParameters(idd0=-1.0)

    def test_rejects_idle_above_active(self):
        with pytest.raises(ConfigurationError):
            CurrentParameters(idd2n=40.0, idd3n=38.0)

    def test_rejects_burst_below_standby(self):
        with pytest.raises(ConfigurationError):
            CurrentParameters(idd4r=30.0)


class TestCommandEnergies:
    def test_activation_energy_magnitude(self, model):
        # A 2 Gb x8 activation costs on the order of a nanojoule.
        assert 0.3 < model.activation_nj() < 5.0

    def test_read_burst_magnitude(self, model):
        assert 0.5 < model.read_burst_nj() < 5.0

    def test_write_burst_cheaper_than_read(self, model):
        # IDD4W < IDD4R on this device.
        assert model.write_burst_nj() < model.read_burst_nj()

    def test_refresh_dwarfs_single_activation(self, model):
        assert model.refresh_nj() > model.activation_nj()

    def test_precharge_positive(self, model):
        assert model.precharge_nj() > 0

    def test_masa_overhead_grows_with_active_subarrays(self, model):
        base = model.activation_nj(extra_subarrays_active=0)
        loaded = model.activation_nj(extra_subarrays_active=7)
        assert loaded > base
        # Overhead stays modest (a few percent per subarray).
        assert loaded < base * 1.5

    def test_rank_scaling(self):
        wide_org = DDR3_1600_2GB_X8
        from dataclasses import replace
        wide = EnergyModel(
            replace(wide_org, chips_per_rank=8), DDR3_1600_TIMINGS)
        narrow = EnergyModel(wide_org, DDR3_1600_TIMINGS)
        assert wide.activation_nj() \
            == pytest.approx(8 * narrow.activation_nj())


class TestBackground:
    def test_active_costs_more_than_idle(self, model):
        active = model.background_nj(1000, active_fraction=1.0)
        idle = model.background_nj(1000, active_fraction=0.0)
        assert active > idle > 0

    def test_linear_in_cycles(self, model):
        one = model.background_nj(1000, active_fraction=0.5)
        two = model.background_nj(2000, active_fraction=0.5)
        assert two == pytest.approx(2 * one)

    def test_rejects_bad_fraction(self, model):
        with pytest.raises(ConfigurationError):
            model.background_nj(100, active_fraction=1.5)


class TestDataDependence:
    """VAMPIRE's headline feature: data-dependent burst energy."""

    def test_toggle_zero_saves_energy(self):
        quiet = EnergyModel(
            DDR3_1600_2GB_X8, DDR3_1600_TIMINGS, toggle_ratio=0.0)
        noisy = EnergyModel(
            DDR3_1600_2GB_X8, DDR3_1600_TIMINGS, toggle_ratio=1.0)
        assert quiet.read_burst_nj() < noisy.read_burst_nj()

    def test_toggle_midpoint_is_default_scale(self):
        default = EnergyModel(DDR3_1600_2GB_X8, DDR3_1600_TIMINGS)
        explicit = EnergyModel(
            DDR3_1600_2GB_X8, DDR3_1600_TIMINGS, toggle_ratio=0.5)
        assert default.read_burst_nj() \
            == pytest.approx(explicit.read_burst_nj())

    def test_toggle_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(
                DDR3_1600_2GB_X8, DDR3_1600_TIMINGS, toggle_ratio=1.2)

    def test_activation_unaffected_by_toggle(self):
        quiet = EnergyModel(
            DDR3_1600_2GB_X8, DDR3_1600_TIMINGS, toggle_ratio=0.0)
        noisy = EnergyModel(
            DDR3_1600_2GB_X8, DDR3_1600_TIMINGS, toggle_ratio=1.0)
        assert quiet.activation_nj() == pytest.approx(noisy.activation_nj())
